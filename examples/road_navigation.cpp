// Road-network routing: single-source shortest paths on a road-style mesh
// with the near/far priority queue (delta-stepping), route extraction via
// the shortest-path tree, and a cross-check against Dijkstra.
#include <cstdio>
#include <string_view>

#include "gunrock.hpp"

int main(int argc, char** argv) {
  using namespace gunrock;
  // --quick: tiny inputs for the ctest smoke run (mirrors bench --quick).
  const bool quick =
      argc > 1 && std::string_view(argv[1]) == "--quick";

  graph::RoadParams params;  // roadnet class from Table 1
  params.width = quick ? 48 : 256;
  params.height = quick ? 48 : 256;
  graph::BuildOptions build;
  build.symmetrize = true;
  const auto g = graph::BuildCsr(
      GenerateRoad(params, par::ThreadPool::Global()), build);
  std::printf("road network: %d intersections, %lld road segments\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));

  const vid_t origin = 0;                            // top-left corner
  const vid_t dest = g.num_vertices() - 1;           // bottom-right corner

  // Near/far delta-stepping SSSP (the paper's priority-queue showcase).
  SsspOptions near_far;
  near_far.use_near_far = true;
  const auto routed = Sssp(g, origin, near_far);
  std::printf("near/far SSSP: %.1f ms, %d iterations, %lld relaxations\n",
              routed.stats.elapsed_ms, routed.stats.iterations,
              static_cast<long long>(routed.stats.edges_visited));

  // The same computation without the priority queue, for comparison
  // (Bellman-Ford-style frontier; more redundant relaxations).
  SsspOptions plain;
  plain.use_near_far = false;
  const auto unprioritized = Sssp(g, origin, plain);
  std::printf("plain frontier SSSP: %.1f ms, %lld relaxations "
              "(near/far saved %.0f%% of edge work)\n",
              unprioritized.stats.elapsed_ms,
              static_cast<long long>(unprioritized.stats.edges_visited),
              100.0 * (1.0 - static_cast<double>(
                                 routed.stats.edges_visited) /
                                 static_cast<double>(
                                     unprioritized.stats.edges_visited)));

  // Sanity: agree with Dijkstra.
  const auto oracle = serial::Dijkstra(g, origin);
  double max_err = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (oracle.dist[v] != kInfinity) {
      max_err = std::max(max_err, static_cast<double>(std::abs(
                                      oracle.dist[v] - routed.dist[v])));
    }
  }
  std::printf("max deviation from Dijkstra: %g\n", max_err);

  // Extract the route to the far corner by walking predecessors.
  if (routed.dist[dest] == kInfinity) {
    std::printf("destination unreachable (dropped road segments)\n");
    return 0;
  }
  std::vector<vid_t> route;
  for (vid_t v = dest; v != kInvalidVid; v = routed.pred[v]) {
    route.push_back(v);
    if (v == origin) break;
  }
  std::printf("route %d -> %d: cost %.1f over %zu hops\n", origin, dest,
              routed.dist[dest], route.size() - 1);
  std::printf("first hops:");
  for (std::size_t i = route.size(); i-- > 0 && route.size() - i <= 8;) {
    std::printf(" %d", route[i]);
  }
  std::printf(" ...\n");
  return 0;
}
