// Twitter-style "who to follow" on a bipartite user->account graph: the
// three node-ranking primitives of Geil et al. [9] (paper Section 5.5) —
// personalized PageRank to build a circle of trust, SALSA over it, and
// HITS for global hub/authority structure.
#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "gunrock.hpp"

int main(int argc, char** argv) {
  using namespace gunrock;
  // --quick: tiny inputs for the ctest smoke run (mirrors bench --quick).
  const bool quick =
      argc > 1 && std::string_view(argv[1]) == "--quick";

  graph::BipartiteParams params;
  params.num_users = quick ? 256 : 4096;
  params.num_items = quick ? 128 : 2048;  // "accounts worth following"
  params.edges_per_user = quick ? 8 : 24;
  params.skew = 0.85;
  const auto g = graph::BuildCsr(
      GenerateBipartite(params, par::ThreadPool::Global()));
  const auto rg = graph::ReverseCsr(g, par::ThreadPool::Global());
  std::printf("bipartite graph: %d users x %d accounts, %lld follows\n",
              params.num_users, params.num_items,
              static_cast<long long>(g.num_edges()));

  // 1. Personalized PageRank from one user: their circle of trust.
  const vid_t user = 42;
  const vid_t seeds[] = {user};
  const auto ppr = PersonalizedPagerank(g, seeds);
  std::printf("personalized PageRank for user %d: %d iterations, %.1f ms\n",
              user, ppr.iterations, ppr.stats.elapsed_ms);

  std::vector<vid_t> accounts(params.num_items);
  for (vid_t i = 0; i < params.num_items; ++i) {
    accounts[i] = params.num_users + i;
  }
  std::sort(accounts.begin(), accounts.end(), [&](vid_t a, vid_t b) {
    return ppr.rank[a] > ppr.rank[b];
  });
  std::printf("accounts user %d should follow (excluding existing):", user);
  const auto following = g.neighbors(user);
  int shown = 0;
  for (const vid_t a : accounts) {
    if (shown == 5) break;
    if (std::binary_search(following.begin(), following.end(), a)) {
      continue;  // already follows
    }
    std::printf(" a%d(%.4f)", a - params.num_users, ppr.rank[a]);
    ++shown;
  }
  std::printf("\n");

  // 2. SALSA: stochastic authority scores.
  const auto salsa = Salsa(g, rg);
  // 3. HITS: raw-sum authority scores.
  const auto hits = Hits(g, rg);
  std::printf("SALSA converged in %d iterations, HITS in %d\n",
              salsa.iterations, hits.iterations);

  std::sort(accounts.begin(), accounts.end(), [&](vid_t a, vid_t b) {
    return salsa.authority[a] > salsa.authority[b];
  });
  std::printf("globally popular accounts (SALSA):");
  for (int i = 0; i < 5; ++i) {
    std::printf(" a%d", accounts[i] - params.num_users);
  }
  std::printf("\nglobally popular accounts (HITS): ");
  auto by_hits = accounts;
  std::sort(by_hits.begin(), by_hits.end(), [&](vid_t a, vid_t b) {
    return hits.authority[a] > hits.authority[b];
  });
  for (int i = 0; i < 5; ++i) {
    std::printf(" a%d", by_hits[i] - params.num_users);
  }
  std::printf("\n(the popular low-rank accounts dominate both: the "
              "generator's preferential skew at work)\n");
  return 0;
}
