// Community structure on a clustered graph: connected components to find
// the communities, k-core decomposition to find each community's dense
// nucleus, and graph coloring to schedule conflict-free updates — three
// different frontier-operator pipelines over one dataset.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

#include "gunrock.hpp"

int main(int argc, char** argv) {
  using namespace gunrock;
  // --quick: tiny inputs for the ctest smoke run (mirrors bench --quick).
  const bool quick =
      argc > 1 && std::string_view(argv[1]) == "--quick";

  graph::PlantedPartitionParams params;
  params.num_clusters = quick ? 4 : 12;
  params.cluster_size = quick ? 128 : 2048;
  params.intra_edges_per_vertex = quick ? 6 : 10;
  params.inter_edges = 0;  // isolated communities: CC finds them exactly
  graph::BuildOptions build;
  build.symmetrize = true;
  const auto g = graph::BuildCsr(
      GeneratePlantedPartition(params, par::ThreadPool::Global()), build);
  std::printf("clustered graph: %d vertices, %lld edges, %d planted "
              "communities\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              params.num_clusters);

  // 1. Connected components (Soman hooking + pointer jumping).
  const auto cc = Cc(g);
  std::printf("\nCC found %d components in %.1f ms (%d hooking rounds)\n",
              cc.num_components, cc.stats.elapsed_ms,
              cc.stats.iterations);
  std::map<vid_t, std::int64_t> sizes;
  for (const auto label : cc.component) ++sizes[label];
  std::printf("component sizes:");
  for (const auto& [label, size] : sizes) {
    std::printf(" %lld", static_cast<long long>(size));
  }
  std::printf("\n");

  // 2. k-core decomposition: how dense is each community's nucleus?
  const auto kcore = KCore(g);
  std::printf("\nk-core: degeneracy %d (%.1f ms, %d peeling rounds)\n",
              kcore.degeneracy, kcore.stats.elapsed_ms,
              kcore.stats.iterations);
  std::vector<std::int64_t> core_hist(
      static_cast<std::size_t>(kcore.degeneracy) + 1, 0);
  for (const auto c : kcore.core) {
    ++core_hist[static_cast<std::size_t>(c)];
  }
  std::printf("core-number histogram:");
  for (std::size_t k = 0; k < core_hist.size(); ++k) {
    if (core_hist[k] > 0) {
      std::printf(" %zu:%lld", k, static_cast<long long>(core_hist[k]));
    }
  }
  std::printf("\n");

  // 3. Coloring: a conflict-free schedule for per-community updates.
  const auto coloring = GraphColoring(g);
  std::printf("\ncoloring: %d colors in %d rounds (%.1f ms)\n",
              coloring.num_colors, coloring.rounds,
              coloring.stats.elapsed_ms);
  // Verify properness on a sample.
  for (vid_t v = 0; v < g.num_vertices(); v += 977) {
    for (const vid_t u : g.neighbors(v)) {
      if (coloring.color[u] == coloring.color[v]) {
        std::printf("IMPROPER COLORING at edge (%d,%d)!\n", v, u);
        return 1;
      }
    }
  }
  std::printf("sampled edges verified conflict-free\n");

  // And the maximal independent set, while we're at it.
  const auto mis = MaximalIndependentSet(g);
  std::printf("\nMIS: %d of %d vertices (%d rounds)\n", mis.set_size,
              g.num_vertices(), mis.rounds);
  return 0;
}
