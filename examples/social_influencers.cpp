// Social-network analytics: find influencers in a scale-free graph by
// betweenness centrality and PageRank, then compare the two rankings —
// the workload class the paper's introduction motivates ("relationships
// between people (social networks)").
#include <algorithm>
#include <cstdio>
#include <vector>

#include "gunrock.hpp"

namespace {

std::vector<gunrock::vid_t> TopK(const std::vector<double>& score, int k) {
  std::vector<gunrock::vid_t> ids(score.size());
  for (std::size_t v = 0; v < score.size(); ++v) {
    ids[v] = static_cast<gunrock::vid_t>(v);
  }
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](auto a, auto b) { return score[a] > score[b]; });
  ids.resize(k);
  return ids;
}

}  // namespace

int main() {
  using namespace gunrock;

  // A social-style R-MAT graph (soc-orkut class from Table 1).
  graph::RmatParams params;
  params.scale = 14;
  params.edge_factor = 16;
  params.a = 0.50;
  params.b = 0.23;
  params.c = 0.23;
  graph::BuildOptions build;
  build.symmetrize = true;
  const auto g = graph::BuildCsr(
      GenerateRmat(params, par::ThreadPool::Global()), build);
  std::printf("social graph: %d members, %lld ties\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  // Approximate BC by sampling sources (exact BC needs all |V| sources;
  // sampling is what large-scale studies and the GPU comparators do).
  std::vector<vid_t> sources;
  for (vid_t s = 0; s < g.num_vertices(); s += g.num_vertices() / 32) {
    sources.push_back(s);
  }
  const auto bc = BcMultiSource(g, sources);
  std::printf("BC (%zu sampled sources): %.1f ms, %.0f MTEPS\n",
              sources.size(), bc.stats.elapsed_ms, bc.stats.Mteps());

  PagerankOptions pr_opts;
  pr_opts.pull = true;  // gather-reduce mode; the graph is symmetric
  const auto pr = Pagerank(g, pr_opts);
  std::printf("PageRank: %d iterations, %.1f ms\n", pr.iterations,
              pr.stats.elapsed_ms);

  const auto top_bc = TopK(bc.bc, 10);
  const auto top_pr = TopK(pr.rank, 10);
  std::printf("\n%-6s %-22s %-22s\n", "rank", "by betweenness",
              "by pagerank");
  for (int i = 0; i < 10; ++i) {
    std::printf("%-6d v%-6d bc=%-12.1f v%-6d pr=%-10.6f\n", i + 1,
                top_bc[i], bc.bc[top_bc[i]], top_pr[i],
                pr.rank[top_pr[i]]);
  }

  // Overlap between the two notions of influence.
  int overlap = 0;
  for (const auto a : top_bc) {
    for (const auto b : top_pr) {
      if (a == b) ++overlap;
    }
  }
  std::printf("\ntop-10 overlap between the two rankings: %d/10\n",
              overlap);
  return 0;
}
