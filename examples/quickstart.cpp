// Quickstart: generate a graph, run BFS, inspect the result.
//
//   $ ./quickstart [path/to/graph.mtx]
//
// Without an argument, a scale-14 R-MAT graph is generated; with one, the
// Matrix Market file is loaded instead.
#include <cstdio>

#include "gunrock.hpp"

int main(int argc, char** argv) {
  using namespace gunrock;

  // 1. Get a graph: load Matrix Market or generate R-MAT.
  graph::Coo coo;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    coo = graph::ReadMarketFile(argv[1]);
  } else {
    graph::RmatParams params;
    params.scale = 14;
    params.edge_factor = 16;
    coo = GenerateRmat(params, par::ThreadPool::Global());
  }

  // 2. Build a CSR. The paper's datasets are undirected, so symmetrize.
  graph::BuildOptions build;
  build.symmetrize = true;
  const graph::Csr g = graph::BuildCsr(coo, build);
  std::printf("graph: %d vertices, %lld edges, mean degree %.1f\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.average_degree());

  // 3. Run BFS from the busiest vertex with all the paper's optimizations
  //    on: idempotent advance, hybrid load balancing, direction-optimized
  //    traversal.
  vid_t source = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(source)) source = v;
  }
  BfsOptions opts;
  opts.direction = core::Direction::kOptimizing;
  const BfsResult r = Bfs(g, source, opts);

  // 4. Inspect the result.
  std::int64_t reached = 0;
  std::int32_t max_depth = 0;
  for (const auto d : r.depth) {
    if (d >= 0) {
      ++reached;
      max_depth = std::max(max_depth, d);
    }
  }
  std::printf("bfs from %d: reached %lld vertices, eccentricity %d\n",
              source, static_cast<long long>(reached), max_depth);
  std::printf("traversed %lld edges in %.2f ms (%.0f MTEPS), "
              "%d iterations, lane efficiency %.1f%%\n",
              static_cast<long long>(r.stats.edges_visited),
              r.stats.elapsed_ms, r.stats.Mteps(), r.stats.iterations,
              r.stats.lane_efficiency * 100.0);

  std::printf("depth histogram:");
  std::vector<std::int64_t> by_depth(
      static_cast<std::size_t>(max_depth) + 1, 0);
  for (const auto d : r.depth) {
    if (d >= 0) ++by_depth[static_cast<std::size_t>(d)];
  }
  for (std::size_t d = 0; d < by_depth.size(); ++d) {
    std::printf(" %zu:%lld", d, static_cast<long long>(by_depth[d]));
  }
  std::printf("\n");
  return 0;
}
