// gunrockd — the Gunrock serving daemon.
//
// Long-lived TCP server over the QueryEngine: newline-delimited JSON
// requests in, finish-order streamed responses out (see
// src/serve/protocol.hpp for the wire grammar and src/serve/daemon.hpp
// for the thread shape and drain semantics). This file is only flag
// parsing and signal plumbing.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/config.hpp"
#include "serve/daemon.hpp"

namespace {

using gunrock::serve::ApplyDirective;
using gunrock::serve::Daemon;
using gunrock::serve::DaemonConfig;
using gunrock::serve::LoadConfigFile;

[[noreturn]] void Usage(int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "gunrockd — Gunrock graph-analytics serving daemon\n"
      "\n"
      "usage: gunrockd [--config FILE] [flags]\n"
      "\n"
      "flags (each mirrors a `key = value` config directive; flags are\n"
      "applied after the file, so they win):\n"
      "  --config FILE        read directives from FILE first\n"
      "  --host ADDR          listen address        (default 127.0.0.1)\n"
      "  --port N             listen port; 0 = ephemeral (default 0)\n"
      "  --port-file PATH     write the bound port to PATH once listening\n"
      "  --pid-file PATH      write the daemon pid to PATH once listening;\n"
      "                       removed again on clean SIGTERM exit\n"
      "  --graph SPEC         serve a graph; repeatable. SPEC is\n"
      "                       NAME=KIND:params, e.g.\n"
      "                         social=rmat:scale=12,edge_factor=16,weight=2\n"
      "                         mesh=road:width=256,height=256,quota=8\n"
      "                         web=file:/data/web.mtx,dynamic=on\n"
      "                       (weight = fair-share weight, quota = max\n"
      "                       in-flight queries, dynamic=on enables the\n"
      "                       add_edges/remove_edges/commit mutation ops;\n"
      "                       other keys go to the rmat/rgg/road generator\n"
      "                       or name the file)\n"
      "  --inflight N         concurrent queries / runner threads (default 4)\n"
      "  --queue N            admission queue capacity       (default 64)\n"
      "  --reject             reject when full instead of blocking\n"
      "  --coalescing on|off  multi-source wave coalescing   (default on)\n"
      "  --deadline MS        default per-query deadline; 0 = none\n"
      "  --drain-deadline MS  graceful-drain budget on SIGTERM\n"
      "                       (default 5000)\n"
      "\n"
      "health/admin port (separate from the serving port):\n"
      "  --admin-port N       liveness/readiness/stats/admin listener;\n"
      "                       0 = ephemeral, off = disabled (default off).\n"
      "                       Paths: /livez /readyz /stats /reopen-logs,\n"
      "                       each also as \"GET <path>\" for curl\n"
      "  --admin-port-file P  write the bound admin port to P\n"
      "\n"
      "slow-client defenses and overload shedding:\n"
      "  --max-line N         request-line byte cap     (default 4194304)\n"
      "  --read-deadline MS   a begun request line must complete within\n"
      "                       MS or the connection is evicted; 0 = off\n"
      "                       (default 30000)\n"
      "  --idle-timeout MS    max quiet time between requests; 0 = off\n"
      "  --write-deadline MS  a response write must land within MS or the\n"
      "                       connection is evicted; 0 = off (default 30000)\n"
      "  --max-connections N  shed connects over N with a retryable error;\n"
      "                       0 = unlimited\n"
      "  --shed-queue-depth N shed queries once the admission queue is N\n"
      "                       deep; 0 = off\n"
      "  --write-queue-max N  per-connection undelivered-response cap\n"
      "                       (default 256)\n"
      "  --sndbuf BYTES       SO_SNDBUF for accepted sockets; 0 = kernel\n"
      "\n"
      "structured event log:\n"
      "  --log-file PATH      event log destination (default stderr)\n"
      "  --log-max-bytes N    rotate the log once it exceeds N bytes;\n"
      "                       0 = no rotation\n"
      "  --log-keep K         rotated generations kept (default 1)\n"
      "  --help               this text\n"
      "\n"
      "protocol: one JSON request per line, one JSON response per line,\n"
      "responses in finish order with the request's \"tag\" echoed back:\n"
      "  {\"op\":\"query\",\"graph\":\"social\",\"kind\":\"bfs\","
      "\"source\":3,\"tag\":1}\n"
      "  {\"op\":\"ping\"} | {\"op\":\"stats\"} | {\"op\":\"graphs\"}\n"
      "  /stats               plain-text stats page (also \"GET /stats\")\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight\n"
      "queries within the drain deadline, exit 0.\n");
  std::exit(exit_code);
}

[[noreturn]] void Fail(const std::string& why) {
  std::fprintf(stderr, "gunrockd: %s\n", why.c_str());
  std::exit(1);
}

DaemonConfig ParseArgs(int argc, char** argv) {
  // First pass: --config only, so flags override the file regardless of
  // their relative order on the command line.
  std::vector<std::string> args(argv + 1, argv + argc);
  DaemonConfig config;
  std::string error;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--help" || args[i] == "-h") Usage(0);
    if (args[i] == "--config") {
      if (i + 1 >= args.size()) Fail("--config needs a file argument");
      if (!LoadConfigFile(args[++i], &config, &error)) Fail(error);
    }
  }

  const auto apply = [&](const std::string& key, const std::string& value) {
    if (!ApplyDirective(key, value, &config, &error)) Fail(error);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        Fail(flag + " needs an argument (see --help)");
      }
      return args[++i];
    };
    if (flag == "--config") {
      ++i;  // consumed in the first pass
    } else if (flag == "--host") {
      apply("host", next());
    } else if (flag == "--port") {
      apply("port", next());
    } else if (flag == "--port-file") {
      apply("port_file", next());
    } else if (flag == "--pid-file") {
      apply("pid_file", next());
    } else if (flag == "--graph") {
      apply("graph", next());
    } else if (flag == "--inflight") {
      apply("inflight", next());
    } else if (flag == "--queue") {
      apply("queue", next());
    } else if (flag == "--reject") {
      apply("backpressure", "reject");
    } else if (flag == "--coalescing") {
      apply("coalescing", next());
    } else if (flag == "--deadline") {
      apply("deadline_ms", next());
    } else if (flag == "--drain-deadline") {
      apply("drain_deadline_ms", next());
    } else if (flag == "--admin-port") {
      apply("admin_port", next());
    } else if (flag == "--admin-port-file") {
      apply("admin_port_file", next());
    } else if (flag == "--max-line") {
      apply("max_line", next());
    } else if (flag == "--read-deadline") {
      apply("read_deadline_ms", next());
    } else if (flag == "--idle-timeout") {
      apply("idle_timeout_ms", next());
    } else if (flag == "--write-deadline") {
      apply("write_deadline_ms", next());
    } else if (flag == "--max-connections") {
      apply("max_connections", next());
    } else if (flag == "--shed-queue-depth") {
      apply("shed_queue_depth", next());
    } else if (flag == "--write-queue-max") {
      apply("write_queue_max", next());
    } else if (flag == "--sndbuf") {
      apply("sndbuf", next());
    } else if (flag == "--log-file") {
      apply("log_file", next());
    } else if (flag == "--log-max-bytes") {
      apply("log_max_bytes", next());
    } else if (flag == "--log-keep") {
      apply("log_keep", next());
    } else {
      Fail("unknown flag '" + flag + "' (see --help)");
    }
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig config = ParseArgs(argc, argv);
  if (config.graphs.empty()) {
    Fail("no graphs configured — pass at least one --graph SPEC "
         "(see --help)");
  }

  // Block the shutdown signals before any thread exists so they are
  // delivered to sigwait below, never to a library thread.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  Daemon daemon(std::move(config));
  std::string error;
  if (!daemon.Start(&error)) Fail(error);
  std::printf("gunrockd listening on %s:%d\n", daemon.config().host.c_str(),
              daemon.port());
  std::fflush(stdout);

  int signal = 0;
  sigwait(&signals, &signal);
  std::fprintf(stderr, "gunrockd: received %s, draining\n",
               signal == SIGTERM ? "SIGTERM" : "SIGINT");
  daemon.Stop();
  return 0;
}
