// Command-line driver: run any primitive on a generated or Matrix Market
// graph — the role of the per-primitive executables in the paper's
// artifact (Appendix A).
//
//   gunrock_cli <primitive> [options]
//     primitive:  bfs | sssp | bc | cc | pagerank | mst | hits | salsa |
//                 ppr | color | mis | kcore | stats
//   engine modes (QueryEngine-backed serving):
//     batch   run a source list through QueryEngine::SubmitAll and report
//             per-query latency plus aggregate throughput
//     serve   read "<primitive> [source]" commands from stdin, submit each
//             asynchronously, report responses
//   dynamic-graph mode:
//     mutate  replay a streaming edge file (--updates FILE) against a
//             DynamicGraph while incrementally maintaining one primitive
//             (--primitive bfs|sssp|cc); each `commit` line (or every
//             --batch N updates) publishes a snapshot and repairs the
//             labels, and the final state is verified bit-identical to a
//             from-scratch run (mismatch = exit 1). File grammar, one
//             line each: `add u v [w]`, `del u v`, `commit`, bare
//             `u v [w]` (= add), `#` comments.
//   options:
//     --graph  rmat|rgg|road|<file.mtx>   input (default rmat)
//     --scale  N        generator scale (default 14)
//     --edge-factor N   R-MAT edge factor (default 16)
//     --src    V        source vertex (default: max degree)
//     --lb     tm|twc|lb|auto             load-balance strategy
//     --direction push|pull|do            BFS traversal direction
//     --no-idempotence                    BFS: atomic advance
//     --no-near-far                       SSSP: plain frontier
//     --iters  N        iteration cap for ranking primitives
//     --json                              machine-readable summary line
//   batch/serve options:
//     --primitive bfs|sssp|bc|cc|pagerank|mst|triangles|lp|hits|salsa|ppr
//                       query kind (default bfs)
//     --sources FILE    batch: whitespace-separated source ids ('#'
//                       starts a comment); required
//     --inflight K      concurrent queries / workspace leases (default 4)
//     --queue N         admission-queue capacity (default 64)
//     --reject          reject on a full queue/quota instead of blocking
//     --deadline MS     per-query latency budget (default: none)
//     --quota K         per-graph in-flight quota (default: unlimited)
//     --stream          batch: drain completions in finish order through
//                       SubmitAll(..., kStream) instead of Wait-in-order
//     --coalesce on|off batch: merge compatible queued BFS/PPR queries
//                       into multi-source waves (default on; coalesced
//                       batch BFS runs depth-only so waves stay
//                       bit-identical to solo runs, while off preserves
//                       the classic per-query request, predecessors
//                       included). The summary reports achieved wave
//                       sizes and wave throughput.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "gunrock.hpp"
#include "util/parse.hpp"

namespace {

using namespace gunrock;

struct Args {
  std::string primitive;
  std::string graph = "rmat";
  int scale = 14;
  int edge_factor = 16;
  vid_t source = -1;
  core::LoadBalance lb = core::LoadBalance::kAuto;
  core::Direction direction = core::Direction::kOptimizing;
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
  bool idempotence = true;
  bool near_far = true;
  int iters = 50;
  bool json = false;
  // engine (batch/serve) mode
  std::string engine_primitive = "bfs";
  std::string sources_path;
  unsigned inflight = 4;
  std::size_t queue_capacity = 64;
  bool reject = false;
  double deadline_ms = 0.0;
  std::size_t quota = 0;
  bool stream = false;
  bool coalesce = true;
  /// Bounded retry for queries refused at admission (status "rejected",
  /// the retryable error class): resubmit up to this many times with
  /// exponential backoff + jitter. 0 = fail fast.
  int retries = 3;
  double retry_base_ms = 50.0;  ///< first backoff step
  // mutate mode
  std::string updates_path;
  std::size_t mutate_batch = 0;  ///< auto-commit every N updates; 0 = off
  // matrix mode
  std::string targets_path;
  unsigned wave = 0;  ///< lanes per wave; 0 = let the engine pick
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: gunrock_cli <bfs|sssp|bc|cc|pagerank|mst|hits|"
               "salsa|ppr|color|mis|kcore|stats> [--graph rmat|rgg|road|"
               "file.mtx] [--scale N] [--edge-factor N] [--src V] "
               "[--lb tm|twc|lb|auto] [--direction push|pull|do] "
               "[--backend frontier|spmv|auto] "
               "[--no-idempotence] [--no-near-far] [--iters N] [--json]\n"
               "       gunrock_cli batch --sources FILE [--primitive "
               "bfs|sssp|bc|cc|pagerank|mst|triangles|lp|hits|salsa|ppr] "
               "[--inflight K] [--queue N] [--reject] [--deadline MS] "
               "[--quota K] [--stream] [--coalesce on|off] "
               "[--retries N] [--retry-base MS] "
               "[graph options] [--json]\n"
               "       gunrock_cli serve [--primitive ...] [--inflight K] "
               "[graph options]   (reads \"<primitive> [source]\" lines "
               "from stdin)\n"
               "       gunrock_cli matrix --sources FILE [--targets FILE] "
               "[--backend frontier|spmv|auto] [--wave N] [--deadline MS] "
               "[graph options] [--json]   (N-source x M-target SSSP "
               "distance table through the query engine; targets default "
               "to every vertex)\n"
               "       gunrock_cli mutate --updates FILE [--primitive "
               "bfs|sssp|cc] [--batch N] [--src V] [graph options] "
               "[--json]   (replays `add u v [w]` / `del u v` / `commit` "
               "lines, maintains the primitive incrementally, verifies "
               "against from-scratch)\n");
  std::exit(2);
}

/// Checked flag values: the whole token must be a number in range —
/// std::atoi's "--scale banana" == 0 silently benchmarking a 1-vertex
/// graph is exactly the bug class this rules out. Errors name the flag
/// and the offending value and exit nonzero.
long long FlagInt(const std::string& flag, const std::string& value,
                  long long min, long long max) {
  const auto parsed = util::ParseInt(value, min, max);
  if (!parsed) {
    std::fprintf(stderr,
                 "gunrock_cli: %s needs an integer in [%lld, %lld], "
                 "got '%s'\n",
                 flag.c_str(), min, max, value.c_str());
    std::exit(2);
  }
  return *parsed;
}

double FlagDouble(const std::string& flag, const std::string& value,
                  double min) {
  const auto parsed = util::ParseDouble(value);
  if (!parsed || !(*parsed >= min)) {
    std::fprintf(stderr,
                 "gunrock_cli: %s needs a number >= %g, got '%s'\n",
                 flag.c_str(), min, value.c_str());
    std::exit(2);
  }
  return *parsed;
}

Args Parse(int argc, char** argv) {
  if (argc < 2) Usage();
  Args args;
  args.primitive = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--graph") {
      args.graph = next();
    } else if (flag == "--scale") {
      args.scale = static_cast<int>(FlagInt(flag, next(), 1, 28));
    } else if (flag == "--edge-factor") {
      args.edge_factor = static_cast<int>(FlagInt(flag, next(), 1, 1024));
    } else if (flag == "--src") {
      args.source = static_cast<vid_t>(
          FlagInt(flag, next(), 0, std::numeric_limits<vid_t>::max()));
    } else if (flag == "--lb") {
      const std::string v = next();
      if (v == "tm") {
        args.lb = core::LoadBalance::kThreadMapped;
      } else if (v == "twc") {
        args.lb = core::LoadBalance::kTwc;
      } else if (v == "lb") {
        args.lb = core::LoadBalance::kEqualWork;
      } else if (v == "auto") {
        args.lb = core::LoadBalance::kAuto;
      } else {
        std::fprintf(stderr,
                     "gunrock_cli: --lb must be tm|twc|lb|auto, got '%s'\n",
                     v.c_str());
        std::exit(2);
      }
    } else if (flag == "--direction") {
      const std::string v = next();
      if (v == "push") {
        args.direction = core::Direction::kPush;
      } else if (v == "pull") {
        args.direction = core::Direction::kPull;
      } else if (v == "do") {
        args.direction = core::Direction::kOptimizing;
      } else {
        std::fprintf(
            stderr,
            "gunrock_cli: --direction must be push|pull|do, got '%s'\n",
            v.c_str());
        std::exit(2);
      }
    } else if (flag == "--backend") {
      const std::string v = next();
      if (v == "frontier") {
        args.backend = core::SpmvBackend::kFrontier;
      } else if (v == "spmv") {
        args.backend = core::SpmvBackend::kSpmv;
      } else if (v == "auto") {
        args.backend = core::SpmvBackend::kAuto;
      } else {
        std::fprintf(
            stderr,
            "gunrock_cli: --backend must be frontier|spmv|auto, got '%s'\n",
            v.c_str());
        std::exit(2);
      }
    } else if (flag == "--no-idempotence") {
      args.idempotence = false;
    } else if (flag == "--no-near-far") {
      args.near_far = false;
    } else if (flag == "--iters") {
      args.iters = static_cast<int>(
          FlagInt(flag, next(), 1, std::numeric_limits<int>::max()));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--primitive") {
      args.engine_primitive = next();
    } else if (flag == "--sources") {
      args.sources_path = next();
    } else if (flag == "--targets") {
      args.targets_path = next();
    } else if (flag == "--wave") {
      args.wave = static_cast<unsigned>(
          FlagInt(flag, next(), 1, kMaxBatchLanes));
    } else if (flag == "--updates") {
      args.updates_path = next();
    } else if (flag == "--batch") {
      args.mutate_batch =
          static_cast<std::size_t>(FlagInt(flag, next(), 1, 1 << 30));
    } else if (flag == "--inflight") {
      args.inflight = static_cast<unsigned>(FlagInt(flag, next(), 1, 4096));
    } else if (flag == "--queue") {
      args.queue_capacity =
          static_cast<std::size_t>(FlagInt(flag, next(), 1, 1 << 20));
    } else if (flag == "--reject") {
      args.reject = true;
    } else if (flag == "--deadline") {
      args.deadline_ms = FlagDouble(flag, next(), 0.0);
    } else if (flag == "--quota") {
      args.quota = static_cast<std::size_t>(FlagInt(flag, next(), 0, 1 << 20));
    } else if (flag == "--retries") {
      args.retries = static_cast<int>(FlagInt(flag, next(), 0, 16));
    } else if (flag == "--retry-base") {
      args.retry_base_ms = FlagDouble(flag, next(), 0.0);
    } else if (flag == "--stream") {
      args.stream = true;
    } else if (flag == "--coalesce") {
      const std::string v = next();
      if (v != "on" && v != "off") Usage();
      args.coalesce = v == "on";
    } else {
      Usage();
    }
  }
  return args;
}

graph::Csr LoadGraph(const Args& args) {
  auto& pool = par::ThreadPool::Global();
  graph::Coo coo;
  if (args.graph == "rmat") {
    graph::RmatParams p;
    p.scale = args.scale;
    p.edge_factor = args.edge_factor;
    coo = GenerateRmat(p, pool);
  } else if (args.graph == "rgg") {
    graph::RggParams p;
    p.scale = args.scale;
    coo = GenerateRgg(p, pool);
  } else if (args.graph == "road") {
    graph::RoadParams p;
    p.width = 1 << (args.scale / 2);
    p.height = 1 << (args.scale - args.scale / 2);
    coo = GenerateRoad(p, pool);
  } else {
    coo = graph::ReadMarketFile(args.graph);
  }
  if (!coo.has_weights()) graph::AttachRandomWeights(coo, 1, 64);
  graph::BuildOptions build;
  build.symmetrize = true;
  return graph::BuildCsr(coo, build);
}

void Report(const Args& args, const graph::Csr& g, const char* primitive,
            double ms, eid_t edges, int iterations, double extra = 0.0,
            const char* extra_name = nullptr) {
  const double mteps = ms > 0 ? static_cast<double>(edges) / (ms * 1000.0)
                              : 0.0;
  if (args.json) {
    std::printf("{\"primitive\":\"%s\",\"vertices\":%d,\"edges\":%lld,"
                "\"ms\":%.3f,\"mteps\":%.1f,\"iterations\":%d",
                primitive, g.num_vertices(),
                static_cast<long long>(g.num_edges()), ms, mteps,
                iterations);
    if (extra_name) std::printf(",\"%s\":%.6f", extra_name, extra);
    std::printf("}\n");
  } else {
    std::printf("%s: |V|=%d |E|=%lld  %.2f ms", primitive,
                g.num_vertices(), static_cast<long long>(g.num_edges()),
                ms);
    if (edges > 0) std::printf("  %.1f MTEPS", mteps);
    if (iterations > 0) std::printf("  %d iterations", iterations);
    if (extra_name) std::printf("  %s=%.6g", extra_name, extra);
    std::printf("\n");
  }
}

// --- QueryEngine-backed serving modes ---------------------------------------

/// Builds an engine request for one of the servable primitives.
engine::QueryRequest MakeRequest(const Args& args, const std::string& kind,
                                 vid_t source) {
  if (kind == "bfs") {
    engine::BfsQuery q;
    q.source = source;
    q.opts.load_balance = args.lb;
    q.opts.direction = args.direction;
    q.opts.idempotent = args.idempotence;
    return q;
  }
  if (kind == "sssp") {
    engine::SsspQuery q;
    q.source = source;
    q.opts.load_balance = args.lb;
    q.opts.use_near_far = args.near_far;
    return q;
  }
  if (kind == "bc") {
    engine::BcQuery q;
    q.source = source;
    q.opts.load_balance = args.lb;
    return q;
  }
  if (kind == "cc") return engine::CcQuery{};
  if (kind == "pagerank") {
    engine::PagerankQuery q;
    q.opts.load_balance = args.lb;
    q.opts.pull = true;
    q.opts.max_iterations = args.iters;
    q.opts.backend = args.backend;
    return q;
  }
  if (kind == "mst") return engine::MstQuery{};
  if (kind == "triangles") return engine::TrianglesQuery{};
  if (kind == "lp") {
    engine::LabelPropagationQuery q;
    q.opts.max_iterations = args.iters;
    return q;
  }
  if (kind == "hits") {
    engine::HitsQuery q;
    q.opts.max_iterations = args.iters;
    q.opts.backend = args.backend;
    return q;
  }
  if (kind == "salsa") {
    engine::SalsaQuery q;
    q.opts.max_iterations = args.iters;
    q.opts.backend = args.backend;
    return q;
  }
  if (kind == "ppr") {
    engine::PprQuery q;
    q.seeds.assign(1, source);
    q.opts.max_iterations = args.iters;
    q.opts.backend = args.backend;
    return q;
  }
  std::fprintf(stderr, "unknown engine primitive '%s'\n", kind.c_str());
  Usage();
}

engine::QueryEngine MakeEngine(const Args& args) {
  engine::QueryEngineOptions eopts;
  eopts.max_in_flight = args.inflight > 0 ? args.inflight : 1;
  eopts.queue_capacity = args.queue_capacity > 0 ? args.queue_capacity : 1;
  eopts.backpressure =
      args.reject ? engine::QueryEngineOptions::Backpressure::kReject
                  : engine::QueryEngineOptions::Backpressure::kBlock;
  eopts.coalescing = args.coalesce;
  return engine::QueryEngine(eopts);
}

std::vector<vid_t> ReadSourceFile(const std::string& path, vid_t n) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read source list %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<vid_t> sources;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string token;
    while (fields >> token) {
      const auto v = util::ParseInt(token);
      if (!v) {
        std::fprintf(stderr, "%s: source '%s' is not an integer\n",
                     path.c_str(), token.c_str());
        std::exit(1);
      }
      if (*v < 0 || *v >= n) {
        std::fprintf(stderr, "%s: source %lld out of range [0, %d)\n",
                     path.c_str(), *v, n);
        std::exit(1);
      }
      sources.push_back(static_cast<vid_t>(*v));
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "source list %s holds no sources\n", path.c_str());
    std::exit(1);
  }
  return sources;
}

/// `matrix`: one N-source x M-target SSSP distance table through the
/// engine's MatrixQuery — wave formation, backend policy and epoch
/// pinning all come from the same path gunrockd serves.
int RunMatrixMode(const Args& args, graph::Csr graph) {
  if (args.sources_path.empty()) {
    std::fprintf(stderr, "matrix mode needs --sources FILE\n");
    Usage();
  }
  const vid_t n = graph.num_vertices();
  engine::MatrixQuery q;
  q.sources = ReadSourceFile(args.sources_path, n);
  if (!args.targets_path.empty()) {
    q.targets = ReadSourceFile(args.targets_path, n);
  }
  q.opts.load_balance = args.lb;
  q.opts.backend = args.backend == core::SpmvBackend::kFrontier
                       ? MatrixBackend::kFrontier
                   : args.backend == core::SpmvBackend::kSpmv
                       ? MatrixBackend::kSpmv
                       : MatrixBackend::kAuto;
  q.wave = args.wave;

  auto engine = MakeEngine(args);
  engine::GraphOptions gopts;
  gopts.quota = args.quota;
  engine.RegisterGraph("g", std::move(graph), gopts);
  engine::SubmitOptions sopts;
  sopts.deadline_ms = args.deadline_ms;

  WallTimer wall;
  const engine::QueryResponse resp = engine.Submit("g", q, sopts).Wait();
  const double wall_ms = wall.ElapsedMs();
  if (resp.status != engine::QueryStatus::kDone) {
    std::fprintf(stderr, "matrix: %s%s%s\n", engine::ToString(resp.status),
                 resp.error.empty() ? "" : ": ", resp.error.c_str());
    return 1;
  }
  const auto& r = std::get<engine::MatrixResult>(resp.result);
  std::size_t reachable = 0;
  for (const weight_t d : r.table) reachable += d != kInfinity;
  if (args.json) {
    std::printf("{\"mode\":\"matrix\",\"num_sources\":%zu,"
                "\"num_targets\":%zu,\"waves\":%llu,\"reachable\":%zu,"
                "\"cells\":%zu,\"wall_ms\":%.3f}\n",
                r.num_sources, r.num_targets,
                static_cast<unsigned long long>(r.waves), reachable,
                r.table.size(), wall_ms);
  } else {
    std::printf("matrix: %zu x %zu table in %llu wave%s, %.2f ms "
                "(%zu/%zu cells reachable)\n",
                r.num_sources, r.num_targets,
                static_cast<unsigned long long>(r.waves),
                r.waves == 1 ? "" : "s", wall_ms, reachable,
                r.table.size());
    // Small tables print whole; big ones would just scroll.
    if (r.num_sources <= 16 && r.num_targets <= 16) {
      for (std::size_t i = 0; i < r.num_sources; ++i) {
        std::printf("  src %-8d", q.sources[i]);
        for (std::size_t j = 0; j < r.num_targets; ++j) {
          const weight_t d = r.table[i * r.num_targets + j];
          if (d == kInfinity) {
            std::printf("      inf");
          } else {
            std::printf(" %8.2f", static_cast<double>(d));
          }
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

/// Backoff before retry attempt k (0-based): retry_base * 2^k, jittered
/// down to [0.5, 1.0]x so a herd of rejected clients cannot
/// resynchronize on the same instant.
double RetryBackoffMs(const Args& args, int attempt, std::mt19937_64& rng) {
  const int step = attempt > 20 ? 20 : attempt;
  const double full = args.retry_base_ms * static_cast<double>(1ULL << step);
  std::uniform_real_distribution<double> jitter(0.5 * full, full);
  return jitter(rng);
}

/// `batch`: SubmitAll over a source-list file; per-query latency and
/// aggregate throughput.
int RunBatch(const Args& args, graph::Csr graph) {
  if (args.sources_path.empty()) {
    std::fprintf(stderr, "batch mode needs --sources FILE\n");
    Usage();
  }
  const auto sources = ReadSourceFile(args.sources_path,
                                      graph.num_vertices());
  auto engine = MakeEngine(args);
  engine::GraphOptions gopts;
  gopts.quota = args.quota;
  engine.RegisterGraph("g", std::move(graph), gopts);

  engine::SubmitOptions sopts;
  sopts.deadline_ms = args.deadline_ms;
  auto proto = MakeRequest(args, args.engine_primitive, 0);
  if (args.coalesce) {
    if (auto* bfs = std::get_if<engine::BfsQuery>(&proto)) {
      // Coalesced batch serving returns depths, not parent trees — the
      // shape the coalescing pass can merge into bit-identical
      // multi-source waves. With --coalesce off the classic per-query
      // request (predecessors included) is preserved, so off-mode stays
      // an apples-to-apples baseline against earlier releases.
      bfs->opts.compute_preds = false;
    }
  }

  WallTimer wall;
  std::size_t done = 0;
  std::size_t total = sources.size();
  // Queries refused at admission (the retryable class, only possible
  // under --reject backpressure) — resubmitted with backoff below.
  std::vector<std::size_t> rejected;
  // One response accounted (and reported) per completed query; shared by
  // both drain orders below.
  const auto consume = [&](std::size_t index,
                           const engine::QueryResponse& resp) {
    if (resp.status == engine::QueryStatus::kDone) ++done;
    if (resp.status == engine::QueryStatus::kRejected) {
      rejected.push_back(index);
    }
    if (!args.json) {
      std::printf("query %-4zu %-8s src=%-8d status=%-18s "
                  "queue=%8.3f ms  run=%8.3f ms  total=%8.3f ms\n",
                  index, args.engine_primitive.c_str(), sources[index],
                  engine::ToString(resp.status), resp.queue_ms,
                  resp.run_ms, resp.total_ms);
    }
  };
  if (args.stream) {
    // Finish-order drain: each line prints as its query completes, so a
    // slow query never blocks the reporting of fast ones behind it.
    auto stream =
        engine.SubmitAll("g", sources, proto, sopts, engine::kStream);
    total = stream.size();
    while (auto c = stream.Next()) {
      consume(c->index, c->handle.Wait());
    }
  } else {
    auto handles = engine.SubmitAll("g", sources, proto, sopts);
    for (std::size_t i = 0; i < handles.size(); ++i) {
      consume(i, handles[i].Wait());
    }
  }

  // Bounded retry with exponential backoff + jitter for the rejected
  // class: under --reject a transient burst past queue/quota capacity is
  // recoverable load, not a failed query.
  std::size_t retried = 0;
  std::size_t recovered = 0;
  if (args.retries > 0 && !rejected.empty()) {
    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
    const auto request_for = [&](vid_t src) {
      auto request = MakeRequest(args, args.engine_primitive, src);
      if (args.coalesce) {
        if (auto* bfs = std::get_if<engine::BfsQuery>(&request)) {
          bfs->opts.compute_preds = false;  // match the batch prototype
        }
      }
      return request;
    };
    for (int attempt = 0; attempt < args.retries && !rejected.empty();
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          RetryBackoffMs(args, attempt, rng)));
      std::vector<std::size_t> again = std::move(rejected);
      rejected.clear();
      retried += again.size();
      std::vector<std::pair<std::size_t, engine::QueryHandle>> handles;
      handles.reserve(again.size());
      for (std::size_t index : again) {
        handles.emplace_back(
            index, engine.Submit("g", request_for(sources[index]), sopts));
      }
      for (auto& [index, handle] : handles) {
        const engine::QueryResponse& resp = handle.Wait();
        const std::size_t done_before = done;
        consume(index, resp);
        recovered += done - done_before;
      }
    }
  }

  const double wall_ms = wall.ElapsedMs();
  const double qps = wall_ms > 0 ? 1000.0 * static_cast<double>(done) /
                                       wall_ms
                                 : 0.0;
  const auto ws = engine.workspace_stats();
  const auto stats = engine.stats();
  const double avg_wave =
      stats.waves > 0 ? static_cast<double>(stats.coalesced) /
                            static_cast<double>(stats.waves)
                      : 0.0;
  // Queries served through waves per second: how much of the throughput
  // the coalescing pass actually carried.
  const double wave_qps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(stats.coalesced) / wall_ms
                  : 0.0;
  if (args.json) {
    std::printf("{\"mode\":\"batch\",\"primitive\":\"%s\",\"queries\":%zu,"
                "\"done\":%zu,\"inflight\":%u,\"wall_ms\":%.3f,"
                "\"qps\":%.1f,\"workspaces_created\":%zu,"
                "\"leases_recycled\":%zu,\"stream\":%s,"
                "\"coalesce\":%s,\"waves\":%llu,\"coalesced\":%llu,"
                "\"avg_wave\":%.2f,\"max_wave\":%llu,"
                "\"wave_qps\":%.1f,\"retried\":%zu,\"recovered\":%zu}\n",
                args.engine_primitive.c_str(), total, done,
                args.inflight, wall_ms, qps, ws.created, ws.recycled,
                args.stream ? "true" : "false",
                args.coalesce ? "true" : "false",
                static_cast<unsigned long long>(stats.waves),
                static_cast<unsigned long long>(stats.coalesced),
                avg_wave,
                static_cast<unsigned long long>(stats.max_wave),
                wave_qps, retried, recovered);
  } else {
    std::printf("batch: %zu/%zu queries done in %.2f ms  (%.1f q/s, "
                "inflight=%u, %zu workspaces created, %zu leases "
                "recycled%s)\n",
                done, total, wall_ms, qps, args.inflight,
                ws.created, ws.recycled,
                args.stream ? ", finish-order stream" : "");
    // Only meaningful when coalescing could have happened: BFS/PPR with
    // the pass enabled. A "0 waves" line for sssp/cc/... would imply
    // merging was attempted for shapes the engine always runs solo.
    if (args.coalesce && (args.engine_primitive == "bfs" ||
                          args.engine_primitive == "ppr")) {
      std::printf("coalescing: %llu waves served %llu/%zu queries "
                  "(avg wave %.1f, max %llu, %.1f wave-q/s)\n",
                  static_cast<unsigned long long>(stats.waves),
                  static_cast<unsigned long long>(stats.coalesced), total,
                  avg_wave,
                  static_cast<unsigned long long>(stats.max_wave),
                  wave_qps);
    }
    if (retried > 0) {
      std::printf("retries: resubmitted %zu rejected queries, %zu "
                  "recovered (backoff base %.0f ms)\n",
                  retried, recovered, args.retry_base_ms);
    }
  }
  return done == total ? 0 : 1;
}

bool IsServablePrimitive(const std::string& kind) {
  return kind == "bfs" || kind == "sssp" || kind == "bc" || kind == "cc" ||
         kind == "pagerank" || kind == "mst" || kind == "triangles" ||
         kind == "lp" || kind == "hits" || kind == "salsa" || kind == "ppr";
}

/// `serve`: stdin-driven submission loop — one "<primitive> [source]"
/// command per line. A reporter thread prints each response as soon as
/// its query completes (in submission order), independent of stdin.
int RunServe(const Args& args, graph::Csr graph) {
  const vid_t n = graph.num_vertices();
  auto engine = MakeEngine(args);
  engine::GraphOptions gopts;
  gopts.quota = args.quota;
  engine.RegisterGraph("g", std::move(graph), gopts);

  engine::SubmitOptions sopts;
  sopts.deadline_ms = args.deadline_ms;
  struct Pending {
    engine::QueryHandle handle;
    std::string desc;
    std::string kind;
    vid_t src = 0;
    int attempt = 0;  ///< resubmissions so far (retryable rejections)
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool input_done = false;

  std::thread reporter([&] {
    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
    for (;;) {
      Pending next;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return input_done || !pending.empty(); });
        if (pending.empty()) return;  // input_done and drained
        next = std::move(pending.front());
        pending.pop_front();
      }
      const auto& resp = next.handle.Wait();
      // Rejected at admission: retryable by contract — back off and
      // resubmit up to --retries times before reporting the failure.
      if (resp.status == engine::QueryStatus::kRejected &&
          next.attempt < args.retries) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            RetryBackoffMs(args, next.attempt, rng)));
        try {
          auto handle = engine.Submit(
              "g", MakeRequest(args, next.kind, next.src), sopts);
          std::printf("[%llu] retry %d/%d %s\n",
                      static_cast<unsigned long long>(handle.id()),
                      next.attempt + 1, args.retries, next.desc.c_str());
          std::fflush(stdout);
          {
            std::lock_guard<std::mutex> lock(mutex);
            pending.push_back({std::move(handle), next.desc, next.kind,
                               next.src, next.attempt + 1});
          }
          continue;
        } catch (const Error& e) {
          std::printf("retry submit failed: %s\n", e.what());
        }
      }
      std::printf("[%llu] %s -> %s  (queue %.3f ms, run %.3f ms)\n",
                  static_cast<unsigned long long>(next.handle.id()),
                  next.desc.c_str(), engine::ToString(resp.status),
                  resp.queue_ms, resp.run_ms);
      std::fflush(stdout);
    }
  });

  std::printf("serve: commands are \"bfs|sssp|bc|cc|pagerank|mst|"
              "triangles|lp|hits|salsa|ppr [source]\" or \"quit\"\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;
    if (kind == "quit" || kind == "exit") break;
    if (!IsServablePrimitive(kind)) {
      // A typo must not take the server (and its in-flight queries) down.
      std::printf("unknown primitive '%s' — expected bfs|sssp|bc|cc|"
                  "pagerank|mst|triangles|lp|hits|salsa|ppr\n",
                  kind.c_str());
      continue;
    }
    // Sourced kinds need a vertex; every malformed command is a
    // per-request error line, never a silently-clamped source 0 (a wrong
    // answer that looks right) and never a dead server.
    const bool needs_source = kind == "bfs" || kind == "sssp" ||
                              kind == "bc" || kind == "ppr";
    std::string source_token, extra_token;
    vid_t src = 0;
    if (fields >> source_token) {
      if (!needs_source) {
        std::printf("error: %s takes no source, got '%s'\n", kind.c_str(),
                    source_token.c_str());
        continue;
      }
      const auto parsed = util::ParseInt(source_token);
      if (!parsed) {
        std::printf("error: source '%s' is not an integer\n",
                    source_token.c_str());
        continue;
      }
      if (*parsed < 0 || *parsed >= n) {
        // The canonical engine text — byte-identical to what a submitted
        // out-of-range query would fail with, solo or in a wave.
        std::printf("error: %s\n",
                    engine::SourceRangeError(kind.c_str(), *parsed, n)
                        .c_str());
        continue;
      }
      if (fields >> extra_token) {
        std::printf("error: trailing garbage '%s' after source\n",
                    extra_token.c_str());
        continue;
      }
      src = static_cast<vid_t>(*parsed);
    } else if (needs_source) {
      std::printf("error: %s needs a source vertex in [0, %d)\n",
                  kind.c_str(), n);
      continue;
    }
    try {
      auto handle = engine.Submit(
          "g", MakeRequest(args, kind, static_cast<vid_t>(src)), sopts);
      std::printf("[%llu] admitted %s\n",
                  static_cast<unsigned long long>(handle.id()),
                  line.c_str());
      {
        std::lock_guard<std::mutex> lock(mutex);
        pending.push_back(
            {std::move(handle), line, kind, static_cast<vid_t>(src), 0});
      }
      cv.notify_one();
    } catch (const Error& e) {
      std::printf("submit failed: %s\n", e.what());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    input_done = true;
  }
  cv.notify_one();
  reporter.join();
  return 0;
}

/// `mutate`: replay a streaming edge file against a DynamicGraph while
/// maintaining one monotone primitive incrementally; verify the final
/// state against from-scratch on the last snapshot.
int RunMutate(const Args& args, graph::Csr graph) {
  if (args.updates_path.empty()) {
    std::fprintf(stderr, "mutate mode needs --updates FILE\n");
    Usage();
  }
  const std::string& kind = args.engine_primitive;
  if (kind != "bfs" && kind != "sssp" && kind != "cc") {
    std::fprintf(stderr,
                 "mutate mode maintains --primitive bfs|sssp|cc, got '%s'\n",
                 kind.c_str());
    std::exit(2);
  }
  const vid_t n = graph.num_vertices();
  vid_t src = args.source;
  if (src < 0 || src >= n) {
    src = 0;
    for (vid_t v = 1; v < n; ++v) {
      if (graph.degree(v) > graph.degree(src)) src = v;
    }
  }

  std::ifstream in(args.updates_path);
  if (!in) {
    std::fprintf(stderr, "cannot read update file %s\n",
                 args.updates_path.c_str());
    std::exit(1);
  }

  dynamic::DynamicGraph dyn(std::move(graph));
  std::optional<dynamic::IncrementalBfs> bfs;
  std::optional<dynamic::IncrementalSssp> sssp;
  std::optional<dynamic::IncrementalCc> cc;
  if (kind == "bfs") {
    bfs.emplace(dyn.Current(), src);
  } else if (kind == "sssp") {
    sssp.emplace(dyn.Current(), src);
  } else {
    cc.emplace(dyn.Current());
  }

  std::size_t applied = 0, ignored = 0, commits = 0;
  double update_ms = 0.0;
  std::size_t pending = 0;
  std::size_t line_no = 0;

  const auto do_commit = [&] {
    if (!dyn.Commit().changed) return;
    ++commits;
    pending = 0;
    WallTimer t;
    if (bfs) {
      bfs->Update(dyn.Current());
    } else if (sssp) {
      sssp->Update(dyn.Current());
    } else {
      cc->Update(dyn.Current());
    }
    update_ms += t.ElapsedMs();
  };
  const auto bad = [&](const std::string& why) {
    std::fprintf(stderr, "%s:%zu: %s\n", args.updates_path.c_str(), line_no,
                 why.c_str());
    std::exit(1);
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;

    if (first == "commit") {
      std::string extra;
      if (fields >> extra) bad("trailing garbage after commit");
      do_commit();
      continue;
    }
    bool removal = false;
    std::string u_tok = first;
    if (first == "add" || first == "del") {
      removal = first == "del";
      if (!(fields >> u_tok)) bad("expected 'add u v [w]' or 'del u v'");
    }
    std::string v_tok;
    if (!(fields >> v_tok)) bad("expected two vertex ids");
    const auto u = util::ParseInt(u_tok, 0, n - 1);
    const auto v = util::ParseInt(v_tok, 0, n - 1);
    if (!u || !v) {
      bad("vertex ids must be integers in [0, " + std::to_string(n) + ")");
    }
    dynamic::EdgeUpdate up;
    up.src = static_cast<vid_t>(*u);
    up.dst = static_cast<vid_t>(*v);
    std::string w_tok;
    if (fields >> w_tok) {
      if (removal) bad("'del' takes no weight");
      const auto w = util::ParseDouble(w_tok);
      if (!w) bad("weight must be a number, got '" + w_tok + "'");
      up.weight = static_cast<weight_t>(*w);
      std::string extra;
      if (fields >> extra) bad("trailing garbage '" + extra + "'");
    }
    try {
      const std::size_t did = removal ? dyn.RemoveEdges({&up, 1})
                                      : dyn.AddEdges({&up, 1});
      applied += did;
      ignored += did == 0 ? 1 : 0;
    } catch (const Error& e) {
      bad(e.what());
    }
    ++pending;
    if (args.mutate_batch > 0 && pending >= args.mutate_batch) do_commit();
  }
  do_commit();  // flush anything left pending at EOF

  // The whole point: the incrementally maintained labels must be
  // bit-identical to a from-scratch run on the final snapshot.
  auto& pool = par::ThreadPool::Global();
  const auto final_view = dyn.Current()->View(pool);
  bool verified = true;
  if (bfs) {
    BfsOptions opts;
    opts.compute_preds = false;
    verified = Bfs(*final_view, src, opts).depth == bfs->depth();
  } else if (sssp) {
    SsspOptions opts;
    opts.compute_preds = false;
    verified = Sssp(*final_view, src, opts).dist == sssp->dist();
  } else {
    const CcResult oracle = Cc(*final_view);
    verified = oracle.component == cc->component() &&
               oracle.num_components == cc->num_components();
  }

  const dynamic::DynamicGraphStats ds = dyn.Stats();
  const dynamic::IncrementalStats is =
      bfs ? bfs->stats() : sssp ? sssp->stats() : cc->stats();
  if (args.json) {
    std::printf(
        "{\"mode\":\"mutate\",\"primitive\":\"%s\",\"applied\":%zu,"
        "\"ignored\":%zu,\"commits\":%zu,\"epoch\":%llu,"
        "\"compactions\":%llu,\"repairs\":%llu,\"full_recomputes\":%llu,"
        "\"update_ms\":%.3f,\"verified\":%s}\n",
        kind.c_str(), applied, ignored, commits,
        static_cast<unsigned long long>(ds.epoch),
        static_cast<unsigned long long>(ds.compactions),
        static_cast<unsigned long long>(is.repairs),
        static_cast<unsigned long long>(is.full_recomputes), update_ms,
        verified ? "true" : "false");
  } else {
    std::printf("mutate: %zu updates applied (%zu ignored) over %zu "
                "commits -> epoch %llu (%llu compactions)\n",
                applied, ignored, commits,
                static_cast<unsigned long long>(ds.epoch),
                static_cast<unsigned long long>(ds.compactions));
    std::printf("incremental %s: %llu repairs, %llu full recomputes, "
                "%.2f ms maintaining; verify vs from-scratch: %s\n",
                kind.c_str(),
                static_cast<unsigned long long>(is.repairs),
                static_cast<unsigned long long>(is.full_recomputes),
                update_ms, verified ? "MATCH" : "MISMATCH");
  }
  return verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  graph::Csr g = LoadGraph(args);
  if (args.primitive == "batch") return RunBatch(args, std::move(g));
  if (args.primitive == "matrix") return RunMatrixMode(args, std::move(g));
  if (args.primitive == "serve") return RunServe(args, std::move(g));
  if (args.primitive == "mutate") return RunMutate(args, std::move(g));
  auto& pool = par::ThreadPool::Global();
  vid_t src = args.source;
  if (src < 0 || src >= g.num_vertices()) {
    src = 0;
    for (vid_t v = 1; v < g.num_vertices(); ++v) {
      if (g.degree(v) > g.degree(src)) src = v;
    }
  }

  const std::string& p = args.primitive;
  if (p == "bfs") {
    BfsOptions opts;
    opts.load_balance = args.lb;
    opts.direction = args.direction;
    opts.idempotent = args.idempotence;
    const auto r = Bfs(g, src, opts);
    Report(args, g, "bfs", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.stats.lane_efficiency, "lane_efficiency");
  } else if (p == "sssp") {
    SsspOptions opts;
    opts.load_balance = args.lb;
    opts.use_near_far = args.near_far;
    const auto r = Sssp(g, src, opts);
    Report(args, g, "sssp", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations);
  } else if (p == "bc") {
    BcOptions opts;
    opts.load_balance = args.lb;
    const auto r = Bc(g, src, opts);
    Report(args, g, "bc", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations);
  } else if (p == "cc") {
    const auto r = Cc(g);
    Report(args, g, "cc", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.num_components, "components");
  } else if (p == "pagerank") {
    PagerankOptions opts;
    opts.load_balance = args.lb;
    opts.pull = true;
    opts.max_iterations = args.iters;
    opts.backend = args.backend;
    const auto r = Pagerank(g, opts);
    Report(args, g, "pagerank", r.stats.elapsed_ms,
           r.stats.edges_visited, r.iterations, r.MsPerIteration(),
           "ms_per_iteration");
  } else if (p == "mst") {
    const auto r = Mst(g);
    Report(args, g, "mst", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.total_weight, "total_weight");
  } else if (p == "hits" || p == "salsa") {
    const auto rg = graph::ReverseCsr(g, pool);
    if (p == "hits") {
      HitsOptions opts;
      opts.max_iterations = args.iters;
      opts.backend = args.backend;
      const auto r = Hits(g, rg, opts);
      Report(args, g, "hits", r.stats.elapsed_ms, r.stats.edges_visited,
             r.iterations);
    } else {
      SalsaOptions opts;
      opts.max_iterations = args.iters;
      opts.backend = args.backend;
      const auto r = Salsa(g, rg, opts);
      Report(args, g, "salsa", r.stats.elapsed_ms, r.stats.edges_visited,
             r.iterations);
    }
  } else if (p == "ppr") {
    const vid_t seeds[] = {src};
    PprOptions opts;
    opts.max_iterations = args.iters;
    opts.backend = args.backend;
    graph::Csr rg;
    if (opts.backend == core::SpmvBackend::kSpmv) {
      rg = graph::ReverseCsr(g, pool);
      opts.reverse = &rg;
    }
    const auto r = PersonalizedPagerank(g, seeds, opts);
    Report(args, g, "ppr", r.stats.elapsed_ms, r.stats.edges_visited,
           r.iterations);
  } else if (p == "color") {
    const auto r = GraphColoring(g);
    Report(args, g, "color", r.stats.elapsed_ms, r.stats.edges_visited,
           r.rounds, r.num_colors, "colors");
  } else if (p == "mis") {
    const auto r = MaximalIndependentSet(g);
    Report(args, g, "mis", r.stats.elapsed_ms, r.stats.edges_visited,
           r.rounds, r.set_size, "set_size");
  } else if (p == "kcore") {
    const auto r = KCore(g);
    Report(args, g, "kcore", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.degeneracy, "degeneracy");
  } else if (p == "stats") {
    const auto s = graph::ComputeDegreeStats(g, pool);
    std::printf("|V|=%d |E|=%lld max_deg=%lld mean_deg=%.2f gini=%.3f "
                "diameter~%d scale_free=%s\n",
                g.num_vertices(), static_cast<long long>(g.num_edges()),
                static_cast<long long>(s.max_degree), s.mean_degree,
                s.gini, graph::PseudoDiameter(g, src),
                graph::IsScaleFreeLike(s) ? "yes" : "no");
  } else {
    Usage();
  }
  return 0;
}
