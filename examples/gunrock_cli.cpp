// Command-line driver: run any primitive on a generated or Matrix Market
// graph — the role of the per-primitive executables in the paper's
// artifact (Appendix A).
//
//   gunrock_cli <primitive> [options]
//     primitive:  bfs | sssp | bc | cc | pagerank | mst | hits | salsa |
//                 ppr | color | mis | kcore | stats
//   options:
//     --graph  rmat|rgg|road|<file.mtx>   input (default rmat)
//     --scale  N        generator scale (default 14)
//     --edge-factor N   R-MAT edge factor (default 16)
//     --src    V        source vertex (default: max degree)
//     --lb     tm|twc|lb|auto             load-balance strategy
//     --direction push|pull|do            BFS traversal direction
//     --no-idempotence                    BFS: atomic advance
//     --no-near-far                       SSSP: plain frontier
//     --iters  N        iteration cap for ranking primitives
//     --json                              machine-readable summary line
#include <cstdio>
#include <cstring>
#include <string>

#include "gunrock.hpp"

namespace {

using namespace gunrock;

struct Args {
  std::string primitive;
  std::string graph = "rmat";
  int scale = 14;
  int edge_factor = 16;
  vid_t source = -1;
  core::LoadBalance lb = core::LoadBalance::kAuto;
  core::Direction direction = core::Direction::kOptimizing;
  bool idempotence = true;
  bool near_far = true;
  int iters = 50;
  bool json = false;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: gunrock_cli <bfs|sssp|bc|cc|pagerank|mst|hits|"
               "salsa|ppr|color|mis|kcore|stats> [--graph rmat|rgg|road|"
               "file.mtx] [--scale N] [--edge-factor N] [--src V] "
               "[--lb tm|twc|lb|auto] [--direction push|pull|do] "
               "[--no-idempotence] [--no-near-far] [--iters N] [--json]\n");
  std::exit(2);
}

Args Parse(int argc, char** argv) {
  if (argc < 2) Usage();
  Args args;
  args.primitive = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--graph") {
      args.graph = next();
    } else if (flag == "--scale") {
      args.scale = std::atoi(next().c_str());
    } else if (flag == "--edge-factor") {
      args.edge_factor = std::atoi(next().c_str());
    } else if (flag == "--src") {
      args.source = static_cast<vid_t>(std::atoi(next().c_str()));
    } else if (flag == "--lb") {
      const std::string v = next();
      args.lb = v == "tm"    ? core::LoadBalance::kThreadMapped
                : v == "twc" ? core::LoadBalance::kTwc
                : v == "lb"  ? core::LoadBalance::kEqualWork
                             : core::LoadBalance::kAuto;
    } else if (flag == "--direction") {
      const std::string v = next();
      args.direction = v == "push"  ? core::Direction::kPush
                       : v == "pull" ? core::Direction::kPull
                                     : core::Direction::kOptimizing;
    } else if (flag == "--no-idempotence") {
      args.idempotence = false;
    } else if (flag == "--no-near-far") {
      args.near_far = false;
    } else if (flag == "--iters") {
      args.iters = std::atoi(next().c_str());
    } else if (flag == "--json") {
      args.json = true;
    } else {
      Usage();
    }
  }
  return args;
}

graph::Csr LoadGraph(const Args& args) {
  auto& pool = par::ThreadPool::Global();
  graph::Coo coo;
  if (args.graph == "rmat") {
    graph::RmatParams p;
    p.scale = args.scale;
    p.edge_factor = args.edge_factor;
    coo = GenerateRmat(p, pool);
  } else if (args.graph == "rgg") {
    graph::RggParams p;
    p.scale = args.scale;
    coo = GenerateRgg(p, pool);
  } else if (args.graph == "road") {
    graph::RoadParams p;
    p.width = 1 << (args.scale / 2);
    p.height = 1 << (args.scale - args.scale / 2);
    coo = GenerateRoad(p, pool);
  } else {
    coo = graph::ReadMarketFile(args.graph);
  }
  if (!coo.has_weights()) graph::AttachRandomWeights(coo, 1, 64);
  graph::BuildOptions build;
  build.symmetrize = true;
  return graph::BuildCsr(coo, build);
}

void Report(const Args& args, const graph::Csr& g, const char* primitive,
            double ms, eid_t edges, int iterations, double extra = 0.0,
            const char* extra_name = nullptr) {
  const double mteps = ms > 0 ? static_cast<double>(edges) / (ms * 1000.0)
                              : 0.0;
  if (args.json) {
    std::printf("{\"primitive\":\"%s\",\"vertices\":%d,\"edges\":%lld,"
                "\"ms\":%.3f,\"mteps\":%.1f,\"iterations\":%d",
                primitive, g.num_vertices(),
                static_cast<long long>(g.num_edges()), ms, mteps,
                iterations);
    if (extra_name) std::printf(",\"%s\":%.6f", extra_name, extra);
    std::printf("}\n");
  } else {
    std::printf("%s: |V|=%d |E|=%lld  %.2f ms", primitive,
                g.num_vertices(), static_cast<long long>(g.num_edges()),
                ms);
    if (edges > 0) std::printf("  %.1f MTEPS", mteps);
    if (iterations > 0) std::printf("  %d iterations", iterations);
    if (extra_name) std::printf("  %s=%.6g", extra_name, extra);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  const graph::Csr g = LoadGraph(args);
  auto& pool = par::ThreadPool::Global();
  vid_t src = args.source;
  if (src < 0 || src >= g.num_vertices()) {
    src = 0;
    for (vid_t v = 1; v < g.num_vertices(); ++v) {
      if (g.degree(v) > g.degree(src)) src = v;
    }
  }

  const std::string& p = args.primitive;
  if (p == "bfs") {
    BfsOptions opts;
    opts.load_balance = args.lb;
    opts.direction = args.direction;
    opts.idempotent = args.idempotence;
    const auto r = Bfs(g, src, opts);
    Report(args, g, "bfs", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.stats.lane_efficiency, "lane_efficiency");
  } else if (p == "sssp") {
    SsspOptions opts;
    opts.load_balance = args.lb;
    opts.use_near_far = args.near_far;
    const auto r = Sssp(g, src, opts);
    Report(args, g, "sssp", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations);
  } else if (p == "bc") {
    BcOptions opts;
    opts.load_balance = args.lb;
    const auto r = Bc(g, src, opts);
    Report(args, g, "bc", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations);
  } else if (p == "cc") {
    const auto r = Cc(g);
    Report(args, g, "cc", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.num_components, "components");
  } else if (p == "pagerank") {
    PagerankOptions opts;
    opts.load_balance = args.lb;
    opts.pull = true;
    opts.max_iterations = args.iters;
    const auto r = Pagerank(g, opts);
    Report(args, g, "pagerank", r.stats.elapsed_ms,
           r.stats.edges_visited, r.iterations, r.MsPerIteration(),
           "ms_per_iteration");
  } else if (p == "mst") {
    const auto r = Mst(g);
    Report(args, g, "mst", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.total_weight, "total_weight");
  } else if (p == "hits" || p == "salsa") {
    const auto rg = graph::ReverseCsr(g, pool);
    if (p == "hits") {
      HitsOptions opts;
      opts.max_iterations = args.iters;
      const auto r = Hits(g, rg, opts);
      Report(args, g, "hits", r.stats.elapsed_ms, r.stats.edges_visited,
             r.iterations);
    } else {
      SalsaOptions opts;
      opts.max_iterations = args.iters;
      const auto r = Salsa(g, rg, opts);
      Report(args, g, "salsa", r.stats.elapsed_ms, r.stats.edges_visited,
             r.iterations);
    }
  } else if (p == "ppr") {
    const vid_t seeds[] = {src};
    PprOptions opts;
    opts.max_iterations = args.iters;
    const auto r = PersonalizedPagerank(g, seeds, opts);
    Report(args, g, "ppr", r.stats.elapsed_ms, r.stats.edges_visited,
           r.iterations);
  } else if (p == "color") {
    const auto r = GraphColoring(g);
    Report(args, g, "color", r.stats.elapsed_ms, r.stats.edges_visited,
           r.rounds, r.num_colors, "colors");
  } else if (p == "mis") {
    const auto r = MaximalIndependentSet(g);
    Report(args, g, "mis", r.stats.elapsed_ms, r.stats.edges_visited,
           r.rounds, r.set_size, "set_size");
  } else if (p == "kcore") {
    const auto r = KCore(g);
    Report(args, g, "kcore", r.stats.elapsed_ms, r.stats.edges_visited,
           r.stats.iterations, r.degeneracy, "degeneracy");
  } else if (p == "stats") {
    const auto s = graph::ComputeDegreeStats(g, pool);
    std::printf("|V|=%d |E|=%lld max_deg=%lld mean_deg=%.2f gini=%.3f "
                "diameter~%d scale_free=%s\n",
                g.num_vertices(), static_cast<long long>(g.num_edges()),
                static_cast<long long>(s.max_degree), s.mean_degree,
                s.gini, graph::PseudoDiameter(g, src),
                graph::IsScaleFreeLike(s) ? "yes" : "no");
  } else {
    Usage();
  }
  return 0;
}
