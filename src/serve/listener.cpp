#include "serve/listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "serve/fault.hpp"

namespace gunrock::serve {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

using Clock = std::chrono::steady_clock;

double RemainingMs(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

/// Millisecond poll timeout for a remaining budget: at least 1 so a
/// sub-millisecond remainder still polls once instead of spinning.
int PollTimeout(double remaining_ms) {
  return std::max(1, static_cast<int>(std::ceil(remaining_ms)));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    accepted_ = other.accepted_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Socket::ReadResult Socket::ReadLineBounded(const ReadOptions& opts) {
  bool line_started = !buffer_.empty();
  Clock::time_point line_deadline{};
  if (line_started && opts.line_deadline_ms > 0.0) {
    line_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(opts.line_deadline_ms));
  }
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return {ReadStatus::kLine, std::move(line)};
    }
    if (buffer_.size() > opts.max_line) return {ReadStatus::kOversized, {}};

    // Wait for readability under whichever deadline applies: the
    // line-completion budget once a partial line is pending, else the
    // idle timeout, else forever.
    int timeout_ms = -1;
    if (line_started && opts.line_deadline_ms > 0.0) {
      const double left = RemainingMs(line_deadline);
      if (left <= 0.0) return {ReadStatus::kTimeout, {}};
      timeout_ms = PollTimeout(left);
    } else if (opts.idle_timeout_ms > 0.0) {
      timeout_ms = PollTimeout(opts.idle_timeout_ms);
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return {ReadStatus::kTimeout, {}};
    if (rc < 0) {
      if (errno == EINTR) continue;
      return {ReadStatus::kError, {}};
    }

    char chunk[4096];
    std::size_t cap = sizeof chunk;
    if (FaultInjector* injector = FaultInjector::Get()) {
      const FaultInjector::IoFault fault = injector->OnRead(accepted_);
      if (fault.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
      }
      if (fault.disconnect) ::shutdown(fd_, SHUT_RDWR);
      if (fault.eintr) continue;  // a synthetic EINTR'd recv moved nothing
      cap = std::min(cap, fault.cap);
    }
    const ssize_t n = ::recv(fd_, chunk, cap, 0);
    if (n == 0) return {ReadStatus::kEof, {}};
    if (n < 0) {
      // EINTR is a retry, never EOF; EAGAIN just re-polls.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return {ReadStatus::kError, {}};
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    if (!line_started) {
      // The first byte of a line starts its completion clock.
      line_started = true;
      if (opts.line_deadline_ms > 0.0) {
        line_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    opts.line_deadline_ms));
      }
    }
  }
}

std::optional<std::string> Socket::ReadLine(std::size_t max_line) {
  ReadOptions opts;
  opts.max_line = max_line;
  ReadResult result = ReadLineBounded(opts);
  if (result.status == ReadStatus::kLine) return std::move(result.line);
  return std::nullopt;
}

Socket::WriteStatus Socket::WriteAllWithin(const std::string& data,
                                           double deadline_ms) {
  const bool bounded = deadline_ms > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  std::size_t sent = 0;
  while (sent < data.size()) {
    std::size_t cap = data.size() - sent;
    if (FaultInjector* injector = FaultInjector::Get()) {
      const FaultInjector::IoFault fault = injector->OnWrite(accepted_);
      if (fault.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
      }
      if (fault.disconnect) ::shutdown(fd_, SHUT_RDWR);
      if (fault.eintr) continue;  // a synthetic EINTR'd send moved nothing
      cap = std::min(cap, fault.cap);
    }
    // Under a deadline the send must not park: MSG_DONTWAIT plus a
    // poll(POLLOUT) with the remaining budget.
    const int flags = MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0);
    const ssize_t n = ::send(fd_, data.data() + sent, cap, flags);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const double left = RemainingMs(deadline);
      if (left <= 0.0) return WriteStatus::kTimeout;
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      const int rc = ::poll(&pfd, 1, PollTimeout(left));
      if (rc == 0) return WriteStatus::kTimeout;
      if (rc < 0 && errno != EINTR) return WriteStatus::kError;
      continue;
    }
    return WriteStatus::kError;
  }
  return WriteStatus::kOk;
}

bool Socket::WriteAll(const std::string& data) {
  return WriteAllWithin(data, 0.0) == WriteStatus::kOk;
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Socket::SetSendBuffer(int bytes) {
  if (fd_ >= 0 && bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  }
}

bool Listener::Bind(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = Errno("socket");
    return false;
  }
  Socket holder(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad listen address '" + host + "'";
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) *error = Errno(("bind " + host).c_str());
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = Errno("listen");
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error) *error = Errno("getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  closed_.store(false, std::memory_order_release);
  socket_ = std::move(holder);
  return true;
}

std::optional<Socket> Listener::Accept() {
  for (;;) {
    if (FaultInjector* injector = FaultInjector::Get()) {
      if (injector->OnAccept()) {
        // A synthetic transient failure: count it, back off a beat and
        // try again — the pending connection stays in the backlog.
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
    }
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (closed_.load(std::memory_order_acquire)) return std::nullopt;
      if (errno == EINTR || errno == ECONNABORTED) {
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource pressure: back off instead of dying — the shedding
        // layer above keeps the connection count sane.
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return std::nullopt;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Socket accepted(fd);
    accepted.MarkAccepted();
    return accepted;
  }
}

Socket ConnectTcp(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = Errno("socket");
    return Socket();
  }
  Socket holder(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address '" + host + "'";
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (error) *error = Errno(("connect " + host).c_str());
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return holder;
}

}  // namespace gunrock::serve
