#include "serve/listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gunrock::serve {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

std::optional<std::string> Socket::ReadLine(std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_line) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return std::nullopt;  // EOF or error
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Socket::WriteAll(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Listener::Bind(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = Errno("socket");
    return false;
  }
  Socket holder(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad listen address '" + host + "'";
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) *error = Errno(("bind " + host).c_str());
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = Errno("listen");
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error) *error = Errno("getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  socket_ = std::move(holder);
  return true;
}

std::optional<Socket> Listener::Accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Socket ConnectTcp(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = Errno("socket");
    return Socket();
  }
  Socket holder(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address '" + host + "'";
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (error) *error = Errno(("connect " + host).c_str());
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return holder;
}

}  // namespace gunrock::serve
