#include "serve/fault.hpp"

namespace gunrock::serve {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

/// splitmix64 finalizer: a high-quality 64-bit mix, cheap enough to run
/// per decision.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjector::Install(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* FaultInjector::Get() {
  return g_injector.load(std::memory_order_acquire);
}

bool FaultInjector::Roll(int per_mille) {
  if (per_mille <= 0) return false;
  const std::uint64_t draw =
      sequence_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(Mix(config_.seed ^
                              draw * 0x9e3779b97f4a7c15ULL) %
                          1000) < per_mille;
}

bool FaultInjector::Charge() {
  if (config_.budget < 0) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Claim one unit; a losing decrement below zero is handed back so the
  // budget never goes net-negative under concurrent charges.
  if (budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    budget_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

FaultInjector::IoFault FaultInjector::OnRead(bool accepted) {
  IoFault fault;
  if (config_.accepted_only && !accepted) return fault;
  if (Roll(config_.stall_pm) && Charge()) fault.stall_ms = config_.stall_ms;
  if (Roll(config_.disconnect_pm) && Charge()) fault.disconnect = true;
  if (Roll(config_.eintr_pm) && Charge()) fault.eintr = true;
  if (Roll(config_.short_read_pm) && Charge()) fault.cap = config_.short_cap;
  return fault;
}

FaultInjector::IoFault FaultInjector::OnWrite(bool accepted) {
  IoFault fault;
  if (config_.accepted_only && !accepted) return fault;
  if (Roll(config_.stall_pm) && Charge()) fault.stall_ms = config_.stall_ms;
  if (Roll(config_.disconnect_pm) && Charge()) fault.disconnect = true;
  if (Roll(config_.eintr_pm) && Charge()) fault.eintr = true;
  if (Roll(config_.short_write_pm) && Charge()) {
    fault.cap = config_.short_cap;
  }
  return fault;
}

bool FaultInjector::OnAccept() {
  return Roll(config_.accept_fail_pm) && Charge();
}

}  // namespace gunrock::serve
