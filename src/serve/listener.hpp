// Minimal POSIX TCP plumbing for gunrockd: a listening socket plus a
// line-oriented connection wrapper. Nothing fancy on purpose — the daemon
// is thread-per-connection (serving a handful of analytical clients, not
// ten thousand idle ones), so blocking reads with a small buffer are the
// right tool; the interesting concurrency lives in the QueryEngine.
//
// Robustness contract (DESIGN §12): every recv/send/accept retries EINTR,
// can run under a poll-guarded deadline (the slow-client defenses), and
// consults the process-global FaultInjector (serve/fault.hpp) so chaos
// tests drive short I/O, stalls and disconnects through the exact
// production code path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace gunrock::serve {

/// RAII file descriptor with blocking line/byte helpers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), accepted_(other.accepted_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  struct ReadOptions {
    /// Lines beyond this many bytes abort with kOversized (protocol
    /// lines are small; an unbounded line is an attack, not a request).
    std::size_t max_line = 1 << 22;
    /// Once the first byte of a line has arrived, the full line must
    /// follow within this budget; 0 = unlimited. This is the slow-loris
    /// defense: dribbling a request one byte at a time cannot hold the
    /// reader past the deadline, while an idle connection with no
    /// partial line pending is not charged.
    double line_deadline_ms = 0.0;
    /// Max quiet time while no partial line is pending; 0 = unlimited
    /// (idle keep-alive clients are welcome by default).
    double idle_timeout_ms = 0.0;
  };
  enum class ReadStatus { kLine, kEof, kTimeout, kOversized, kError };
  struct ReadResult {
    ReadStatus status = ReadStatus::kError;
    std::string line;  ///< filled for kLine only, terminator stripped
  };

  /// Reads up to and including the next '\n' under `opts`; "\r\n" is
  /// also stripped, for telnet/curl users. EINTR'd recvs are retried,
  /// never misread as EOF.
  ReadResult ReadLineBounded(const ReadOptions& opts);

  /// Unbounded compatibility wrapper: std::nullopt on EOF, error,
  /// or an over-long line.
  std::optional<std::string> ReadLine(std::size_t max_line = 1 << 22);

  enum class WriteStatus { kOk, kTimeout, kError };

  /// Writes all of `data`, retrying short writes and EINTR. With
  /// `deadline_ms > 0` the send is poll-guarded: a peer that stops
  /// reading (stalled-writer attack) costs at most the deadline, never
  /// a parked thread. SIGPIPE-safe via MSG_NOSIGNAL.
  WriteStatus WriteAllWithin(const std::string& data, double deadline_ms);

  /// WriteAllWithin without a deadline; false on error.
  bool WriteAll(const std::string& data);

  /// Shuts down the read side (wakes a blocked ReadLine with EOF).
  void ShutdownRead();
  /// Shuts down both directions: the eviction hammer — wakes a blocked
  /// reader with EOF and makes every further send fail fast.
  void ShutdownBoth();
  void Close();

  /// SO_SNDBUF, for tests that need a small kernel buffer to provoke
  /// write stalls quickly; no-op for bytes <= 0.
  void SetSendBuffer(int bytes);

  /// Marks this socket as accepted (daemon-side); the FaultInjector's
  /// accepted_only scope keys off it.
  void MarkAccepted() { accepted_ = true; }
  bool accepted() const { return accepted_; }

 private:
  int fd_ = -1;
  bool accepted_ = false;
  std::string buffer_;  // bytes read past the last returned line
};

/// Listening TCP socket bound to host:port (port 0 = kernel-assigned).
class Listener {
 public:
  Listener() = default;
  ~Listener() = default;

  /// Binds and listens. False (with `error`) on resolve/bind failure.
  bool Bind(const std::string& host, int port, std::string* error);

  /// Blocking accept. Transient failures (EINTR, ECONNABORTED,
  /// EMFILE/ENFILE/ENOBUFS/ENOMEM pressure, injected faults) are retried
  /// internally — counted in accept_retries() — so a misbehaving client
  /// or a brief fd shortage never kills the accept loop. std::nullopt
  /// only after Close() or a non-recoverable error.
  std::optional<Socket> Accept();

  /// The actually-bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }
  bool listening() const { return socket_.valid(); }

  /// Transient accept failures survived so far (real + injected).
  std::uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }

  /// Closes the listening socket; a blocked Accept() returns nullopt.
  /// Already-accepted connections are unaffected. (shutdown() before
  /// close() — on Linux plain close() leaves a concurrent accept()
  /// blocked forever.)
  void Close() {
    closed_.store(true, std::memory_order_release);
    socket_.ShutdownRead();
    socket_.Close();
  }

 private:
  Socket socket_;
  int port_ = 0;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> accept_retries_{0};
};

/// Client-side connect for tests and the smoke script's C++ twin;
/// invalid Socket on failure.
Socket ConnectTcp(const std::string& host, int port, std::string* error);

}  // namespace gunrock::serve
