// Minimal POSIX TCP plumbing for gunrockd: a listening socket plus a
// line-oriented connection wrapper. Nothing fancy on purpose — the daemon
// is thread-per-connection (serving a handful of analytical clients, not
// ten thousand idle ones), so blocking reads with a small buffer are the
// right tool; the interesting concurrency lives in the QueryEngine.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace gunrock::serve {

/// RAII file descriptor with blocking line/byte helpers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to and including the next '\n'; returns the line without
  /// its terminator ("\r\n" also stripped, for telnet/curl users).
  /// std::nullopt on EOF or error. Lines beyond `max_line` bytes abort
  /// the connection (protocol lines are small; an unbounded line is an
  /// attack, not a request).
  std::optional<std::string> ReadLine(std::size_t max_line = 1 << 22);

  /// Writes all of `data` (retrying short writes); false on error.
  /// SIGPIPE-safe: uses MSG_NOSIGNAL, a vanished peer is a false return.
  bool WriteAll(const std::string& data);

  /// Shuts down the read side (wakes a blocked ReadLine with EOF).
  void ShutdownRead();
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

/// Listening TCP socket bound to host:port (port 0 = kernel-assigned).
class Listener {
 public:
  Listener() = default;
  ~Listener() = default;

  /// Binds and listens. False (with `error`) on resolve/bind failure.
  bool Bind(const std::string& host, int port, std::string* error);

  /// Blocking accept; std::nullopt on error or after Close() from
  /// another thread (the shutdown path).
  std::optional<Socket> Accept();

  /// The actually-bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }
  bool listening() const { return socket_.valid(); }

  /// Closes the listening socket; a blocked Accept() returns nullopt.
  /// Already-accepted connections are unaffected. (shutdown() before
  /// close() — on Linux plain close() leaves a concurrent accept()
  /// blocked forever.)
  void Close() {
    socket_.ShutdownRead();
    socket_.Close();
  }

 private:
  Socket socket_;
  int port_ = 0;
};

/// Client-side connect for tests and the smoke script's C++ twin;
/// invalid Socket on failure.
Socket ConnectTcp(const std::string& host, int port, std::string* error);

}  // namespace gunrock::serve
