// gunrockd startup configuration: flags, config file, graph specs.
//
// The daemon reads the same `key = value` grammar from both places — a
// config file (`--config FILE`, one directive per line, `#` comments) and
// command-line flags (`--port 7070` is exactly `port = 7070`) — flags are
// applied after the file, so they win. Graph directives are repeatable:
//
//   graph = social=rmat:scale=12,edge_factor=16,weight=2,quota=8
//   graph = mesh=road:width=256,height=256
//   graph = web=file:/data/web.mtx,weight=4
//
// i.e. NAME=KIND:comma-separated params, where `weight` and `quota` are
// serving attributes (fair-share weight, admission cap) and every other
// key belongs to the generator (rmat: scale/edge_factor/seed; rgg:
// scale/radius/seed; road: width/height/drop_prob/diag_prob/seed; file:
// the first token is the Matrix Market path). All numeric values go
// through the checked util/parse.hpp parsers — a typo is a startup error
// naming the offending key, never a silently-defaulted graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"

namespace gunrock::serve {

/// One `graph =` directive, parsed.
struct GraphConfig {
  std::string name;
  std::string spec;  ///< everything after NAME= (for logs)
  std::string kind;  ///< rmat | rgg | road | file
  /// Generator parameters (or "path" for kind file), still textual —
  /// BuildGraphFromSpec validates and converts.
  std::map<std::string, std::string> params;
  double weight = 1.0;    ///< fair-share weight (engine GraphOptions)
  std::size_t quota = 0;  ///< per-graph in-flight cap; 0 = unlimited
  /// `dynamic=on`: register through the dynamic-graph subsystem so the
  /// serve protocol's add_edges/remove_edges/commit ops work on it.
  bool dynamic = false;
};

struct DaemonConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (kernel-assigned, see port_file)
  /// When non-empty, the bound port is written here once listening —
  /// the handshake scripts and tests use to find an ephemeral port.
  std::string port_file;
  /// When non-empty, the daemon pid is written here once listening and
  /// the file is removed on clean Stop() — for init scripts and the
  /// smoke test's liveness checks.
  std::string pid_file;
  unsigned inflight = 4;      ///< engine runner threads
  std::size_t queue = 64;     ///< engine admission-queue capacity
  bool reject = false;        ///< kReject backpressure instead of kBlock
  bool coalescing = true;     ///< engine wave coalescing
  double drain_deadline_ms = 5000.0;  ///< graceful-drain budget on SIGTERM
  double default_deadline_ms = 0.0;   ///< per-query default; 0 = none

  // --- health/admin port (DESIGN §12) ---
  /// Separate liveness/readiness/stats/admin listener; -1 = disabled,
  /// 0 = kernel-assigned (see admin_port_file).
  int admin_port = -1;
  std::string admin_port_file;  ///< bound admin port written here

  // --- slow-client defenses ---
  std::size_t max_line = 1 << 22;  ///< request-line byte cap (kOversized)
  /// Once a request line has begun, it must complete within this budget
  /// or the connection is evicted (slow-loris defense); 0 = unlimited.
  double read_deadline_ms = 30000.0;
  /// Max quiet time with no partial line pending; 0 = unlimited (idle
  /// keep-alive clients are welcome by default).
  double idle_timeout_ms = 0.0;
  /// Each response write must land within this budget or the connection
  /// is evicted (stalled-reader defense); 0 = unlimited.
  double write_deadline_ms = 30000.0;

  // --- overload shedding (all answered with retryable errors) ---
  std::size_t max_connections = 0;   ///< concurrent connections; 0 = ∞
  /// Refuse new queries once the engine's admission queue is this deep;
  /// 0 = no query-level shedding.
  std::size_t shed_queue_depth = 0;
  /// Bounded per-connection write backlog: max completions submitted but
  /// not yet delivered to the socket; further queries on that connection
  /// are shed until the writer catches up.
  std::size_t write_queue_max = 256;

  // --- structured event log ---
  std::string log_file;           ///< empty = stderr
  std::uint64_t log_max_bytes = 0;  ///< size-triggered rotation; 0 = off
  int log_keep = 1;               ///< rotated generations kept

  /// SO_SNDBUF for accepted sockets; 0 = kernel default. Tests use a
  /// tiny buffer to provoke write stalls quickly.
  int sndbuf = 0;

  std::vector<GraphConfig> graphs;
};

/// Parses one graph directive (`NAME=KIND:params`). Returns nullopt with
/// a reason in `error` for a missing name, unknown kind, or malformed
/// weight/quota.
std::optional<GraphConfig> ParseGraphSpec(std::string_view text,
                                          std::string* error);

/// Applies one configuration directive (`key`, `value` — already split
/// and trimmed) to `config`. Shared by the file parser and the flag
/// parser so both speak the identical grammar.
bool ApplyDirective(const std::string& key, const std::string& value,
                    DaemonConfig* config, std::string* error);

/// Parses a whole config file body. On failure `error` names the line.
bool ParseConfigText(std::string_view text, DaemonConfig* config,
                     std::string* error);

/// Reads and parses `path`. False (with `error`) on I/O or parse failure.
bool LoadConfigFile(const std::string& path, DaemonConfig* config,
                    std::string* error);

/// Materializes the graph a spec describes: runs the named generator (or
/// reads the Matrix Market file), attaches random weights when the input
/// has none, and builds a symmetrized CSR — the same pipeline the CLI
/// uses, so daemon answers match CLI answers on the same spec. Throws
/// gunrock::Error with the offending key for bad or unknown parameters.
graph::Csr BuildGraphFromSpec(const GraphConfig& spec);

}  // namespace gunrock::serve
