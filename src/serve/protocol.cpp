#include "serve/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "util/parse.hpp"

namespace gunrock::serve {

namespace {

// --- decode helpers ---------------------------------------------------------
// Every helper reports through `error` and returns false/nullopt; the
// decoder bails on the first problem so the client sees one precise
// reason, not a cascade.

bool FailDecode(std::string* error, std::string why) {
  if (error) *error = std::move(why);
  return false;
}

/// Integral JSON number in [lo, hi]; rejects 1.5, NaN, out-of-range.
bool GetInt(const Json& v, const std::string& key, long long lo,
            long long hi, long long* out, std::string* error) {
  if (!v.is_number()) {
    return FailDecode(error, "'" + key + "' must be an integer");
  }
  const double d = v.as_number();
  if (!(d >= static_cast<double>(lo)) || !(d <= static_cast<double>(hi)) ||
      d != std::floor(d)) {
    return FailDecode(error, "'" + key + "' must be an integer in [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
  }
  *out = static_cast<long long>(d);
  return true;
}

bool GetBool(const Json& v, const std::string& key, bool* out,
             std::string* error) {
  if (!v.is_bool()) {
    return FailDecode(error, "'" + key + "' must be a boolean");
  }
  *out = v.as_bool();
  return true;
}

bool GetFinite(const Json& v, const std::string& key, double* out,
               std::string* error) {
  if (!v.is_number()) {
    return FailDecode(error, "'" + key + "' must be a number");
  }
  // The JSON grammar has no non-finite literals, but an overflowing
  // exponent can still parse to ±inf — every numeric knob downstream
  // assumes a finite value (means, bucket widths, damping sums), so the
  // domain check lives here, named per key.
  if (!std::isfinite(v.as_number())) {
    return FailDecode(error, "'" + key + "' must be finite");
  }
  *out = v.as_number();
  return true;
}

bool GetLoadBalance(const Json& v, core::LoadBalance* out,
                    std::string* error) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "tm" || s == "thread-mapped") {
      *out = core::LoadBalance::kThreadMapped;
      return true;
    }
    if (s == "twc") {
      *out = core::LoadBalance::kTwc;
      return true;
    }
    if (s == "lb" || s == "equal-work") {
      *out = core::LoadBalance::kEqualWork;
      return true;
    }
    if (s == "auto") {
      *out = core::LoadBalance::kAuto;
      return true;
    }
  }
  return FailDecode(
      error, "'load_balance' must be one of \"tm\", \"twc\", \"lb\", \"auto\"");
}

bool GetBackend(const Json& v, core::SpmvBackend* out, std::string* error) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "frontier") {
      *out = core::SpmvBackend::kFrontier;
      return true;
    }
    if (s == "spmv") {
      *out = core::SpmvBackend::kSpmv;
      return true;
    }
    if (s == "auto") {
      *out = core::SpmvBackend::kAuto;
      return true;
    }
  }
  return FailDecode(
      error, "'backend' must be one of \"frontier\", \"spmv\", \"auto\"");
}

/// Rejects any `opts` key outside `allowed` — a typoed knob must be an
/// error, not a silently-defaulted run that looks slower than it should.
bool CheckOptKeys(const Json::Object& opts, const char* kind,
                  const std::set<std::string>& allowed, std::string* error) {
  for (const auto& [key, value] : opts) {
    (void)value;
    if (allowed.count(key) == 0) {
      return FailDecode(error, "unknown option '" + key + "' for kind '" +
                                   std::string(kind) + "'");
    }
  }
  return true;
}

/// Reads "source" as a vid. Deliberately does NOT range-check against any
/// graph — the engine validates at pickup and produces the canonical
/// out-of-range error, identical for solo and wave runs.
bool GetSource(const Json& object, vid_t* out, std::string* error) {
  const Json* v = object.Find("source");
  if (!v) {
    return FailDecode(error, "missing required field 'source'");
  }
  long long s = 0;
  if (!GetInt(*v, "source", INT32_MIN, INT32_MAX, &s, error)) return false;
  *out = static_cast<vid_t>(s);
  return true;
}

/// Reads an array of vertex ids (range checking against the graph stays
/// with the engine, as for GetSource).
bool GetVidArray(const Json& v, const std::string& key, bool allow_empty,
                 std::vector<vid_t>* out, std::string* error) {
  if (!v.is_array() || (!allow_empty && v.as_array().empty())) {
    return FailDecode(error, "'" + key + "' must be a non-empty array");
  }
  out->clear();
  out->reserve(v.as_array().size());
  for (const Json& item : v.as_array()) {
    long long x = 0;
    if (!GetInt(item, key, INT32_MIN, INT32_MAX, &x, error)) return false;
    out->push_back(static_cast<vid_t>(x));
  }
  return true;
}

bool DecodeCommonOpts(const Json::Object& opts, CommonOptions* common,
                      std::string* error) {
  const auto it = opts.find("load_balance");
  if (it == opts.end()) return true;
  return GetLoadBalance(it->second, &common->load_balance, error);
}

bool DecodeKind(const std::string& kind, const Json& object,
                engine::QueryRequest* out, std::string* error) {
  Json::Object opts;
  if (const Json* o = object.Find("opts")) {
    if (!o->is_object()) {
      return FailDecode(error, "'opts' must be an object");
    }
    opts = o->as_object();
  }
  const auto opt = [&](const char* key) -> const Json* {
    const auto it = opts.find(key);
    return it == opts.end() ? nullptr : &it->second;
  };

  if (kind == "bfs") {
    engine::BfsQuery q;
    if (!CheckOptKeys(opts, "bfs",
                      {"load_balance", "idempotent", "direction",
                       "compute_preds"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error) ||
        !GetSource(object, &q.source, error)) {
      return false;
    }
    if (const Json* v = opt("idempotent")) {
      if (!GetBool(*v, "idempotent", &q.opts.idempotent, error)) return false;
    }
    if (const Json* v = opt("compute_preds")) {
      if (!GetBool(*v, "compute_preds", &q.opts.compute_preds, error)) {
        return false;
      }
    }
    if (const Json* v = opt("direction")) {
      if (v->is_string() && v->as_string() == "push") {
        q.opts.direction = core::Direction::kPush;
      } else if (v->is_string() && v->as_string() == "pull") {
        q.opts.direction = core::Direction::kPull;
      } else if (v->is_string() && v->as_string() == "do") {
        q.opts.direction = core::Direction::kOptimizing;
      } else {
        return FailDecode(
            error, "'direction' must be one of \"push\", \"pull\", \"do\"");
      }
    }
    *out = q;
    return true;
  }

  if (kind == "sssp") {
    engine::SsspQuery q;
    if (!CheckOptKeys(opts, "sssp",
                      {"load_balance", "near_far", "delta", "compute_preds"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error) ||
        !GetSource(object, &q.source, error)) {
      return false;
    }
    if (const Json* v = opt("near_far")) {
      if (!GetBool(*v, "near_far", &q.opts.use_near_far, error)) return false;
    }
    if (const Json* v = opt("delta")) {
      // 0 is the in-process sentinel for "use the Δ heuristic"; on the
      // wire that is spelled by omitting the key, so an explicit value
      // must be a usable bucket width.
      double d = 0.0;
      if (!GetFinite(*v, "delta", &d, error)) return false;
      if (!(d > 0.0)) {
        return FailDecode(
            error, "'delta' must be > 0 (omit it to use the Δ heuristic)");
      }
      q.opts.delta = static_cast<weight_t>(d);
    }
    if (const Json* v = opt("compute_preds")) {
      if (!GetBool(*v, "compute_preds", &q.opts.compute_preds, error)) {
        return false;
      }
    }
    *out = q;
    return true;
  }

  if (kind == "bc") {
    engine::BcQuery q;
    if (!CheckOptKeys(opts, "bc", {"load_balance", "normalize"}, error) ||
        !DecodeCommonOpts(opts, &q.opts, error) ||
        !GetSource(object, &q.source, error)) {
      return false;
    }
    if (const Json* v = opt("normalize")) {
      if (!GetBool(*v, "normalize", &q.opts.normalize, error)) return false;
    }
    *out = q;
    return true;
  }

  if (kind == "cc") {
    engine::CcQuery q;
    if (!CheckOptKeys(opts, "cc", {"load_balance"}, error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    *out = q;
    return true;
  }

  if (kind == "pagerank") {
    engine::PagerankQuery q;
    if (!CheckOptKeys(opts, "pagerank",
                      {"load_balance", "damping", "tolerance",
                       "max_iterations", "pull", "backend"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    if (const Json* v = opt("damping")) {
      if (!GetFinite(*v, "damping", &q.opts.damping, error)) return false;
      // 0 degenerates to the uniform teleport vector and 1 removes the
      // teleport mass entirely (no convergence guarantee): both are
      // outside the model, not parameter choices.
      if (!(q.opts.damping > 0.0 && q.opts.damping < 1.0)) {
        return FailDecode(error, "'damping' must be in (0, 1)");
      }
    }
    if (const Json* v = opt("tolerance")) {
      if (!GetFinite(*v, "tolerance", &q.opts.tolerance, error)) return false;
      if (!(q.opts.tolerance >= 0.0)) {
        return FailDecode(error, "'tolerance' must be >= 0");
      }
    }
    if (const Json* v = opt("max_iterations")) {
      long long n = 0;
      if (!GetInt(*v, "max_iterations", 1, INT32_MAX, &n, error)) {
        return false;
      }
      q.opts.max_iterations = static_cast<int>(n);
    }
    if (const Json* v = opt("pull")) {
      if (!GetBool(*v, "pull", &q.opts.pull, error)) return false;
    }
    if (const Json* v = opt("backend")) {
      if (!GetBackend(*v, &q.opts.backend, error)) return false;
    }
    *out = q;
    return true;
  }

  if (kind == "mst") {
    engine::MstQuery q;
    if (!CheckOptKeys(opts, "mst", {"load_balance"}, error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    *out = q;
    return true;
  }

  if (kind == "triangles") {
    engine::TrianglesQuery q;
    if (!CheckOptKeys(opts, "triangles", {"load_balance"}, error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    *out = q;
    return true;
  }

  if (kind == "lp") {
    engine::LabelPropagationQuery q;
    if (!CheckOptKeys(opts, "lp", {"load_balance", "max_iterations"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    if (const Json* v = opt("max_iterations")) {
      long long n = 0;
      if (!GetInt(*v, "max_iterations", 1, INT32_MAX, &n, error)) {
        return false;
      }
      q.opts.max_iterations = static_cast<int>(n);
    }
    *out = q;
    return true;
  }

  if (kind == "hits" || kind == "salsa") {
    const auto fill = [&](auto& q) -> bool {
      if (!CheckOptKeys(opts, kind.c_str(),
                        {"load_balance", "max_iterations", "tolerance",
                         "backend"},
                        error) ||
          !DecodeCommonOpts(opts, &q.opts, error)) {
        return false;
      }
      if (const Json* v = opt("max_iterations")) {
        long long n = 0;
        if (!GetInt(*v, "max_iterations", 1, INT32_MAX, &n, error)) {
          return false;
        }
        q.opts.max_iterations = static_cast<int>(n);
      }
      if (const Json* v = opt("tolerance")) {
        if (!GetFinite(*v, "tolerance", &q.opts.tolerance, error)) {
          return false;
        }
        if (!(q.opts.tolerance >= 0.0)) {
          return FailDecode(error, "'tolerance' must be >= 0");
        }
      }
      if (const Json* v = opt("backend")) {
        if (!GetBackend(*v, &q.opts.backend, error)) return false;
      }
      *out = q;
      return true;
    };
    if (kind == "hits") {
      engine::HitsQuery q;
      return fill(q);
    }
    engine::SalsaQuery q;
    return fill(q);
  }

  if (kind == "ppr") {
    engine::PprQuery q;
    if (!CheckOptKeys(opts, "ppr",
                      {"load_balance", "damping", "tolerance",
                       "max_iterations", "backend"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    if (const Json* v = opt("damping")) {
      if (!GetFinite(*v, "damping", &q.opts.damping, error)) return false;
      // Same domain as pagerank: a teleport-only or teleport-free walk
      // is outside the PPR model.
      if (!(q.opts.damping > 0.0 && q.opts.damping < 1.0)) {
        return FailDecode(error, "'damping' must be in (0, 1)");
      }
    }
    if (const Json* v = opt("tolerance")) {
      if (!GetFinite(*v, "tolerance", &q.opts.tolerance, error)) return false;
      if (!(q.opts.tolerance >= 0.0)) {
        return FailDecode(error, "'tolerance' must be >= 0");
      }
    }
    if (const Json* v = opt("max_iterations")) {
      long long n = 0;
      if (!GetInt(*v, "max_iterations", 1, INT32_MAX, &n, error)) {
        return false;
      }
      q.opts.max_iterations = static_cast<int>(n);
    }
    if (const Json* v = opt("backend")) {
      if (!GetBackend(*v, &q.opts.backend, error)) return false;
    }
    // Seeds: "seeds":[...] wins; else "source":N is a one-seed set.
    if (const Json* seeds = object.Find("seeds")) {
      if (!seeds->is_array() || seeds->as_array().empty()) {
        return FailDecode(error, "'seeds' must be a non-empty array");
      }
      q.seeds.clear();
      for (const Json& s : seeds->as_array()) {
        long long v = 0;
        if (!GetInt(s, "seeds", INT32_MIN, INT32_MAX, &v, error)) {
          return false;
        }
        q.seeds.push_back(static_cast<vid_t>(v));
      }
    } else if (object.Find("source")) {
      vid_t s = 0;
      if (!GetSource(object, &s, error)) return false;
      q.seeds.assign(1, s);
    } else {
      return FailDecode(error,
                        "ppr needs 'source' (one seed) or 'seeds' (a list)");
    }
    *out = q;
    return true;
  }

  if (kind == "matrix") {
    engine::MatrixQuery q;
    if (!CheckOptKeys(opts, "matrix",
                      {"load_balance", "delta", "backend", "wave"},
                      error) ||
        !DecodeCommonOpts(opts, &q.opts, error)) {
      return false;
    }
    if (const Json* v = opt("delta")) {
      double d = 0.0;
      if (!GetFinite(*v, "delta", &d, error)) return false;
      if (!(d > 0.0)) {
        return FailDecode(
            error, "'delta' must be > 0 (omit it to use the Δ heuristic)");
      }
      q.opts.delta = static_cast<weight_t>(d);
    }
    if (const Json* v = opt("backend")) {
      // Matrix backends are the frontier/semiring pair of sssp_batch,
      // spelled like the SpmvBackend wire values.
      core::SpmvBackend b = core::SpmvBackend::kAuto;
      if (!GetBackend(*v, &b, error)) return false;
      q.opts.backend = b == core::SpmvBackend::kFrontier
                           ? MatrixBackend::kFrontier
                       : b == core::SpmvBackend::kSpmv
                           ? MatrixBackend::kSpmv
                           : MatrixBackend::kAuto;
    }
    if (const Json* v = opt("wave")) {
      long long w = 0;
      if (!GetInt(*v, "wave", 1, kMaxBatchLanes, &w, error)) return false;
      q.wave = static_cast<std::uint32_t>(w);
    }
    const Json* sources = object.Find("sources");
    if (!sources) {
      return FailDecode(error, "missing required field 'sources'");
    }
    if (!GetVidArray(*sources, "sources", /*allow_empty=*/false, &q.sources,
                     error)) {
      return false;
    }
    if (const Json* targets = object.Find("targets")) {
      if (!GetVidArray(*targets, "targets", /*allow_empty=*/false,
                       &q.targets, error)) {
        return false;
      }
    }
    if (const Json* paths = object.Find("paths")) {
      if (!paths->is_array() || paths->as_array().empty()) {
        return FailDecode(error, "'paths' must be a non-empty array");
      }
      for (const Json& pair : paths->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2) {
          return FailDecode(error,
                            "each 'paths' entry must be [source, target]");
        }
        long long s = 0, t = 0;
        if (!GetInt(pair.as_array()[0], "paths", INT32_MIN, INT32_MAX, &s,
                    error) ||
            !GetInt(pair.as_array()[1], "paths", INT32_MIN, INT32_MAX, &t,
                    error)) {
          return false;
        }
        q.paths.emplace_back(static_cast<vid_t>(s), static_cast<vid_t>(t));
      }
    }
    *out = q;
    return true;
  }

  return FailDecode(
      error,
      "unknown kind '" + kind +
          "' (expected one of bfs sssp bc cc pagerank mst triangles lp "
          "hits salsa ppr matrix)");
}

// --- encode helpers ---------------------------------------------------------

template <typename T>
Json NumberArray(const std::vector<T>& values) {
  Json::Array array;
  array.reserve(values.size());
  for (const T& v : values) {
    array.emplace_back(static_cast<double>(v));
  }
  return Json(std::move(array));
}

struct PayloadEncoder {
  bool include_values;

  Json operator()(const std::monostate&) const { return Json(); }

  Json operator()(const BfsResult& r) const {
    Json::Object o;
    std::int64_t reached = 0;
    for (const auto d : r.depth) reached += d >= 0 ? 1 : 0;
    o["reached"] = Json(reached);
    if (include_values) {
      o["depth"] = NumberArray(r.depth);
      if (!r.pred.empty()) o["pred"] = NumberArray(r.pred);
    }
    return Json(std::move(o));
  }

  Json operator()(const SsspResult& r) const {
    Json::Object o;
    std::int64_t reached = 0;
    for (const auto d : r.dist) {
      reached += d < std::numeric_limits<weight_t>::infinity() ? 1 : 0;
    }
    o["reached"] = Json(reached);
    if (include_values) {
      // +inf is not representable in JSON; ship it as null so the array
      // keeps positional meaning.
      Json::Array dist;
      dist.reserve(r.dist.size());
      for (const auto d : r.dist) {
        if (d < std::numeric_limits<weight_t>::infinity()) {
          dist.emplace_back(static_cast<double>(d));
        } else {
          dist.emplace_back();
        }
      }
      o["dist"] = Json(std::move(dist));
      if (!r.pred.empty()) o["pred"] = NumberArray(r.pred);
    }
    return Json(std::move(o));
  }

  Json operator()(const BcResult& r) const {
    Json::Object o;
    if (include_values) o["bc"] = NumberArray(r.bc);
    return Json(std::move(o));
  }

  Json operator()(const CcResult& r) const {
    Json::Object o;
    o["num_components"] = Json(static_cast<double>(r.num_components));
    if (include_values) o["component"] = NumberArray(r.component);
    return Json(std::move(o));
  }

  Json operator()(const PagerankResult& r) const {
    Json::Object o;
    o["iterations"] = Json(r.iterations);
    if (include_values) o["rank"] = NumberArray(r.rank);
    return Json(std::move(o));
  }

  Json operator()(const MstResult& r) const {
    Json::Object o;
    o["total_weight"] = Json(r.total_weight);
    o["num_components"] = Json(static_cast<double>(r.num_components));
    o["num_tree_edges"] = Json(static_cast<std::int64_t>(r.tree_edges.size()));
    if (include_values) o["tree_edges"] = NumberArray(r.tree_edges);
    return Json(std::move(o));
  }

  Json operator()(const TriangleResult& r) const {
    Json::Object o;
    o["num_triangles"] = Json(r.num_triangles);
    o["global_clustering"] = Json(r.global_clustering);
    if (include_values) {
      o["per_vertex"] = NumberArray(r.per_vertex);
      o["clustering"] = NumberArray(r.clustering);
    }
    return Json(std::move(o));
  }

  Json operator()(const LabelPropagationResult& r) const {
    Json::Object o;
    o["num_communities"] = Json(static_cast<double>(r.num_communities));
    o["iterations"] = Json(r.iterations);
    if (include_values) o["label"] = NumberArray(r.label);
    return Json(std::move(o));
  }

  Json operator()(const HitsResult& r) const {
    Json::Object o;
    o["iterations"] = Json(r.iterations);
    if (include_values) {
      o["hub"] = NumberArray(r.hub);
      o["authority"] = NumberArray(r.authority);
    }
    return Json(std::move(o));
  }

  Json operator()(const SalsaResult& r) const {
    Json::Object o;
    o["iterations"] = Json(r.iterations);
    if (include_values) {
      o["hub"] = NumberArray(r.hub);
      o["authority"] = NumberArray(r.authority);
    }
    return Json(std::move(o));
  }

  Json operator()(const PprResult& r) const {
    Json::Object o;
    o["iterations"] = Json(r.iterations);
    if (include_values) o["rank"] = NumberArray(r.rank);
    return Json(std::move(o));
  }

  Json operator()(const engine::MatrixResult& r) const {
    Json::Object o;
    o["num_sources"] = Json(static_cast<std::int64_t>(r.num_sources));
    o["num_targets"] = Json(static_cast<std::int64_t>(r.num_targets));
    o["waves"] = Json(static_cast<std::int64_t>(r.waves));
    // The table IS the payload (unlike the per-vertex arrays the
    // `values` flag gates): one row per source, +inf cells shipped as
    // null since JSON has no non-finite numbers.
    Json::Array rows;
    rows.reserve(r.num_sources);
    for (std::size_t i = 0; i < r.num_sources; ++i) {
      Json::Array row;
      row.reserve(r.num_targets);
      for (std::size_t j = 0; j < r.num_targets; ++j) {
        const weight_t d = r.table[i * r.num_targets + j];
        if (d < std::numeric_limits<weight_t>::infinity()) {
          row.emplace_back(static_cast<double>(d));
        } else {
          row.emplace_back();
        }
      }
      rows.emplace_back(std::move(row));
    }
    o["table"] = Json(std::move(rows));
    if (!r.paths.empty()) {
      Json::Array paths;
      paths.reserve(r.paths.size());
      for (const auto& p : r.paths) paths.push_back(NumberArray(p));
      o["paths"] = Json(std::move(paths));
    }
    return Json(std::move(o));
  }
};

}  // namespace

std::optional<WireRequest> DecodeRequest(std::string_view line,
                                         const std::string& default_graph,
                                         std::string* error) {
  std::string parse_error;
  std::optional<Json> parsed = Json::Parse(line, &parse_error);
  if (!parsed) {
    FailDecode(error, "bad JSON: " + parse_error);
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    FailDecode(error, "request must be a JSON object");
    return std::nullopt;
  }

  WireRequest out;
  if (const Json* tag = parsed->Find("tag")) out.tag = *tag;

  std::string op = "query";
  if (const Json* v = parsed->Find("op")) {
    if (!v->is_string()) {
      FailDecode(error, "'op' must be a string");
      return std::nullopt;
    }
    op = v->as_string();
  }
  if (op == "ping" || op == "stats" || op == "graphs") {
    // Ops take no payload; anything else present is a client bug.
    for (const auto& [key, value] : parsed->as_object()) {
      (void)value;
      if (key != "op" && key != "tag") {
        FailDecode(error, "unknown field '" + key + "' for op '" + op + "'");
        return std::nullopt;
      }
    }
    out.op = op == "ping"    ? WireRequest::Op::kPing
             : op == "stats" ? WireRequest::Op::kStats
                             : WireRequest::Op::kGraphs;
    return out;
  }
  if (op == "add_edges" || op == "remove_edges" || op == "commit") {
    const bool needs_edges = op != "commit";
    for (const auto& [key, value] : parsed->as_object()) {
      (void)value;
      if (key == "op" || key == "tag" || key == "graph" ||
          (needs_edges && key == "edges")) {
        continue;
      }
      FailDecode(error, "unknown field '" + key + "' for op '" + op + "'");
      return std::nullopt;
    }
    out.op = op == "add_edges"      ? WireRequest::Op::kAddEdges
             : op == "remove_edges" ? WireRequest::Op::kRemoveEdges
                                    : WireRequest::Op::kCommit;
    out.graph = default_graph;
    if (const Json* v = parsed->Find("graph")) {
      if (!v->is_string()) {
        FailDecode(error, "'graph' must be a string");
        return std::nullopt;
      }
      out.graph = v->as_string();
    }
    if (out.graph.empty()) {
      FailDecode(error, "missing required field 'graph'");
      return std::nullopt;
    }
    if (needs_edges) {
      const Json* edges = parsed->Find("edges");
      if (!edges || !edges->is_array() || edges->as_array().empty()) {
        FailDecode(error, "'edges' must be a non-empty array");
        return std::nullopt;
      }
      out.edges.reserve(edges->as_array().size());
      for (const Json& item : edges->as_array()) {
        if (!item.is_array() || item.as_array().size() < 2 ||
            item.as_array().size() > 3) {
          FailDecode(error,
                     "each edge must be [src, dst] or [src, dst, weight]");
          return std::nullopt;
        }
        const Json::Array& triple = item.as_array();
        long long src = 0, dst = 0;
        if (!GetInt(triple[0], "edges", INT32_MIN, INT32_MAX, &src, error) ||
            !GetInt(triple[1], "edges", INT32_MIN, INT32_MAX, &dst, error)) {
          return std::nullopt;
        }
        dynamic::EdgeUpdate up;
        up.src = static_cast<vid_t>(src);
        up.dst = static_cast<vid_t>(dst);
        if (triple.size() == 3) {
          double w = 0.0;
          if (!GetFinite(triple[2], "edges", &w, error)) return std::nullopt;
          up.weight = static_cast<weight_t>(w);
        }
        out.edges.push_back(up);
      }
    }
    return out;
  }
  if (op != "query") {
    FailDecode(error, "unknown op '" + op +
                          "' (expected query, ping, stats, graphs, "
                          "add_edges, remove_edges, commit)");
    return std::nullopt;
  }

  out.op = WireRequest::Op::kQuery;
  static const std::set<std::string> kQueryKeys = {
      "op",     "graph",   "kind",  "source", "seeds",       "sources",
      "targets", "paths",  "opts",  "values", "deadline_ms", "epoch",
      "tag",
  };
  for (const auto& [key, value] : parsed->as_object()) {
    (void)value;
    if (kQueryKeys.count(key) == 0) {
      FailDecode(error, "unknown field '" + key + "' in query request");
      return std::nullopt;
    }
  }

  out.graph = default_graph;
  if (const Json* v = parsed->Find("graph")) {
    if (!v->is_string()) {
      FailDecode(error, "'graph' must be a string");
      return std::nullopt;
    }
    out.graph = v->as_string();
  }
  if (out.graph.empty()) {
    FailDecode(error, "missing required field 'graph'");
    return std::nullopt;
  }

  const Json* kind = parsed->Find("kind");
  if (!kind || !kind->is_string()) {
    FailDecode(error, "missing required string field 'kind'");
    return std::nullopt;
  }
  if (!DecodeKind(kind->as_string(), *parsed, &out.request, error)) {
    return std::nullopt;
  }
  // Kind-specific top-level fields are rejected elsewhere so they can't
  // be silently ignored (DecodeKind consumed them for their kind).
  if (parsed->Find("seeds") &&
      !std::holds_alternative<engine::PprQuery>(out.request)) {
    FailDecode(error, "'seeds' is only valid for kind 'ppr'");
    return std::nullopt;
  }
  const bool is_matrix =
      std::holds_alternative<engine::MatrixQuery>(out.request);
  for (const char* key : {"sources", "targets", "paths"}) {
    if (parsed->Find(key) && !is_matrix) {
      FailDecode(error, "'" + std::string(key) +
                            "' is only valid for kind 'matrix'");
      return std::nullopt;
    }
  }
  if (parsed->Find("source") &&
      !std::holds_alternative<engine::BfsQuery>(out.request) &&
      !std::holds_alternative<engine::SsspQuery>(out.request) &&
      !std::holds_alternative<engine::BcQuery>(out.request) &&
      !std::holds_alternative<engine::PprQuery>(out.request)) {
    FailDecode(error, "'source' is only valid for kinds bfs, sssp, bc, ppr");
    return std::nullopt;
  }

  if (const Json* v = parsed->Find("values")) {
    if (!GetBool(*v, "values", &out.include_values, error)) {
      return std::nullopt;
    }
  }
  if (const Json* v = parsed->Find("deadline_ms")) {
    double d = 0.0;
    if (!GetFinite(*v, "deadline_ms", &d, error)) return std::nullopt;
    if (!(d >= 0.0)) {
      FailDecode(error, "'deadline_ms' must be >= 0");
      return std::nullopt;
    }
    out.deadline_ms = d;
  }
  if (const Json* v = parsed->Find("epoch")) {
    // Epochs beyond 2^53 don't survive the double-typed wire anyway.
    long long e = 0;
    if (!GetInt(*v, "epoch", 0, 1LL << 53, &e, error)) return std::nullopt;
    out.epoch = static_cast<std::uint64_t>(e);
  }
  return out;
}

Json EncodeResult(std::uint64_t id, const Json& tag, const char* kind,
                  const engine::QueryResponse& response,
                  bool include_values) {
  Json::Object o;
  o["op"] = Json("result");
  o["id"] = Json(id);
  if (!tag.is_null()) o["tag"] = tag;
  o["kind"] = Json(kind);
  o["status"] = Json(engine::ToString(response.status));
  o["queue_ms"] = Json(response.queue_ms);
  o["run_ms"] = Json(response.run_ms);
  o["total_ms"] = Json(response.total_ms);
  if (response.status == engine::QueryStatus::kDone) {
    o["result"] = std::visit(PayloadEncoder{include_values}, response.result);
  } else if (!response.error.empty()) {
    o["error"] = Json(response.error);
  }
  // Admission-control refusals are transient by contract: the same
  // request resubmitted after backoff is expected to succeed.
  if (response.status == engine::QueryStatus::kRejected) {
    o["retryable"] = Json(true);
  }
  return Json(std::move(o));
}

Json EncodeError(const Json& tag, const std::string& error, bool retryable) {
  Json::Object o;
  o["op"] = Json("error");
  if (!tag.is_null()) o["tag"] = tag;
  o["error"] = Json(error);
  if (retryable) o["retryable"] = Json(true);
  return Json(std::move(o));
}

Json EncodeResultPayload(const engine::QueryResult& result,
                         bool include_values) {
  return std::visit(PayloadEncoder{include_values}, result);
}

}  // namespace gunrock::serve
