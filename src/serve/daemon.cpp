#include "serve/daemon.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace gunrock::serve {

namespace {

engine::QueryEngineOptions EngineOptions(const DaemonConfig& config) {
  engine::QueryEngineOptions opts;
  opts.max_in_flight = config.inflight;
  opts.queue_capacity = config.queue;
  opts.backpressure =
      config.reject ? engine::QueryEngineOptions::Backpressure::kReject
                    : engine::QueryEngineOptions::Backpressure::kBlock;
  opts.coalescing = config.coalescing;
  return opts;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* const Daemon::kFamilies[Daemon::kNumFamilies] = {
    "bfs",  "sssp",      "bc", "cc",   "pagerank", "mst",
    "triangles", "lp", "hits", "salsa", "ppr", "matrix",
};

/// Per-connection state. The reader thread owns the socket's read side
/// and is the stream's only submitter; the writer thread drains the
/// stream; both write lines under `write_mutex`.
struct Daemon::Connection {
  std::uint64_t id = 0;
  Socket socket;
  std::mutex write_mutex;
  engine::CompletionStream stream;

  /// Set once the connection is evicted or its socket broke: the writer
  /// keeps draining the stream (completions must be consumed) but skips
  /// the socket, and the reader cancels in-flight queries on exit.
  std::atomic<bool> dead{false};
  /// Completions submitted but not yet delivered to the socket — the
  /// bounded per-connection write backlog (config.write_queue_max).
  std::atomic<std::size_t> outstanding{0};

  struct QueryMeta {
    std::string kind;
    Json tag;
    bool values = true;
  };
  std::mutex meta_mutex;
  std::vector<QueryMeta> meta;  // index == stream attach order

  std::thread reader;
  std::thread writer;
};

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      engine_(EngineOptions(config_)),
      start_time_(std::chrono::steady_clock::now()) {
  engine_.SetObserver([this](const engine::QueryEngine::QueryObservation& o) {
    Observe(o);
  });
}

Daemon::~Daemon() {
  Stop();  // joins every engine and connection thread: no observer call
           // can race the histograms' destruction below
  engine_.SetObserver(nullptr);
}

void Daemon::AddGraph(const std::string& name, graph::Csr graph,
                      const engine::GraphOptions& gopts) {
  GR_CHECK(!listener_.listening(), "AddGraph must precede Start()");
  const auto vertices = graph.num_vertices();
  const auto edges = graph.num_edges();
  engine_.RegisterGraph(name, std::move(graph), gopts);
  GraphConfig info;
  info.name = name;
  info.spec = "(pre-built)";
  info.kind = "prebuilt";
  info.weight = gopts.weight;
  info.quota = gopts.quota;
  info.params["vertices"] = std::to_string(vertices);
  info.params["edges"] = std::to_string(edges);
  config_.graphs.push_back(std::move(info));
}

void Daemon::AddDynamicGraph(const std::string& name, graph::Csr graph,
                             const engine::GraphOptions& gopts,
                             const dynamic::DynamicGraphOptions& dopts) {
  GR_CHECK(!listener_.listening(), "AddDynamicGraph must precede Start()");
  const auto vertices = graph.num_vertices();
  const auto edges = graph.num_edges();
  auto dyn = std::make_shared<dynamic::DynamicGraph>(std::move(graph), dopts);
  engine_.RegisterDynamicGraph(name, std::move(dyn), gopts);
  GraphConfig info;
  info.name = name;
  info.spec = "(pre-built)";
  info.kind = "prebuilt";
  info.weight = gopts.weight;
  info.quota = gopts.quota;
  info.dynamic = true;
  info.params["vertices"] = std::to_string(vertices);
  info.params["edges"] = std::to_string(edges);
  config_.graphs.push_back(std::move(info));
}

bool Daemon::Start(std::string* error) {
  if (!log_.Open(config_.log_file, config_.log_max_bytes, config_.log_keep,
                 error)) {
    return false;
  }

  // Stale-pid check before anything expensive: refuse only if the
  // recorded pid is actually alive; a leftover file from a crash is
  // logged and replaced.
  if (!config_.pid_file.empty()) {
    std::ifstream in(config_.pid_file);
    long long pid = 0;
    if (in && (in >> pid) && pid > 0) {
      errno = 0;
      const bool alive =
          ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
      if (alive) {
        if (error) {
          *error = "pid file '" + config_.pid_file + "' records live pid " +
                   std::to_string(pid) + "; refusing to start";
        }
        return false;
      }
      Log("stale_pid", "file=" + config_.pid_file +
                           " pid=" + std::to_string(pid) +
                           " action=replace");
    }
  }

  // Materialize the config's graph specs (prebuilt entries are already
  // registered by AddGraph).
  for (GraphConfig& spec : config_.graphs) {
    if (spec.kind == "prebuilt") continue;
    try {
      graph::Csr csr = BuildGraphFromSpec(spec);
      spec.params["vertices"] = std::to_string(csr.num_vertices());
      spec.params["edges"] = std::to_string(csr.num_edges());
      engine::GraphOptions gopts;
      gopts.weight = spec.weight;
      gopts.quota = spec.quota;
      Log("graph",
          "name=" + spec.name + " spec=" + spec.spec +
              " vertices=" + spec.params["vertices"] +
              " edges=" + spec.params["edges"] +
              " weight=" + std::to_string(spec.weight) +
              " quota=" + std::to_string(spec.quota) +
              " dynamic=" + (spec.dynamic ? "on" : "off"));
      if (spec.dynamic) {
        engine_.RegisterDynamicGraph(
            spec.name, std::make_shared<dynamic::DynamicGraph>(std::move(csr)),
            gopts);
      } else {
        engine_.RegisterGraph(spec.name, std::move(csr), gopts);
      }
    } catch (const std::exception& e) {
      if (error) *error = e.what();
      return false;
    }
  }
  if (config_.graphs.empty()) {
    if (error) *error = "no graphs configured (need at least one graph =)";
    return false;
  }
  if (config_.graphs.size() == 1) default_graph_ = config_.graphs[0].name;

  if (!listener_.Bind(config_.host, config_.port, error)) return false;

  if (config_.admin_port >= 0) {
    if (!admin_listener_.Bind(config_.host, config_.admin_port, error)) {
      listener_.Close();
      return false;
    }
    if (!config_.admin_port_file.empty()) {
      std::ofstream out(config_.admin_port_file, std::ios::trunc);
      out << admin_listener_.port() << "\n";
      if (!out) {
        if (error) {
          *error = "cannot write admin port file '" +
                   config_.admin_port_file + "'";
        }
        admin_listener_.Close();
        listener_.Close();
        return false;
      }
    }
  }

  // Pid file first: the port file is the "ready" handshake for scripts,
  // so by the time it appears the pid file must already exist.
  if (!config_.pid_file.empty()) {
    std::ofstream out(config_.pid_file, std::ios::trunc);
    out << ::getpid() << "\n";
    if (!out) {
      if (error) {
        *error = "cannot write pid file '" + config_.pid_file + "'";
      }
      listener_.Close();
      return false;
    }
  }
  if (!config_.port_file.empty()) {
    std::ofstream out(config_.port_file, std::ios::trunc);
    out << listener_.port() << "\n";
    if (!out) {
      if (error) {
        *error = "cannot write port file '" + config_.port_file + "'";
      }
      listener_.Close();
      return false;
    }
  }

  Log("listening",
      "host=" + config_.host + " port=" + std::to_string(listener_.port()) +
          " admin_port=" +
          (config_.admin_port >= 0 ? std::to_string(admin_listener_.port())
                                   : std::string("off")) +
          " inflight=" + std::to_string(config_.inflight) +
          " queue=" + std::to_string(config_.queue));
  if (config_.admin_port >= 0) {
    admin_thread_ = std::thread([this] { AdminLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ready_.store(true, std::memory_order_release);
  return true;
}

void Daemon::AcceptLoop() {
  for (;;) {
    std::optional<Socket> accepted = listener_.Accept();
    if (!accepted) return;  // listener closed: drain has begun
    if (draining_.load()) continue;  // raced with Stop(): drop it

    if (config_.max_connections > 0) {
      std::size_t live = 0;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        live = connections_.size();
      }
      if (live >= config_.max_connections) {
        // Over capacity: answer with the canonical retryable error and
        // close — a short write budget so a hostile peer cannot stall
        // the accept loop either.
        sheds_.fetch_add(1, std::memory_order_relaxed);
        Log("shed", "reason=max_connections live=" + std::to_string(live) +
                        " max=" + std::to_string(config_.max_connections));
        accepted->WriteAllWithin(
            EncodeError(Json(), "server at connection capacity", true)
                    .Dump() +
                "\n",
            1000.0);
        continue;
      }
    }
    if (config_.sndbuf > 0) accepted->SetSendBuffer(config_.sndbuf);

    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*accepted);
    conn->stream = engine_.OpenStream();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      conn->id = next_connection_id_++;
      connections_.push_back(conn);
    }
    Log("accept", "conn=" + std::to_string(conn->id));
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void Daemon::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  Socket::ReadOptions opts;
  opts.max_line = config_.max_line;
  opts.line_deadline_ms = config_.read_deadline_ms;
  opts.idle_timeout_ms = config_.idle_timeout_ms;
  for (;;) {
    Socket::ReadResult read = conn->socket.ReadLineBounded(opts);
    if (read.status == Socket::ReadStatus::kLine) {
      HandleLine(conn, read.line);
      continue;
    }
    if (read.status == Socket::ReadStatus::kTimeout) {
      // Slow-loris (partial line past the deadline) or idle past the
      // idle timeout: evict rather than park this thread forever.
      Evict(conn, "read_timeout");
    } else if (read.status == Socket::ReadStatus::kOversized) {
      // One error response (there is no line boundary to resync on),
      // then a clean close.
      SendLine(conn, EncodeError(Json(),
                                 "request line exceeds max_line (" +
                                     std::to_string(config_.max_line) +
                                     " bytes)")
                         .Dump());
      Evict(conn, "oversized_line");
    }
    break;  // kEof / kError: normal teardown
  }
  // No further submissions; the writer drains what is in flight and
  // exits. The reader is the stream's only submitter, so after this
  // point handles() is stable and an evicted connection's in-flight
  // queries can be cancelled safely.
  conn->stream.CloseSubmission();
  if (conn->dead.load(std::memory_order_acquire)) {
    for (const engine::QueryHandle& handle : conn->stream.handles()) {
      handle.Cancel();
    }
  }
  conn->writer.join();
  conn->socket.Close();
  Log("close", "conn=" + std::to_string(conn->id) +
                   " served=" + std::to_string(conn->stream.delivered()));
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->get() == conn.get()) {
        finished_.push_back(std::move(*it));
        connections_.erase(it);
        break;
      }
    }
  }
  connections_cv_.notify_all();
}

void Daemon::WriterLoop(const std::shared_ptr<Connection>& conn) {
  while (std::optional<engine::CompletionStream::Completion> done =
             conn->stream.Next()) {
    Connection::QueryMeta meta;
    {
      std::lock_guard<std::mutex> lock(conn->meta_mutex);
      meta = conn->meta[done->index];
    }
    const engine::QueryResponse& response = done->handle.Wait();
    conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    // A dead connection's stream must still drain (completions are
    // consumed exactly once), but its socket is off limits.
    if (conn->dead.load(std::memory_order_acquire)) continue;
    const Json reply = EncodeResult(done->handle.id(), meta.tag,
                                    meta.kind.c_str(), response, meta.values);
    SendLine(conn, reply.Dump());
  }
}

bool Daemon::SendLine(const std::shared_ptr<Connection>& conn,
                      const std::string& line) {
  if (conn->dead.load(std::memory_order_acquire)) return false;
  Socket::WriteStatus status;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    status = conn->socket.WriteAllWithin(line + "\n",
                                         config_.write_deadline_ms);
  }
  if (status == Socket::WriteStatus::kOk) return true;
  // kTimeout is the stalled-reader attack; kError means the peer is
  // gone. Either way the connection is done for.
  Evict(conn, status == Socket::WriteStatus::kTimeout ? "write_timeout"
                                                      : "write_error");
  return false;
}

void Daemon::Evict(const std::shared_ptr<Connection>& conn,
                   const char* reason) {
  if (conn->dead.exchange(true, std::memory_order_acq_rel)) return;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  Log("evict", "conn=" + std::to_string(conn->id) + " reason=" + reason);
  // Wakes a blocked reader with EOF and fails all further sends; the
  // reader's teardown cancels the in-flight queries.
  conn->socket.ShutdownBoth();
}

void Daemon::AdminLoop() {
  // Sequential one-shot exchanges: health probes are tiny and rare, so
  // one thread with strict deadlines is simpler and safer than a pool.
  for (;;) {
    std::optional<Socket> accepted = admin_listener_.Accept();
    if (!accepted) return;
    ServeAdmin(std::move(*accepted));
  }
}

void Daemon::ServeAdmin(Socket socket) {
  Socket::ReadOptions opts;
  opts.max_line = 4096;
  opts.line_deadline_ms = 2000.0;
  opts.idle_timeout_ms = 2000.0;
  Socket::ReadResult read = socket.ReadLineBounded(opts);
  if (read.status != Socket::ReadStatus::kLine) return;

  // Both grammars: bare "/livez" from line clients and
  // "GET /livez HTTP/1.1" from curl/kubelet-style probes.
  std::string path = read.line;
  bool http = false;
  if (path.rfind("GET ", 0) == 0) {
    http = true;
    path = path.substr(4);
    const std::size_t sp = path.find(' ');
    if (sp != std::string::npos) path = path.substr(0, sp);
  }

  int status = 200;
  std::string body;
  bool end_marker = false;
  if (path == "/livez") {
    // Liveness: the process answers, full stop — stays true during
    // drain so an orchestrator does not kill a draining daemon.
    body = "ok\n";
  } else if (path == "/readyz") {
    const bool ready = ready_.load(std::memory_order_acquire) &&
                       !draining_.load(std::memory_order_acquire);
    body = ready ? "ready\n" : "draining\n";
    if (!ready) status = 503;
  } else if (path == "/stats") {
    body = StatsText();
    end_marker = true;
  } else if (path == "/reopen-logs") {
    log_.Reopen();
    Log("reopen_logs", "source=admin");
    body = "ok\n";
  } else {
    status = 404;
    body = "unknown admin path '" + path + "'\n";
  }

  if (http) {
    const char* reason = status == 200   ? "OK"
                         : status == 503 ? "Service Unavailable"
                                         : "Not Found";
    socket.WriteAllWithin(
        "HTTP/1.0 " + std::to_string(status) + " " + reason +
            "\r\nContent-Type: text/plain\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
            body,
        2000.0);
  } else {
    if (end_marker) body += "# end\n";
    socket.WriteAllWithin(body, 2000.0);
  }
}

void Daemon::HandleLine(const std::shared_ptr<Connection>& conn,
                        const std::string& line) {
  if (line.empty()) return;

  // Operator endpoints: "/stats" for line clients, "GET /stats" for curl.
  const bool bare_stats = line == "/stats";
  const bool http_stats = line.rfind("GET /stats", 0) == 0;
  if (bare_stats || http_stats) {
    const std::string body = StatsText();
    if (http_stats) {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      conn->socket.WriteAllWithin(
          "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nContent-Length: " +
              std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
              body,
          config_.write_deadline_ms);
      // HTTP clients expect the connection to end the exchange.
      conn->socket.ShutdownRead();
    } else {
      // Multi-line page on a line protocol: explicit end marker.
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      conn->socket.WriteAllWithin(body + "# end\n",
                                  config_.write_deadline_ms);
    }
    return;
  }

  std::string error;
  std::optional<WireRequest> request =
      DecodeRequest(line, default_graph_, &error);
  if (!request) {
    SendLine(conn, EncodeError(Json(), error).Dump());
    return;
  }

  switch (request->op) {
    case WireRequest::Op::kPing: {
      Json::Object o;
      o["op"] = Json("pong");
      if (!request->tag.is_null()) o["tag"] = request->tag;
      SendLine(conn, Json(std::move(o)).Dump());
      return;
    }
    case WireRequest::Op::kGraphs: {
      Json::Array graphs;
      for (const GraphConfig& g : config_.graphs) {
        Json::Object o;
        o["name"] = Json(g.name);
        o["weight"] = Json(g.weight);
        o["quota"] = Json(static_cast<std::int64_t>(g.quota));
        o["dynamic"] = Json(g.dynamic);
        const auto v = g.params.find("vertices");
        const auto e = g.params.find("edges");
        if (v != g.params.end()) o["vertices"] = Json(v->second);
        if (e != g.params.end()) o["edges"] = Json(e->second);
        graphs.emplace_back(std::move(o));
      }
      Json::Object o;
      o["op"] = Json("graphs");
      if (!request->tag.is_null()) o["tag"] = request->tag;
      o["graphs"] = Json(std::move(graphs));
      SendLine(conn, Json(std::move(o)).Dump());
      return;
    }
    case WireRequest::Op::kStats: {
      const engine::QueryEngine::Stats s = engine_.stats();
      Json::Object o;
      o["op"] = Json("stats");
      if (!request->tag.is_null()) o["tag"] = request->tag;
      o["submitted"] = Json(s.submitted);
      o["done"] = Json(s.done);
      o["cancelled"] = Json(s.cancelled);
      o["deadline_exceeded"] = Json(s.deadline_exceeded);
      o["rejected"] = Json(s.rejected);
      o["failed"] = Json(s.failed);
      o["waves"] = Json(s.waves);
      o["coalesced"] = Json(s.coalesced);
      o["max_wave"] = Json(s.max_wave);
      o["queued"] = Json(s.queued);
      o["running"] = Json(s.running);
      SendLine(conn, Json(std::move(o)).Dump());
      return;
    }
    case WireRequest::Op::kAddEdges:
    case WireRequest::Op::kRemoveEdges: {
      // Mutations are applied inline by the reader (they are cheap buffer
      // appends) and answered immediately; running queries are unaffected
      // because they hold their snapshot from admission time.
      try {
        std::shared_ptr<dynamic::DynamicGraph> dyn =
            engine_.GetDynamicGraph(request->graph);
        GR_CHECK(dyn != nullptr,
                 "graph '" + request->graph + "' is not dynamic");
        const std::size_t applied =
            request->op == WireRequest::Op::kAddEdges
                ? dyn->AddEdges(request->edges)
                : dyn->RemoveEdges(request->edges);
        Json::Object o;
        o["op"] = Json("mutated");
        if (!request->tag.is_null()) o["tag"] = request->tag;
        o["applied"] = Json(static_cast<std::int64_t>(applied));
        o["ignored"] =
            Json(static_cast<std::int64_t>(request->edges.size() - applied));
        SendLine(conn, Json(std::move(o)).Dump());
      } catch (const std::exception& e) {
        SendLine(conn, EncodeError(request->tag, e.what()).Dump());
      }
      return;
    }
    case WireRequest::Op::kCommit: {
      try {
        std::shared_ptr<dynamic::DynamicGraph> dyn =
            engine_.GetDynamicGraph(request->graph);
        GR_CHECK(dyn != nullptr,
                 "graph '" + request->graph + "' is not dynamic");
        const dynamic::CommitInfo info = dyn->Commit();
        Log("commit", "graph=" + request->graph +
                          " epoch=" + std::to_string(info.epoch) +
                          " changed=" + (info.changed ? "1" : "0") +
                          " compacted=" + (info.compacted ? "1" : "0"));
        Json::Object o;
        o["op"] = Json("committed");
        if (!request->tag.is_null()) o["tag"] = request->tag;
        o["epoch"] = Json(info.epoch);
        o["changed"] = Json(info.changed);
        o["compacted"] = Json(info.compacted);
        o["base_edges"] = Json(static_cast<std::int64_t>(info.base_edges));
        o["delta_edges"] = Json(static_cast<std::int64_t>(info.delta_edges));
        SendLine(conn, Json(std::move(o)).Dump());
      } catch (const std::exception& e) {
        SendLine(conn, EncodeError(request->tag, e.what()).Dump());
      }
      return;
    }
    case WireRequest::Op::kQuery:
      break;
  }

  // Overload shedding, both gates answered with the canonical retryable
  // error instead of a silent drop. Gate 1: the engine's admission queue
  // is over the configured depth. Gate 2: this connection's undelivered
  // completion backlog is at the bounded write-queue cap (a client that
  // submits faster than it reads must not buffer unboundedly).
  if (config_.shed_queue_depth > 0 &&
      engine_.stats().queued >= config_.shed_queue_depth) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    Log("shed", "conn=" + std::to_string(conn->id) +
                    " reason=queue_depth depth=" +
                    std::to_string(config_.shed_queue_depth));
    SendLine(conn, EncodeError(request->tag,
                               "server overloaded: admission queue full",
                               true)
                       .Dump());
    return;
  }
  if (conn->outstanding.load(std::memory_order_acquire) >=
      config_.write_queue_max) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    Log("shed", "conn=" + std::to_string(conn->id) +
                    " reason=write_queue max=" +
                    std::to_string(config_.write_queue_max));
    SendLine(conn, EncodeError(request->tag,
                               "connection write queue full", true)
                       .Dump());
    return;
  }

  engine::SubmitOptions options;
  options.deadline_ms = request->deadline_ms > 0.0
                            ? request->deadline_ms
                            : config_.default_deadline_ms;
  options.epoch = request->epoch;

  // The reader is this stream's only submitter, so the next attach index
  // is exactly meta.size(); record metadata first so the writer can never
  // observe a completion without it.
  {
    std::lock_guard<std::mutex> lock(conn->meta_mutex);
    conn->meta.push_back(Connection::QueryMeta{
        engine::KindName(request->request), request->tag,
        request->include_values});
  }
  conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
  try {
    engine_.Submit(request->graph, std::move(request->request), options,
                   conn->stream);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(conn->meta_mutex);
      conn->meta.pop_back();
    }
    conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    SendLine(conn, EncodeError(request->tag, e.what()).Dump());
  }
}

void Daemon::Observe(const engine::QueryEngine::QueryObservation& obs) {
  if (LatencyHistogram* hist = FamilyHistogram(obs.kind)) {
    hist->Record(obs.total_ms);
  }
  observed_total_.fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram* Daemon::FamilyHistogram(const char* kind) {
  for (int i = 0; i < kNumFamilies; ++i) {
    if (std::strcmp(kFamilies[i], kind) == 0) return &family_histograms_[i];
  }
  return nullptr;
}

std::string Daemon::StatsText() const {
  std::string out;
  char buf[160];
  const auto add = [&](const char* name, double value) {
    std::snprintf(buf, sizeof buf, "%s %.6g\n", name, value);
    out += buf;
  };
  const auto addu = [&](const char* name, std::uint64_t value) {
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", name, value);
    out += buf;
  };

  out += "# gunrockd stats\n";
  add("gunrockd_uptime_ms", MsSince(start_time_));
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    addu("gunrockd_connections",
         static_cast<std::uint64_t>(connections_.size()));
  }
  addu("gunrockd_observed_total",
       observed_total_.load(std::memory_order_relaxed));
  addu("gunrockd_ready",
       ready_.load(std::memory_order_acquire) && !draining_.load() ? 1 : 0);
  addu("gunrockd_draining", draining_.load() ? 1 : 0);
  addu("gunrockd_evictions", evictions_.load(std::memory_order_relaxed));
  addu("gunrockd_sheds", sheds_.load(std::memory_order_relaxed));
  addu("gunrockd_accept_retries",
       listener_.accept_retries() + admin_listener_.accept_retries());
  addu("gunrockd_log_rotations", log_.rotations());

  const engine::QueryEngine::Stats s = engine_.stats();
  addu("engine_submitted", s.submitted);
  addu("engine_done", s.done);
  addu("engine_cancelled", s.cancelled);
  addu("engine_deadline_exceeded", s.deadline_exceeded);
  addu("engine_rejected", s.rejected);
  addu("engine_failed", s.failed);
  addu("engine_waves", s.waves);
  addu("engine_coalesced", s.coalesced);
  addu("engine_max_wave", s.max_wave);
  addu("engine_queued", s.queued);
  addu("engine_running", s.running);

  const engine::WorkspacePool::Stats w = engine_.workspace_stats();
  addu("workspace_capacity", static_cast<std::uint64_t>(w.capacity));
  addu("workspace_created", static_cast<std::uint64_t>(w.created));
  addu("workspace_acquired", static_cast<std::uint64_t>(w.acquired));
  addu("workspace_recycled", static_cast<std::uint64_t>(w.recycled));
  addu("workspace_outstanding", static_cast<std::uint64_t>(w.outstanding));

  // Dynamic-graph gauges, one line set per registered dynamic graph.
  for (const GraphConfig& g : config_.graphs) {
    if (!g.dynamic) continue;
    std::shared_ptr<dynamic::DynamicGraph> dyn;
    try {
      dyn = engine_.GetDynamicGraph(g.name);
    } catch (const std::exception&) {
      continue;  // registration failed at startup; nothing to report
    }
    if (!dyn) continue;
    const dynamic::DynamicGraphStats ds = dyn->Stats();
    const auto gauge = [&](const char* name, std::uint64_t value) {
      std::snprintf(buf, sizeof buf, "%s{graph=\"%s\"} %" PRIu64 "\n", name,
                    g.name.c_str(), value);
      out += buf;
    };
    gauge("dynamic_epoch", ds.epoch);
    gauge("dynamic_commits", ds.commits);
    gauge("dynamic_compactions", ds.compactions);
    gauge("dynamic_base_edges", static_cast<std::uint64_t>(ds.base_edges));
    gauge("dynamic_delta_edges", static_cast<std::uint64_t>(ds.delta_edges));
    gauge("dynamic_tombstones", static_cast<std::uint64_t>(ds.tombstones));
    gauge("dynamic_pending_inserts",
          static_cast<std::uint64_t>(ds.pending_inserts));
    gauge("dynamic_pending_removes",
          static_cast<std::uint64_t>(ds.pending_removes));
  }

  for (int i = 0; i < kNumFamilies; ++i) {
    const LatencyHistogram::Snapshot snap = family_histograms_[i].Take();
    if (snap.total == 0) continue;
    const char* kind = kFamilies[i];
    std::snprintf(buf, sizeof buf,
                  "query_latency_ms{kind=\"%s\"} count=%" PRIu64
                  " mean=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
                  kind, snap.total, snap.MeanMs(), snap.Quantile(0.50),
                  snap.Quantile(0.95), snap.Quantile(0.99));
    out += buf;
  }
  return out;
}

void Daemon::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  // Readiness flips first: probes see "draining" for the whole drain
  // while liveness stays true (the admin listener closes last).
  ready_.store(false, std::memory_order_release);
  draining_.store(true);

  const auto t0 = std::chrono::steady_clock::now();
  if (listener_.listening()) {
    Log("drain", "phase=begin deadline_ms=" +
                     std::to_string(config_.drain_deadline_ms));
    listener_.Close();  // step 1: refuse new connects
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Step 2: no new requests on existing connections — readers see EOF
  // and close their streams; in-flight queries keep running.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) conn->socket.ShutdownRead();
  }

  // Step 3: wait out the drain deadline for connections to finish
  // delivering their in-flight completions.
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    connections_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(config_.drain_deadline_ms),
        [this] { return connections_.empty(); });
    // Step 4: past the deadline — cancel the stragglers' queries.
    if (!connections_.empty()) {
      Log("drain", "phase=deadline stragglers=" +
                       std::to_string(connections_.size()));
      for (const auto& conn : connections_) {
        for (const engine::QueryHandle& handle : conn->stream.handles()) {
          handle.Cancel();
        }
      }
    }
  }

  // Step 5: stop the engine (cancels queued queries, waits for running
  // ones — every stream drains, every writer exits), then wait for the
  // connection threads.
  engine_.Shutdown();
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    connections_cv_.wait(lock, [this] { return connections_.empty(); });
  }
  for (const auto& conn : finished_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  finished_.clear();
  if (!config_.pid_file.empty()) std::remove(config_.pid_file.c_str());
  Log("drain", "phase=done ms=" + std::to_string(MsSince(t0)));
  // The admin port outlives the drain so /readyz and /livez stay
  // scrapeable until the very end.
  if (admin_listener_.listening()) admin_listener_.Close();
  if (admin_thread_.joinable()) admin_thread_.join();
  stopped_ = true;
}

void Daemon::Wait() {
  // Stop() holds stop_mutex_ for its whole run; taking it here blocks
  // until a concurrent Stop() completes (or runs the no-op fast path
  // when Stop already finished).
  std::lock_guard<std::mutex> lock(stop_mutex_);
}

void Daemon::Log(const char* event, const std::string& fields) const {
  char head[96];
  std::snprintf(head, sizeof head, "gunrockd t=%.3f event=%s ",
                MsSince(start_time_) / 1000.0, event);
  log_.Write(head + fields);
}

}  // namespace gunrock::serve
