// Lock-free latency histograms for the daemon's observability layer.
//
// Fixed log-spaced buckets: bucket i covers latencies in
// [2^(i/2), 2^((i+1)/2)) microseconds — half-octave resolution (~±19%
// relative error on a reported quantile, plenty for p50/p95/p99 serving
// dashboards) across 64 buckets, i.e. 1 µs up to ~1.2 hours. Record() is
// one relaxed fetch_add on the bucket counter; there is no lock anywhere,
// so the engine's completion path can feed a histogram from every runner
// thread without contention. Snapshots are taken bucket-by-bucket and are
// therefore only approximately consistent under concurrent writes —
// exactly the trade every serving-stats page makes.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>

namespace gunrock::serve {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  /// Records one latency observation (milliseconds; negatives clamp to
  /// the first bucket). Wait-free, callable from any thread.
  void Record(double ms) {
    buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
    // Sum in integer nanoseconds so the mean needs no atomic<double>.
    const auto ns = static_cast<std::uint64_t>(
        ms > 0.0 ? ms * 1e6 : 0.0);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double sum_ms = 0.0;

    /// Latency at quantile q in [0, 1] — the geometric midpoint of the
    /// bucket holding the q-th observation (0 when empty).
    double Quantile(double q) const {
      if (total == 0) return 0.0;
      if (q < 0.0) q = 0.0;
      if (q > 1.0) q = 1.0;
      std::uint64_t rank = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total)));
      if (rank == 0) rank = 1;
      std::uint64_t seen = 0;
      for (int i = 0; i < kBuckets; ++i) {
        seen += counts[static_cast<std::size_t>(i)];
        if (seen >= rank) return BucketMidMs(i);
      }
      return BucketMidMs(kBuckets - 1);
    }

    double MeanMs() const {
      return total > 0 ? sum_ms / static_cast<double>(total) : 0.0;
    }
  };

  Snapshot Take() const {
    Snapshot snap;
    for (int i = 0; i < kBuckets; ++i) {
      const auto c =
          buckets_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
      snap.counts[static_cast<std::size_t>(i)] = c;
      snap.total += c;
    }
    snap.sum_ms = static_cast<double>(
                      total_ns_.load(std::memory_order_relaxed)) /
                  1e6;
    return snap;
  }

  /// Lower bound of bucket i in milliseconds: 2^(i/2) µs.
  static double BucketLowMs(int i) {
    return std::exp2(static_cast<double>(i) / 2.0) / 1000.0;
  }

  /// Geometric midpoint of bucket i (the value quantiles report).
  static double BucketMidMs(int i) {
    return std::exp2((static_cast<double>(i) + 0.5) / 2.0) / 1000.0;
  }

 private:
  static int BucketIndex(double ms) {
    const double us = ms * 1000.0;
    if (!(us > 1.0)) return 0;  // also catches NaN
    const int idx = static_cast<int>(std::log2(us) * 2.0);
    return idx >= kBuckets ? kBuckets - 1 : idx;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_ns_{0};
};

}  // namespace gunrock::serve
