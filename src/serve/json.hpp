// Minimal JSON value type for the gunrockd wire protocol.
//
// The daemon speaks newline-delimited JSON (one request or response per
// line); this is the strict little codec behind it — no dependencies, no
// extensions. Parsing is hardened the way an input path that faces the
// network must be: a depth cap against stack-exhaustion nesting, strict
// UTF-16 escape handling, and whole-input consumption (trailing garbage
// is an error, not an ignored tail). Numbers are IEEE doubles serialized
// with shortest-round-trip formatting, so a double survives
// encode→decode bit-exactly — the property the daemon's bit-identity
// guarantee (served results == direct engine calls) rests on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gunrock::serve {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// std::map keeps dumps deterministic (sorted keys) — handy for tests
  /// and for diffable logs.
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double n) : kind_(Kind::kNumber), number_(n) {}
  Json(int n) : kind_(Kind::kNumber), number_(n) {}
  Json(std::int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Json(std::uint64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Parses exactly one JSON value spanning the whole input (surrounding
  /// whitespace allowed, trailing garbage rejected). On failure returns
  /// nullopt and, when `error` is non-null, a human-readable reason.
  static std::optional<Json> Parse(std::string_view text,
                                   std::string* error = nullptr);

  /// Compact single-line serialization (never emits a newline — the
  /// protocol's line framing depends on it).
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace gunrock::serve
