#include "serve/log.hpp"

#include <sys/stat.h>

namespace gunrock::serve {

namespace {

std::uint64_t FileSize(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

LogSink::~LogSink() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) std::fclose(file_);
}

bool LogSink::Open(const std::string& path, std::uint64_t max_bytes,
                   int keep, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_ = path;
  max_bytes_ = max_bytes;
  keep_ = keep < 1 ? 1 : keep;
  written_ = 0;
  if (path_.empty()) return true;
  file_ = std::fopen(path_.c_str(), "a");
  if (!file_) {
    if (error) *error = "cannot open log file '" + path_ + "'";
    return false;
  }
  written_ = FileSize(path_);
  return true;
}

void LogSink::Write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_bytes_ > 0 && file_ && written_ >= max_bytes_) RotateLocked();
  std::FILE* out = file_ ? file_ : stderr;
  std::fprintf(out, "%s\n", line.c_str());
  std::fflush(out);
  written_ += line.size() + 1;
}

void LogSink::Reopen() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return;
  if (file_) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "a");
  written_ = file_ ? FileSize(path_) : 0;
}

void LogSink::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  // Shift generations oldest-first: path.(keep-1) -> path.keep, ...,
  // path -> path.1. rename(2) replaces the target, so path.keep falls
  // off the end.
  for (int k = keep_; k >= 1; --k) {
    const std::string to = path_ + "." + std::to_string(k);
    const std::string from = k == 1 ? path_ : path_ + "." + std::to_string(k - 1);
    std::rename(from.c_str(), to.c_str());
  }
  file_ = std::fopen(path_.c_str(), "a");
  written_ = 0;
  ++rotations_;
}

}  // namespace gunrock::serve
