#include "serve/config.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/market.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"

namespace gunrock::serve {

namespace {

std::string Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool FailConfig(std::string* error, std::string why) {
  if (error) *error = std::move(why);
  return false;
}

/// Positive integer directive value; `what` names the directive in errors.
bool ParsePositive(const std::string& value, const char* what, long long max,
                   long long* out, std::string* error) {
  const auto parsed = util::ParseInt(value, 1, max);
  if (!parsed) {
    return FailConfig(error, std::string(what) + " must be an integer in [1, " +
                                 std::to_string(max) + "], got '" + value +
                                 "'");
  }
  *out = *parsed;
  return true;
}

bool ParseOnOff(const std::string& value, const char* what, bool* out,
                std::string* error) {
  if (value == "on" || value == "true") {
    *out = true;
    return true;
  }
  if (value == "off" || value == "false") {
    *out = false;
    return true;
  }
  return FailConfig(error, std::string(what) + " must be on or off, got '" +
                               value + "'");
}

/// Required numeric generator parameter with checked parsing; throws the
/// startup error the config contract promises.
long long SpecInt(const GraphConfig& spec, const std::string& key,
                  long long fallback, long long lo, long long hi) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) return fallback;
  const auto parsed = util::ParseInt(it->second, lo, hi);
  GR_CHECK(parsed.has_value(),
           "graph '" + spec.name + "': parameter '" + key +
               "' must be an integer in [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "], got '" + it->second + "'");
  return *parsed;
}

double SpecDouble(const GraphConfig& spec, const std::string& key,
                  double fallback) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) return fallback;
  const auto parsed = util::ParseDouble(it->second);
  GR_CHECK(parsed.has_value(), "graph '" + spec.name + "': parameter '" +
                                   key + "' must be a number, got '" +
                                   it->second + "'");
  return *parsed;
}

void CheckSpecKeys(const GraphConfig& spec,
                   std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.params) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    GR_CHECK(ok, "graph '" + spec.name + "': unknown " + spec.kind +
                     " parameter '" + key + "'");
  }
}

}  // namespace

std::optional<GraphConfig> ParseGraphSpec(std::string_view text,
                                          std::string* error) {
  GraphConfig out;
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    FailConfig(error,
               "graph spec must look like NAME=KIND:params, got '" +
                   std::string(text) + "'");
    return std::nullopt;
  }
  out.name = Trim(text.substr(0, eq));
  out.spec = Trim(text.substr(eq + 1));

  std::string_view rest = out.spec;
  const std::size_t colon = rest.find(':');
  out.kind = Trim(rest.substr(0, colon));
  rest = colon == std::string_view::npos ? std::string_view{}
                                         : rest.substr(colon + 1);
  if (out.kind != "rmat" && out.kind != "rgg" && out.kind != "road" &&
      out.kind != "file") {
    FailConfig(error, "graph '" + out.name + "': unknown kind '" + out.kind +
                          "' (expected rmat, rgg, road or file)");
    return std::nullopt;
  }

  // Comma-separated tokens. For `file:` the first token is the path;
  // every other token must be key=value.
  bool first = true;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string token = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (token.empty()) continue;
    const std::size_t teq = token.find('=');
    if (teq == std::string::npos) {
      if (out.kind == "file" && first) {
        out.params["path"] = token;
        first = false;
        continue;
      }
      FailConfig(error, "graph '" + out.name + "': expected key=value, got '" +
                            token + "'");
      return std::nullopt;
    }
    first = false;
    const std::string key = Trim(token.substr(0, teq));
    const std::string value = Trim(token.substr(teq + 1));
    if (key == "weight") {
      const auto w = util::ParseDouble(value);
      if (!w || !(*w > 0.0)) {
        FailConfig(error, "graph '" + out.name +
                              "': weight must be a number > 0, got '" + value +
                              "'");
        return std::nullopt;
      }
      out.weight = *w;
    } else if (key == "quota") {
      const auto q = util::ParseInt(value, 0, 1 << 20);
      if (!q) {
        FailConfig(error, "graph '" + out.name +
                              "': quota must be an integer >= 0, got '" +
                              value + "'");
        return std::nullopt;
      }
      out.quota = static_cast<std::size_t>(*q);
    } else if (key == "dynamic") {
      std::string why;
      if (!ParseOnOff(value, "dynamic", &out.dynamic, &why)) {
        FailConfig(error, "graph '" + out.name + "': " + why);
        return std::nullopt;
      }
    } else {
      out.params[key] = value;
    }
  }

  if (out.kind == "file" && out.params.count("path") == 0) {
    FailConfig(error, "graph '" + out.name + "': file spec needs a path "
                      "(file:/path/to/graph.mtx)");
    return std::nullopt;
  }
  return out;
}

bool ApplyDirective(const std::string& key, const std::string& value,
                    DaemonConfig* config, std::string* error) {
  if (key == "host") {
    if (value.empty()) return FailConfig(error, "host must be non-empty");
    config->host = value;
    return true;
  }
  if (key == "port") {
    const auto p = util::ParseInt(value, 0, 65535);
    if (!p) {
      return FailConfig(
          error, "port must be an integer in [0, 65535], got '" + value + "'");
    }
    config->port = static_cast<int>(*p);
    return true;
  }
  if (key == "port_file") {
    config->port_file = value;
    return true;
  }
  if (key == "pid_file") {
    config->pid_file = value;
    return true;
  }
  if (key == "inflight") {
    long long v = 0;
    if (!ParsePositive(value, "inflight", 256, &v, error)) return false;
    config->inflight = static_cast<unsigned>(v);
    return true;
  }
  if (key == "queue") {
    long long v = 0;
    if (!ParsePositive(value, "queue", 1 << 20, &v, error)) return false;
    config->queue = static_cast<std::size_t>(v);
    return true;
  }
  if (key == "backpressure") {
    if (value == "block") {
      config->reject = false;
      return true;
    }
    if (value == "reject") {
      config->reject = true;
      return true;
    }
    return FailConfig(
        error, "backpressure must be block or reject, got '" + value + "'");
  }
  if (key == "coalescing") {
    return ParseOnOff(value, "coalescing", &config->coalescing, error);
  }
  if (key == "drain_deadline_ms") {
    const auto v = util::ParseDouble(value);
    if (!v || !(*v >= 0.0)) {
      return FailConfig(error,
                        "drain_deadline_ms must be a number >= 0, got '" +
                            value + "'");
    }
    config->drain_deadline_ms = *v;
    return true;
  }
  if (key == "deadline_ms") {
    const auto v = util::ParseDouble(value);
    if (!v || !(*v >= 0.0)) {
      return FailConfig(
          error, "deadline_ms must be a number >= 0, got '" + value + "'");
    }
    config->default_deadline_ms = *v;
    return true;
  }
  if (key == "admin_port") {
    if (value == "off") {
      config->admin_port = -1;
      return true;
    }
    const auto p = util::ParseInt(value, 0, 65535);
    if (!p) {
      return FailConfig(error,
                        "admin_port must be an integer in [0, 65535] or "
                        "off, got '" + value + "'");
    }
    config->admin_port = static_cast<int>(*p);
    return true;
  }
  if (key == "admin_port_file") {
    config->admin_port_file = value;
    return true;
  }
  if (key == "max_line") {
    long long v = 0;
    if (!ParsePositive(value, "max_line", 1LL << 30, &v, error)) return false;
    config->max_line = static_cast<std::size_t>(v);
    return true;
  }
  if (key == "read_deadline_ms" || key == "idle_timeout_ms" ||
      key == "write_deadline_ms") {
    const auto v = util::ParseDouble(value);
    if (!v || !(*v >= 0.0)) {
      return FailConfig(error,
                        key + " must be a number >= 0, got '" + value + "'");
    }
    if (key == "read_deadline_ms") config->read_deadline_ms = *v;
    else if (key == "idle_timeout_ms") config->idle_timeout_ms = *v;
    else config->write_deadline_ms = *v;
    return true;
  }
  if (key == "max_connections") {
    const auto v = util::ParseInt(value, 0, 1 << 20);
    if (!v) {
      return FailConfig(error,
                        "max_connections must be an integer >= 0, got '" +
                            value + "' (0 = unlimited)");
    }
    config->max_connections = static_cast<std::size_t>(*v);
    return true;
  }
  if (key == "shed_queue_depth") {
    const auto v = util::ParseInt(value, 0, 1 << 20);
    if (!v) {
      return FailConfig(error,
                        "shed_queue_depth must be an integer >= 0, got '" +
                            value + "' (0 = off)");
    }
    config->shed_queue_depth = static_cast<std::size_t>(*v);
    return true;
  }
  if (key == "write_queue_max") {
    long long v = 0;
    if (!ParsePositive(value, "write_queue_max", 1 << 20, &v, error)) {
      return false;
    }
    config->write_queue_max = static_cast<std::size_t>(v);
    return true;
  }
  if (key == "log_file") {
    config->log_file = value;
    return true;
  }
  if (key == "log_max_bytes") {
    const auto v = util::ParseInt(value, 0, 1LL << 40);
    if (!v) {
      return FailConfig(error,
                        "log_max_bytes must be an integer >= 0, got '" +
                            value + "' (0 = no rotation)");
    }
    config->log_max_bytes = static_cast<std::uint64_t>(*v);
    return true;
  }
  if (key == "log_keep") {
    long long v = 0;
    if (!ParsePositive(value, "log_keep", 64, &v, error)) return false;
    config->log_keep = static_cast<int>(v);
    return true;
  }
  if (key == "sndbuf") {
    const auto v = util::ParseInt(value, 0, 1 << 30);
    if (!v) {
      return FailConfig(error, "sndbuf must be an integer >= 0, got '" +
                                   value + "' (0 = kernel default)");
    }
    config->sndbuf = static_cast<int>(*v);
    return true;
  }
  if (key == "graph") {
    auto parsed = ParseGraphSpec(value, error);
    if (!parsed) return false;
    for (const GraphConfig& g : config->graphs) {
      if (g.name == parsed->name) {
        return FailConfig(error,
                          "duplicate graph name '" + parsed->name + "'");
      }
    }
    config->graphs.push_back(std::move(*parsed));
    return true;
  }
  return FailConfig(error, "unknown directive '" + key + "'");
}

bool ParseConfigText(std::string_view text, DaemonConfig* config,
                     std::string* error) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;

    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return FailConfig(error, "line " + std::to_string(line_no) +
                                   ": expected 'key = value', got '" +
                                   trimmed + "'");
    }
    const std::string key = Trim(std::string_view(trimmed).substr(0, eq));
    const std::string value = Trim(std::string_view(trimmed).substr(eq + 1));
    std::string why;
    if (!ApplyDirective(key, value, config, &why)) {
      return FailConfig(error,
                        "line " + std::to_string(line_no) + ": " + why);
    }
  }
  return true;
}

bool LoadConfigFile(const std::string& path, DaemonConfig* config,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return FailConfig(error, "cannot open config file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string why;
  if (!ParseConfigText(buffer.str(), config, &why)) {
    return FailConfig(error, path + ": " + why);
  }
  return true;
}

graph::Csr BuildGraphFromSpec(const GraphConfig& spec) {
  auto& pool = par::ThreadPool::Global();
  graph::Coo coo;
  if (spec.kind == "rmat") {
    CheckSpecKeys(spec, {"scale", "edge_factor", "seed"});
    graph::RmatParams p;
    p.scale = static_cast<int>(SpecInt(spec, "scale", p.scale, 1, 28));
    p.edge_factor =
        static_cast<int>(SpecInt(spec, "edge_factor", p.edge_factor, 1, 256));
    p.seed = static_cast<std::uint64_t>(
        SpecInt(spec, "seed", static_cast<long long>(p.seed), 0,
                std::numeric_limits<long long>::max()));
    coo = GenerateRmat(p, pool);
  } else if (spec.kind == "rgg") {
    CheckSpecKeys(spec, {"scale", "radius", "seed"});
    graph::RggParams p;
    p.scale = static_cast<int>(SpecInt(spec, "scale", p.scale, 1, 28));
    p.radius = SpecDouble(spec, "radius", p.radius);
    p.seed = static_cast<std::uint64_t>(
        SpecInt(spec, "seed", static_cast<long long>(p.seed), 0,
                std::numeric_limits<long long>::max()));
    coo = GenerateRgg(p, pool);
  } else if (spec.kind == "road") {
    CheckSpecKeys(spec, {"width", "height", "drop_prob", "diag_prob", "seed"});
    graph::RoadParams p;
    p.width = static_cast<int>(SpecInt(spec, "width", p.width, 1, 1 << 15));
    p.height = static_cast<int>(SpecInt(spec, "height", p.height, 1, 1 << 15));
    p.drop_prob = SpecDouble(spec, "drop_prob", p.drop_prob);
    p.diag_prob = SpecDouble(spec, "diag_prob", p.diag_prob);
    p.seed = static_cast<std::uint64_t>(
        SpecInt(spec, "seed", static_cast<long long>(p.seed), 0,
                std::numeric_limits<long long>::max()));
    coo = GenerateRoad(p, pool);
  } else {
    GR_CHECK(spec.kind == "file",
             "graph '" + spec.name + "': unknown kind '" + spec.kind + "'");
    CheckSpecKeys(spec, {"path"});
    coo = graph::ReadMarketFile(spec.params.at("path"));
  }
  if (!coo.has_weights()) graph::AttachRandomWeights(coo, 1, 64);
  graph::BuildOptions build;
  build.symmetrize = true;
  return graph::BuildCsr(coo, build);
}

}  // namespace gunrock::serve
