#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gunrock::serve {

namespace {

/// Recursive-descent parser over one string_view. Position-tracking for
/// error messages; a fixed depth cap keeps hostile nesting from running
/// the thread out of stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Run(std::string* error) {
    std::optional<Json> value = ParseValue(0);
    if (value) {
      SkipSpace();
      if (pos_ != text_.size()) {
        Fail("trailing garbage after JSON value");
        value = std::nullopt;
      }
    }
    if (!value && error) *error = error_;
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at byte " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char want) {
    if (pos_ < text_.size() && text_[pos_] == want) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        break;
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        break;
      case 'n':
        if (ConsumeLiteral("null")) return Json();
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        break;
    }
    Fail(std::string("unexpected character '") + c + "'");
    return std::nullopt;
  }

  std::optional<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json::Object object;
    SkipSpace();
    if (Consume('}')) return Json(std::move(object));
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return std::nullopt;
      }
      auto key = ParseString();
      if (!key) return std::nullopt;
      SkipSpace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return std::nullopt;
      }
      auto value = ParseValue(depth + 1);
      if (!value) return std::nullopt;
      object[key->as_string()] = std::move(*value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(object));
      Fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json::Array array;
    SkipSpace();
    if (Consume(']')) return Json(std::move(array));
    for (;;) {
      auto value = ParseValue(depth + 1);
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(array));
      Fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  /// Appends one Unicode code point as UTF-8.
  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp <= 0x7F) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return std::nullopt;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        Fail("bad hex digit in \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return value;
  }

  std::optional<Json> ParseString() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("truncated escape");
        return std::nullopt;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto hi = ParseHex4();
          if (!hi) return std::nullopt;
          std::uint32_t cp = *hi;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeLiteral("\\u")) {
              Fail("unpaired surrogate");
              return std::nullopt;
            }
            auto lo = ParseHex4();
            if (!lo) return std::nullopt;
            if (*lo < 0xDC00 || *lo > 0xDFFF) {
              Fail("bad low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail("unpaired surrogate");
            return std::nullopt;
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          Fail("bad escape");
          return std::nullopt;
      }
    }
  }

  std::optional<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
      Fail("bad number '" + token + "'");
      return std::nullopt;
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  // JSON has no non-finite literals; to_chars would happily emit "inf"
  // or "nan" and produce an unparseable line. Ship null instead — the
  // same convention the result encoders use for +inf distances — so
  // Dump() output is always valid JSON whatever double reaches a Json.
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  // Shortest representation that round-trips the exact double — the
  // wire-level half of the daemon's bit-identity guarantee.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  out->append(buf, res.ptr);
}

}  // namespace

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

void Json::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull: out->append("null"); return;
    case Kind::kBool: out->append(bool_ ? "true" : "false"); return;
    case Kind::kNumber: AppendNumber(out, number_); return;
    case Kind::kString: AppendEscaped(out, string_); return;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(out, key);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace gunrock::serve
