// Deterministic fault injection for the serve I/O path.
//
// Every Socket recv/send and Listener accept consults the process-global
// injector through one relaxed atomic load — compiled in always, inert by
// default (no injector installed), so production binaries pay a single
// predictable branch and the chaos tests exercise the exact code the
// daemon ships with, not a test-only build.
//
// Determinism: decisions are drawn from a seed-keyed splitmix64 sequence
// over an atomic draw counter. The *sequence* of decisions is a pure
// function of the seed; which thread consumes which draw depends on
// scheduling, but the multiset of injected faults over any N draws is
// seed-determined, and with a finite `budget` exactly min(budget, hits)
// faults fire before the injector goes inert. That is what makes the
// chaos suite reproducible instead of flaky: a failing seed replays the
// same fault pressure every run.
//
// Scope: with `accepted_only` (the default) only sockets returned by
// Listener::Accept — the daemon's side of every connection — suffer
// faults, so in-process chaos tests keep clean client sockets and can
// assert on every byte they receive.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace gunrock::serve {

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;

    // Per-mille odds per I/O call; each category rolls independently
    // against the shared decision sequence.
    int short_read_pm = 0;   ///< cap this recv at `short_cap` bytes
    int short_write_pm = 0;  ///< cap this send at `short_cap` bytes
    int eintr_pm = 0;        ///< fail this call with a synthetic EINTR
    int stall_pm = 0;        ///< sleep `stall_ms` before this call
    int disconnect_pm = 0;   ///< shutdown(SHUT_RDWR) the fd mid-call
    int accept_fail_pm = 0;  ///< synthetic transient accept failure

    int stall_ms = 1;
    std::size_t short_cap = 1;

    /// Only accepted (daemon-side) sockets suffer faults; client sockets
    /// in the same process stay clean so tests can assert on them.
    bool accepted_only = true;

    /// Total faults to inject before the injector goes inert; -1 =
    /// unlimited. A finite budget makes "exactly N EINTRs, then clean"
    /// regression tests deterministic.
    long long budget = -1;
  };

  /// The injected outcome for one recv/send call. `cap` bounds the bytes
  /// the syscall may move (short I/O); `eintr` replaces the call with a
  /// synthetic EINTR failure; `disconnect` tears the socket down first.
  struct IoFault {
    bool eintr = false;
    bool disconnect = false;
    int stall_ms = 0;
    std::size_t cap = std::numeric_limits<std::size_t>::max();
  };

  explicit FaultInjector(const Config& config)
      : config_(config), budget_(config.budget) {}

  IoFault OnRead(bool accepted);
  IoFault OnWrite(bool accepted);
  /// True = inject one transient accept failure (the listener retries).
  bool OnAccept();

  /// Faults actually fired so far (after scope and budget filtering).
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Process-global install point; nullptr = inert (the default). The
  /// injector must outlive every thread doing serve I/O — in tests,
  /// declare the ScopedFaultInjector before the Daemon so the daemon
  /// (and all its threads) is torn down first.
  static void Install(FaultInjector* injector);
  static FaultInjector* Get();

 private:
  bool Roll(int per_mille);
  /// Consumes one budget unit; false once the budget is exhausted.
  bool Charge();

  Config config_;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<long long> budget_;
  std::atomic<std::uint64_t> injected_{0};
};

/// RAII install/uninstall for tests. Declare it before the Daemon under
/// test: locals are destroyed in reverse order, so the daemon's threads
/// are joined before the injector goes away.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(const FaultInjector::Config& config)
      : injector_(config) {
    FaultInjector::Install(&injector_);
  }
  ~ScopedFaultInjector() { FaultInjector::Install(nullptr); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace gunrock::serve
