// gunrockd: the serving daemon over the QueryEngine.
//
// Thread shape — deliberately boring, the interesting scheduling lives in
// the engine:
//
//   accept thread ──► per-connection reader thread + writer thread
//
// The reader parses newline-delimited JSON requests (serve/protocol.hpp)
// and submits queries onto the connection's open CompletionStream; the
// writer drains that stream and ships responses in *finish order* — a
// slow PageRank never head-of-line blocks the BFS submitted after it
// (clients correlate via the echoed "tag"). Ops (ping/stats/graphs) and
// request errors are answered inline by the reader; a per-connection
// write mutex keeps the two writers' lines from interleaving.
//
// Graceful drain (Stop(), wired to SIGTERM by examples/gunrockd.cpp):
//   1. close the listener — new connects are refused outright;
//   2. shut down every connection's read side — in-flight requests keep
//      running, no new ones can arrive, readers close their streams;
//   3. wait for connections to drain within drain_deadline_ms;
//   4. past the deadline, Cancel() the stragglers (cooperative — they
//      complete as kCancelled through their streams);
//   5. Shutdown() the engine and join everything.
//
// Observability: an engine observer (QueryEngine::SetObserver) feeds one
// lock-free LatencyHistogram per primitive family on every terminal
// transition; StatsText() renders those (p50/p95/p99/mean), the engine
// ledger (incl. queued/running gauges and wave counters) and the
// workspace-pool stats as a flat `name value` text page, served on any
// connection for the line "/stats" (or "GET /stats", for curl).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.hpp"
#include "serve/config.hpp"
#include "serve/histogram.hpp"
#include "serve/listener.hpp"
#include "serve/log.hpp"

namespace gunrock::serve {

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Registers a pre-built graph (tests use this; startup uses the
  /// config's specs via BuildGraphFromSpec). Call before Start().
  void AddGraph(const std::string& name, graph::Csr graph,
                const engine::GraphOptions& gopts = {});

  /// Registers a pre-built graph as dynamic: the serve protocol's
  /// add_edges/remove_edges/commit ops mutate it and queries may pin
  /// epochs. Call before Start().
  void AddDynamicGraph(const std::string& name, graph::Csr graph,
                       const engine::GraphOptions& gopts = {},
                       const dynamic::DynamicGraphOptions& dopts = {});

  /// Builds the config's graphs, binds the listener and starts serving.
  /// False (with `error`) on a bad graph spec or bind failure.
  bool Start(std::string* error);

  /// The bound port (after Start(); resolves an ephemeral port 0).
  int port() const { return listener_.port(); }

  /// The bound health/admin port (0 unless config.admin_port >= 0).
  int admin_port() const { return admin_listener_.port(); }

  /// Connections forcibly cut for misbehaving (slow-loris reads, stalled
  /// writes, oversized lines) — `gunrockd_evictions` on /stats.
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Requests/connections refused with a retryable error under overload.
  std::uint64_t sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }

  /// Graceful drain as documented above. Idempotent, thread-safe; the
  /// destructor calls it.
  void Stop();

  /// Blocks until Stop() has completed (from any thread).
  void Wait();

  /// The plain-text stats page ("/stats").
  std::string StatsText() const;

  engine::QueryEngine& engine() { return engine_; }
  const DaemonConfig& config() const { return config_; }

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  /// Health/admin listener: sequential one-shot request/response
  /// connections (probes), served on the admin thread.
  void AdminLoop();
  void ServeAdmin(Socket socket);
  /// Writes one response line under the connection's write mutex and the
  /// configured write deadline; on timeout/error the connection is
  /// evicted. False once the connection is dead.
  bool SendLine(const std::shared_ptr<Connection>& conn,
                const std::string& line);
  /// Marks the connection dead, logs a structured event, and shuts the
  /// socket both ways (wakes a blocked reader; fails further sends).
  void Evict(const std::shared_ptr<Connection>& conn, const char* reason);
  void Observe(const engine::QueryEngine::QueryObservation& obs);
  void Log(const char* event, const std::string& fields) const;

  /// Histogram slot for a primitive family name; nullptr for unknown.
  LatencyHistogram* FamilyHistogram(const char* kind);

  DaemonConfig config_;
  engine::QueryEngine engine_;
  std::string default_graph_;  ///< auto-filled when exactly one graph

  Listener listener_;
  std::thread accept_thread_;

  Listener admin_listener_;
  std::thread admin_thread_;
  /// Readiness: true once Start() completes, flipped false first thing
  /// in Stop() so /readyz reports draining while liveness stays up.
  std::atomic<bool> ready_{false};

  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> sheds_{0};

  mutable std::mutex connections_mutex_;
  std::condition_variable connections_cv_;  ///< signalled as readers exit
  std::list<std::shared_ptr<Connection>> connections_;  ///< live
  /// Ended connections whose threads await their join in Stop() (a
  /// thread cannot join itself, so readers park their Connection here).
  std::list<std::shared_ptr<Connection>> finished_;
  std::uint64_t next_connection_id_ = 1;

  std::atomic<bool> draining_{false};
  std::mutex stop_mutex_;  // serializes Stop(); Wait() blocks on it too
  bool stopped_ = false;

  std::chrono::steady_clock::time_point start_time_;

  /// Per-family latency histograms, indexed in kFamilies order.
  static constexpr int kNumFamilies = 12;
  static const char* const kFamilies[kNumFamilies];
  LatencyHistogram family_histograms_[kNumFamilies];
  /// Terminal-status counters maintained by the observer (the engine has
  /// its own ledger; these exist so /stats survives engine shutdown).
  std::atomic<std::uint64_t> observed_total_{0};

  /// Structured event-log sink (stderr or rotating file); internally
  /// locked, hence usable from const Log().
  mutable LogSink log_;
};

}  // namespace gunrock::serve
