// Structured event-log sink for gunrockd with size-triggered rotation.
//
// The daemon's log is a line-oriented `event=... key=value` stream. By
// default it goes to stderr (systemd/journald land); with a file path the
// sink owns a FILE* and rotates by size: once the current file exceeds
// `max_bytes`, it is renamed to `<path>.1` (shifting older generations to
// `.2`, `.3`, ... up to `keep`) and a fresh file is opened. `Reopen()`
// supports external logrotate(8)-style rotation: close and reopen the
// path so a rename-out-from-under is picked up.
//
// All methods are internally locked — Write() is safe from any daemon
// thread — and a sink with an empty path never touches the filesystem.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace gunrock::serve {

class LogSink {
 public:
  LogSink() = default;
  ~LogSink();

  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  /// Directs output to `path` (empty = stderr). `max_bytes` 0 disables
  /// rotation; `keep` is the number of rotated generations retained.
  /// False (with `error`) if the file cannot be opened.
  bool Open(const std::string& path, std::uint64_t max_bytes,
            int keep, std::string* error);

  /// Appends one line (terminator added here), rotating first if the
  /// current file has grown past max_bytes.
  void Write(const std::string& line);

  /// Closes and reopens the file at the configured path — the admin
  /// port's `reopen-logs` op, for external rotation. No-op on stderr.
  void Reopen();

  /// Size-triggered rotations performed so far.
  std::uint64_t rotations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rotations_;
  }

 private:
  void RotateLocked();

  mutable std::mutex mutex_;
  std::string path_;            // empty = stderr
  std::FILE* file_ = nullptr;   // owned iff path_ non-empty
  std::uint64_t max_bytes_ = 0;
  std::uint64_t written_ = 0;   // bytes since open/rotate
  int keep_ = 1;
  std::uint64_t rotations_ = 0;
};

}  // namespace gunrock::serve
