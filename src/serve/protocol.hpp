// gunrockd wire protocol: newline-delimited JSON over TCP.
//
// One request per line, one JSON response line per request. Requests:
//
//   {"op":"query","graph":"g","kind":"bfs","source":3,
//    "opts":{"direction":"do","idempotent":true},
//    "values":true,"deadline_ms":50,"tag":7}
//   {"op":"ping"}           {"op":"stats"}           {"op":"graphs"}
//
// `kind` is one of the eleven servable families (bfs sssp bc cc pagerank
// mst triangles lp hits salsa ppr); `source` is required for bfs/sssp/bc
// and for ppr (or `seeds:[...]`); `opts` accepts exactly the per-kind
// knobs listed in Decode — an unknown key, a non-integral integer, or a
// malformed value is a per-request error response, never a dropped or
// misparsed field. `tag` is any JSON value, echoed verbatim in the
// response so clients can correlate out-of-order completions (responses
// stream in finish order, not submission order). Queries against a
// dynamic graph may add `"epoch":N` to pin a retained snapshot (0 or
// absent = latest).
//
// Mutation ops (dynamic graphs only; answered inline by the reader):
//
//   {"op":"add_edges","graph":"g","edges":[[0,1],[1,2,0.5]]}
//   {"op":"remove_edges","graph":"g","edges":[[0,1]]}
//   {"op":"commit","graph":"g"}
//
// Each edge is [src,dst] or [src,dst,weight]. Responses:
//   {"op":"mutated","tag":...,"applied":A,"ignored":I}
//   {"op":"committed","tag":...,"epoch":E,"base_edges":B,
//    "delta_edges":D,"compacted":false}
// Targeting a static graph, malformed edges, out-of-range endpoints or
// self loops are per-request errors; a failed batch applies nothing.
//
// Responses:
//   {"op":"result","id":12,"tag":7,"kind":"bfs","status":"done",
//    "queue_ms":0.1,"run_ms":2.3,"total_ms":2.4,
//    "result":{"depth":[...],"pred":[...]}}
//   {"op":"error","tag":...,"error":"why"}               (request rejected)
//
// Numbers ride as shortest-round-trip doubles (serve/json.hpp), so a
// result decoded from the wire is bit-identical to the in-process
// QueryResponse — proven by tests/test_daemon.cpp.
//
// Two non-JSON request lines are also accepted for operators and curl:
// "/stats" and "GET /stats[ HTTP/1.x]" return the plain-text stats page
// (the HTTP form with a minimal response header, then the connection
// closes — enough for curl/wget one-shots).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/query.hpp"
#include "serve/json.hpp"

namespace gunrock::serve {

/// One decoded wire request.
struct WireRequest {
  enum class Op { kQuery, kPing, kStats, kGraphs, kAddEdges, kRemoveEdges,
                  kCommit };
  Op op = Op::kQuery;
  Json tag;  ///< echoed verbatim in every response to this request

  // kQuery payload:
  std::string graph;
  engine::QueryRequest request;
  bool include_values = true;  ///< ship result arrays, not just summaries
  double deadline_ms = 0.0;    ///< 0 = daemon default
  std::uint64_t epoch = 0;     ///< snapshot pin for dynamic graphs; 0 = latest

  // kAddEdges / kRemoveEdges payload (graph reused from above):
  std::vector<dynamic::EdgeUpdate> edges;
};

/// Parses one request line. `default_graph` fills an omitted "graph"
/// field (empty = the field is required). Returns nullopt and a reason in
/// `error` for anything malformed: unknown op/kind/option key, missing or
/// garbage source, non-integral integers, wrong types. Never throws.
std::optional<WireRequest> DecodeRequest(std::string_view line,
                                         const std::string& default_graph,
                                         std::string* error);

/// Response for one completed query (any terminal status). `id` is the
/// engine's query id; the result payload is included only for kDone.
Json EncodeResult(std::uint64_t id, const Json& tag,
                  const char* kind, const engine::QueryResponse& response,
                  bool include_values);

/// Per-request error response (malformed line, submit failure, ...).
/// `retryable` marks load-shedding refusals — the client may retry with
/// backoff; a malformed request must not carry it.
Json EncodeError(const Json& tag, const std::string& error,
                 bool retryable = false);

/// Result payload for one engine result variant ("result" field of
/// EncodeResult) — exposed for the round-trip tests.
Json EncodeResultPayload(const engine::QueryResult& result,
                         bool include_values);

}  // namespace gunrock::serve
