#include "primitives/bfs_batch.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "core/advance_ms.hpp"
#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "graph/stats.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/lane_mask.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Problem slice shared by the multi-source functors. `visited` is only
/// read during an advance (updates happen in the level's consume phase),
/// so the gate `lanes & ~visited[v] & active` sees a stable level-start
/// snapshot — every propagated bit is a genuine this-level discovery.
struct MsBfsProblem {
  const par::LaneMaskFrontier* visited = nullptr;
  std::uint64_t active = ~std::uint64_t{0};
};

struct MsBfsPushFunctor {
  static std::uint64_t CondEdge(vid_t, vid_t v, eid_t, std::uint64_t lanes,
                                MsBfsProblem& p) {
    return lanes & ~p.visited->Load(static_cast<std::size_t>(v)) & p.active;
  }
};

struct MsBfsPullFunctor {
  static std::uint64_t Remaining(vid_t v, MsBfsProblem& p) {
    return ~p.visited->Load(static_cast<std::size_t>(v)) & p.active;
  }
};

}  // namespace

BfsBatchResult BfsBatch(const graph::Csr& g, std::span<const vid_t> sources,
                        const BfsBatchOptions& opts) {
  return BfsBatch(g, sources, opts, RunControl{});
}

BfsBatchResult BfsBatch(const graph::Csr& g, std::span<const vid_t> sources,
                        const BfsBatchOptions& opts, const RunControl& ctl,
                        const BatchLaneControl& lanes) {
  const std::size_t num_lanes = sources.size();
  GR_CHECK(num_lanes >= 1 && num_lanes <= kMaxBatchLanes,
           "BfsBatch needs 1..64 sources");
  for (const vid_t s : sources) {
    GR_CHECK(s >= 0 && s < g.num_vertices(), "BfsBatch source out of range");
  }
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  BfsBatchResult result;
  result.depth.resize(num_lanes);
  result.lane_iterations.assign(num_lanes, 0);
  // Lane-parallel depth initialization: 64 serial assign(n, -1) calls
  // are O(n * lanes) of single-threaded stores — real startup latency on
  // the batched fast path. ParallelFor's serial cutoff would defeat a
  // 64-item loop, so distribute lanes round-robin over the pool
  // directly.
  pool.Parallel([&](unsigned rank) {
    for (std::size_t l = rank; l < num_lanes; l += pool.num_threads()) {
      result.depth[l].assign(n, -1);
    }
  });
  std::array<std::int32_t*, kMaxBatchLanes> depth_of{};
  for (std::size_t l = 0; l < num_lanes; ++l) {
    depth_of[l] = result.depth[l].data();
  }

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  // Lane-mask state, all epoch-stamped and arena-resident: a new wave on
  // a warm lease invalidates everything with three counter bumps.
  auto& visited = ws.Get<par::LaneMaskFrontier>(pslot::kBatchFirst);
  visited.Resize(n);
  visited.NewEpoch();
  auto& mask_a = ws.Get<par::LaneMaskFrontier>(pslot::kBatchFirst + 1);
  mask_a.Resize(n);
  auto& mask_b = ws.Get<par::LaneMaskFrontier>(pslot::kBatchFirst + 2);
  mask_b.Resize(n);
  par::LaneMaskFrontier* cur = &mask_a;
  par::LaneMaskFrontier* nxt = &mask_b;

  auto& frontier = ws.Get<core::VertexFrontier>(pslot::kBatchFirst + 3);
  frontier.Clear();
  auto& raw = ws.Get<std::vector<vid_t>>(pslot::kBatchFirst + 4);
  auto& candidates = ws.Get<std::vector<vid_t>>(pslot::kBatchFirst + 5);
  auto& claim = ws.Get<par::EpochBitmap>(pslot::kBatchFirst + 6);

  std::uint64_t active = par::LaneMaskOf(num_lanes);
  MsBfsProblem prob;
  prob.visited = &visited;
  prob.active = active;

  cur->NewEpoch();
  for (std::size_t l = 0; l < num_lanes; ++l) {
    const auto s = static_cast<std::size_t>(sources[l]);
    const std::uint64_t bit = std::uint64_t{1} << l;
    if (cur->OrBits(s, bit) == 0) {
      frontier.current().push_back(sources[l]);  // duplicate sources: once
    }
    visited.OrBits(s, bit);
    depth_of[l][s] = 0;
  }

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ctl.scale_free_hint >= 0
                                ? ctl.scale_free_hint > 0
                                : graph::ComputeScaleFreeHint(g, pool);
  adv_cfg.workspace = &ws;
  adv_cfg.model_efficiency = false;

  // Beamer's alpha assumes pull's first-parent early exit makes a probe
  // much cheaper than a candidate's full in-edge list. A multi-source
  // probe only stops once *every* remaining lane has found a parent, so
  // that advantage degrades with the lane count; an unscaled alpha makes
  // long-diameter meshes with desynchronized wavefronts pull far too
  // early and pay O(candidates) per level. Empirically (rmat + road
  // sweeps at 8/64 lanes) a 1/sqrt(lanes) discount lands the switch
  // right on both shapes, and reduces to the scalar alpha at one lane.
  const double alpha_ms = std::max(
      1.0, opts.do_alpha / std::sqrt(static_cast<double>(num_lanes)));
  core::DirectionOptimizer optimizer(g.num_vertices(), alpha_ms,
                                     opts.do_beta);
  const bool optimizing = opts.direction == core::Direction::kOptimizing;

  // Per-lane round counts come from discovery transitions: a lane's
  // scalar loop runs while its frontier is non-empty, i.e. through
  // (deepest discovery level + 1) rounds.
  std::array<std::int32_t, kMaxBatchLanes> last_discovery{};

  // Unexplored-edge mass for the Beamer controller: edges out of
  // vertices some active lane still wants. Like scalar BFS's
  // m_unvisited, it is maintained incrementally — one O(n) reduction at
  // wave start, then a frontier-sized decrement per level as vertices
  // become fully covered — instead of an O(n) rescan every level (which
  // would cost O(n * levels) on long-diameter meshes). A lane drop
  // shrinks `active` and can retroactively complete coverage, so that
  // rare path recomputes from scratch.
  const auto recompute_m_u = [&] {
    return par::TransformReduce(
        pool, n, eid_t{0}, [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t v) {
          return (~visited.Load(v) & active) != 0
                     ? g.degree(static_cast<vid_t>(v))
                     : eid_t{0};
        },
        &ws, pslot::kBatchFirst + 7);
  };
  eid_t m_u = optimizing ? recompute_m_u() : 0;

  std::int32_t level = 0;
  WallTimer timer;
  while (!frontier.empty()) {
    ctl.Checkpoint();
    const std::uint64_t keep = lanes.Poll(active);
    if (keep != active) {
      active = keep;
      prob.active = active;
      if (active == 0) break;  // every lane dropped: nothing left to serve
      if (optimizing) m_u = recompute_m_u();
    }
    ++level;
    const std::size_t n_f = frontier.size();

    bool pull = opts.direction == core::Direction::kPull;
    if (optimizing) {
      // Aggregate (union-frontier) populations drive the Beamer switch:
      // push cost is one scan of the union frontier's out-edges, pull
      // cost is bounded by edges into vertices any lane still wants.
      const eid_t m_f = par::TransformReduce(
          pool, n_f, eid_t{0}, [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) { return g.degree(frontier.current()[i]); },
          &ws, pslot::kBatchFirst + 7);
      pull = optimizer.ShouldPull(m_f, m_u, static_cast<vid_t>(n_f));
    }

    nxt->NewEpoch();
    frontier.next().clear();
    core::AdvanceResult adv;
    if (pull) {
      candidates.resize(n);
      const std::size_t nc = par::GenerateIf(
          pool, n, std::span<vid_t>(candidates),
          [&](std::size_t v) { return (~visited.Load(v) & active) != 0; },
          [](std::size_t v) { return static_cast<vid_t>(v); }, &ws);
      candidates.resize(nc);
      adv = core::AdvancePullMs<MsBfsPullFunctor>(
          pool, g, *cur, candidates, *nxt, &frontier.next(), prob, adv_cfg);
    } else if (opts.variant == BfsBatchVariant::kFiltered) {
      raw.clear();
      adv = core::AdvancePushMs<MsBfsPushFunctor, MsBfsProblem, false>(
          pool, g, frontier.current(), *cur, *nxt, &raw, prob, adv_cfg);
      claim.Resize(n);
      claim.NewEpoch();
      core::FilterMsUnique(pool, raw, claim, &frontier.next(), &ws);
    } else {
      adv = core::AdvancePushMs<MsBfsPushFunctor, MsBfsProblem, true>(
          pool, g, frontier.current(), *cur, *nxt, &frontier.next(), prob,
          adv_cfg);
    }
    result.stats.edges_visited += adv.edges_visited;

    // Consume: every next-frontier vertex appears exactly once, so one
    // parallel pass extracts per-lane depths from the mask transition,
    // marks the visited masks and folds the lanes-that-discovered OR.
    // The masks in `nxt` were gated on level-start visited, so they are
    // exactly the new bits.
    const std::uint64_t discovered = par::TransformReduce(
        pool, frontier.next().size(), std::uint64_t{0},
        [](std::uint64_t a, std::uint64_t b) { return a | b; },
        [&](std::size_t i) {
          const vid_t v = frontier.next()[i];
          const std::uint64_t bits =
              nxt->Load(static_cast<std::size_t>(v)) & active;
          for (std::uint64_t m = bits; m != 0; m &= m - 1) {
            depth_of[std::countr_zero(m)][static_cast<std::size_t>(v)] =
                level;
          }
          visited.OrBits(static_cast<std::size_t>(v), bits);
          return bits;
        },
        &ws, pslot::kBatchFirst + 8);
    for (std::uint64_t m = discovered; m != 0; m &= m - 1) {
      last_discovery[std::countr_zero(m)] = level;
    }

    if (optimizing) {
      // Retire this level's newly fully-covered vertices from the
      // unexplored mass (frontier-sized, not O(n)): a vertex leaves the
      // set when the consume pass above completed its coverage of every
      // active lane. `nxt` still holds the level's new bits, so the
      // pre-consume mask is recoverable.
      m_u -= par::TransformReduce(
          pool, frontier.next().size(), eid_t{0},
          [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) {
            const auto v =
                static_cast<std::size_t>(frontier.next()[i]);
            const std::uint64_t after = visited.Load(v) & active;
            const std::uint64_t before = after & ~nxt->Load(v);
            return after == active && before != active
                       ? g.degree(static_cast<vid_t>(v))
                       : eid_t{0};
          },
          &ws, pslot::kBatchFirst + 7);
    }

    if (opts.collect_records) {
      result.stats.records.push_back(
          {pull ? "advance-pull-ms" : "advance-push-ms", level, n_f,
           frontier.next().size(), adv.edges_visited, 1.0});
    }

    frontier.Flip();
    std::swap(cur, nxt);
    ++result.stats.iterations;
  }

  result.completed_mask = active;
  for (std::size_t l = 0; l < num_lanes; ++l) {
    result.lane_iterations[l] = last_discovery[l] + 1;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
