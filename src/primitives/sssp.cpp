#include "primitives/sssp.hpp"

#include <algorithm>
#include <cmath>

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "core/priority_queue.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

struct SsspProblem {
  weight_t* dist = nullptr;
  const weight_t* weights = nullptr;
  std::int32_t* mark = nullptr;  // epoch claim array (output_queue_id)
  std::int32_t epoch = 0;
};

/// Paper Algorithm 1's UpdateLabel: relax with atomicMin, keep the edge
/// when it improved the destination's label.
struct SsspRelaxFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t e, SsspProblem& p) {
    const weight_t candidate =
        par::AtomicLoad(&p.dist[s]) + p.weights[e];
    const weight_t old = par::AtomicMin(&p.dist[d], candidate);
    return candidate < old;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, SsspProblem&) {}
};

/// Paper Algorithm 1's RemoveRedundant: first claimant of the vertex in
/// this epoch keeps it; duplicates are dropped exactly.
struct SsspDedupFunctor {
  static bool CondVertex(vid_t v, SsspProblem& p) {
    return par::AtomicExchange(&p.mark[v], p.epoch) != p.epoch;
  }
  static void ApplyVertex(vid_t, SsspProblem&) {}
};

}  // namespace

weight_t SsspDeltaHeuristic(const graph::Csr& g, par::ThreadPool& pool) {
  // Davidson et al.: warp width × mean weight / mean degree. An edgeless
  // graph would compute 0/0 = NaN here and feed it through std::max (where
  // NaN makes the result depend on argument order); a non-finite or ≤0
  // mean weight is equally meaningless as a bucket width.
  if (g.num_edges() == 0) return 1;
  const double mean_w =
      static_cast<double>(par::ReduceSum(pool, g.weights())) /
      static_cast<double>(g.num_edges());
  if (!std::isfinite(mean_w) || mean_w <= 0) return 1;
  return static_cast<weight_t>(std::max(
      1.0, kWarpWidth * mean_w / std::max(1.0, g.average_degree())));
}

SsspResult Sssp(const graph::Csr& g, vid_t source,
                const SsspOptions& opts) {
  return Sssp(g, source, opts, RunControl{});
}

SsspResult Sssp(const graph::Csr& g, vid_t source, const SsspOptions& opts,
                const RunControl& ctl) {
  GR_CHECK(source >= 0 && source < g.num_vertices(),
           "SSSP source out of range");
  GR_CHECK(g.has_weights(), "SSSP needs an edge-weighted graph");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  SsspResult result;
  result.dist.assign(n, kInfinity);
  result.dist[source] = 0;

  // Enactor-owned scratch arena: operators and the near/far splits reuse
  // their buffers through it, so iterations are allocation-free after
  // warm-up; an engine lease extends the reuse across queries.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  auto& mark = ws.Get<std::vector<std::int32_t>>(pslot::kSsspFirst + 6);
  mark.assign(n, 0);
  SsspProblem prob;
  prob.dist = result.dist.data();
  prob.weights = g.weights().data();
  prob.mark = mark.data();

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ctl.scale_free_hint >= 0
                                ? ctl.scale_free_hint > 0
                                : graph::ComputeScaleFreeHint(g, pool);
  adv_cfg.model_efficiency = opts.model_lane_efficiency;
  adv_cfg.workspace = &ws;
  core::FilterConfig filter_cfg;
  filter_cfg.workspace = &ws;

  // Davidson et al.'s Δ heuristic: warp width × mean weight / mean degree.
  weight_t delta = opts.delta;
  if (opts.use_near_far && delta <= 0) {
    delta = SsspDeltaHeuristic(g, pool);
  }

  auto& frontier = ws.Get<core::VertexFrontier>(pslot::kSsspFirst);
  frontier.Assign({source});
  // Near/far piles and the advance/dedup buffers, reused across
  // iterations and (via the lease) across queries.
  auto& far_pile = ws.Get<std::vector<vid_t>>(pslot::kSsspFirst + 1);
  auto& near_buffer = ws.Get<std::vector<vid_t>>(pslot::kSsspFirst + 2);
  auto& raw = ws.Get<std::vector<vid_t>>(pslot::kSsspFirst + 3);
  auto& deduped = ws.Get<std::vector<vid_t>>(pslot::kSsspFirst + 4);
  auto& still_far = ws.Get<std::vector<vid_t>>(pslot::kSsspFirst + 5);
  far_pile.clear();
  near_buffer.clear();
  raw.clear();
  deduped.clear();
  still_far.clear();
  weight_t threshold = delta;

  core::EfficiencyAccumulator efficiency;
  WallTimer timer;

  while (!frontier.empty() || !far_pile.empty()) {
    ctl.Checkpoint();
    if (frontier.empty()) {
      // Near slice exhausted: advance the Δ window and re-split the far
      // pile (paper: "We then update the priority function and operate on
      // the far slice"). Entries whose label improved below the window
      // are re-claimed through the epoch filter next iteration. Jumping
      // straight past the smallest far label (rather than stepping Δ at a
      // time) guarantees each re-split promotes at least one vertex, even
      // when Δ is tiny relative to the labels (threshold + Δ can round to
      // threshold in float and would otherwise loop forever); the window
      // schedule only orders work, so labels are unchanged.
      const weight_t min_far = par::TransformReduce(
          pool, far_pile.size(), kInfinity,
          [](weight_t a, weight_t b) { return b < a ? b : a; },
          [&](std::size_t i) { return result.dist[far_pile[i]]; }, &ws,
          pslot::kSsspFirst + 7);
      threshold = std::max(threshold + delta, min_far + delta);
      if (!(threshold > min_far)) {
        threshold = std::nextafter(min_far, kInfinity);
      }
      still_far.clear();
      core::SplitNearFar(
          pool, std::span<const vid_t>(far_pile), near_buffer, still_far,
          [&](vid_t v) { return result.dist[v] < threshold; }, &ws);
      far_pile.swap(still_far);
      frontier.current().assign(near_buffer.begin(), near_buffer.end());
      if (frontier.empty() && !far_pile.empty()) continue;
      if (frontier.empty()) break;
    }

    prob.epoch += 1;
    const std::size_t n_f = frontier.size();
    raw.clear();
    const auto adv = core::AdvancePush<SsspRelaxFunctor>(
        pool, g, frontier.current(), &raw, prob, adv_cfg);
    result.stats.edges_visited += adv.edges_visited;
    efficiency.Add(adv.lane_efficiency, adv.edges_visited);

    deduped.clear();
    core::FilterVertex<SsspDedupFunctor>(pool, raw, &deduped, prob,
                                         filter_cfg);

    if (opts.use_near_far) {
      core::SplitNearFar(
          pool, std::span<const vid_t>(deduped), frontier.next(), far_pile,
          [&](vid_t v) { return result.dist[v] < threshold; }, &ws);
    } else {
      frontier.next().assign(deduped.begin(), deduped.end());
    }

    if (opts.collect_records) {
      result.stats.records.push_back({"advance+filter", prob.epoch, n_f,
                                      frontier.next().size(),
                                      adv.edges_visited,
                                      adv.lane_efficiency});
    }
    frontier.Flip();
    ++result.stats.iterations;
  }

  // Recompute predecessors in one pass so the tree property holds exactly
  // even though relaxations raced during traversal.
  if (opts.compute_preds) {
    result.pred.assign(n, kInvalidVid);
    core::ForAll(pool, n, [&](std::size_t v) {
      if (result.dist[v] == kInfinity ||
          static_cast<vid_t>(v) == source) {
        return;
      }
      for (eid_t e = g.row_begin(static_cast<vid_t>(v));
           e < g.row_end(static_cast<vid_t>(v)); ++e) {
        const vid_t u = g.edge_dest(e);
        // Works on symmetric graphs: scan v's neighbors as in-edges.
        if (result.dist[u] + g.edge_weight(e) == result.dist[v]) {
          result.pred[v] = u;
          break;
        }
      }
    });
  }

  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.lane_efficiency = efficiency.Value();
  return result;
}

}  // namespace gunrock
