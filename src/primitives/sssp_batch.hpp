// Batched multi-source SSSP — the distance-matrix workhorse.
//
// Runs up to 64 single-source shortest-path queries as one wave, behind a
// MatrixBackend switch:
//
//  - kFrontier extends the lane-mask MS-BFS machinery (Then et al., VLDB
//    2015) to weighted delta-stepping: each source owns one lane of a
//    per-vertex 64-bit mask, the distance labels live in a vertex-major
//    n x L column block, and one near/far bucket structure (a shared Δ
//    window) is shared by every lane — a single union-frontier edge scan
//    relaxes all lanes' labels at once.
//
//  - kSpmv iterates the masked MinPlus semiring SpMM (GraphBLAST's view:
//    one Bellman-Ford round IS y = A ⊗.⊕ x over (min, +)) to fixpoint,
//    with converged lanes retiring from the sweep mask like PprBatch's.
//
// Contract: dist[l] is bit-identical to Sssp(g, sources[l]).dist for
// every completed lane, under either backend, at any pool width. Both
// backends and the scalar run relax with the same float fold —
// fl(dist[u] + w) — so every label is the minimum over paths of the same
// left-folded path sum, which is order- and schedule-invariant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/bfs_batch.hpp"  // kMaxBatchLanes
#include "primitives/options.hpp"

namespace gunrock {

/// Backend for batched SSSP / MatrixQuery waves.
enum class MatrixBackend {
  /// Pick per topology from the scale-free hint (the bench-derived
  /// policy recorded in DESIGN.md §11).
  kAuto,
  /// Lane-mask delta-stepping over the frontier operators.
  kFrontier,
  /// Iterated masked MinPlus SpMM (merge-path, pool-width-invariant).
  kSpmv,
};

struct SsspBatchOptions : CommonOptions {
  /// Δ bucket width for the frontier backend; 0 selects the guarded
  /// Davidson heuristic (SsspDeltaHeuristic — edgeless/degenerate
  /// graphs fall back to Δ = 1).
  weight_t delta = 0;
  MatrixBackend backend = MatrixBackend::kAuto;
  /// Gather orientation for the kSpmv backend: the reverse CSR for a
  /// directed graph; null uses `g` itself (valid on symmetric graphs,
  /// the same assumption scalar SSSP's pred recompute makes).
  const graph::Csr* reverse = nullptr;
};

struct SsspBatchResult {
  /// dist[l][v] = shortest distance from sources[l] (+inf unreachable);
  /// valid only for lanes set in completed_mask.
  std::vector<std::vector<weight_t>> dist;
  /// Lanes that ran to convergence (dropped lanes are cleared).
  std::uint64_t completed_mask = 0;
  /// Per-lane work rounds: frontier backend counts advance rounds where
  /// the lane's frontier was non-empty, spmv backend counts semiring
  /// sweeps until the lane's column reached fixpoint.
  std::vector<std::int32_t> lane_iterations;
  /// Aggregate wave stats; edges_visited is shared across all lanes.
  core::TraversalStats stats;
};

/// Runs SSSP from every source in `sources` (1..64 lanes, duplicates
/// allowed) as one batched wave. Throws gunrock::Error on an unweighted
/// graph, a bad source, or a bad lane count.
SsspBatchResult SsspBatch(const graph::Csr& g,
                          std::span<const vid_t> sources,
                          const SsspBatchOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kMatrixFirst..+15 plus the pslot::kSpmvFirst range for the
/// spmv backend), ctl.cancel polled at round boundaries (stops the whole
/// wave; throws core::Cancelled), and `lanes` polled right after it to
/// drop individual lanes (per-query cancellation inside a wave).
SsspBatchResult SsspBatch(const graph::Csr& g,
                          std::span<const vid_t> sources,
                          const SsspBatchOptions& opts, const RunControl& ctl,
                          const BatchLaneControl& lanes = {});

}  // namespace gunrock
