// Batched single-seed personalized PageRank: up to 64 seed columns per
// power-iteration sweep.
//
// The serving layer fans single-seed PPR requests across many seeds; each
// direct call pays a full O(|E|) propagation per power iteration. PprBatch
// runs one propagation sweep over an n x L column block instead (vertex-
// major interleaved, L <= 64 lanes), so the CSR row scans, degree loads
// and scheduling overhead are amortized across every concurrent seed —
// the GraphBLAST-style SpMM view of batched ranking.
//
// Contract: lane l reproduces PersonalizedPagerank(g, {seeds[l]}, opts)
// exactly — per-lane arithmetic uses the same expression shapes, the same
// deterministic block-structured reductions and the same edge enumeration
// order as the scalar run, and a converged lane's column is frozen the
// iteration its scalar run would have stopped. (Push-mode atomic double
// accumulation is order-sensitive across threads; on a single-lane pool
// both sides are bit-identical, on a many-core pool they agree to the
// same rounding spread as two scalar runs of each other.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct PprBatchOptions : CommonOptions {
  double damping = 0.85;
  double tolerance = 1e-9;
  int max_iterations = 1000;
  /// kSpmv runs the sweep as a merge-path SpMM over the reverse
  /// orientation (core/spmv.hpp). Lane l is then bit-identical to the
  /// scalar PersonalizedPagerank spmv backend at ANY pool width — the
  /// SpMM shares the scalar kernel's partition and fold order — which is
  /// a stronger contract than the push path's (see header comment).
  /// kAuto keeps push, matching the scalar PPR default.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
  /// Reverse graph for the spmv backend on directed inputs; nullptr means
  /// the graph is symmetric.
  const graph::Csr* reverse = nullptr;
};

struct PprBatchResult {
  /// rank[l] = PersonalizedPagerank(g, {seeds[l]}).rank; valid only for
  /// lanes set in completed_mask.
  std::vector<std::vector<double>> rank;
  /// Per-lane power iterations until that lane converged (or the cap).
  std::vector<int> iterations;
  /// Lanes that ran to completion (dropped lanes are cleared).
  std::uint64_t completed_mask = 0;
  core::TraversalStats stats;
};

/// Runs single-seed PPR for every seed in `seeds` (1..64 lanes) as one
/// batched column sweep. Throws gunrock::Error on a bad seed/lane count.
PprBatchResult PprBatch(const graph::Csr& g, std::span<const vid_t> seeds,
                        const PprBatchOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kBatchFirst+9..+15 plus the pslot::kSpmvFirst range for the
/// spmv backend), ctl.cancel polled at iteration boundaries
/// (whole wave), `lanes` polled right after it for per-lane drops.
PprBatchResult PprBatch(const graph::Csr& g, std::span<const vid_t> seeds,
                        const PprBatchOptions& opts, const RunControl& ctl,
                        const BatchLaneControl& lanes = {});

}  // namespace gunrock
