#include "primitives/mst.hpp"

#include <bit>

#include "core/compute.hpp"
#include "core/workspace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Packs (weight, edge id) into one atomically-minimizable 64-bit key.
/// Positive IEEE floats compare like their bit patterns, so the weight
/// occupies the high 32 bits and the edge id breaks ties.
std::uint64_t PackCandidate(weight_t w, eid_t e) {
  const std::uint32_t wbits = std::bit_cast<std::uint32_t>(w);
  return (static_cast<std::uint64_t>(wbits) << 32) |
         static_cast<std::uint32_t>(e);
}

eid_t UnpackEdge(std::uint64_t key) {
  return static_cast<eid_t>(key & 0xffffffffu);
}

inline constexpr std::uint64_t kNoCandidate = ~std::uint64_t{0};

}  // namespace

MstResult Mst(const graph::Csr& g, const MstOptions& opts) {
  GR_CHECK(g.has_weights(), "MST needs an edge-weighted graph");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  MstResult result;
  std::vector<vid_t> comp(n);
  core::ForAll(pool, n,
               [&](std::size_t v) { comp[v] = static_cast<vid_t>(v); });

  const auto srcs = g.edge_sources(pool);
  const auto dsts = g.col_indices();

  // Round-loop scratch: arena plus hoisted per-round arrays, reused
  // across Borůvka rounds.
  core::Workspace ws;
  std::vector<vid_t> hook(n);
  std::vector<eid_t> winners(n);

  WallTimer timer;

  // Edge frontier: canonical arcs (src < dst). Both endpoints' components
  // bid on each arc.
  std::vector<eid_t> frontier(m), next_frontier;
  {
    const std::size_t kept = par::GenerateIf(
        pool, m, std::span<eid_t>(frontier),
        [&](std::size_t e) { return srcs[e] < dsts[e]; },
        [](std::size_t e) { return static_cast<eid_t>(e); }, &ws);
    frontier.resize(kept);
  }

  std::vector<std::uint64_t> candidate(n);
  while (!frontier.empty()) {
    ++result.stats.iterations;
    result.stats.edges_visited += static_cast<eid_t>(frontier.size());

    // Step 1 (compute): every component's minimum outgoing edge.
    core::ForAll(pool, n,
                 [&](std::size_t v) { candidate[v] = kNoCandidate; });
    core::ForEach(pool, std::span<const eid_t>(frontier), [&](eid_t e) {
      const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
      const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
      if (cu == cv) return;
      const std::uint64_t key =
          PackCandidate(g.edge_weight(e), e);
      par::AtomicMin(&candidate[static_cast<std::size_t>(cu)], key);
      par::AtomicMin(&candidate[static_cast<std::size_t>(cv)], key);
    });

    // Step 2: winners join the forest (dedup: an edge may win for both of
    // its endpoints' components) and hook the components together.
    // The (weight, id) total order guarantees the hook graph is acyclic
    // except for mutual pairs, which the min-id rule breaks.
    core::ForAll(pool, n, [&](std::size_t r) {
      hook[r] = static_cast<vid_t>(r);
      if (comp[r] != static_cast<vid_t>(r)) return;  // not a root
      const std::uint64_t key = candidate[r];
      if (key == kNoCandidate) return;
      const eid_t e = UnpackEdge(key);
      const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
      const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
      hook[r] = (cu == static_cast<vid_t>(r)) ? cv : cu;
    });
    // Break mutual hooks (r <-> s choose the same edge): smaller id wins.
    core::ForAll(pool, n, [&](std::size_t r) {
      const vid_t h = hook[r];
      if (h != static_cast<vid_t>(r) &&
          hook[static_cast<std::size_t>(h)] == static_cast<vid_t>(r) &&
          static_cast<vid_t>(r) < h) {
        hook[r] = static_cast<vid_t>(r);
      }
    });
    // Collect winning edges exactly once.
    {
      const std::size_t wn = par::GenerateIf(
          pool, n, std::span<eid_t>(winners),
          [&](std::size_t r) {
            if (comp[r] != static_cast<vid_t>(r)) return false;
            if (candidate[r] == kNoCandidate) return false;
            const eid_t e = UnpackEdge(candidate[r]);
            // The component that the edge's *winning* endpoint hooks from
            // reports it; the mutual partner (if any) skips to avoid a
            // duplicate. Owner = smaller component id among the two.
            const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
            const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
            const vid_t other =
                (cu == static_cast<vid_t>(r)) ? cv : cu;
            if (candidate[static_cast<std::size_t>(other)] ==
                candidate[r]) {
              return static_cast<vid_t>(r) < other;
            }
            return true;
          },
          [&](std::size_t r) { return UnpackEdge(candidate[r]); }, &ws);
      result.tree_edges.insert(
          result.tree_edges.end(), winners.begin(),
          winners.begin() + static_cast<std::ptrdiff_t>(wn));
    }
    // Apply hooks, then pointer-jump to full compression.
    core::ForAll(pool, n, [&](std::size_t r) {
      if (hook[r] != static_cast<vid_t>(r)) comp[r] = hook[r];
    });
    bool changed = true;
    while (changed) {
      changed = false;
      core::ForAll(pool, n, [&](std::size_t v) {
        const vid_t parent = comp[v];
        const vid_t grand = comp[static_cast<std::size_t>(parent)];
        if (parent != grand) {
          comp[v] = grand;
          par::AtomicStore(&changed, true);
        }
      });
    }

    // Step 3 (filter): drop arcs that became intra-component.
    next_frontier.clear();
    par::AppendIf(
        pool, std::span<const eid_t>(frontier), next_frontier,
        [&](eid_t e) {
          return comp[srcs[static_cast<std::size_t>(e)]] !=
                 comp[dsts[static_cast<std::size_t>(e)]];
        },
        &ws);
    frontier.swap(next_frontier);
  }

  result.total_weight = par::TransformReduce(
      pool, result.tree_edges.size(), 0.0,
      [](double a, double b) { return a + b; },
      [&](std::size_t i) {
        return static_cast<double>(g.edge_weight(result.tree_edges[i]));
      });
  result.num_components = static_cast<vid_t>(par::TransformReduce(
      pool, n, std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return comp[v] == static_cast<vid_t>(v) ? std::size_t{1} : 0;
      }));
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
