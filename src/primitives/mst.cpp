#include "primitives/mst.hpp"

#include <bit>

#include "core/compute.hpp"
#include "core/workspace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Packs (weight, edge id) into one atomically-minimizable 64-bit key.
/// Positive IEEE floats compare like their bit patterns, so the weight
/// occupies the high 32 bits and the edge id breaks ties.
std::uint64_t PackCandidate(weight_t w, eid_t e) {
  const std::uint32_t wbits = std::bit_cast<std::uint32_t>(w);
  return (static_cast<std::uint64_t>(wbits) << 32) |
         static_cast<std::uint32_t>(e);
}

eid_t UnpackEdge(std::uint64_t key) {
  return static_cast<eid_t>(key & 0xffffffffu);
}

inline constexpr std::uint64_t kNoCandidate = ~std::uint64_t{0};

}  // namespace

MstResult Mst(const graph::Csr& g, const MstOptions& opts) {
  return Mst(g, opts, RunControl{});
}

MstResult Mst(const graph::Csr& g, const MstOptions& opts,
              const RunControl& ctl) {
  GR_CHECK(g.has_weights(), "MST needs an edge-weighted graph");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  // Round-loop scratch, arena-hoisted so an engine lease reuses every
  // buffer across queries (slots pslot::kMstFirst..+5; every buffer is
  // fully overwritten before it is read back).
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;
  auto& comp = ws.Get<std::vector<vid_t>>(pslot::kMstFirst);
  auto& hook = ws.Get<std::vector<vid_t>>(pslot::kMstFirst + 1);
  auto& winners = ws.Get<std::vector<eid_t>>(pslot::kMstFirst + 2);
  auto& candidate = ws.Get<std::vector<std::uint64_t>>(pslot::kMstFirst + 3);
  auto& frontier = ws.Get<std::vector<eid_t>>(pslot::kMstFirst + 4);
  auto& next_frontier = ws.Get<std::vector<eid_t>>(pslot::kMstFirst + 5);

  MstResult result;
  comp.resize(n);
  core::ForAll(pool, n,
               [&](std::size_t v) { comp[v] = static_cast<vid_t>(v); });
  hook.resize(n);
  winners.resize(n);
  candidate.resize(n);

  const auto srcs = g.edge_sources(pool);
  const auto dsts = g.col_indices();

  WallTimer timer;

  // Edge frontier: canonical arcs (src < dst). Both endpoints' components
  // bid on each arc. The kScanAll variant keeps this full list for every
  // round; kFiltered compacts it after each round.
  frontier.resize(m);
  {
    const std::size_t kept = par::GenerateIf(
        pool, m, std::span<eid_t>(frontier),
        [&](std::size_t e) { return srcs[e] < dsts[e]; },
        [](std::size_t e) { return static_cast<eid_t>(e); }, &ws);
    frontier.resize(kept);
  }

  while (!frontier.empty()) {
    ctl.Checkpoint();
    ++result.stats.iterations;
    result.stats.edges_visited += static_cast<eid_t>(frontier.size());

    // Step 1 (compute): every component's minimum outgoing edge.
    core::ForAll(pool, n,
                 [&](std::size_t v) { candidate[v] = kNoCandidate; });
    core::ForEach(pool, std::span<const eid_t>(frontier), [&](eid_t e) {
      const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
      const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
      if (cu == cv) return;
      const std::uint64_t key =
          PackCandidate(g.edge_weight(e), e);
      par::AtomicMin(&candidate[static_cast<std::size_t>(cu)], key);
      par::AtomicMin(&candidate[static_cast<std::size_t>(cv)], key);
    });

    // Step 2: winners join the forest (dedup: an edge may win for both of
    // its endpoints' components) and hook the components together.
    // The (weight, id) total order guarantees the hook graph is acyclic
    // except for mutual pairs, which the min-id rule breaks.
    core::ForAll(pool, n, [&](std::size_t r) {
      hook[r] = static_cast<vid_t>(r);
      if (comp[r] != static_cast<vid_t>(r)) return;  // not a root
      const std::uint64_t key = candidate[r];
      if (key == kNoCandidate) return;
      const eid_t e = UnpackEdge(key);
      const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
      const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
      hook[r] = (cu == static_cast<vid_t>(r)) ? cv : cu;
    });
    // Break mutual hooks (r <-> s choose the same edge): smaller id wins.
    core::ForAll(pool, n, [&](std::size_t r) {
      const vid_t h = hook[r];
      if (h != static_cast<vid_t>(r) &&
          hook[static_cast<std::size_t>(h)] == static_cast<vid_t>(r) &&
          static_cast<vid_t>(r) < h) {
        hook[r] = static_cast<vid_t>(r);
      }
    });
    // Collect winning edges exactly once.
    std::size_t wn = 0;
    {
      wn = par::GenerateIf(
          pool, n, std::span<eid_t>(winners),
          [&](std::size_t r) {
            if (comp[r] != static_cast<vid_t>(r)) return false;
            if (candidate[r] == kNoCandidate) return false;
            const eid_t e = UnpackEdge(candidate[r]);
            // The component that the edge's *winning* endpoint hooks from
            // reports it; the mutual partner (if any) skips to avoid a
            // duplicate. Owner = smaller component id among the two.
            const vid_t cu = comp[srcs[static_cast<std::size_t>(e)]];
            const vid_t cv = comp[dsts[static_cast<std::size_t>(e)]];
            const vid_t other =
                (cu == static_cast<vid_t>(r)) ? cv : cu;
            if (candidate[static_cast<std::size_t>(other)] ==
                candidate[r]) {
              return static_cast<vid_t>(r) < other;
            }
            return true;
          },
          [&](std::size_t r) { return UnpackEdge(candidate[r]); }, &ws);
      result.tree_edges.insert(
          result.tree_edges.end(), winners.begin(),
          winners.begin() + static_cast<std::ptrdiff_t>(wn));
    }
    // No component found an outgoing edge: the forest is complete. (In the
    // filtered variant this coincides with the frontier running empty.)
    if (wn == 0) break;

    // Apply hooks, then pointer-jump to full compression.
    core::ForAll(pool, n, [&](std::size_t r) {
      if (hook[r] != static_cast<vid_t>(r)) comp[r] = hook[r];
    });
    bool changed = true;
    while (changed) {
      changed = false;
      core::ForAll(pool, n, [&](std::size_t v) {
        const vid_t parent = comp[v];
        const vid_t grand = comp[static_cast<std::size_t>(parent)];
        if (parent != grand) {
          comp[v] = grand;
          par::AtomicStore(&changed, true);
        }
      });
    }

    // Step 3 (filter, kFiltered only): drop arcs that became
    // intra-component so later rounds touch only live arcs.
    if (opts.variant == MstVariant::kFiltered) {
      next_frontier.clear();
      par::AppendIf(
          pool, std::span<const eid_t>(frontier), next_frontier,
          [&](eid_t e) {
            return comp[srcs[static_cast<std::size_t>(e)]] !=
                   comp[dsts[static_cast<std::size_t>(e)]];
          },
          &ws);
      frontier.swap(next_frontier);
      if (frontier.empty()) break;
    }
  }

  result.total_weight = par::TransformReduce(
      pool, result.tree_edges.size(), 0.0,
      [](double a, double b) { return a + b; },
      [&](std::size_t i) {
        return static_cast<double>(g.edge_weight(result.tree_edges[i]));
      });
  result.num_components = static_cast<vid_t>(par::TransformReduce(
      pool, n, std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return comp[v] == static_cast<vid_t>(v) ? std::size_t{1} : 0;
      }));
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
