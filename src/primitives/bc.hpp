// Betweenness centrality (paper Section 5.3), Brandes' formulation.
//
// Two phases, both expressed with Gunrock operators: a forward BFS-style
// advance that counts shortest paths (sigma) per vertex with atomicAdd,
// storing each level's frontier; then a backward sweep over the stored
// levels where an advance accumulates dependency (delta) values from each
// vertex's successors. BC from multiple sources accumulates (exact BC =
// all sources; the paper's GPU comparisons, like ours, sample sources).
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct BcOptions : CommonOptions {
  /// Scale scores by 1/((n-1)(n-2)) like NetworkX's normalized BC.
  bool normalize = false;
};

struct BcResult {
  /// Accumulated centrality per vertex (undirected convention: each pair
  /// contribution counted once — scores halved).
  std::vector<double> bc;
  /// Shortest-path counts from the last processed source.
  std::vector<double> sigma;
  /// BFS depth from the last processed source (-1 unreachable).
  std::vector<std::int32_t> depth;
  core::TraversalStats stats;
};

/// Single-source BC contribution.
BcResult Bc(const graph::Csr& g, vid_t source, const BcOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace, ctl.cancel polled
/// at level boundaries of both sweeps (throws core::Cancelled).
BcResult Bc(const graph::Csr& g, vid_t source, const BcOptions& opts,
            const RunControl& ctl);

/// Accumulates BC over a set of sources (exact when sources = all
/// vertices).
BcResult BcMultiSource(const graph::Csr& g,
                       std::span<const vid_t> sources,
                       const BcOptions& opts = {});

BcResult BcMultiSource(const graph::Csr& g, std::span<const vid_t> sources,
                       const BcOptions& opts, const RunControl& ctl);

}  // namespace gunrock
