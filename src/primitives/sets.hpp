// Set-construction primitives listed as Gunrock work-in-progress (paper
// Section 5.5: "maximal independent set, graph coloring"): both are
// classic filter-loop algorithms — random-priority local maxima join the
// solution, the frontier of undecided vertices shrinks to empty — plus
// k-core decomposition, a pure peel-with-filter loop.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct ColoringOptions : CommonOptions {
  std::uint64_t seed = 11;
};

struct ColoringResult {
  /// Proper vertex coloring: adjacent vertices always differ.
  std::vector<std::int32_t> color;
  std::int32_t num_colors = 0;
  int rounds = 0;
  core::TraversalStats stats;
};

/// Jones–Plassmann greedy coloring with random priorities.
ColoringResult GraphColoring(const graph::Csr& g,
                             const ColoringOptions& opts = {});

struct MisOptions : CommonOptions {
  std::uint64_t seed = 13;
};

struct MisResult {
  /// 1 = in the independent set.
  std::vector<std::uint8_t> in_set;
  vid_t set_size = 0;
  int rounds = 0;
  core::TraversalStats stats;
};

/// Luby's maximal independent set.
MisResult MaximalIndependentSet(const graph::Csr& g,
                                const MisOptions& opts = {});

struct KCoreOptions : CommonOptions {};

struct KCoreResult {
  /// Core number per vertex (the largest k such that v survives k-core
  /// peeling).
  std::vector<std::int32_t> core;
  std::int32_t degeneracy = 0;
  core::TraversalStats stats;
};

/// Full k-core decomposition by iterated peeling.
KCoreResult KCore(const graph::Csr& g, const KCoreOptions& opts = {});

}  // namespace gunrock
