#include "primitives/bfs.hpp"

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/direction.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Problem data slice (the paper's Problem component): SoA per-vertex
/// state shared by the functors.
struct BfsProblem {
  std::int32_t* depth = nullptr;
  vid_t* pred = nullptr;          // nullptr when preds are not requested
  par::EpochBitmap* visited = nullptr;  // idempotent-mode claim set
  std::int32_t iteration = 0;     // depth to assign this iteration
};

/// Non-idempotent advance: atomic CAS on the depth label claims each
/// vertex exactly once, so the output frontier is duplicate-free.
struct BfsAtomicFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, BfsProblem& p) {
    if (par::AtomicCas(&p.depth[d], std::int32_t{-1}, p.iteration)) {
      if (p.pred) p.pred[d] = s;
      return true;
    }
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BfsProblem&) {}
};

/// Idempotent advance: plain reads/writes — rediscovery is benign because
/// every writer stores the same depth. Duplicates may be emitted.
struct BfsIdempotentFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, BfsProblem& p) {
    if (par::AtomicLoad(&p.depth[d]) != -1) return false;
    par::AtomicStore(&p.depth[d], p.iteration);
    if (p.pred) par::AtomicStore(&p.pred[d], s);
    return true;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BfsProblem&) {}
};

/// Idempotent-mode filter: the visited bitmap's test-and-set is the exact
/// dedup claim ("Gunrock's fastest BFS ... uses heuristics within its
/// filter that reduce the concurrent discovery of child nodes").
struct BfsFilterFunctor {
  static bool CondVertex(vid_t v, BfsProblem& p) {
    return p.visited->TestAndSet(static_cast<std::size_t>(v));
  }
  static void ApplyVertex(vid_t, BfsProblem&) {}
};

/// Pull advance: the operator already verified the parent is in the
/// current frontier; the candidate is unvisited by construction.
struct BfsPullFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, BfsProblem& p) {
    p.depth[d] = p.iteration;
    if (p.pred) p.pred[d] = s;
    return true;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BfsProblem&) {}
};

}  // namespace

BfsResult Bfs(const graph::Csr& g, vid_t source, const BfsOptions& opts) {
  return Bfs(g, source, opts, RunControl{});
}

BfsResult Bfs(const graph::Csr& g, vid_t source, const BfsOptions& opts,
              const RunControl& ctl) {
  GR_CHECK(source >= 0 && source < g.num_vertices(),
           "BFS source out of range");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const graph::Csr& rg = opts.reverse ? *opts.reverse : g;

  BfsResult result;
  result.depth.assign(n, -1);
  if (opts.compute_preds) result.pred.assign(n, kInvalidVid);

  // Enactor-owned scratch arena: every operator call below reuses its
  // buffers through this, so iterations are allocation-free after warm-up.
  // An engine-leased arena (ctl.workspace) extends the reuse across
  // queries — with a warm lease only the result buffers above allocate.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  // Both per-vertex sets are epoch-stamped and arena-resident: a fresh
  // query (visited) or a direction switch (frontier_bits) invalidates
  // them with one counter bump instead of an O(|V|) clear, and a warm
  // lease reuses their storage outright.
  auto& visited = ws.Get<par::EpochBitmap>(pslot::kBfsFirst + 3);
  visited.Resize(n);
  visited.NewEpoch();
  auto& frontier_bits = ws.Get<par::EpochBitmap>(pslot::kBfsFirst + 4);
  frontier_bits.Resize(n);

  BfsProblem prob;
  prob.depth = result.depth.data();
  prob.pred = opts.compute_preds ? result.pred.data() : nullptr;
  prob.visited = &visited;

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ctl.scale_free_hint >= 0
                                ? ctl.scale_free_hint > 0
                                : graph::ComputeScaleFreeHint(g, pool);
  adv_cfg.workspace = &ws;
  core::FilterConfig filter_cfg;
  filter_cfg.history_hash = true;
  filter_cfg.workspace = &ws;

  core::DirectionOptimizer optimizer(g.num_vertices(), opts.do_alpha,
                                     opts.do_beta);

  auto& frontier = ws.Get<core::VertexFrontier>(pslot::kBfsFirst);
  frontier.Assign({source});
  result.depth[source] = 0;
  visited.Set(static_cast<std::size_t>(source));

  // Edge counts for the direction controller: edges reachable from
  // unvisited vertices shrink as the traversal claims them.
  eid_t m_unvisited = g.num_edges() - g.degree(source);

  core::EfficiencyAccumulator efficiency;
  // Pull-mode unvisited list and idempotent-mode advance output, both
  // reused across iterations and (via the lease) across queries.
  auto& candidates = ws.Get<std::vector<vid_t>>(pslot::kBfsFirst + 1);
  auto& raw = ws.Get<std::vector<vid_t>>(pslot::kBfsFirst + 2);
  WallTimer timer;

  const bool optimizing = opts.direction == core::Direction::kOptimizing;
  while (!frontier.empty()) {
    ctl.Checkpoint();
    prob.iteration = result.stats.iterations + 1;
    const std::size_t n_f = frontier.size();

    bool pull = opts.direction == core::Direction::kPull;
    if (optimizing) {
      // The controller's inputs (frontier out-edges, unexplored edges)
      // are only worth computing when the direction can actually switch.
      const eid_t m_f = par::TransformReduce(
          pool, n_f, eid_t{0}, [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) { return g.degree(frontier.current()[i]); },
          &ws);
      pull = optimizer.ShouldPull(m_f, m_unvisited,
                                  static_cast<vid_t>(n_f));
    }

    core::AdvanceResult adv;
    if (pull) {
      frontier_bits.NewEpoch();  // O(1) invalidation of the previous set
      core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                    [&](vid_t v) {
                      frontier_bits.Set(static_cast<std::size_t>(v));
                    });
      candidates.resize(n);
      const std::size_t nc = par::GenerateIf(
          pool, n, std::span<vid_t>(candidates),
          [&](std::size_t v) { return result.depth[v] == -1; },
          [](std::size_t v) { return static_cast<vid_t>(v); }, &ws);
      candidates.resize(nc);
      adv = core::AdvancePull<BfsPullFunctor>(pool, rg, frontier_bits,
                                              candidates, &frontier.next(),
                                              prob, adv_cfg);
      // Pull discovers uniquely (one thread owns each candidate); mark
      // visited so a later push iteration stays consistent.
      core::ForEach(pool, std::span<const vid_t>(frontier.next()),
                    [&](vid_t v) {
                      visited.Set(static_cast<std::size_t>(v));
                    });
    } else if (opts.idempotent) {
      raw.clear();
      adv = core::AdvancePush<BfsIdempotentFunctor>(
          pool, g, frontier.current(), &raw, prob, adv_cfg);
      core::FilterVertex<BfsFilterFunctor>(pool, raw, &frontier.next(),
                                           prob, filter_cfg);
    } else {
      adv = core::AdvancePush<BfsAtomicFunctor>(
          pool, g, frontier.current(), &frontier.next(), prob, adv_cfg);
    }

    result.stats.edges_visited += adv.edges_visited;
    efficiency.Add(adv.lane_efficiency, adv.edges_visited);
    if (opts.collect_records) {
      result.stats.records.push_back(
          {pull ? "advance-pull" : "advance-push", prob.iteration, n_f,
           frontier.next().size(), adv.edges_visited,
           adv.lane_efficiency});
    }

    if (optimizing) {
      const eid_t m_new = par::TransformReduce(
          pool, frontier.next().size(), eid_t{0},
          [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) { return g.degree(frontier.next()[i]); },
          &ws);
      m_unvisited -= m_new;
    }

    frontier.Flip();
    ++result.stats.iterations;
  }

  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.lane_efficiency = efficiency.Value();
  return result;
}

}  // namespace gunrock
