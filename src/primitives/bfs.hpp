// Breadth-first search (paper Section 5.1).
//
// Gunrock's BFS is one advance + one filter per iteration. Two advance
// flavors (Section 4.5): the non-idempotent mode claims vertices with an
// atomic CAS on the depth label during advance (no duplicates reach the
// output frontier), while the idempotent mode — Gunrock's fastest — writes
// labels without atomics, tolerates benign rediscovery, and relies on the
// filter's visited-bitmap claim plus history-hash heuristics to prune
// duplicates. Direction-optimizing traversal (push/pull) is selected per
// iteration by the Beamer controller.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct BfsOptions : CommonOptions {
  /// Use the idempotent advance + filter-dedup pipeline (paper's fastest).
  bool idempotent = true;
  /// Traversal direction policy. kOptimizing needs a symmetric graph (or
  /// pass a reverse graph via `reverse`).
  core::Direction direction = core::Direction::kPush;
  double do_alpha = 14.0;  ///< push->pull switch threshold
  double do_beta = 24.0;   ///< pull->push switch threshold
  /// Record predecessor (BFS-tree parent) per vertex.
  bool compute_preds = true;
  /// Reverse graph for pull traversal on directed graphs; nullptr means
  /// the graph is symmetric and g doubles as its own reverse.
  const graph::Csr* reverse = nullptr;
};

struct BfsResult {
  /// Hop count from the source; -1 for unreachable vertices.
  std::vector<std::int32_t> depth;
  /// BFS-tree parent; kInvalidVid for the source and unreachable vertices.
  std::vector<vid_t> pred;
  core::TraversalStats stats;
};

/// Runs BFS from `source`. Throws gunrock::Error on a bad source.
BfsResult Bfs(const graph::Csr& g, vid_t source,
              const BfsOptions& opts = {});

/// Engine-invokable runner: same semantics, but scratch comes from
/// ctl.workspace (lease-recycled by the query engine) and ctl.cancel is
/// polled at every iteration boundary (throws core::Cancelled).
BfsResult Bfs(const graph::Csr& g, vid_t source, const BfsOptions& opts,
              const RunControl& ctl);

}  // namespace gunrock
