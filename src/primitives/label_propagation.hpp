// Label-propagation community detection.
//
// The paper's Section 4.5 names "community detection and label
// propagation algorithms" as the workloads its frontier reorganization
// targets. This is the synchronous frontier formulation: every vertex in
// the frontier adopts the most frequent label among its neighbors
// (ties: smallest label); vertices whose label changed put their
// neighborhood back into the next frontier. Converges when no label
// moves (or at the iteration cap — synchronous LP can oscillate on
// bipartite-ish structures, which the cap absorbs).
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct LabelPropagationOptions : CommonOptions {
  int max_iterations = 100;
};

struct LabelPropagationResult {
  std::vector<vid_t> label;
  vid_t num_communities = 0;
  int iterations = 0;
  core::TraversalStats stats;
};

LabelPropagationResult LabelPropagation(
    const graph::Csr& g, const LabelPropagationOptions& opts = {});

}  // namespace gunrock
