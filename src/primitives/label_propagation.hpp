// Label-propagation community detection.
//
// The paper's Section 4.5 names "community detection and label
// propagation algorithms" as the workloads its frontier reorganization
// targets. This is the synchronous frontier formulation: every vertex in
// the frontier adopts the most frequent label among its neighbors
// (ties: smallest label); vertices whose label changed put their
// neighborhood back into the next frontier. Converges when no label
// moves (or at the iteration cap — synchronous LP can oscillate on
// bipartite-ish structures, which the cap absorbs).
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

/// Sweep policy per synchronous round. Both variants evolve the labels
/// identically (a vertex outside the frontier would recompute the label
/// it already holds), so results match; they trade bookkeeping for
/// re-evaluation work.
enum class LpVariant {
  /// Frontier form (default): only vertices adjacent to a change (plus
  /// the changed vertices) are re-evaluated next round.
  kFrontier,
  /// Full sweep: every round re-evaluates all vertices — no frontier
  /// bookkeeping, better when most labels still move every round.
  kFullSweep,
};

struct LabelPropagationOptions : CommonOptions {
  int max_iterations = 100;
  LpVariant variant = LpVariant::kFrontier;
};

struct LabelPropagationResult {
  std::vector<vid_t> label;
  vid_t num_communities = 0;
  int iterations = 0;
  core::TraversalStats stats;
};

LabelPropagationResult LabelPropagation(
    const graph::Csr& g, const LabelPropagationOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kLpFirst..+5, the last two holding reduce partials),
/// ctl.cancel polled at round boundaries (throws
/// core::Cancelled).
LabelPropagationResult LabelPropagation(const graph::Csr& g,
                                        const LabelPropagationOptions& opts,
                                        const RunControl& ctl);

}  // namespace gunrock
