// Triangle counting and clustering coefficients.
//
// Among the primitives the Gunrock project grew next ("graph matching,
// Louvain..." — Section 5.5); triangle counting is the canonical
// edge-frontier + neighborhood-intersection workload: for every canonical
// arc (u, v) with u < v, count the common neighbors w > v, so each
// triangle u < v < w is counted exactly once. Sorted CSR rows make each
// intersection a linear merge; equal-work chunking over arcs keeps
// power-law degrees balanced.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct TriangleOptions : CommonOptions {};

struct TriangleResult {
  std::int64_t num_triangles = 0;
  /// Triangles through each vertex (each triangle contributes to all
  /// three corners).
  std::vector<std::int64_t> per_vertex;
  /// Local clustering coefficient: triangles(v) / (deg(v) choose 2).
  std::vector<double> clustering;
  /// Global clustering coefficient (3*triangles / open+closed wedges).
  double global_clustering = 0.0;
  core::TraversalStats stats;
};

/// Counts triangles of an undirected graph (symmetric CSR, no self
/// loops or parallel edges — the builder's defaults).
TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts = {});

}  // namespace gunrock
