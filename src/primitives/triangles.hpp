// Triangle counting and clustering coefficients.
//
// Among the primitives the Gunrock project grew next ("graph matching,
// Louvain..." — Section 5.5); triangle counting is the canonical
// edge-frontier + neighborhood-intersection workload: for every canonical
// arc (u, v) with u < v, count the common neighbors w > v, so each
// triangle u < v < w is counted exactly once. Sorted CSR rows make each
// intersection a linear merge; equal-work chunking over arcs keeps
// power-law degrees balanced.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

/// Intersection strategy per canonical arc / corner vertex. Both count
/// every triangle exactly once at its minimum-id corner and produce
/// identical tallies; they trade memory traffic for random access.
enum class TriangleVariant {
  /// Arc-centric sorted-merge (default): for every arc (u, v) with
  /// u < v, linearly merge the > v suffixes of both sorted rows.
  kMergePath,
  /// Vertex-centric hashed membership: mark N(u)'s > u suffix in a
  /// per-lane table, then probe each two-hop neighbor against it —
  /// O(1) probes instead of a linear merge, better for skewed rows.
  kHash,
};

struct TriangleOptions : CommonOptions {
  TriangleVariant variant = TriangleVariant::kMergePath;
};

struct TriangleResult {
  std::int64_t num_triangles = 0;
  /// Triangles through each vertex (each triangle contributes to all
  /// three corners).
  std::vector<std::int64_t> per_vertex;
  /// Local clustering coefficient: triangles(v) / (deg(v) choose 2).
  std::vector<double> clustering;
  /// Global clustering coefficient (3*triangles / open+closed wedges).
  double global_clustering = 0.0;
  core::TraversalStats stats;
};

/// Counts triangles of an undirected graph (symmetric CSR, no self
/// loops or parallel edges — the builder's defaults).
TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kTrianglesFirst..+2), ctl.cancel polled between fixed-size
/// arc/vertex blocks (throws core::Cancelled) — the counting pass has no
/// natural iterations, so the blocks are its cancellation boundaries.
TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts,
                              const RunControl& ctl);

}  // namespace gunrock
