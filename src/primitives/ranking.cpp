#include "primitives/ranking.hpp"

#include <cmath>

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/spmv.hpp"
#include "core/workspace.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Shared state for the score-propagation functors: an advance over the
/// appropriate graph accumulates src_score (optionally scaled per-source)
/// into dst_score with atomicAdd.
struct PropagateProblem {
  const double* src_score = nullptr;
  double* dst_score = nullptr;
  const double* src_scale = nullptr;  // nullptr = 1.0
};

struct PropagateFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, PropagateProblem& p) {
    const double scale = p.src_scale ? p.src_scale[s] : 1.0;
    par::AtomicAdd(&p.dst_score[d], p.src_score[s] * scale);
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, PropagateProblem&) {}
};

/// Full-vertex pusher list, arena-resident across iterations and queries
/// (slot pslot::kRankingFirst; every ranking primitive stores the same
/// type there, so a recycled lease never re-types it).
std::span<const vid_t> AllVertices(par::ThreadPool& pool,
                                   core::Workspace& ws, std::size_t n) {
  auto& all = ws.Get<std::vector<vid_t>>(pslot::kRankingFirst);
  all.resize(n);
  core::ForAll(pool, n,
               [&](std::size_t v) { all[v] = static_cast<vid_t>(v); });
  return all;
}

double NormalizeL1(par::ThreadPool& pool, std::vector<double>& x) {
  const double sum = par::ReduceSum(pool, std::span<const double>(x));
  if (sum > 0) {
    core::ForAll(pool, x.size(), [&](std::size_t i) { x[i] /= sum; });
  }
  return sum;
}

double NormalizeL2(par::ThreadPool& pool, std::vector<double>& x,
                   core::Workspace* ws) {
  const double sum_sq = par::TransformReduce(
      pool, x.size(), 0.0, [](double a, double b) { return a + b; },
      [&](std::size_t i) { return x[i] * x[i]; }, ws);
  const double norm = std::sqrt(sum_sq);
  if (norm > 0) {
    core::ForAll(pool, x.size(), [&](std::size_t i) { x[i] /= norm; });
  }
  return norm;
}

double L1Distance(par::ThreadPool& pool, std::span<const double> a,
                  std::span<const double> b) {
  return par::TransformReduce(
      pool, a.size(), 0.0, [](double x, double y) { return x + y; },
      [&](std::size_t i) { return std::abs(a[i] - b[i]); });
}

/// y[v] = sum of x[u] over row v of `a` (the gather orientation), via the
/// merge-path plus-times sweep — the spmv-backend replacement for the
/// zero-init + atomic-scatter pattern below. Every row is overwritten, so
/// no zero pass is needed; pre-scale x to fold per-source factors in.
void SpmvGather(par::ThreadPool& pool, const graph::Csr& a,
                std::span<const double> x, std::span<double> y,
                core::Workspace& ws) {
  const auto cols = a.col_indices();
  core::SpmvMergePath<double>(
      pool, a.row_offsets(), y, 0.0,
      [](double p, double q) { return p + q; },
      [&](std::size_t e) { return x[static_cast<std::size_t>(cols[e])]; },
      [](std::size_t, double acc) { return acc; }, &ws, pslot::kSpmvFirst);
}

bool UseSpmv(core::SpmvBackend backend, bool scale_free) {
  return backend == core::SpmvBackend::kSpmv ||
         (backend == core::SpmvBackend::kAuto && scale_free);
}

int ScaleFreeHint(const graph::Csr& g, par::ThreadPool& pool,
                  const RunControl& ctl) {
  return ctl.scale_free_hint >= 0
             ? ctl.scale_free_hint > 0
             : graph::ComputeScaleFreeHint(g, pool);
}

}  // namespace

HitsResult Hits(const graph::Csr& g, const graph::Csr& rg,
                const HitsOptions& opts) {
  return Hits(g, rg, opts, RunControl{});
}

HitsResult Hits(const graph::Csr& g, const graph::Csr& rg,
                const HitsOptions& opts, const RunControl& ctl) {
  GR_CHECK(g.num_vertices() == rg.num_vertices(),
           "forward/reverse vertex count mismatch");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  HitsResult result;
  if (n == 0) return result;
  result.hub.assign(n, 1.0 / static_cast<double>(n));
  result.authority.assign(n, 0.0);

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;
  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ScaleFreeHint(g, pool, ctl);
  adv_cfg.workspace = &ws;
  const bool use_spmv = UseSpmv(opts.backend, adv_cfg.scale_free_hint);
  const auto all = AllVertices(pool, ws, n);

  auto& prev_hub = ws.Get<std::vector<double>>(pslot::kRankingFirst + 1);
  auto& prev_auth = ws.Get<std::vector<double>>(pslot::kRankingFirst + 2);
  prev_hub = result.hub;
  prev_auth.assign(n, 0.0);

  const auto normalize = [&](std::vector<double>& x) {
    if (opts.norm == HitsNorm::kL2) {
      NormalizeL2(pool, x, &ws);
    } else {
      NormalizeL1(pool, x);
    }
  };

  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    ctl.Checkpoint();
    // auth = sum of hub over in-edges (gather over rg / push over g);
    // hub = sum of auth over out-edges (gather over g / push over rg).
    if (use_spmv) {
      SpmvGather(pool, rg, result.hub, result.authority, ws);
      result.stats.edges_visited += rg.num_edges();
      normalize(result.authority);
      SpmvGather(pool, g, result.authority, result.hub, ws);
      result.stats.edges_visited += g.num_edges();
      normalize(result.hub);
    } else {
      core::ForAll(pool, n, [&](std::size_t v) { result.authority[v] = 0; });
      prob.src_score = result.hub.data();
      prob.dst_score = result.authority.data();
      prob.src_scale = nullptr;
      auto adv = core::AdvancePush<PropagateFunctor>(
          pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
      normalize(result.authority);

      core::ForAll(pool, n, [&](std::size_t v) { result.hub[v] = 0; });
      prob.src_score = result.authority.data();
      prob.dst_score = result.hub.data();
      adv = core::AdvancePush<PropagateFunctor>(
          pool, rg, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
      normalize(result.hub);
    }

    ++result.iterations;
    const double moved =
        L1Distance(pool, result.hub, prev_hub) +
        L1Distance(pool, result.authority, prev_auth);
    prev_hub = result.hub;
    prev_auth = result.authority;
    if (moved < opts.tolerance) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

SalsaResult Salsa(const graph::Csr& g, const graph::Csr& rg,
                  const SalsaOptions& opts) {
  return Salsa(g, rg, opts, RunControl{});
}

SalsaResult Salsa(const graph::Csr& g, const graph::Csr& rg,
                  const SalsaOptions& opts, const RunControl& ctl) {
  GR_CHECK(g.num_vertices() == rg.num_vertices(),
           "forward/reverse vertex count mismatch");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SalsaResult result;
  if (n == 0) return result;
  result.hub.assign(n, 1.0 / static_cast<double>(n));
  result.authority.assign(n, 1.0 / static_cast<double>(n));

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  // Stochastic scalings: 1/outdeg for the hub->auth walk, 1/indeg for the
  // auth->hub walk.
  auto& inv_out = ws.Get<std::vector<double>>(pslot::kRankingFirst + 3);
  auto& inv_in = ws.Get<std::vector<double>>(pslot::kRankingFirst + 4);
  inv_out.resize(n);
  inv_in.resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t od = g.degree(static_cast<vid_t>(v));
    const eid_t id = rg.degree(static_cast<vid_t>(v));
    inv_out[v] = od > 0 ? 1.0 / static_cast<double>(od) : 0.0;
    inv_in[v] = id > 0 ? 1.0 / static_cast<double>(id) : 0.0;
  });

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ScaleFreeHint(g, pool, ctl);
  adv_cfg.workspace = &ws;
  const auto all = AllVertices(pool, ws, n);

  auto& prev_hub = ws.Get<std::vector<double>>(pslot::kRankingFirst + 1);
  auto& prev_auth = ws.Get<std::vector<double>>(pslot::kRankingFirst + 2);
  auto& next_auth = ws.Get<std::vector<double>>(pslot::kRankingFirst + 5);
  auto& next_hub = ws.Get<std::vector<double>>(pslot::kRankingFirst + 6);
  prev_hub = result.hub;
  prev_auth = result.authority;

  const bool use_spmv = UseSpmv(opts.backend, adv_cfg.scale_free_hint);
  // Pre-scaled score vectors for the spmv gather: the per-source
  // stochastic factor is folded in once per vertex (the push path rounds
  // score * scale identically per edge, so the products match bitwise).
  auto& hub_scaled = ws.Get<std::vector<double>>(pslot::kRankingFirst + 10);
  auto& auth_scaled = ws.Get<std::vector<double>>(pslot::kRankingFirst + 11);
  if (use_spmv) {
    hub_scaled.resize(n);
    auth_scaled.resize(n);
    next_auth.resize(n);
    next_hub.resize(n);
  }

  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    ctl.Checkpoint();
    if (use_spmv) {
      // a'[v] = sum_{u -> v} h[u] / outdeg(u): gather over rg.
      core::ForAll(pool, n, [&](std::size_t v) {
        hub_scaled[v] = result.hub[v] * inv_out[v];
      });
      SpmvGather(pool, rg, hub_scaled, next_auth, ws);
      // h'[u] = sum_{u -> v} a[v] / indeg(v): gather over g.
      core::ForAll(pool, n, [&](std::size_t v) {
        auth_scaled[v] = result.authority[v] * inv_in[v];
      });
      SpmvGather(pool, g, auth_scaled, next_hub, ws);
      result.stats.edges_visited += g.num_edges() + rg.num_edges();
    } else {
      // a'[v] = sum_{u -> v} h[u] / outdeg(u)
      next_auth.assign(n, 0.0);
      prob.src_score = result.hub.data();
      prob.dst_score = next_auth.data();
      prob.src_scale = inv_out.data();
      auto adv = core::AdvancePush<PropagateFunctor>(
          pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;

      // h'[u] = sum_{u -> v} a[v] / indeg(v): push along reverse edges
      // with the *source* (= v in forward orientation) scaled by
      // 1/indeg(v).
      next_hub.assign(n, 0.0);
      prob.src_score = result.authority.data();
      prob.dst_score = next_hub.data();
      prob.src_scale = inv_in.data();
      adv = core::AdvancePush<PropagateFunctor>(
          pool, rg, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
    }

    result.authority.swap(next_auth);
    result.hub.swap(next_hub);
    // The walks are substochastic only at sinks; renormalize to keep the
    // scores a distribution.
    NormalizeL1(pool, result.authority);
    NormalizeL1(pool, result.hub);

    ++result.iterations;
    const double moved =
        L1Distance(pool, result.hub, prev_hub) +
        L1Distance(pool, result.authority, prev_auth);
    prev_hub = result.hub;
    prev_auth = result.authority;
    if (moved < opts.tolerance) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

PprResult PersonalizedPagerank(const graph::Csr& g,
                               std::span<const vid_t> seeds,
                               const PprOptions& opts) {
  return PersonalizedPagerank(g, seeds, opts, RunControl{});
}

PprResult PersonalizedPagerank(const graph::Csr& g,
                               std::span<const vid_t> seeds,
                               const PprOptions& opts,
                               const RunControl& ctl) {
  GR_CHECK(!seeds.empty(), "PPR needs at least one seed");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PprResult result;
  if (n == 0) return result;

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  auto& teleport = ws.Get<std::vector<double>>(pslot::kRankingFirst + 7);
  teleport.assign(n, 0.0);
  for (const vid_t s : seeds) {
    GR_CHECK(s >= 0 && s < g.num_vertices(), "seed out of range");
    teleport[static_cast<std::size_t>(s)] =
        1.0 / static_cast<double>(seeds.size());
  }

  std::vector<double> rank(teleport.begin(), teleport.end());
  auto& next = ws.Get<std::vector<double>>(pslot::kRankingFirst + 8);
  auto& scaled = ws.Get<std::vector<double>>(pslot::kRankingFirst + 9);
  next.resize(n);
  scaled.resize(n);
  auto& inv_out = ws.Get<std::vector<double>>(pslot::kRankingFirst + 3);
  inv_out.resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    inv_out[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  });

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ScaleFreeHint(g, pool, ctl);
  adv_cfg.workspace = &ws;
  const auto all = AllVertices(pool, ws, n);

  // kAuto stays on push (see PprOptions::backend); spmv is the explicit
  // gather formulation over the reverse orientation.
  const bool use_spmv = opts.backend == core::SpmvBackend::kSpmv;
  const graph::Csr& rg = opts.reverse ? *opts.reverse : g;
  const auto rcols = rg.col_indices();

  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    ctl.Checkpoint();
    // Dangling mass teleports back to the seeds.
    const double dangling = par::TransformReduce(
        pool, n, 0.0, [](double a, double b) { return a + b; },
        [&](std::size_t v) {
          return g.degree(static_cast<vid_t>(v)) == 0 ? rank[v] : 0.0;
        },
        &ws);
    if (use_spmv) {
      // Same per-edge product as the push path — (damping * rank[u])
      // rounded, then * inv_out[u] rounded — folded in per vertex; the
      // teleport-plus-dangling base joins in finalize.
      core::ForAll(pool, n, [&](std::size_t v) {
        scaled[v] = (opts.damping * rank[v]) * inv_out[v];
      });
      const double base = 1.0 - opts.damping + opts.damping * dangling;
      core::SpmvMergePath<double>(
          pool, rg.row_offsets(), std::span<double>(next), 0.0,
          [](double p, double q) { return p + q; },
          [&](std::size_t e) {
            return scaled[static_cast<std::size_t>(rcols[e])];
          },
          [&](std::size_t v, double acc) {
            return base * teleport[v] + acc;
          },
          &ws, pslot::kSpmvFirst);
      result.stats.edges_visited += rg.num_edges();
    } else {
      core::ForAll(pool, n, [&](std::size_t v) {
        next[v] = (1.0 - opts.damping + opts.damping * dangling) *
                  teleport[v];
      });
      // Push damping * rank / outdeg along out-edges.
      core::ForAll(pool, n, [&](std::size_t v) {
        scaled[v] = opts.damping * rank[v];
      });
      prob.src_score = scaled.data();
      prob.dst_score = next.data();
      prob.src_scale = inv_out.data();
      const auto adv = core::AdvancePush<PropagateFunctor>(
          pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
    }

    const double moved = L1Distance(pool, next, rank);
    rank.swap(next);
    ++result.iterations;
    if (moved < opts.tolerance) break;
  }
  result.rank = std::move(rank);
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

}  // namespace gunrock
