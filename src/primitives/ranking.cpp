#include "primitives/ranking.hpp"

#include <cmath>

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Shared state for the score-propagation functors: an advance over the
/// appropriate graph accumulates src_score (optionally scaled per-source)
/// into dst_score with atomicAdd.
struct PropagateProblem {
  const double* src_score = nullptr;
  double* dst_score = nullptr;
  const double* src_scale = nullptr;  // nullptr = 1.0
};

struct PropagateFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, PropagateProblem& p) {
    const double scale = p.src_scale ? p.src_scale[s] : 1.0;
    par::AtomicAdd(&p.dst_score[d], p.src_score[s] * scale);
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, PropagateProblem&) {}
};

std::vector<vid_t> AllVertices(par::ThreadPool& pool, std::size_t n) {
  std::vector<vid_t> all(n);
  core::ForAll(pool, n,
               [&](std::size_t v) { all[v] = static_cast<vid_t>(v); });
  return all;
}

double NormalizeL1(par::ThreadPool& pool, std::vector<double>& x) {
  const double sum = par::ReduceSum(pool, std::span<const double>(x));
  if (sum > 0) {
    core::ForAll(pool, x.size(), [&](std::size_t i) { x[i] /= sum; });
  }
  return sum;
}

double L1Distance(par::ThreadPool& pool, std::span<const double> a,
                  std::span<const double> b) {
  return par::TransformReduce(
      pool, a.size(), 0.0, [](double x, double y) { return x + y; },
      [&](std::size_t i) { return std::abs(a[i] - b[i]); });
}

}  // namespace

HitsResult Hits(const graph::Csr& g, const graph::Csr& rg,
                const HitsOptions& opts) {
  GR_CHECK(g.num_vertices() == rg.num_vertices(),
           "forward/reverse vertex count mismatch");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  HitsResult result;
  if (n == 0) return result;
  result.hub.assign(n, 1.0 / static_cast<double>(n));
  result.authority.assign(n, 0.0);

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = graph::ComputeScaleFreeHint(g, pool);
  const auto all = AllVertices(pool, n);

  std::vector<double> prev_hub(result.hub), prev_auth(n, 0.0);
  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    // auth = sum of hub over in-edges: push hub along forward edges.
    core::ForAll(pool, n, [&](std::size_t v) { result.authority[v] = 0; });
    prob.src_score = result.hub.data();
    prob.dst_score = result.authority.data();
    prob.src_scale = nullptr;
    auto adv = core::AdvancePush<PropagateFunctor>(
        pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
        adv_cfg);
    result.stats.edges_visited += adv.edges_visited;
    NormalizeL1(pool, result.authority);

    // hub = sum of auth over out-edges: push auth along reverse edges.
    core::ForAll(pool, n, [&](std::size_t v) { result.hub[v] = 0; });
    prob.src_score = result.authority.data();
    prob.dst_score = result.hub.data();
    adv = core::AdvancePush<PropagateFunctor>(
        pool, rg, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
        adv_cfg);
    result.stats.edges_visited += adv.edges_visited;
    NormalizeL1(pool, result.hub);

    ++result.iterations;
    const double moved =
        L1Distance(pool, result.hub, prev_hub) +
        L1Distance(pool, result.authority, prev_auth);
    prev_hub = result.hub;
    prev_auth = result.authority;
    if (moved < opts.tolerance) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

SalsaResult Salsa(const graph::Csr& g, const graph::Csr& rg,
                  const SalsaOptions& opts) {
  GR_CHECK(g.num_vertices() == rg.num_vertices(),
           "forward/reverse vertex count mismatch");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SalsaResult result;
  if (n == 0) return result;
  result.hub.assign(n, 1.0 / static_cast<double>(n));
  result.authority.assign(n, 1.0 / static_cast<double>(n));

  // Stochastic scalings: 1/outdeg for the hub->auth walk, 1/indeg for the
  // auth->hub walk.
  std::vector<double> inv_out(n, 0.0), inv_in(n, 0.0);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t od = g.degree(static_cast<vid_t>(v));
    const eid_t id = rg.degree(static_cast<vid_t>(v));
    inv_out[v] = od > 0 ? 1.0 / static_cast<double>(od) : 0.0;
    inv_in[v] = id > 0 ? 1.0 / static_cast<double>(id) : 0.0;
  });

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = graph::ComputeScaleFreeHint(g, pool);
  const auto all = AllVertices(pool, n);

  std::vector<double> prev_hub(result.hub), prev_auth(result.authority);
  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    // a'[v] = sum_{u -> v} h[u] / outdeg(u)
    std::vector<double> next_auth(n, 0.0);
    prob.src_score = result.hub.data();
    prob.dst_score = next_auth.data();
    prob.src_scale = inv_out.data();
    auto adv = core::AdvancePush<PropagateFunctor>(
        pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
        adv_cfg);
    result.stats.edges_visited += adv.edges_visited;

    // h'[u] = sum_{u -> v} a[v] / indeg(v): push along reverse edges with
    // the *source* (= v in forward orientation) scaled by 1/indeg(v).
    std::vector<double> next_hub(n, 0.0);
    prob.src_score = result.authority.data();
    prob.dst_score = next_hub.data();
    prob.src_scale = inv_in.data();
    adv = core::AdvancePush<PropagateFunctor>(
        pool, rg, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
        adv_cfg);
    result.stats.edges_visited += adv.edges_visited;

    result.authority.swap(next_auth);
    result.hub.swap(next_hub);
    // The walks are substochastic only at sinks; renormalize to keep the
    // scores a distribution.
    NormalizeL1(pool, result.authority);
    NormalizeL1(pool, result.hub);

    ++result.iterations;
    const double moved =
        L1Distance(pool, result.hub, prev_hub) +
        L1Distance(pool, result.authority, prev_auth);
    prev_hub = result.hub;
    prev_auth = result.authority;
    if (moved < opts.tolerance) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

PprResult PersonalizedPagerank(const graph::Csr& g,
                               std::span<const vid_t> seeds,
                               const PprOptions& opts) {
  GR_CHECK(!seeds.empty(), "PPR needs at least one seed");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PprResult result;
  if (n == 0) return result;

  std::vector<double> teleport(n, 0.0);
  for (const vid_t s : seeds) {
    GR_CHECK(s >= 0 && s < g.num_vertices(), "seed out of range");
    teleport[static_cast<std::size_t>(s)] =
        1.0 / static_cast<double>(seeds.size());
  }

  std::vector<double> rank(teleport), next(n, 0.0);
  std::vector<double> inv_out(n, 0.0);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    inv_out[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  });

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = graph::ComputeScaleFreeHint(g, pool);
  const auto all = AllVertices(pool, n);

  PropagateProblem prob;
  WallTimer timer;
  for (; result.iterations < opts.max_iterations;) {
    // Dangling mass teleports back to the seeds.
    const double dangling = par::TransformReduce(
        pool, n, 0.0, [](double a, double b) { return a + b; },
        [&](std::size_t v) {
          return g.degree(static_cast<vid_t>(v)) == 0 ? rank[v] : 0.0;
        });
    core::ForAll(pool, n, [&](std::size_t v) {
      next[v] = (1.0 - opts.damping + opts.damping * dangling) *
                teleport[v];
    });
    // Push damping * rank / outdeg along out-edges.
    std::vector<double> scaled(n);
    core::ForAll(pool, n, [&](std::size_t v) {
      scaled[v] = opts.damping * rank[v];
    });
    prob.src_score = scaled.data();
    prob.dst_score = next.data();
    prob.src_scale = inv_out.data();
    const auto adv = core::AdvancePush<PropagateFunctor>(
        pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
        adv_cfg);
    result.stats.edges_visited += adv.edges_visited;

    const double moved = L1Distance(pool, next, rank);
    rank.swap(next);
    ++result.iterations;
    if (moved < opts.tolerance) break;
  }
  result.rank = std::move(rank);
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.iterations;
  return result;
}

}  // namespace gunrock
