#include "primitives/pagerank.hpp"

#include <cmath>

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "core/gather.hpp"
#include "core/spmv.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

struct PrProblem {
  const double* rank = nullptr;   // current iterate (read)
  double* rank_next = nullptr;    // accumulator (atomicAdd)
  double* frozen = nullptr;       // steady contributions of retired vertices
  const double* inv_outdeg = nullptr;
  double damping = 0.85;
  double tolerance = 1e-9;
};

/// Distribute step: push damped rank share along every out-edge. A
/// visit-only advance (returns false, output = nullptr).
struct PrDistributeFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, PrProblem& p) {
    par::AtomicAdd(&p.rank_next[d],
                   p.damping * p.rank[s] * p.inv_outdeg[s]);
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, PrProblem&) {}
};

/// Convergence filter: keep a vertex in the frontier while its rank is
/// still moving.
struct PrConvergenceFunctor {
  static bool CondVertex(vid_t v, PrProblem& p) {
    return std::abs(p.rank_next[v] - p.rank[v]) > p.tolerance;
  }
  static void ApplyVertex(vid_t, PrProblem&) {}
};

/// Retirement push (frontier mode): a vertex leaving the frontier freezes
/// its rank; its neighbors keep receiving that share through the `frozen`
/// accumulator instead of losing the mass. `rank` points at the frozen
/// (post-swap) values here.
struct PrFreezeFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, PrProblem& p) {
    par::AtomicAdd(&p.frozen[d],
                   p.damping * p.rank[s] * p.inv_outdeg[s]);
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, PrProblem&) {}
};

}  // namespace

PagerankResult Pagerank(const graph::Csr& g, const PagerankOptions& opts) {
  return Pagerank(g, opts, RunControl{});
}

PagerankResult Pagerank(const graph::Csr& g, const PagerankOptions& opts,
                        const RunControl& ctl) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PagerankResult result;
  if (n == 0) return result;

  // Enactor-owned scratch arena plus hoisted per-iteration buffers: the
  // convergence loop reuses everything after the first iteration, and an
  // engine lease extends the reuse across queries. `rank` stays a plain
  // local — it is moved into the result.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  auto& rank_next = ws.Get<std::vector<double>>(pslot::kPagerankFirst + 1);
  rank_next.assign(n, 0.0);
  auto& inv_outdeg = ws.Get<std::vector<double>>(pslot::kPagerankFirst + 2);
  inv_outdeg.assign(n, 0.0);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    inv_outdeg[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  });

  auto& frozen = ws.Get<std::vector<double>>(pslot::kPagerankFirst + 3);
  frozen.assign(opts.frontier_mode ? n : 0, 0.0);
  PrProblem prob;
  prob.frozen = frozen.data();
  prob.inv_outdeg = inv_outdeg.data();
  prob.damping = opts.damping;
  prob.tolerance = opts.tolerance;

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ctl.scale_free_hint >= 0
                                ? ctl.scale_free_hint > 0
                                : graph::ComputeScaleFreeHint(g, pool);
  adv_cfg.workspace = &ws;
  core::FilterConfig filter_cfg;
  filter_cfg.workspace = &ws;

  // Merge-path SpMV backend (core/spmv.hpp): the power iteration as a
  // semiring sweep over the gather orientation. No frontier, no filter
  // compaction; contributions are pre-scaled once per vertex (one random
  // load per edge instead of two) and the base+damping fold is fused
  // into the sweep's finalize. Residual-max convergence matches the
  // frontier path's per-vertex criterion, so iteration counts agree.
  const bool use_spmv =
      !opts.frontier_mode &&
      (opts.backend == core::SpmvBackend::kSpmv ||
       (opts.backend == core::SpmvBackend::kAuto && opts.pull &&
        adv_cfg.scale_free_hint));
  if (use_spmv) {
    const graph::Csr& rg = opts.reverse ? *opts.reverse : g;
    const auto cols = rg.col_indices();
    auto& scaled = ws.Get<std::vector<double>>(pslot::kPagerankFirst + 9);
    scaled.resize(n);
    core::EfficiencyAccumulator efficiency;
    WallTimer timer;
    while (result.iterations < opts.max_iterations) {
      ctl.Checkpoint();
      const double dangling = par::TransformReduce(
          pool, n, 0.0, [](double a, double b) { return a + b; },
          [&](std::size_t v) {
            return g.degree(static_cast<vid_t>(v)) == 0 ? rank[v] : 0.0;
          },
          &ws);
      const double base =
          (1.0 - opts.damping + opts.damping * dangling) /
          static_cast<double>(n);
      core::ForAll(pool, n, [&](std::size_t v) {
        scaled[v] = rank[v] * inv_outdeg[v];
      });
      core::SpmvMergePath<double>(
          pool, rg.row_offsets(), std::span<double>(rank_next), 0.0,
          [](double a, double b) { return a + b; },
          [&](std::size_t e) {
            return scaled[static_cast<std::size_t>(cols[e])];
          },
          [&](std::size_t, double acc) {
            return base + opts.damping * acc;
          },
          &ws, pslot::kSpmvFirst);
      result.stats.edges_visited += rg.num_edges();
      efficiency.Add(core::LaneEfficiencyEqualWork(rg.num_edges()),
                     rg.num_edges());
      ++result.iterations;
      ++result.stats.iterations;
      // Max-residual convergence: order-invariant, so the parallel
      // reduction stays deterministic at any pool width.
      const double resid = par::TransformReduce(
          pool, n, 0.0, [](double a, double b) { return a > b ? a : b; },
          [&](std::size_t v) { return std::abs(rank_next[v] - rank[v]); },
          &ws);
      rank.swap(rank_next);
      if (resid <= opts.tolerance) break;
    }
    result.rank = std::move(rank);
    result.stats.elapsed_ms = timer.ElapsedMs();
    result.stats.lane_efficiency = efficiency.Value();
    return result;
  }

  // Frontier starts with all vertices (paper: "the frontier always
  // contains all vertices" for PR-style primitives).
  auto& frontier = ws.Get<core::VertexFrontier>(pslot::kPagerankFirst);
  frontier.Clear();
  frontier.current().resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    frontier.current()[v] = static_cast<vid_t>(v);
  });

  core::EfficiencyAccumulator efficiency;
  // Exact-mode full-vertex pusher list and frontier-mode membership
  // scratch, reused across iterations and queries.
  auto& all = ws.Get<std::vector<vid_t>>(pslot::kPagerankFirst + 4);
  auto& was_active = ws.Get<std::vector<char>>(pslot::kPagerankFirst + 5);
  auto& still_active = ws.Get<std::vector<char>>(pslot::kPagerankFirst + 6);
  auto& old_frontier = ws.Get<std::vector<vid_t>>(pslot::kPagerankFirst + 7);
  auto& leavers = ws.Get<std::vector<vid_t>>(pslot::kPagerankFirst + 8);
  WallTimer timer;

  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    ctl.Checkpoint();
    // Base value plus uniformly redistributed dangling mass.
    const double dangling = par::TransformReduce(
        pool, n, 0.0, [](double a, double b) { return a + b; },
        [&](std::size_t v) {
          return g.degree(static_cast<vid_t>(v)) == 0 ? rank[v] : 0.0;
        },
        &ws);
    const double base =
        (1.0 - opts.damping + opts.damping * dangling) /
        static_cast<double>(n);
    const bool pull = opts.pull && !opts.frontier_mode;
    if (!pull) {
      // Push mode accumulates into rank_next; seed it with the base (and
      // the retirees' frozen contributions in frontier mode).
      core::ForAll(pool, n, [&](std::size_t v) {
        rank_next[v] = base + (opts.frontier_mode ? frozen[v] : 0.0);
      });
    }

    prob.rank = rank.data();
    prob.rank_next = rank_next.data();

    // In exact mode every vertex pushes; in frontier mode only the active
    // frontier pushes (Gunrock-faithful approximation).
    std::span<const vid_t> pushers = frontier.current();
    if (!opts.frontier_mode &&
        frontier.current().size() != n) {
      all.resize(n);
      core::ForAll(pool, n, [&](std::size_t v) {
        all[v] = static_cast<vid_t>(v);
      });
      pushers = all;
    }
    if (pull) {
      // Gather-reduce over in-edges (no atomics, equal-work partitioned),
      // then one fused scale-and-base pass over the gathered sums.
      const graph::Csr& rg = opts.reverse ? *opts.reverse : g;
      core::NeighborReduce<double>(
          pool, rg, rank_next, 0.0,
          [](double a, double b) { return a + b; },
          [&](std::size_t e) {
            const vid_t u = rg.col_indices()[e];
            return rank[static_cast<std::size_t>(u)] *
                   inv_outdeg[static_cast<std::size_t>(u)];
          },
          &ws);
      core::ForAll(pool, n, [&](std::size_t v) {
        rank_next[v] = base + opts.damping * rank_next[v];
      });
      result.stats.edges_visited += rg.num_edges();
      efficiency.Add(core::LaneEfficiencyEqualWork(rg.num_edges()),
                     rg.num_edges());
    } else {
      const auto adv = core::AdvancePush<PrDistributeFunctor>(
          pool, g, pushers, static_cast<std::vector<vid_t>*>(nullptr),
          prob, adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
      efficiency.Add(adv.lane_efficiency, adv.edges_visited);
    }

    // In frontier mode, vertices outside the frontier keep their old rank
    // (they stopped pushing; their steady share arrives via `frozen`).
    if (opts.frontier_mode) {
      was_active.assign(n, 0);
      core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                    [&](vid_t v) {
                      was_active[static_cast<std::size_t>(v)] = 1;
                    });
      core::ForAll(pool, n, [&](std::size_t v) {
        if (!was_active[v]) rank_next[v] = rank[v];
      });
    }

    // Exact mode re-filters the full vertex set so a vertex whose residual
    // bounces back above tolerance re-enters the frontier; frontier mode
    // filters only the active set (once out, always out — the
    // approximation the paper accepts).
    core::FilterVertex<PrConvergenceFunctor>(pool, pushers,
                                             &frontier.next(), prob,
                                             filter_cfg);
    if (opts.frontier_mode) old_frontier = frontier.current();
    frontier.Flip();
    rank.swap(rank_next);
    ++result.iterations;
    ++result.stats.iterations;

    if (opts.frontier_mode) {
      // Retire vertices that just left the frontier: one final push of
      // their frozen contribution (post-swap rank) into `frozen`.
      still_active.assign(n, 0);
      core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                    [&](vid_t v) {
                      still_active[static_cast<std::size_t>(v)] = 1;
                    });
      leavers.clear();
      for (const vid_t v : old_frontier) {
        if (!still_active[static_cast<std::size_t>(v)]) {
          leavers.push_back(v);
        }
      }
      if (!leavers.empty()) {
        prob.rank = rank.data();  // frozen values live in `rank` now
        core::AdvancePush<PrFreezeFunctor>(
            pool, g, leavers, static_cast<std::vector<vid_t>*>(nullptr),
            prob, adv_cfg);
      }
    }
  }

  result.rank = std::move(rank);
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.lane_efficiency = efficiency.Value();
  return result;
}

}  // namespace gunrock
