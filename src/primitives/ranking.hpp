// Node-ranking primitives beyond PageRank (paper Section 5.5): HITS,
// SALSA and personalized PageRank — the three algorithms of Twitter's
// who-to-follow pipeline that Geil et al. [9] built on Gunrock, "the first
// to use a programmable framework for bipartite graphs".
//
// All three run on a directed graph given as a (forward, reverse) CSR
// pair; for the bipartite who-to-follow case, generate the graph with
// graph::GenerateBipartite (users then items).
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

/// Score-normalization variant for HITS. Kleinberg's original algorithm
/// normalizes by the L2 norm; the L1 form keeps the scores a probability
/// distribution (handy when mixing with PageRank-family scores). The
/// ranking order is identical; the fixed point's scale differs.
enum class HitsNorm {
  kL1,  ///< scores sum to 1 (default; matches the PageRank convention)
  kL2,  ///< unit Euclidean norm (Kleinberg's classic formulation)
};

struct HitsOptions : CommonOptions {
  int max_iterations = 50;
  double tolerance = 1e-8;  ///< L1 movement across both score vectors
  HitsNorm norm = HitsNorm::kL1;
  /// kSpmv swaps the atomic scatter for the merge-path semiring gather
  /// (core/spmv.hpp); kAuto picks it on scale-free graphs.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
};

struct HitsResult {
  std::vector<double> hub;
  std::vector<double> authority;
  int iterations = 0;
  core::TraversalStats stats;
};

/// Hyperlink-Induced Topic Search. `rg` must be ReverseCsr(g).
HitsResult Hits(const graph::Csr& g, const graph::Csr& rg,
                const HitsOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kRankingFirst..+11; shared by the three ranking primitives,
/// every slot holding one fixed type), ctl.cancel polled at iteration
/// boundaries (throws core::Cancelled).
HitsResult Hits(const graph::Csr& g, const graph::Csr& rg,
                const HitsOptions& opts, const RunControl& ctl);

struct SalsaOptions : CommonOptions {
  int max_iterations = 50;
  double tolerance = 1e-8;
  /// See HitsOptions::backend.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
};

struct SalsaResult {
  std::vector<double> hub;
  std::vector<double> authority;
  int iterations = 0;
  core::TraversalStats stats;
};

/// Stochastic Approach for Link-Structure Analysis: the random-walk
/// variant of HITS (column/row-stochastic propagation instead of raw
/// sums).
SalsaResult Salsa(const graph::Csr& g, const graph::Csr& rg,
                  const SalsaOptions& opts = {});

/// Engine-invokable runner (see Hits overload).
SalsaResult Salsa(const graph::Csr& g, const graph::Csr& rg,
                  const SalsaOptions& opts, const RunControl& ctl);

struct PprOptions : CommonOptions {
  double damping = 0.85;
  double tolerance = 1e-9;
  int max_iterations = 1000;
  /// kSpmv runs the gather-form sweep over the reverse graph. kAuto keeps
  /// the push formulation: PPR frontiers start concentrated on the seeds,
  /// where push wins, and the engine's wave coalescing is built on the
  /// push path — spmv is an explicit opt-in here.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
  /// Reverse graph for the spmv backend on directed inputs; nullptr means
  /// the graph is symmetric (g is its own reverse).
  const graph::Csr* reverse = nullptr;
};

struct PprResult {
  std::vector<double> rank;
  int iterations = 0;
  core::TraversalStats stats;
};

/// Personalized PageRank: the teleport distribution is concentrated on
/// `seeds` (uniformly) rather than on all vertices.
PprResult PersonalizedPagerank(const graph::Csr& g,
                               std::span<const vid_t> seeds,
                               const PprOptions& opts = {});

/// Engine-invokable runner (see Hits overload).
PprResult PersonalizedPagerank(const graph::Csr& g,
                               std::span<const vid_t> seeds,
                               const PprOptions& opts,
                               const RunControl& ctl);

}  // namespace gunrock
