#include "primitives/bc.hpp"

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/frontier.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

struct BcProblem {
  std::int32_t* depth = nullptr;
  double* sigma = nullptr;
  double* delta = nullptr;
  std::int32_t iteration = 0;
};

/// Forward phase: discover (CAS on depth) and accumulate sigma across
/// every same-level edge. The atomic pattern guarantees each level-
/// crossing edge contributes exactly once regardless of which thread won
/// the discovery race.
struct BcForwardFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, BcProblem& p) {
    const bool discovered =
        par::AtomicCas(&p.depth[d], std::int32_t{-1}, p.iteration);
    if (par::AtomicLoad(&p.depth[d]) == p.iteration) {
      par::AtomicAdd(&p.sigma[d], par::AtomicLoad(&p.sigma[s]));
    }
    return discovered;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BcProblem&) {}
};

/// Backward phase: visit-only advance over a stored level; every edge to a
/// successor (depth + 1) pulls its dependency share. Runs with
/// output = nullptr, so CondEdge performs the computation and returns
/// false (nothing is emitted).
struct BcBackwardFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, BcProblem& p) {
    if (p.depth[d] == p.depth[s] + 1 && p.sigma[d] > 0) {
      const double share =
          p.sigma[s] / p.sigma[d] * (1.0 + p.delta[d]);
      par::AtomicAdd(&p.delta[s], share);
    }
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BcProblem&) {}
};

void BcFromSource(const graph::Csr& g, vid_t source, const BcOptions& opts,
                  par::ThreadPool& pool, bool scale_free,
                  core::Workspace& ws, std::vector<double>& delta,
                  const RunControl& ctl, BcResult* result) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  result->depth.assign(n, -1);
  result->sigma.assign(n, 0.0);
  delta.assign(n, 0.0);

  BcProblem prob;
  prob.depth = result->depth.data();
  prob.sigma = result->sigma.data();
  prob.delta = delta.data();

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = scale_free;
  adv_cfg.workspace = &ws;

  result->depth[source] = 0;
  result->sigma[source] = 1.0;

  // Forward: store each level's frontier for the backward sweep.
  std::vector<std::vector<vid_t>> levels;
  levels.push_back({source});
  while (!levels.back().empty()) {
    ctl.Checkpoint();
    prob.iteration = static_cast<std::int32_t>(levels.size());
    std::vector<vid_t> next;
    const auto adv = core::AdvancePush<BcForwardFunctor>(
        pool, g, levels.back(), &next, prob, adv_cfg);
    result->stats.edges_visited += adv.edges_visited;
    ++result->stats.iterations;
    levels.push_back(std::move(next));
  }
  levels.pop_back();  // drop the empty terminator

  // Backward: deepest level first; level L pulls from level L+1.
  for (std::size_t l = levels.size(); l-- > 1;) {
    ctl.Checkpoint();
    const auto adv = core::AdvancePush<BcBackwardFunctor>(
        pool, g, levels[l], static_cast<std::vector<vid_t>*>(nullptr),
        prob, adv_cfg);
    result->stats.edges_visited += adv.edges_visited;
  }

  // Accumulate: undirected convention halves each pair's contribution.
  double* bc = result->bc.data();
  core::ForAll(pool, n, [&](std::size_t v) {
    if (static_cast<vid_t>(v) != source) bc[v] += delta[v] / 2.0;
  });
}

}  // namespace

BcResult Bc(const graph::Csr& g, vid_t source, const BcOptions& opts) {
  const vid_t src_list[] = {source};
  return BcMultiSource(g, src_list, opts);
}

BcResult Bc(const graph::Csr& g, vid_t source, const BcOptions& opts,
            const RunControl& ctl) {
  const vid_t src_list[] = {source};
  return BcMultiSource(g, src_list, opts, ctl);
}

BcResult BcMultiSource(const graph::Csr& g, std::span<const vid_t> sources,
                       const BcOptions& opts) {
  return BcMultiSource(g, sources, opts, RunControl{});
}

BcResult BcMultiSource(const graph::Csr& g, std::span<const vid_t> sources,
                       const BcOptions& opts, const RunControl& ctl) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  BcResult result;
  result.bc.assign(n, 0.0);
  const bool scale_free = ctl.scale_free_hint >= 0
                              ? ctl.scale_free_hint > 0
                              : graph::ComputeScaleFreeHint(g, pool);
  // Workspace and the dependency accumulator persist across sources (and,
  // with an engine lease, across queries), so a multi-source sweep
  // allocates only its per-level frontiers.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;
  auto& delta = ws.Get<std::vector<double>>(pslot::kBcFirst);
  WallTimer timer;
  for (const vid_t s : sources) {
    GR_CHECK(s >= 0 && s < g.num_vertices(), "BC source out of range");
    BcFromSource(g, s, opts, pool, scale_free, ws, delta, ctl, &result);
  }
  if (opts.normalize && n > 2) {
    const double scale =
        1.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2) /
               2.0);
    core::ForAll(pool, n, [&](std::size_t v) { result.bc[v] *= scale; });
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
