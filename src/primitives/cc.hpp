// Connected components (paper Section 5.4), after Soman et al.
//
// Two PRAM kernels alternate, both expressed as Gunrock filters: *hooking*
// runs on an edge frontier — each cross-component edge hooks the higher
// component label onto the lower (atomicMin keeps the race monotone) and
// edges inside one component are filtered away; *pointer jumping* runs on
// a vertex frontier — each vertex short-cuts its label chain
// (comp[v] = comp[comp[v]]) and converged vertices are filtered away.
// The outer loop repeats until no cross-component edge remains.
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct CcOptions : CommonOptions {};

struct CcResult {
  /// Component label per vertex: the smallest vertex id in the component.
  std::vector<vid_t> component;
  vid_t num_components = 0;
  core::TraversalStats stats;
};

CcResult Cc(const graph::Csr& g, const CcOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace, ctl.cancel polled
/// at hooking-round boundaries (throws core::Cancelled).
CcResult Cc(const graph::Csr& g, const CcOptions& opts,
            const RunControl& ctl);

}  // namespace gunrock
