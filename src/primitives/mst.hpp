// Minimum spanning forest (paper Section 5.5 lists MST among the
// primitives "we have developed or are actively developing").
//
// Borůvka's algorithm in frontier form: each round, every component finds
// its minimum-weight outgoing edge (an atomic-min over packed
// (weight, edge-id) keys — the tie-breaking by edge id makes the choice a
// total order, which prevents cycles), the chosen edges join the forest,
// components merge by hooking + pointer jumping exactly like CC, and an
// edge-frontier filter drops the arcs that became intra-component.
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct MstOptions : CommonOptions {};

struct MstResult {
  /// Edge slots (canonical arcs with src < dst) of the spanning forest.
  std::vector<eid_t> tree_edges;
  double total_weight = 0.0;
  /// Components of the input graph (the forest spans each separately).
  vid_t num_components = 0;
  core::TraversalStats stats;
};

/// Computes a minimum spanning forest of an undirected weighted graph.
/// Throws gunrock::Error if the graph has no weights.
MstResult Mst(const graph::Csr& g, const MstOptions& opts = {});

}  // namespace gunrock
