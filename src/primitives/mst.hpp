// Minimum spanning forest (paper Section 5.5 lists MST among the
// primitives "we have developed or are actively developing").
//
// Borůvka's algorithm in frontier form: each round, every component finds
// its minimum-weight outgoing edge (an atomic-min over packed
// (weight, edge-id) keys — the tie-breaking by edge id makes the choice a
// total order, which prevents cycles), the chosen edges join the forest,
// components merge by hooking + pointer jumping exactly like CC, and an
// edge-frontier filter drops the arcs that became intra-component.
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

/// Frontier policy for the Borůvka rounds. Both variants select the same
/// winning edges (the packed (weight, id) total order is identical), so
/// they produce identical forests; they trade memory traffic differently.
enum class MstVariant {
  /// Filtered Borůvka (default): an edge-frontier filter drops arcs that
  /// became intra-component after every round, so later rounds only scan
  /// the surviving cross-component arcs.
  kFiltered,
  /// Classic Borůvka: every round scans the full canonical arc list and
  /// skips intra-component arcs inline — no compaction passes, cheaper
  /// when the forest converges in very few rounds.
  kScanAll,
};

struct MstOptions : CommonOptions {
  MstVariant variant = MstVariant::kFiltered;
};

struct MstResult {
  /// Edge slots (canonical arcs with src < dst) of the spanning forest.
  std::vector<eid_t> tree_edges;
  double total_weight = 0.0;
  /// Components of the input graph (the forest spans each separately).
  vid_t num_components = 0;
  core::TraversalStats stats;
};

/// Computes a minimum spanning forest of an undirected weighted graph.
/// Throws gunrock::Error if the graph has no weights.
MstResult Mst(const graph::Csr& g, const MstOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kMstFirst..+5), ctl.cancel polled at Borůvka-round boundaries
/// (throws core::Cancelled).
MstResult Mst(const graph::Csr& g, const MstOptions& opts,
              const RunControl& ctl);

}  // namespace gunrock
