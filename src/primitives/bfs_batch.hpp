// Batched multi-source BFS (MS-BFS).
//
// Runs up to 64 single-source BFS traversals as one bit-parallel sweep:
// each source owns one lane of a per-vertex 64-bit mask
// (par::LaneMaskFrontier), and every advance propagates
// `next[v] |= frontier[u] & ~visited[v]` over the *union* frontier — so
// each CSR row scan is amortized across all lanes instead of being paid
// once per query (Then et al., VLDB 2015). Per-lane depths are extracted
// from mask transitions: the level at which a lane's bit first enters a
// vertex's visited mask is that lane's BFS depth.
//
// Contract: depth[l] is bit-identical to Bfs(g, sources[l]).depth for
// every completed lane — depths are direction- and variant-invariant, so
// this holds for any push/pull/optimizing policy on either side.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

/// Most lanes a single wave can carry (one bit per lane).
inline constexpr std::size_t kMaxBatchLanes = 64;

/// Output-frontier dedup strategy — the multi-source analog of scalar
/// BFS's atomic vs idempotent advance flavors.
enum class BfsBatchVariant {
  /// Exact dedup fused into the advance: the lane-mask OR's first-touch
  /// signal claims each vertex once (default).
  kFused,
  /// Advance emits one entry per discovering edge; a separate claim
  /// filter dedups — the idempotent-advance + filter pipeline shape.
  kFiltered,
};

struct BfsBatchOptions : CommonOptions {
  /// Traversal direction policy. kOptimizing switches on the *aggregate*
  /// frontier population (union-frontier edge counts); it needs a
  /// symmetric graph, like scalar BFS's optimizing mode without a
  /// reverse graph.
  core::Direction direction = core::Direction::kPush;
  double do_alpha = 14.0;  ///< push->pull switch threshold
  double do_beta = 24.0;   ///< pull->push switch threshold
  BfsBatchVariant variant = BfsBatchVariant::kFused;
};

struct BfsBatchResult {
  /// depth[l][v] = hop count from sources[l] (-1 unreachable); valid only
  /// for lanes set in completed_mask.
  std::vector<std::vector<std::int32_t>> depth;
  /// Lanes that ran to completion (dropped lanes are cleared).
  std::uint64_t completed_mask = 0;
  /// Per-lane advance-round count, matching the scalar run's
  /// stats.iterations (= deepest level reached + 1).
  std::vector<std::int32_t> lane_iterations;
  /// Aggregate wave stats: iterations = wave levels, edges_visited =
  /// union-frontier edges scanned (shared across all lanes).
  core::TraversalStats stats;
};

/// Runs BFS from every source in `sources` (1..64 lanes, duplicates
/// allowed) as one batched wave. Throws gunrock::Error on a bad source
/// or lane count.
BfsBatchResult BfsBatch(const graph::Csr& g, std::span<const vid_t> sources,
                        const BfsBatchOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace (slots
/// pslot::kBatchFirst..+8), ctl.cancel polled at level boundaries (stops
/// the whole wave; throws core::Cancelled), and `lanes` polled right
/// after it to drop individual lanes (per-query cancellation inside a
/// coalesced wave).
BfsBatchResult BfsBatch(const graph::Csr& g, std::span<const vid_t> sources,
                        const BfsBatchOptions& opts, const RunControl& ctl,
                        const BatchLaneControl& lanes = {});

}  // namespace gunrock
