#include "primitives/sssp_batch.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>

#include "core/advance_ms.hpp"
#include "core/compute.hpp"
#include "core/frontier.hpp"
#include "core/spmv.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/lane_mask.hpp"
#include "parallel/reduce.hpp"
#include "primitives/sssp.hpp"  // SsspDeltaHeuristic
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Lane-parallel relaxation across a vertex-major n x L distance block:
/// one edge scan relaxes every lane the source vertex carries, with the
/// scalar functor's exact float fold fl(dist[u] + w) per lane.
struct MsSsspProblem {
  weight_t* dist = nullptr;  // n x L, vertex-major
  const weight_t* weights = nullptr;
  std::size_t stride = 0;  // L
  std::uint64_t active = ~std::uint64_t{0};
};

struct MsSsspRelaxFunctor {
  static std::uint64_t CondEdge(vid_t u, vid_t v, eid_t e,
                                std::uint64_t lanes, MsSsspProblem& p) {
    const std::uint64_t gated = lanes & p.active;
    if (gated == 0) return 0;
    const weight_t w = p.weights[e];
    const weight_t* src = p.dist + static_cast<std::size_t>(u) * p.stride;
    weight_t* dst = p.dist + static_cast<std::size_t>(v) * p.stride;
    std::uint64_t improved = 0;
    for (std::uint64_t m = gated; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      const weight_t candidate = par::AtomicLoad(&src[l]) + w;
      const weight_t old = par::AtomicMin(&dst[l], candidate);
      if (candidate < old) improved |= std::uint64_t{1} << l;
    }
    return improved;
  }
};

/// Classification verdicts for a touched vertex, packed per item so the
/// mask writes (stateful: OrBits) run once in a ForAll and the list
/// compactions re-read pure flags.
enum : std::uint8_t {
  kClassNear = 1,      // some lane's label fell inside the Δ window
  kClassFarFirst = 2,  // first far touch: append to the far pile
};

SsspBatchResult SsspBatchFrontier(const graph::Csr& g,
                                  std::span<const vid_t> sources,
                                  const SsspBatchOptions& opts,
                                  const RunControl& ctl,
                                  const BatchLaneControl& lanes,
                                  bool scale_free) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t L = sources.size();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  SsspBatchResult result;
  result.dist.resize(L);
  result.lane_iterations.assign(L, 0);

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  auto& dist = ws.Get<std::vector<weight_t>>(pslot::kMatrixFirst);
  dist.assign(n * L, kInfinity);

  auto& mask_a = ws.Get<par::LaneMaskFrontier>(pslot::kMatrixFirst + 1);
  mask_a.Resize(n);
  auto& mask_b = ws.Get<par::LaneMaskFrontier>(pslot::kMatrixFirst + 2);
  mask_b.Resize(n);
  auto& adv_mask = ws.Get<par::LaneMaskFrontier>(pslot::kMatrixFirst + 3);
  adv_mask.Resize(n);
  auto& far_a = ws.Get<par::LaneMaskFrontier>(pslot::kMatrixFirst + 4);
  far_a.Resize(n);
  auto& far_b = ws.Get<par::LaneMaskFrontier>(pslot::kMatrixFirst + 5);
  far_b.Resize(n);
  par::LaneMaskFrontier* cur = &mask_a;
  par::LaneMaskFrontier* nxt = &mask_b;
  par::LaneMaskFrontier* far_cur = &far_a;
  par::LaneMaskFrontier* far_nxt = &far_b;

  auto& frontier = ws.Get<core::VertexFrontier>(pslot::kMatrixFirst + 6);
  frontier.Clear();
  auto& touched = ws.Get<std::vector<vid_t>>(pslot::kMatrixFirst + 7);
  auto& far_pile = ws.Get<std::vector<vid_t>>(pslot::kMatrixFirst + 8);
  auto& far_new = ws.Get<std::vector<vid_t>>(pslot::kMatrixFirst + 9);
  auto& flags = ws.Get<std::vector<std::uint8_t>>(pslot::kMatrixFirst + 10);
  far_pile.clear();

  std::uint64_t active = par::LaneMaskOf(L);
  MsSsspProblem prob;
  prob.dist = dist.data();
  prob.weights = g.weights().data();
  prob.stride = L;
  prob.active = active;

  cur->NewEpoch();
  far_cur->NewEpoch();
  for (std::size_t l = 0; l < L; ++l) {
    const auto s = static_cast<std::size_t>(sources[l]);
    const std::uint64_t bit = std::uint64_t{1} << l;
    if (cur->OrBits(s, bit) == 0) {
      frontier.current().push_back(sources[l]);  // duplicate sources: once
    }
    dist[s * L + l] = 0;
  }

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = scale_free;
  adv_cfg.workspace = &ws;
  adv_cfg.model_efficiency = false;

  weight_t delta = opts.delta;
  if (delta <= 0) delta = SsspDeltaHeuristic(g, pool);
  weight_t threshold = delta;

  // Classifies `items` (whose improved lane masks live in `from`) against
  // the Δ window: near bits re-enter the frontier mask `to`, far bits
  // accumulate in `far_to` (first far touch flagged so the far pile stays
  // duplicate-free). Flags are written per item for the list compactions.
  const auto classify = [&](std::span<const vid_t> items,
                            par::LaneMaskFrontier& from,
                            par::LaneMaskFrontier& to,
                            par::LaneMaskFrontier& far_to) {
    flags.resize(items.size());
    core::ForAll(pool, items.size(), [&](std::size_t i) {
      const auto v = static_cast<std::size_t>(items[i]);
      const std::uint64_t bits = from.Load(v) & active;
      std::uint64_t near = 0;
      for (std::uint64_t m = bits; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        if (dist[v * L + l] < threshold) near |= std::uint64_t{1} << l;
      }
      const std::uint64_t far = bits & ~near;
      std::uint8_t f = 0;
      if (near != 0) {
        to.OrBits(v, near);
        f |= kClassNear;
      }
      if (far != 0 && far_to.OrBits(v, far) == 0) f |= kClassFarFirst;
      flags[i] = f;
    });
  };
  const auto compact_by_flag = [&](std::span<const vid_t> items,
                                   std::uint8_t flag,
                                   std::vector<vid_t>& out) {
    const std::size_t base = out.size();
    out.resize(base + items.size());
    const std::size_t nc = par::GenerateIf(
        pool, items.size(),
        std::span<vid_t>(out.data() + base, items.size()),
        [&](std::size_t i) { return (flags[i] & flag) != 0; },
        [&](std::size_t i) { return items[i]; }, &ws);
    out.resize(base + nc);
  };

  std::array<std::int32_t, kMaxBatchLanes> lane_rounds{};
  WallTimer timer;

  while (!frontier.empty() || !far_pile.empty()) {
    ctl.Checkpoint();
    const std::uint64_t keep = lanes.Poll(active);
    if (keep != active) {
      active = keep;
      prob.active = active;
      if (active == 0) break;  // every lane dropped: nothing left to serve
    }

    if (frontier.empty()) {
      // Near slice exhausted: jump the Δ window straight past the
      // smallest far label (the scalar runner's hardened schedule — a
      // tiny Δ relative to the labels would otherwise stall) and re-split
      // the far pile. Labels whose lane improved below the old window are
      // re-promoted and re-relaxed, like the scalar epoch re-claim.
      const weight_t min_far = par::TransformReduce(
          pool, far_pile.size(), kInfinity,
          [](weight_t a, weight_t b) { return b < a ? b : a; },
          [&](std::size_t i) {
            const auto v = static_cast<std::size_t>(far_pile[i]);
            weight_t best = kInfinity;
            for (std::uint64_t m = far_cur->Load(v) & active; m != 0;
                 m &= m - 1) {
              const weight_t d = dist[v * L + std::countr_zero(m)];
              if (d < best) best = d;
            }
            return best;
          },
          &ws, pslot::kMatrixFirst + 11);
      if (min_far == kInfinity) break;  // only dropped lanes' bits remain
      threshold = std::max(threshold + delta, min_far + delta);
      if (!(threshold > min_far)) {
        threshold = std::nextafter(min_far, kInfinity);
      }

      cur->NewEpoch();
      far_nxt->NewEpoch();
      classify(far_pile, *far_cur, *cur, *far_nxt);
      frontier.current().clear();
      compact_by_flag(far_pile, kClassNear, frontier.current());
      far_new.clear();
      compact_by_flag(far_pile, kClassFarFirst, far_new);
      far_pile.swap(far_new);
      std::swap(far_cur, far_nxt);
      if (frontier.empty()) {
        if (!far_pile.empty()) continue;
        break;
      }
    }

    // Per-lane round bookkeeping: a lane's scalar loop runs while its
    // frontier is non-empty.
    const std::uint64_t lanes_this_round = par::TransformReduce(
        pool, frontier.size(), std::uint64_t{0},
        [](std::uint64_t a, std::uint64_t b) { return a | b; },
        [&](std::size_t i) {
          return cur->Load(static_cast<std::size_t>(frontier.current()[i])) &
                 active;
        },
        &ws, pslot::kMatrixFirst + 12);
    for (std::uint64_t m = lanes_this_round; m != 0; m &= m - 1) {
      ++lane_rounds[std::countr_zero(m)];
    }

    // Relax the union frontier. The fused first-touch dedup (OrBits'
    // previous-mask signal) emits each improved vertex exactly once, so
    // no claim filter is needed — the improvement masks accumulate in
    // adv_mask for the classification pass.
    adv_mask.NewEpoch();
    touched.clear();
    const auto adv =
        core::AdvancePushMs<MsSsspRelaxFunctor, MsSsspProblem, true>(
            pool, g, frontier.current(), *cur, adv_mask, &touched, prob,
            adv_cfg);
    result.stats.edges_visited += adv.edges_visited;

    nxt->NewEpoch();
    classify(touched, adv_mask, *nxt, *far_cur);
    frontier.next().clear();
    compact_by_flag(touched, kClassNear, frontier.next());
    compact_by_flag(touched, kClassFarFirst, far_pile);

    if (opts.collect_records) {
      result.stats.records.push_back(
          {"advance-relax-ms", result.stats.iterations + 1, frontier.size(),
           frontier.next().size(), adv.edges_visited, 1.0});
    }

    frontier.Flip();
    std::swap(cur, nxt);
    ++result.stats.iterations;
  }

  result.completed_mask = active;
  for (std::size_t l = 0; l < L; ++l) {
    result.lane_iterations[l] = lane_rounds[l];
  }

  // De-interleave the completed columns (lane-parallel sizing, then one
  // row-major sweep so each n x L block row is read exactly once).
  pool.Parallel([&](unsigned rank) {
    for (std::size_t l = rank; l < L; l += pool.num_threads()) {
      if ((result.completed_mask >> l) & 1) result.dist[l].resize(n);
    }
  });
  std::array<weight_t*, kMaxBatchLanes> col_of{};
  for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    col_of[l] = result.dist[static_cast<std::size_t>(l)].data();
  }
  core::ForAll(pool, n, [&](std::size_t v) {
    const weight_t* row = dist.data() + v * L;
    for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      col_of[l][v] = row[l];
    }
  });
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

SsspBatchResult SsspBatchSpmm(const graph::Csr& g,
                              std::span<const vid_t> sources,
                              const SsspBatchOptions& opts,
                              const RunControl& ctl,
                              const BatchLaneControl& lanes) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t L = sources.size();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const graph::Csr& rg = opts.reverse ? *opts.reverse : g;
  GR_CHECK(rg.has_weights(), "SsspBatch reverse graph needs weights");
  GR_CHECK(rg.num_vertices() == g.num_vertices(),
           "SsspBatch reverse graph shape mismatch");
  const auto rcols = rg.col_indices();
  const auto rw = rg.weights();

  SsspBatchResult result;
  result.dist.resize(L);
  result.lane_iterations.assign(L, 0);

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  // Two vertex-major n x L blocks, Jacobi-style: each sweep gathers
  // next = min(cur, A ⊗.⊕ cur) over (min, +). The swap is safe for
  // retired lanes — an unchanged column is identical in both blocks, and
  // retired lanes leave `running`, so the kernel never rewrites them.
  auto& block_a = ws.Get<std::vector<weight_t>>(pslot::kMatrixFirst);
  auto& block_b = ws.Get<std::vector<weight_t>>(pslot::kMatrixFirst + 13);
  block_a.assign(n * L, kInfinity);
  block_b.resize(n * L);
  for (std::size_t l = 0; l < L; ++l) {
    block_a[static_cast<std::size_t>(sources[l]) * L + l] = 0;
  }
  weight_t* cb = block_a.data();
  weight_t* nb = block_b.data();

  std::uint64_t running = par::LaneMaskOf(L);
  WallTimer timer;
  std::int32_t it = 0;

  while (running != 0) {
    ctl.Checkpoint();
    // Poll covers already-retired lanes too: a cancellation that lands
    // after a lane's fixpoint but before the wave ends must still drop
    // the lane from the report (the engine relies on dropped ⇒ absent).
    const std::uint64_t keep = lanes.Poll(running | result.completed_mask);
    result.completed_mask &= keep;
    running &= keep;
    if (running == 0) break;

    // One relaxation round for every running lane in one structure walk.
    // A lane whose column did not move has reached its fixpoint; the
    // cheap test-then-or keeps the changed-mask update off the hot path.
    std::atomic<std::uint64_t> changed{0};
    core::SpmmMergePath<weight_t>(
        pool, rg.row_offsets(),
        std::span<weight_t>(nb, n * L), L, running, kInfinity,
        [](weight_t p, weight_t q) { return q < p ? q : p; },
        [&](std::size_t e, std::size_t l) {
          return rw[e] + cb[static_cast<std::size_t>(rcols[e]) * L + l];
        },
        [&](std::size_t v, std::size_t l, weight_t acc) {
          const weight_t cv = cb[v * L + l];
          const weight_t nv = acc < cv ? acc : cv;
          if (nv != cv &&
              ((changed.load(std::memory_order_relaxed) >> l) & 1) == 0) {
            changed.fetch_or(std::uint64_t{1} << l,
                             std::memory_order_relaxed);
          }
          return nv;
        },
        &ws, pslot::kSpmvFirst);
    result.stats.edges_visited += rg.num_edges();
    ++it;
    std::swap(cb, nb);

    const std::uint64_t done =
        running & ~changed.load(std::memory_order_relaxed);
    for (std::uint64_t m = done; m != 0; m &= m - 1) {
      result.lane_iterations[std::countr_zero(m)] = it;
    }
    result.completed_mask |= done;
    running &= ~done;
  }

  // De-interleave the completed columns from the current block.
  pool.Parallel([&](unsigned rank) {
    for (std::size_t l = rank; l < L; l += pool.num_threads()) {
      if ((result.completed_mask >> l) & 1) result.dist[l].resize(n);
    }
  });
  std::array<weight_t*, kMaxBatchLanes> col_of{};
  for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    col_of[l] = result.dist[static_cast<std::size_t>(l)].data();
  }
  core::ForAll(pool, n, [&](std::size_t v) {
    const weight_t* row = cb + v * L;
    for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      col_of[l][v] = row[l];
    }
  });
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = it;
  return result;
}

}  // namespace

SsspBatchResult SsspBatch(const graph::Csr& g,
                          std::span<const vid_t> sources,
                          const SsspBatchOptions& opts) {
  return SsspBatch(g, sources, opts, RunControl{});
}

SsspBatchResult SsspBatch(const graph::Csr& g,
                          std::span<const vid_t> sources,
                          const SsspBatchOptions& opts, const RunControl& ctl,
                          const BatchLaneControl& lanes) {
  const std::size_t L = sources.size();
  GR_CHECK(L >= 1 && L <= kMaxBatchLanes, "SsspBatch needs 1..64 sources");
  GR_CHECK(g.has_weights(), "SsspBatch needs an edge-weighted graph");
  for (const vid_t s : sources) {
    GR_CHECK(s >= 0 && s < g.num_vertices(),
             "SsspBatch source out of range");
  }

  const bool scale_free = ctl.scale_free_hint >= 0
                              ? ctl.scale_free_hint > 0
                              : graph::ComputeScaleFreeHint(g, opts.Pool());
  MatrixBackend backend = opts.backend;
  if (backend == MatrixBackend::kAuto) {
    // Bench-derived default (bench/matrix_query, DESIGN.md §11): the
    // semiring sweep's O(diameter) full-edge rounds lose badly on
    // long-diameter meshes (frontier ~4x faster on the road mesh), and
    // even on scale-free graphs — SpMM's best case — the union frontier
    // saturates within a few buckets and the frontier machinery still
    // wins ~1.5x on work efficiency. Delta-stepping is the default
    // everywhere; kSpmv stays selectable per call/query.
    backend = MatrixBackend::kFrontier;
  }
  return backend == MatrixBackend::kSpmv
             ? SsspBatchSpmm(g, sources, opts, ctl, lanes)
             : SsspBatchFrontier(g, sources, opts, ctl, lanes, scale_free);
}

}  // namespace gunrock
