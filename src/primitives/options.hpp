// Options shared by every primitive's public API, plus the RunControl
// block that makes a primitive run engine-invokable.
#pragma once

#include <cstdint>
#include <functional>

#include "core/cancel.hpp"
#include "core/policy.hpp"
#include "core/workspace.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock {

struct CommonOptions {
  /// Workload-mapping strategy for traversal steps (paper Section 4.4).
  core::LoadBalance load_balance = core::LoadBalance::kAuto;
  /// Thread pool to run on; nullptr selects the process-global pool.
  par::ThreadPool* pool = nullptr;
  /// Collect per-operator records into TraversalStats::records.
  bool collect_records = false;

  par::ThreadPool& Pool() const {
    return pool ? *pool : par::ThreadPool::Global();
  }
};

/// Execution control handed to a primitive runner by its caller — the
/// query engine, a batch driver, or any host application that wants to
/// recycle scratch across calls or stop a run early. Every field is
/// optional; a default RunControl reproduces the classic free-function
/// behavior (private arena, run to convergence).
struct RunControl {
  /// Caller-owned scratch arena. The engine leases one warm arena per
  /// in-flight query, so steady-state serving allocates no workspace
  /// memory; a null pointer makes the primitive create a private arena
  /// for the call.
  core::Workspace* workspace = nullptr;
  /// Cooperative stop signal, polled at iteration boundaries; the
  /// primitive throws core::Cancelled when it fires. Null = never stop.
  const core::CancelToken* cancel = nullptr;
  /// Tri-state precomputed graph::ComputeScaleFreeHint: -1 = unknown
  /// (the primitive computes it, one O(|V|) reduction), 0/1 = known.
  /// The engine computes it once per registered graph so short queries
  /// don't pay the pass.
  int scale_free_hint = -1;

  /// Iteration-boundary cancellation/deadline poll (~two relaxed loads).
  void Checkpoint() const {
    if (cancel) cancel->Check();
  }
};

/// Arena slot ranges for primitive-private scratch, carved out of
/// par::ws::kUserFirst upward. An engine-leased arena is reused by
/// whatever query runs next, so each primitive keeps its slots disjoint
/// from the others' — a slot's stored type then stays stable no matter
/// how queries interleave, and recycling never churns buffers.
namespace pslot {
enum : unsigned {
  kBfsFirst = par::ws::kUserFirst,       // bfs.cpp       (+0 .. +5)
  kSsspFirst = par::ws::kUserFirst + 6,  // sssp.cpp      (+6 .. +13)
  kPagerankFirst = par::ws::kUserFirst + 14,  // pagerank.cpp (+14 .. +23)
  kBcFirst = par::ws::kUserFirst + 24,   // bc.cpp        (+24 .. +27)
  kCcFirst = par::ws::kUserFirst + 28,   // cc.cpp        (+28 .. +31)
  kMstFirst = par::ws::kUserFirst + 32,  // mst.cpp       (+32 .. +39)
  kTrianglesFirst = par::ws::kUserFirst + 40,  // triangles.cpp (+40 .. +43)
  kLpFirst = par::ws::kUserFirst + 44,   // label_propagation.cpp (+44..+51)
  kRankingFirst = par::ws::kUserFirst + 52,  // ranking.cpp (+52 .. +63)
  kBatchFirst = par::ws::kUserFirst + 64,  // bfs_batch/ppr_batch (+64..+79)
  kSpmvFirst = par::ws::kUserFirst + 80,  // core/spmv.hpp scratch (+80..+87)
  kMatrixFirst = par::ws::kUserFirst + 88,  // sssp_batch.cpp (+88..+103)
  kAppFirst = par::ws::kUserFirst + 104,  // applications / user code
};
}  // namespace pslot

/// Per-lane control for the batched multi-source primitives (BfsBatch /
/// PprBatch): where RunControl stops a whole run, this drops individual
/// source lanes at iteration boundaries — the engine's coalescing pass
/// maps each lane to one query's CancelToken, so cancelling one query of
/// a merged wave removes only its lane while the rest run on unaffected.
struct BatchLaneControl {
  /// Called at every iteration boundary with the currently active lane
  /// mask; returns the lanes to KEEP (intersected with `active`). Null =
  /// keep all. Dropped lanes' per-lane results are left unspecified and
  /// excluded from the result's completed mask.
  std::function<std::uint64_t(std::uint64_t active)> keep;

  std::uint64_t Poll(std::uint64_t active) const {
    return keep ? (active & keep(active)) : active;
  }
};

}  // namespace gunrock
