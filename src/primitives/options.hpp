// Options shared by every primitive's public API.
#pragma once

#include "core/policy.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock {

struct CommonOptions {
  /// Workload-mapping strategy for traversal steps (paper Section 4.4).
  core::LoadBalance load_balance = core::LoadBalance::kAuto;
  /// Thread pool to run on; nullptr selects the process-global pool.
  par::ThreadPool* pool = nullptr;
  /// Collect per-operator records into TraversalStats::records.
  bool collect_records = false;

  par::ThreadPool& Pool() const {
    return pool ? *pool : par::ThreadPool::Global();
  }
};

}  // namespace gunrock
