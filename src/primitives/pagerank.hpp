// PageRank (paper Section 5.5).
//
// "Each iteration contains one advance operator to compute the PageRank
// value on the frontier of vertices, and one filter operator to remove the
// vertices whose PageRanks have already converged. We accumulate PageRank
// values with AtomicAdd operations."
//
// Two modes: the default runs the classic power iteration until the
// global residual falls below the tolerance (every vertex pushes every
// iteration; exactly comparable to the serial oracle), while
// frontier_mode = true reproduces Gunrock's delta-style behavior where
// converged vertices leave the frontier and stop pushing (faster, slightly
// approximate tails). Dangling mass is redistributed uniformly in both.
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct PagerankOptions : CommonOptions {
  double damping = 0.85;
  /// Per-vertex convergence threshold on |rank - previous rank|.
  double tolerance = 1e-9;
  int max_iterations = 1000;
  /// Gunrock-faithful frontier shrinking (see header comment).
  bool frontier_mode = false;
  /// Pull mode uses the gather-reduce operator (paper Section 7's
  /// proposed extension): per-vertex neighborhood reductions with
  /// equal-work partitioning and no atomics. The default (push) is the
  /// paper's Section 5.5 formulation (advance + atomicAdd). Pull requires
  /// a symmetric graph or an explicit reverse graph.
  bool pull = false;
  /// Reverse graph for pull mode on directed inputs; nullptr means the
  /// graph is symmetric (g is its own reverse).
  const graph::Csr* reverse = nullptr;
  /// Execution backend. kSpmv runs the merge-path semiring sweep
  /// (core/spmv.hpp) over the gather orientation — no frontier, no
  /// filter pass, one pre-scaled load per edge. kAuto picks kSpmv for
  /// pull mode on scale-free graphs and the frontier operators
  /// otherwise; frontier_mode always uses the frontier path.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
};

struct PagerankResult {
  /// Stationary distribution; sums to 1.
  std::vector<double> rank;
  int iterations = 0;
  core::TraversalStats stats;
  /// Wall time divided by iterations (the paper's Table 3 normalizes all
  /// PageRank timings to one iteration).
  double MsPerIteration() const {
    return iterations > 0 ? stats.elapsed_ms / iterations : 0.0;
  }
};

PagerankResult Pagerank(const graph::Csr& g,
                        const PagerankOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace, ctl.cancel polled
/// at iteration boundaries (throws core::Cancelled).
PagerankResult Pagerank(const graph::Csr& g, const PagerankOptions& opts,
                        const RunControl& ctl);

}  // namespace gunrock
