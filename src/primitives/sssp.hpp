// Single-source shortest path (paper Sections 4.1 and 5.2).
//
// One iteration maps onto three Gunrock steps (paper Algorithm 1):
// advance relaxes all edges out of the frontier with an atomicMin on the
// distance label; filter removes redundant vertex ids with an epoch claim
// (the paper's output_queue_id trick); and the two-level near/far priority
// queue implements Davidson-style delta-stepping — only vertices whose
// tentative distance falls inside the current Δ window are processed, the
// rest accumulate in the far pile.
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "primitives/options.hpp"

namespace gunrock {

struct SsspOptions : CommonOptions {
  /// Enable the near/far two-level priority queue (delta-stepping). With
  /// false, every relaxed vertex re-enters the frontier immediately
  /// (frontier-based Bellman-Ford).
  bool use_near_far = true;
  /// Δ bucket width; 0 selects Davidson's heuristic
  /// Δ = warp-width × mean-weight / mean-degree.
  weight_t delta = 0;
  bool compute_preds = true;
  /// Model SIMT lane efficiency per advance (one extra O(frontier) pass;
  /// off by default, Table 4 turns it on).
  bool model_lane_efficiency = false;
};

struct SsspResult {
  /// Shortest distance from the source; +inf for unreachable vertices.
  std::vector<weight_t> dist;
  /// Shortest-path-tree parent, recomputed after convergence so that
  /// dist[pred[v]] + w(pred[v], v) == dist[v] holds exactly.
  std::vector<vid_t> pred;
  core::TraversalStats stats;
};

/// Runs SSSP from `source` on a graph with non-negative weights. Throws
/// gunrock::Error if the graph is unweighted or the source is invalid.
SsspResult Sssp(const graph::Csr& g, vid_t source,
                const SsspOptions& opts = {});

/// Engine-invokable runner: scratch from ctl.workspace, ctl.cancel polled
/// at iteration boundaries (throws core::Cancelled).
SsspResult Sssp(const graph::Csr& g, vid_t source, const SsspOptions& opts,
                const RunControl& ctl);

/// Davidson et al.'s Δ heuristic (warp width × mean weight / mean degree),
/// guarded against the degenerate inputs that poison it: an edgeless graph
/// (0/0 = NaN), non-finite weights, or a ≤0 mean all fall back to Δ = 1.
/// Shared by Sssp and SsspBatch so both pick identical bucket widths.
weight_t SsspDeltaHeuristic(const graph::Csr& g, par::ThreadPool& pool);

}  // namespace gunrock
