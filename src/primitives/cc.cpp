#include "primitives/cc.hpp"

#include "core/compute.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

struct CcProblem {
  vid_t* comp = nullptr;
};

/// Hooking filter on the edge frontier: drop intra-component edges, hook
/// the larger label under the smaller for the rest. AtomicMin makes the
/// concurrent hooks monotone, so the labels only ever decrease.
struct CcHookFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, CcProblem& p) {
    const vid_t cs = par::AtomicLoad(&p.comp[s]);
    const vid_t cd = par::AtomicLoad(&p.comp[d]);
    if (cs == cd) return false;
    const vid_t hi = cs > cd ? cs : cd;
    const vid_t lo = cs > cd ? cd : cs;
    par::AtomicMin(&p.comp[hi], lo);
    return true;  // keep: endpoints may still be in different components
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, CcProblem&) {}
};

/// Pointer-jumping filter on the vertex frontier: multi-level trees
/// shrink toward stars; vertices whose label is already a root drop out.
struct CcJumpFunctor {
  static bool CondVertex(vid_t v, CcProblem& p) {
    const vid_t parent = par::AtomicLoad(&p.comp[v]);
    const vid_t grand = par::AtomicLoad(&p.comp[parent]);
    if (parent != grand) {
      par::AtomicMin(&p.comp[v], grand);
      return true;  // may need further jumping
    }
    return false;
  }
  static void ApplyVertex(vid_t, CcProblem&) {}
};

}  // namespace

CcResult Cc(const graph::Csr& g, const CcOptions& opts) {
  return Cc(g, opts, RunControl{});
}

CcResult Cc(const graph::Csr& g, const CcOptions& opts,
            const RunControl& ctl) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  CcResult result;
  result.component.resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    result.component[v] = static_cast<vid_t>(v);
  });

  CcProblem prob;
  prob.comp = result.component.data();

  const auto edge_src = g.edge_sources(pool);
  const auto edge_dst = g.col_indices();

  // Enactor-owned arena shared by the hooking and pointer-jumping passes;
  // an engine lease extends the reuse across queries.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;
  core::FilterConfig filter_cfg;
  filter_cfg.workspace = &ws;

  WallTimer timer;

  // Edge frontier: one arc per undirected edge (u < v); on a directed
  // input every arc participates (hooking is symmetric anyway).
  auto& edges = ws.Get<core::EdgeFrontier>(pslot::kCcFirst);
  auto& vertices = ws.Get<core::VertexFrontier>(pslot::kCcFirst + 1);
  edges.Clear();
  vertices.Clear();
  {
    edges.current().resize(m);
    const std::size_t kept = par::GenerateIf(
        pool, m, std::span<eid_t>(edges.current()),
        [&](std::size_t e) { return edge_src[e] <= edge_dst[e]; },
        [](std::size_t e) { return static_cast<eid_t>(e); }, &ws);
    edges.current().resize(kept);
  }

  while (!edges.empty()) {
    ctl.Checkpoint();
    // Hooking pass over the surviving cross-component edges.
    const auto hook = core::FilterEdge<CcHookFunctor>(
        pool, edge_src, edge_dst, edges.current(), &edges.next(), prob,
        filter_cfg);
    result.stats.edges_visited += static_cast<eid_t>(hook.input_size);
    edges.Flip();
    ++result.stats.iterations;

    // Pointer jumping to convergence (each pass halves tree depth).
    vertices.current().resize(n);
    core::ForAll(pool, n, [&](std::size_t v) {
      vertices.current()[v] = static_cast<vid_t>(v);
    });
    while (!vertices.empty()) {
      core::FilterVertex<CcJumpFunctor>(pool, vertices.current(),
                                        &vertices.next(), prob, filter_cfg);
      vertices.Flip();
    }
    if (hook.output_size == hook.input_size) {
      // No edge was dropped this round; after jumping, labels are flat and
      // the next hooking pass will prune — but if hooking also made no
      // progress (fully flat labels, all edges intra-component) we are
      // done. The explicit check below avoids a pathological spin.
      const std::size_t cross = par::CountIf(
          pool, std::span<const eid_t>(edges.current()), [&](eid_t e) {
            return result.component[edge_src[static_cast<std::size_t>(e)]] !=
                   result.component[edge_dst[static_cast<std::size_t>(e)]];
          });
      if (cross == 0) break;
    }
  }

  // Final flatten (labels may be one hop from the root after the last
  // hooking) and component count.
  bool changed = true;
  while (changed) {
    changed = false;
    core::ForAll(pool, n, [&](std::size_t v) {
      const vid_t parent = result.component[v];
      const vid_t grand = result.component[parent];
      if (parent != grand) {
        result.component[v] = grand;
        par::AtomicStore(&changed, true);
      }
    });
  }
  result.num_components = static_cast<vid_t>(par::TransformReduce(
      pool, n, std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return result.component[v] == static_cast<vid_t>(v) ? std::size_t{1}
                                                            : 0;
      }));

  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.lane_efficiency = 1.0;
  return result;
}

}  // namespace gunrock
