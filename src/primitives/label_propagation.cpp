#include "primitives/label_propagation.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/compute.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/timer.hpp"

namespace gunrock {

LabelPropagationResult LabelPropagation(
    const graph::Csr& g, const LabelPropagationOptions& opts) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  LabelPropagationResult result;
  result.label.resize(n);
  std::vector<vid_t> next_label(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    result.label[v] = static_cast<vid_t>(v);
    next_label[v] = static_cast<vid_t>(v);
  });

  std::vector<vid_t> frontier(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    frontier[v] = static_cast<vid_t>(v);
  });
  std::vector<char> changed(n, 0);

  WallTimer timer;
  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    // Compute step: per-vertex neighborhood histogram (thread-local map;
    // label domains are unbounded so a hash map it is).
    core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
      changed[static_cast<std::size_t>(v)] = 0;
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) return;
      std::unordered_map<vid_t, std::int32_t> counts;
      counts.reserve(nbrs.size());
      for (const vid_t u : nbrs) {
        ++counts[result.label[static_cast<std::size_t>(u)]];
      }
      vid_t best = result.label[static_cast<std::size_t>(v)];
      std::int32_t best_count = 0;
      for (const auto& [label, count] : counts) {
        if (count > best_count ||
            (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      if (best != result.label[static_cast<std::size_t>(v)]) {
        next_label[static_cast<std::size_t>(v)] = best;
        changed[static_cast<std::size_t>(v)] = 1;
      } else {
        next_label[static_cast<std::size_t>(v)] = best;
      }
    });
    result.stats.edges_visited += par::TransformReduce(
        pool, frontier.size(), eid_t{0},
        [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t i) { return g.degree(frontier[i]); });

    // Publish synchronously.
    core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
      result.label[static_cast<std::size_t>(v)] =
          next_label[static_cast<std::size_t>(v)];
    });

    // Filter step: the next frontier is every vertex adjacent to a
    // change (plus the changed vertices themselves).
    std::vector<char> active(n, 0);
    core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
      if (!changed[static_cast<std::size_t>(v)]) return;
      active[static_cast<std::size_t>(v)] = 1;
      for (const vid_t u : g.neighbors(v)) {
        active[static_cast<std::size_t>(u)] = 1;
      }
    });
    frontier.resize(n);
    const std::size_t kept = par::GenerateIf(
        pool, n, std::span<vid_t>(frontier),
        [&](std::size_t v) { return active[v] != 0; },
        [](std::size_t v) { return static_cast<vid_t>(v); });
    frontier.resize(kept);
    ++result.iterations;
  }

  // Count distinct labels.
  std::unordered_set<vid_t> distinct(result.label.begin(),
                                     result.label.end());
  result.num_communities = static_cast<vid_t>(distinct.size());
  result.stats.iterations = result.iterations;
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
