#include "primitives/label_propagation.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/compute.hpp"
#include "core/workspace.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// One vertex's adoption step: the most frequent label among its
/// neighbors (ties: smallest label; order-independent for any histogram
/// iteration order). Returns the adopted label.
vid_t BestLabel(const graph::Csr& g, vid_t v,
                const std::vector<vid_t>& label) {
  const auto nbrs = g.neighbors(v);
  vid_t best = label[static_cast<std::size_t>(v)];
  if (nbrs.empty()) return best;
  std::unordered_map<vid_t, std::int32_t> counts;
  counts.reserve(nbrs.size());
  for (const vid_t u : nbrs) {
    ++counts[label[static_cast<std::size_t>(u)]];
  }
  std::int32_t best_count = 0;
  for (const auto& [l, count] : counts) {
    if (count > best_count || (count == best_count && l < best)) {
      best = l;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

LabelPropagationResult LabelPropagation(
    const graph::Csr& g, const LabelPropagationOptions& opts) {
  return LabelPropagation(g, opts, RunControl{});
}

LabelPropagationResult LabelPropagation(const graph::Csr& g,
                                        const LabelPropagationOptions& opts,
                                        const RunControl& ctl) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  LabelPropagationResult result;
  result.label.resize(n);

  // Round-loop scratch, arena-hoisted (slots kLpFirst..+3 here, +4/+5
  // for the reduce partials below; fully overwritten each round) so an
  // engine lease reuses it across queries.
  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;
  auto& next_label = ws.Get<std::vector<vid_t>>(pslot::kLpFirst);
  auto& frontier = ws.Get<std::vector<vid_t>>(pslot::kLpFirst + 1);
  auto& changed = ws.Get<std::vector<char>>(pslot::kLpFirst + 2);
  auto& active = ws.Get<std::vector<char>>(pslot::kLpFirst + 3);

  next_label.resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    result.label[v] = static_cast<vid_t>(v);
    next_label[v] = static_cast<vid_t>(v);
  });
  changed.assign(n, 0);

  const bool full_sweep = opts.variant == LpVariant::kFullSweep;
  if (full_sweep) {
    frontier.clear();
  } else {
    frontier.resize(n);
    core::ForAll(pool, n, [&](std::size_t v) {
      frontier[v] = static_cast<vid_t>(v);
    });
  }

  WallTimer timer;
  while (result.iterations < opts.max_iterations &&
         (full_sweep || !frontier.empty())) {
    ctl.Checkpoint();
    // Compute step: per-vertex neighborhood histogram (thread-local map;
    // label domains are unbounded so a hash map it is). The full sweep
    // evaluates every vertex; the frontier form only the active set.
    const auto evaluate = [&](vid_t v) {
      changed[static_cast<std::size_t>(v)] = 0;
      const vid_t best = BestLabel(g, v, result.label);
      next_label[static_cast<std::size_t>(v)] = best;
      if (best != result.label[static_cast<std::size_t>(v)]) {
        changed[static_cast<std::size_t>(v)] = 1;
      }
    };
    if (full_sweep) {
      core::ForAll(pool, n,
                   [&](std::size_t v) { evaluate(static_cast<vid_t>(v)); });
      result.stats.edges_visited += g.num_edges();
    } else {
      core::ForEach(pool, std::span<const vid_t>(frontier), evaluate);
      result.stats.edges_visited += par::TransformReduce(
          pool, frontier.size(), eid_t{0},
          [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) { return g.degree(frontier[i]); }, &ws,
          pslot::kLpFirst + 4);
    }

    // Publish synchronously.
    if (full_sweep) {
      core::ForAll(pool, n, [&](std::size_t v) {
        result.label[v] = next_label[v];
      });
    } else {
      core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
        result.label[static_cast<std::size_t>(v)] =
            next_label[static_cast<std::size_t>(v)];
      });
    }
    ++result.iterations;

    if (full_sweep) {
      const std::size_t moved = par::TransformReduce(
          pool, n, std::size_t{0},
          [](std::size_t a, std::size_t b) { return a + b; },
          [&](std::size_t v) {
            return changed[v] ? std::size_t{1} : std::size_t{0};
          },
          &ws, pslot::kLpFirst + 5);
      if (moved == 0) break;
      continue;
    }

    // Filter step: the next frontier is every vertex adjacent to a
    // change (plus the changed vertices themselves).
    active.assign(n, 0);
    core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
      if (!changed[static_cast<std::size_t>(v)]) return;
      active[static_cast<std::size_t>(v)] = 1;
      for (const vid_t u : g.neighbors(v)) {
        active[static_cast<std::size_t>(u)] = 1;
      }
    });
    frontier.resize(n);
    const std::size_t kept = par::GenerateIf(
        pool, n, std::span<vid_t>(frontier),
        [&](std::size_t v) { return active[v] != 0; },
        [](std::size_t v) { return static_cast<vid_t>(v); }, &ws);
    frontier.resize(kept);
  }

  // Count distinct labels.
  std::unordered_set<vid_t> distinct(result.label.begin(),
                                     result.label.end());
  result.num_communities = static_cast<vid_t>(distinct.size());
  result.stats.iterations = result.iterations;
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
