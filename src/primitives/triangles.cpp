#include "primitives/triangles.hpp"

#include <algorithm>

#include "core/compute.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/timer.hpp"

namespace gunrock {

TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  TriangleResult result;
  result.per_vertex.assign(n, 0);

  WallTimer timer;

  // Canonical arc list (u < v).
  std::vector<eid_t> arcs(m);
  const auto srcs = g.edge_sources(pool);
  const auto dsts = g.col_indices();
  const std::size_t num_arcs = par::GenerateIf(
      pool, m, std::span<eid_t>(arcs),
      [&](std::size_t e) { return srcs[e] < dsts[e]; },
      [](std::size_t e) { return static_cast<eid_t>(e); });
  arcs.resize(num_arcs);

  // Per-arc sorted intersection, counting only the w > v tail so each
  // triangle lands once; the per-corner tallies go to all three vertices.
  std::int64_t* per_vertex = result.per_vertex.data();
  const std::int64_t total = par::TransformReduce(
      pool, num_arcs, std::int64_t{0},
      [](std::int64_t a, std::int64_t b) { return a + b; },
      [&](std::size_t i) {
        const eid_t e = arcs[i];
        const vid_t u = srcs[static_cast<std::size_t>(e)];
        const vid_t v = dsts[static_cast<std::size_t>(e)];
        const auto nu = g.neighbors(u);
        const auto nv = g.neighbors(v);
        // Merge the > v suffixes of both sorted lists.
        auto iu = std::upper_bound(nu.begin(), nu.end(), v);
        auto iv = std::upper_bound(nv.begin(), nv.end(), v);
        std::int64_t found = 0;
        while (iu != nu.end() && iv != nv.end()) {
          if (*iu < *iv) {
            ++iu;
          } else if (*iv < *iu) {
            ++iv;
          } else {
            const vid_t w = *iu;
            par::AtomicAdd(&per_vertex[u], std::int64_t{1});
            par::AtomicAdd(&per_vertex[v], std::int64_t{1});
            par::AtomicAdd(&per_vertex[w], std::int64_t{1});
            ++found;
            ++iu;
            ++iv;
          }
        }
        return found;
      });
  result.num_triangles = total;
  result.stats.edges_visited = static_cast<eid_t>(num_arcs);

  // Clustering coefficients.
  result.clustering.assign(n, 0.0);
  core::ForAll(pool, n, [&](std::size_t v) {
    const double d = static_cast<double>(g.degree(static_cast<vid_t>(v)));
    const double wedges = d * (d - 1.0) / 2.0;
    result.clustering[v] =
        wedges > 0 ? static_cast<double>(result.per_vertex[v]) / wedges
                   : 0.0;
  });
  const double wedge_total = par::TransformReduce(
      pool, n, 0.0, [](double a, double b) { return a + b; },
      [&](std::size_t v) {
        const double d =
            static_cast<double>(g.degree(static_cast<vid_t>(v)));
        return d * (d - 1.0) / 2.0;
      });
  result.global_clustering =
      wedge_total > 0 ? 3.0 * static_cast<double>(total) / wedge_total
                      : 0.0;
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
