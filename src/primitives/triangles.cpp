#include "primitives/triangles.hpp"

#include <algorithm>
#include <atomic>

#include "core/compute.hpp"
#include "core/workspace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/reduce.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Cancellation granularity: the counting pass is one flat sweep, so it
/// is cut into fixed-size blocks with a RunControl checkpoint between
/// them. Block boundaries are deterministic (they depend only on the
/// input size), so the per-block partial sums reduce in a fixed order.
inline constexpr std::size_t kArcBlock = std::size_t{1} << 16;
inline constexpr std::size_t kVertexBlock = std::size_t{1} << 14;

}  // namespace

TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts) {
  return CountTriangles(g, opts, RunControl{});
}

TriangleResult CountTriangles(const graph::Csr& g,
                              const TriangleOptions& opts,
                              const RunControl& ctl) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());

  TriangleResult result;
  result.per_vertex.assign(n, 0);
  std::int64_t* per_vertex = result.per_vertex.data();

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  WallTimer timer;

  const auto srcs = g.edge_sources(pool);
  const auto dsts = g.col_indices();

  std::int64_t total = 0;
  std::size_t num_arcs = 0;

  if (opts.variant == TriangleVariant::kMergePath) {
    // Canonical arc list (u < v), arena-resident across queries.
    auto& arcs = ws.Get<std::vector<eid_t>>(pslot::kTrianglesFirst);
    arcs.resize(m);
    num_arcs = par::GenerateIf(
        pool, m, std::span<eid_t>(arcs),
        [&](std::size_t e) { return srcs[e] < dsts[e]; },
        [](std::size_t e) { return static_cast<eid_t>(e); }, &ws);
    arcs.resize(num_arcs);

    // Per-arc sorted intersection, counting only the w > v tail so each
    // triangle lands once; the per-corner tallies go to all three
    // vertices.
    for (std::size_t lo = 0; lo < num_arcs; lo += kArcBlock) {
      ctl.Checkpoint();
      const std::size_t block = std::min(kArcBlock, num_arcs - lo);
      // Partials in a primitive-private slot: the shared kReducePartials
      // slot holds doubles by convention, and re-typing a recycled
      // lease's slot would churn buffers.
      total += par::TransformReduce(
          pool, block, std::int64_t{0},
          [](std::int64_t a, std::int64_t b) { return a + b; },
          [&](std::size_t i) {
            const eid_t e = arcs[lo + i];
            const vid_t u = srcs[static_cast<std::size_t>(e)];
            const vid_t v = dsts[static_cast<std::size_t>(e)];
            const auto nu = g.neighbors(u);
            const auto nv = g.neighbors(v);
            // Merge the > v suffixes of both sorted lists.
            auto iu = std::upper_bound(nu.begin(), nu.end(), v);
            auto iv = std::upper_bound(nv.begin(), nv.end(), v);
            std::int64_t found = 0;
            while (iu != nu.end() && iv != nv.end()) {
              if (*iu < *iv) {
                ++iu;
              } else if (*iv < *iu) {
                ++iv;
              } else {
                const vid_t w = *iu;
                par::AtomicAdd(&per_vertex[u], std::int64_t{1});
                par::AtomicAdd(&per_vertex[v], std::int64_t{1});
                par::AtomicAdd(&per_vertex[w], std::int64_t{1});
                ++found;
                ++iu;
                ++iv;
              }
            }
            return found;
          },
          &ws, pslot::kTrianglesFirst + 2);
    }
  } else {
    // Hashed variant: every corner u marks its > u suffix in a per-lane
    // membership table, then probes each two-hop neighbor w > v against
    // it. The marks are reset after each corner (mark/probe/unmark), so
    // the tables stay all-zero between corners, queries and leases.
    auto& lane_marks =
        ws.Get<std::vector<std::vector<std::uint8_t>>>(
            pslot::kTrianglesFirst + 1);
    if (lane_marks.size() < pool.num_threads()) {
      lane_marks.resize(pool.num_threads());
    }

    std::atomic<std::int64_t> found_total{0};
    std::atomic<std::int64_t> arc_total{0};  // edges_visited, counted in-loop
    for (std::size_t ulo = 0; ulo < n; ulo += kVertexBlock) {
      ctl.Checkpoint();
      const std::size_t uhi = std::min(n, ulo + kVertexBlock);
      par::ParallelForChunks(
          pool, ulo, uhi, 0,
          [&](std::size_t lo, std::size_t hi, std::size_t, unsigned rank) {
            auto& marks = lane_marks[rank];
            if (marks.size() < n) marks.resize(n, 0);
            std::int64_t found = 0;
            std::int64_t arcs_here = 0;
            for (std::size_t ui = lo; ui < hi; ++ui) {
              const vid_t u = static_cast<vid_t>(ui);
              const auto nu = g.neighbors(u);
              const auto iu = std::upper_bound(nu.begin(), nu.end(), u);
              if (iu == nu.end()) continue;
              arcs_here += nu.end() - iu;
              for (auto it = iu; it != nu.end(); ++it) {
                marks[static_cast<std::size_t>(*it)] = 1;
              }
              for (auto it = iu; it != nu.end(); ++it) {
                const vid_t v = *it;
                const auto nv = g.neighbors(v);
                for (auto iw = std::upper_bound(nv.begin(), nv.end(), v);
                     iw != nv.end(); ++iw) {
                  const vid_t w = *iw;
                  if (marks[static_cast<std::size_t>(w)]) {
                    par::AtomicAdd(&per_vertex[u], std::int64_t{1});
                    par::AtomicAdd(&per_vertex[v], std::int64_t{1});
                    par::AtomicAdd(&per_vertex[w], std::int64_t{1});
                    ++found;
                  }
                }
              }
              for (auto it = iu; it != nu.end(); ++it) {
                marks[static_cast<std::size_t>(*it)] = 0;
              }
            }
            found_total.fetch_add(found, std::memory_order_relaxed);
            arc_total.fetch_add(arcs_here, std::memory_order_relaxed);
          });
    }
    total = found_total.load(std::memory_order_relaxed);
    num_arcs =
        static_cast<std::size_t>(arc_total.load(std::memory_order_relaxed));
  }

  result.num_triangles = total;
  result.stats.edges_visited = static_cast<eid_t>(num_arcs);

  // Clustering coefficients.
  result.clustering.assign(n, 0.0);
  core::ForAll(pool, n, [&](std::size_t v) {
    const double d = static_cast<double>(g.degree(static_cast<vid_t>(v)));
    const double wedges = d * (d - 1.0) / 2.0;
    result.clustering[v] =
        wedges > 0 ? static_cast<double>(result.per_vertex[v]) / wedges
                   : 0.0;
  });
  const double wedge_total = par::TransformReduce(
      pool, n, 0.0, [](double a, double b) { return a + b; },
      [&](std::size_t v) {
        const double d =
            static_cast<double>(g.degree(static_cast<vid_t>(v)));
        return d * (d - 1.0) / 2.0;
      },
      &ws);
  result.global_clustering =
      wedge_total > 0 ? 3.0 * static_cast<double>(total) / wedge_total
                      : 0.0;
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
