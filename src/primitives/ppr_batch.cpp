#include "primitives/ppr_batch.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "core/advance.hpp"
#include "core/compute.hpp"
#include "core/spmv.hpp"
#include "graph/stats.hpp"
#include "parallel/atomics.hpp"
#include "parallel/lane_mask.hpp"
#include "parallel/reduce.hpp"
#include "primitives/bfs_batch.hpp"  // kMaxBatchLanes
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Column-block propagation: one edge scan pushes every running lane's
/// scaled score. The two-step rounding (damping * rank, then * inv_out)
/// deliberately mirrors the scalar run, which stores damping * rank into
/// a scaled[] array before the advance multiplies by 1/outdeg — keeping
/// per-lane arithmetic identical to PersonalizedPagerank's.
struct MsPprProblem {
  const double* rank = nullptr;    // n x L, vertex-major
  double* next = nullptr;          // n x L, vertex-major
  const double* inv_out = nullptr; // 1/outdeg per vertex
  std::size_t stride = 0;          // L
  std::uint64_t running = 0;       // lanes still iterating
  double damping = 0.85;
};

struct MsPprFunctor {
  static bool CondEdge(vid_t s, vid_t d, eid_t, MsPprProblem& p) {
    const double* src = p.rank + static_cast<std::size_t>(s) * p.stride;
    double* dst = p.next + static_cast<std::size_t>(d) * p.stride;
    const double inv = p.inv_out[static_cast<std::size_t>(s)];
    for (std::uint64_t m = p.running; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      const double scaled = p.damping * src[l];
      par::AtomicAdd(&dst[l], scaled * inv);
    }
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, MsPprProblem&) {}
};

/// Per-lane block reduction with par::TransformReduce's exact shape —
/// the same DefaultBlockCount partition, the same serial in-block
/// accumulation order, the same block-order combine — computed for every
/// running lane in ONE pass over the data instead of one O(n) pass per
/// lane. Each lane's sum is therefore bit-identical to the scalar run's
/// TransformReduce while the sweep reads each vertex row once.
template <typename F>
void LaneBlockReduce(par::ThreadPool& pool, std::size_t n,
                     std::uint64_t running, std::size_t stride,
                     F&& transform, double* out, core::Workspace& ws,
                     unsigned slot) {
  const std::size_t nblocks =
      par::DefaultBlockCount(n, pool.num_threads());
  auto& partial = ws.Get<std::vector<double>>(slot);
  partial.assign(nblocks * stride, 0.0);
  par::FixedBlocks(
      pool, n, nblocks, [&](std::size_t b, std::size_t lo, std::size_t hi) {
        double* acc = partial.data() + b * stride;  // zeroed above
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::uint64_t m = running; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            acc[l] += transform(i, l);
          }
        }
      });
  for (std::uint64_t m = running; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    double acc = 0.0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      acc += partial[b * stride + l];
    }
    out[l] = acc;
  }
}

}  // namespace

PprBatchResult PprBatch(const graph::Csr& g, std::span<const vid_t> seeds,
                        const PprBatchOptions& opts) {
  return PprBatch(g, seeds, opts, RunControl{});
}

PprBatchResult PprBatch(const graph::Csr& g, std::span<const vid_t> seeds,
                        const PprBatchOptions& opts, const RunControl& ctl,
                        const BatchLaneControl& lanes) {
  const std::size_t L = seeds.size();
  GR_CHECK(L >= 1 && L <= kMaxBatchLanes, "PprBatch needs 1..64 seeds");
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  PprBatchResult result;
  result.rank.resize(L);
  result.iterations.assign(L, 0);
  if (n == 0) {
    result.completed_mask = par::LaneMaskOf(L);
    return result;
  }
  for (const vid_t s : seeds) {
    GR_CHECK(s >= 0 && s < g.num_vertices(), "seed out of range");
  }

  core::Workspace private_ws;
  core::Workspace& ws = ctl.workspace ? *ctl.workspace : private_ws;

  auto& all = ws.Get<std::vector<vid_t>>(pslot::kBatchFirst + 9);
  all.resize(n);
  core::ForAll(pool, n,
               [&](std::size_t v) { all[v] = static_cast<vid_t>(v); });

  auto& rank = ws.Get<std::vector<double>>(pslot::kBatchFirst + 10);
  auto& next = ws.Get<std::vector<double>>(pslot::kBatchFirst + 11);
  auto& inv_out = ws.Get<std::vector<double>>(pslot::kBatchFirst + 12);
  rank.assign(n * L, 0.0);
  next.resize(n * L);
  inv_out.resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    inv_out[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  });
  // Initial rank == teleport: a single-seed teleport distribution is a
  // unit delta at the seed (scalar: 1.0 / seeds.size() with one seed).
  for (std::size_t l = 0; l < L; ++l) {
    rank[static_cast<std::size_t>(seeds[l]) * L + l] = 1.0;
  }

  core::AdvanceConfig adv_cfg;
  adv_cfg.lb = opts.load_balance;
  adv_cfg.scale_free_hint = ctl.scale_free_hint >= 0
                                ? ctl.scale_free_hint > 0
                                : graph::ComputeScaleFreeHint(g, pool);
  adv_cfg.workspace = &ws;
  adv_cfg.model_efficiency = false;

  MsPprProblem prob;
  prob.rank = rank.data();
  prob.next = next.data();
  prob.inv_out = inv_out.data();
  prob.stride = L;
  prob.damping = opts.damping;

  // SpMM backend: the column sweep as a merge-path gather over the
  // reverse orientation. `pre` holds the per-lane pre-scaled scores —
  // (damping * rank) * inv_out, the scalar spmv backend's exact
  // two-step rounding — so one structure walk serves all lanes.
  const bool use_spmm = opts.backend == core::SpmvBackend::kSpmv;
  const graph::Csr& rg = opts.reverse ? *opts.reverse : g;
  const auto rcols = rg.col_indices();
  auto& pre = ws.Get<std::vector<double>>(pslot::kBatchFirst + 14);
  if (use_spmm) pre.resize(n * L);

  std::uint64_t running = par::LaneMaskOf(L);
  double dangling[kMaxBatchLanes];
  double moved[kMaxBatchLanes];
  double base[kMaxBatchLanes];

  WallTimer timer;
  int it = 0;
  while (running != 0 && it < opts.max_iterations) {
    ctl.Checkpoint();
    const std::uint64_t keep = lanes.Poll(running);
    running = keep;  // dropped lanes simply stop being swept
    if (running == 0) break;
    prob.running = running;

    // Per-lane dangling mass, every lane in one sweep with the scalar
    // run's exact reduction shape (same block partition, same in-block
    // order, same combine order).
    LaneBlockReduce(
        pool, n, running, L,
        [&](std::size_t v, int l) {
          return g.degree(static_cast<vid_t>(v)) == 0 ? rank[v * L + l]
                                                      : 0.0;
        },
        dangling, ws, pslot::kBatchFirst + 13);

    if (use_spmm) {
      // Pre-scale every running lane once per vertex, then gather: the
      // SpMM writes next = base * teleport + gathered sum directly (no
      // zero pass, no atomics), with the scalar spmv backend's partition
      // and fold order per lane.
      core::ForAll(pool, n, [&](std::size_t v) {
        const double* src = rank.data() + v * L;
        double* dst = pre.data() + v * L;
        const double inv = inv_out[v];
        for (std::uint64_t m = running; m != 0; m &= m - 1) {
          const int l = std::countr_zero(m);
          dst[l] = (opts.damping * src[l]) * inv;
        }
      });
      for (std::uint64_t m = running; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        base[l] = 1.0 - opts.damping + opts.damping * dangling[l];
      }
      core::SpmmMergePath<double>(
          pool, rg.row_offsets(), std::span<double>(next), L, running, 0.0,
          [](double p, double q) { return p + q; },
          [&](std::size_t e, std::size_t l) {
            return pre[static_cast<std::size_t>(rcols[e]) * L + l];
          },
          [&](std::size_t v, std::size_t l, double acc) {
            const double tele =
                v == static_cast<std::size_t>(seeds[l]) ? 1.0 : 0.0;
            return base[l] * tele + acc;
          },
          &ws, pslot::kSpmvFirst);
      result.stats.edges_visited += rg.num_edges();
    } else {
      // next = base * teleport: zero everywhere (scalar: base * 0.0), the
      // full base at the seed (scalar: base * 1.0 == base).
      core::ForAll(pool, n, [&](std::size_t v) {
        double* row = next.data() + v * L;
        for (std::uint64_t m = running; m != 0; m &= m - 1) {
          row[std::countr_zero(m)] = 0.0;
        }
      });
      for (std::uint64_t m = running; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        next[static_cast<std::size_t>(seeds[l]) * L + l] =
            (1.0 - opts.damping + opts.damping * dangling[l]) * 1.0;
      }

      // One edge sweep pushes damping * rank / outdeg for every running
      // lane — the batched amortization.
      const auto adv = core::AdvancePush<MsPprFunctor>(
          pool, g, all, static_cast<std::vector<vid_t>*>(nullptr), prob,
          adv_cfg);
      result.stats.edges_visited += adv.edges_visited;
    }

    LaneBlockReduce(
        pool, n, running, L,
        [&](std::size_t v, int l) {
          return std::abs(next[v * L + l] - rank[v * L + l]);
        },
        moved, ws, pslot::kBatchFirst + 13);
    // Column write-back stands in for the scalar rank.swap(next):
    // converged/dropped lanes keep their final column untouched.
    core::ForAll(pool, n, [&](std::size_t v) {
      double* dst = rank.data() + v * L;
      const double* src = next.data() + v * L;
      for (std::uint64_t m = running; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        dst[l] = src[l];
      }
    });

    ++it;
    for (std::uint64_t m = running; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      if (moved[l] < opts.tolerance) {
        result.iterations[l] = it;
        result.completed_mask |= std::uint64_t{1} << l;
        running &= ~(std::uint64_t{1} << l);
      }
    }
  }
  // Lanes that hit the iteration cap complete like the scalar run does.
  for (std::uint64_t m = running; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    result.iterations[l] = it;
    result.completed_mask |= std::uint64_t{1} << l;
  }

  // De-interleave the completed columns with the pool: size every lane's
  // vector first (lane-parallel; ParallelFor's serial cutoff would
  // defeat a <= 64-item loop), then scatter row-by-row so each n x L
  // block row is read exactly once — a per-lane strided gather would
  // re-stream the whole block per lane.
  pool.Parallel([&](unsigned rank_id) {
    for (std::size_t l = rank_id; l < L; l += pool.num_threads()) {
      if ((result.completed_mask >> l) & 1) result.rank[l].resize(n);
    }
  });
  std::array<double*, kMaxBatchLanes> col_of{};
  for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    col_of[l] = result.rank[static_cast<std::size_t>(l)].data();
  }
  core::ForAll(pool, n, [&](std::size_t v) {
    const double* row = rank.data() + v * L;
    for (std::uint64_t m = result.completed_mask; m != 0; m &= m - 1) {
      const int l = std::countr_zero(m);
      col_of[l][v] = row[l];
    }
  });
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = it;
  return result;
}

}  // namespace gunrock
