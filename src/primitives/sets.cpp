#include "primitives/sets.hpp"

#include <algorithm>

#include "core/compute.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/reduce.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gunrock {

namespace {

/// Deterministic per-(vertex, round) priority; ties broken by vertex id.
inline std::uint64_t Priority(std::uint64_t seed, vid_t v, int round) {
  return SplitMix64(seed ^ (static_cast<std::uint64_t>(round) << 32 ^
                            static_cast<std::uint64_t>(v)));
}

inline bool Beats(std::uint64_t pa, vid_t a, std::uint64_t pb, vid_t b) {
  return pa > pb || (pa == pb && a > b);
}

}  // namespace

ColoringResult GraphColoring(const graph::Csr& g,
                             const ColoringOptions& opts) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  ColoringResult result;
  result.color.assign(n, -1);

  core::VertexFrontier frontier(n);
  frontier.current().resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    frontier.current()[v] = static_cast<vid_t>(v);
  });
  // Round-start snapshot of undecided vertices: the winner test must not
  // observe colors written concurrently within the round, or two adjacent
  // vertices could both win.
  std::vector<std::uint8_t> undecided(n, 1);

  WallTimer timer;
  while (!frontier.empty()) {
    const int round = result.rounds;
    // Compute step: find local priority maxima among uncolored vertices
    // and give each the smallest color unused in its neighborhood. At most
    // one of any adjacent undecided pair wins (total priority order), so
    // winners read only stable neighbor colors and write only their own.
    core::ForEach(
        pool, std::span<const vid_t>(frontier.current()), [&](vid_t v) {
          const std::uint64_t pv = Priority(opts.seed, v, round);
          for (const vid_t u : g.neighbors(v)) {
            if (u != v && undecided[static_cast<std::size_t>(u)] &&
                Beats(Priority(opts.seed, u, round), u, pv, v)) {
              return;  // a higher-priority uncolored neighbor exists
            }
          }
          // Winner: pick the smallest free color.
          std::uint64_t used = 0;  // bitmask for colors < 64
          std::vector<std::int32_t> overflow;
          for (const vid_t u : g.neighbors(v)) {
            const std::int32_t c = result.color[u];
            if (c < 0) continue;
            if (c < 64) {
              used |= 1ULL << c;
            } else {
              overflow.push_back(c);
            }
          }
          std::int32_t c = 0;
          while (true) {
            const bool taken =
                c < 64 ? ((used >> c) & 1) != 0
                       : std::find(overflow.begin(), overflow.end(), c) !=
                             overflow.end();
            if (!taken) break;
            ++c;
          }
          result.color[v] = c;
        });
    result.stats.edges_visited += par::TransformReduce(
        pool, frontier.size(), eid_t{0},
        [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t i) { return g.degree(frontier.current()[i]); });

    // Filter step: keep the still-uncolored and refresh the snapshot.
    core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                  [&](vid_t v) {
                    undecided[static_cast<std::size_t>(v)] =
                        result.color[v] < 0 ? 1 : 0;
                  });
    frontier.next().resize(frontier.size());
    const std::size_t kept = par::CopyIf(
        pool, std::span<const vid_t>(frontier.current()),
        std::span<vid_t>(frontier.next()),
        [&](vid_t v) { return result.color[v] < 0; });
    frontier.next().resize(kept);
    frontier.Flip();
    ++result.rounds;
  }

  result.num_colors = 1 + par::TransformReduce(
                              pool, n, std::int32_t{-1},
                              [](std::int32_t a, std::int32_t b) {
                                return std::max(a, b);
                              },
                              [&](std::size_t v) { return result.color[v]; });
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.rounds;
  return result;
}

MisResult MaximalIndependentSet(const graph::Csr& g, const MisOptions& opts) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  MisResult result;
  result.in_set.assign(n, 0);
  // 0 = undecided, 1 = in set, 2 = excluded.
  std::vector<std::uint8_t> state(n, 0);

  core::VertexFrontier frontier(n);
  frontier.current().resize(n);
  core::ForAll(pool, n, [&](std::size_t v) {
    frontier.current()[v] = static_cast<vid_t>(v);
  });

  // Round-start snapshot: the winner test must ignore state written
  // concurrently within the round (a neighbor turning 1 mid-round would
  // otherwise stop blocking and let two adjacent vertices both win).
  std::vector<std::uint8_t> undecided(n, 1);

  WallTimer timer;
  while (!frontier.empty()) {
    const int round = result.rounds;
    // Luby step 1: undecided local maxima join the set.
    core::ForEach(
        pool, std::span<const vid_t>(frontier.current()), [&](vid_t v) {
          const std::uint64_t pv = Priority(opts.seed, v, round);
          for (const vid_t u : g.neighbors(v)) {
            if (u != v && undecided[static_cast<std::size_t>(u)] &&
                Beats(Priority(opts.seed, u, round), u, pv, v)) {
              return;
            }
          }
          state[v] = 1;
        });
    // Luby step 2: neighbors of fresh members are excluded.
    core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                  [&](vid_t v) {
                    if (state[v] != 0) return;
                    for (const vid_t u : g.neighbors(v)) {
                      if (state[u] == 1) {
                        state[v] = 2;
                        return;
                      }
                    }
                  });
    result.stats.edges_visited += 2 * par::TransformReduce(
                                          pool, frontier.size(), eid_t{0},
                                          [](eid_t a, eid_t b) {
                                            return a + b;
                                          },
                                          [&](std::size_t i) {
                                            return g.degree(
                                                frontier.current()[i]);
                                          });
    // Filter: survivors stay undecided; refresh the snapshot.
    core::ForEach(pool, std::span<const vid_t>(frontier.current()),
                  [&](vid_t v) {
                    undecided[static_cast<std::size_t>(v)] =
                        state[static_cast<std::size_t>(v)] == 0 ? 1 : 0;
                  });
    frontier.next().resize(frontier.size());
    const std::size_t kept = par::CopyIf(
        pool, std::span<const vid_t>(frontier.current()),
        std::span<vid_t>(frontier.next()),
        [&](vid_t v) { return state[v] == 0; });
    frontier.next().resize(kept);
    frontier.Flip();
    ++result.rounds;
  }

  core::ForAll(pool, n, [&](std::size_t v) {
    result.in_set[v] = state[v] == 1 ? 1 : 0;
  });
  result.set_size = static_cast<vid_t>(par::TransformReduce(
      pool, n, std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return result.in_set[v] ? std::size_t{1} : 0;
      }));
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.stats.iterations = result.rounds;
  return result;
}

KCoreResult KCore(const graph::Csr& g, const KCoreOptions& opts) {
  par::ThreadPool& pool = opts.Pool();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  KCoreResult result;
  result.core.assign(n, 0);

  std::vector<std::int64_t> remaining_degree(n);
  std::vector<std::uint8_t> alive(n, 1);
  core::ForAll(pool, n, [&](std::size_t v) {
    remaining_degree[v] = g.degree(static_cast<vid_t>(v));
  });
  std::size_t alive_count = n;

  WallTimer timer;
  std::vector<vid_t> frontier(n), next(n);
  for (std::int32_t k = 1; alive_count > 0; ++k) {
    // Peel every vertex whose remaining degree is below k; repeat until
    // the k-shell is empty (removals cascade).
    while (true) {
      frontier.resize(n);
      const std::size_t nf = par::GenerateIf(
          pool, n, std::span<vid_t>(frontier),
          [&](std::size_t v) {
            return alive[v] && remaining_degree[v] < k;
          },
          [](std::size_t v) { return static_cast<vid_t>(v); });
      frontier.resize(nf);
      if (nf == 0) break;
      core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
        alive[static_cast<std::size_t>(v)] = 0;
        result.core[static_cast<std::size_t>(v)] = k - 1;
      });
      core::ForEach(pool, std::span<const vid_t>(frontier), [&](vid_t v) {
        for (const vid_t u : g.neighbors(v)) {
          par::AtomicAdd(&remaining_degree[static_cast<std::size_t>(u)],
                         std::int64_t{-1});
        }
      });
      alive_count -= nf;
      result.stats.edges_visited += par::TransformReduce(
          pool, nf, eid_t{0}, [](eid_t a, eid_t b) { return a + b; },
          [&](std::size_t i) { return g.degree(frontier[i]); });
      ++result.stats.iterations;
    }
  }
  result.degeneracy = par::TransformReduce(
      pool, n, std::int32_t{0},
      [](std::int32_t a, std::int32_t b) { return std::max(a, b); },
      [&](std::size_t v) { return result.core[v]; });
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace gunrock
