// The filter operator (paper Section 4.1).
//
// Filter generates a new frontier by choosing a subset of the current
// frontier. Functor contract (fused at compile time, Figure 3):
//
//   struct MyFunctor {
//     static bool CondVertex(vid_t v, Problem& p);   // keep v?
//     static void ApplyVertex(vid_t v, Problem& p);  // runs on kept items
//   };
//
// Because advance in idempotent mode may emit duplicates, filter supports
// the paper's "series of inexpensive heuristics to reduce, but not
// eliminate, redundant entries": a per-chunk history hash that drops most
// repeats without global synchronization. Exact dedup, when a primitive
// needs it, belongs in the functor (e.g., an atomic claim on an epoch
// array), matching how Gunrock's BFS/SSSP mark their output queue ids.
//
// Stateful functors run exactly once per surviving item: the operator
// evaluates CondVertex in the same pass that writes the output buffer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/policy.hpp"
#include "graph/csr.hpp"
#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

struct FilterConfig {
  /// Enables the per-chunk history-hash dedup heuristic.
  bool history_hash = false;
  /// log2 of the per-chunk hash table size.
  unsigned history_bits = 12;
  std::size_t grain = 0;
};

struct FilterResult {
  std::size_t input_size = 0;
  std::size_t output_size = 0;
};

/// Vertex-frontier filter: writes surviving items of `input` into `output`
/// (appending, chunk-ordered). kInvalidVid entries are always dropped.
template <typename Functor, typename Problem>
FilterResult FilterVertex(par::ThreadPool& pool,
                          std::span<const vid_t> input,
                          std::vector<vid_t>* output, Problem& prob,
                          const FilterConfig& cfg = {}) {
  FilterResult result;
  result.input_size = input.size();
  const std::size_t n = input.size();
  if (n == 0) return result;
  std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<vid_t>> locals(num_chunks);
  const std::size_t hash_size = std::size_t{1} << cfg.history_bits;
  const std::size_t hash_mask = hash_size - 1;
  par::ParallelForChunks(
      pool, 0, n, grain, [&](std::size_t lo, std::size_t hi, unsigned) {
        auto& local = locals[lo / grain];
        local.reserve(hi - lo);
        std::vector<vid_t> history;
        if (cfg.history_hash) history.assign(hash_size, kInvalidVid);
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t v = input[i];
          if (v == kInvalidVid) continue;
          if (cfg.history_hash) {
            const std::size_t slot =
                static_cast<std::size_t>(v) & hash_mask;
            if (history[slot] == v) continue;  // likely duplicate
            history[slot] = v;
          }
          if (Functor::CondVertex(v, prob)) {
            Functor::ApplyVertex(v, prob);
            local.push_back(v);
          }
        }
      });
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  const std::size_t base = output->size();
  output->resize(base + total);
  std::vector<std::size_t> offsets(num_chunks + 1, 0);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    offsets[c + 1] = offsets[c] + locals[c].size();
  }
  par::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
    std::copy(locals[c].begin(), locals[c].end(),
              output->begin() + base + offsets[c]);
  });
  result.output_size = total;
  return result;
}

/// Edge-frontier filter (paper Section 5.4 uses this for CC hooking): the
/// functor sees (src, dst, edge). Endpoint arrays come from
/// Csr::edge_sources / any edge list the problem owns.
///
///   static bool CondEdge(vid_t src, vid_t dst, eid_t e, Problem& p);
///   static void ApplyEdge(vid_t src, vid_t dst, eid_t e, Problem& p);
template <typename Functor, typename Problem>
FilterResult FilterEdge(par::ThreadPool& pool,
                        std::span<const vid_t> edge_src,
                        std::span<const vid_t> edge_dst,
                        std::span<const eid_t> input,
                        std::vector<eid_t>* output, Problem& prob,
                        const FilterConfig& cfg = {}) {
  FilterResult result;
  result.input_size = input.size();
  const std::size_t n = input.size();
  if (n == 0) return result;
  std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<eid_t>> locals(num_chunks);
  par::ParallelForChunks(
      pool, 0, n, grain, [&](std::size_t lo, std::size_t hi, unsigned) {
        auto& local = locals[lo / grain];
        for (std::size_t i = lo; i < hi; ++i) {
          const eid_t e = input[i];
          if (e == kInvalidEid) continue;
          const vid_t s = edge_src[static_cast<std::size_t>(e)];
          const vid_t d = edge_dst[static_cast<std::size_t>(e)];
          if (Functor::CondEdge(s, d, e, prob)) {
            Functor::ApplyEdge(s, d, e, prob);
            local.push_back(e);
          }
        }
      });
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  const std::size_t base = output->size();
  output->resize(base + total);
  std::size_t at = base;
  for (auto& l : locals) {
    std::copy(l.begin(), l.end(), output->begin() + at);
    at += l.size();
  }
  result.output_size = total;
  return result;
}

}  // namespace gunrock::core
