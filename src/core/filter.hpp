// The filter operator (paper Section 4.1).
//
// Filter generates a new frontier by choosing a subset of the current
// frontier. Functor contract (fused at compile time, Figure 3):
//
//   struct MyFunctor {
//     static bool CondVertex(vid_t v, Problem& p);   // keep v?
//     static void ApplyVertex(vid_t v, Problem& p);  // runs on kept items
//   };
//
// Because advance in idempotent mode may emit duplicates, filter supports
// the paper's "series of inexpensive heuristics to reduce, but not
// eliminate, redundant entries": a per-chunk history hash that drops most
// repeats without global synchronization. Exact dedup, when a primitive
// needs it, belongs in the functor (e.g., an atomic claim on an epoch
// array), matching how Gunrock's BFS/SSSP mark their output queue ids.
//
// Stateful functors run exactly once per surviving item: the operator
// evaluates CondVertex in the same pass that writes the output buffer.
//
// All scratch (chunk-local output, gather offsets, the history tables —
// one per lane, reset at each chunk boundary) lives in the FilterConfig's
// Workspace, so steady-state filtering is allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/policy.hpp"
#include "core/workspace.hpp"
#include "graph/csr.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

struct FilterConfig {
  /// Enables the per-chunk history-hash dedup heuristic.
  bool history_hash = false;
  /// log2 of the per-chunk hash table size.
  unsigned history_bits = 12;
  std::size_t grain = 0;
  /// Enactor-owned scratch arena (see AdvanceConfig::workspace).
  par::Workspace* workspace = nullptr;
};

struct FilterResult {
  std::size_t input_size = 0;
  std::size_t output_size = 0;
};

namespace detail {

/// Per-lane history hash with epoch-stamped slots: bumping the epoch
/// invalidates the whole table in O(1), so the per-chunk "fresh table"
/// semantics cost no memset. A slot holds vertex `val` iff its tag equals
/// the current epoch.
struct HistoryTable {
  std::vector<vid_t> val;
  std::vector<std::uint64_t> tag;
  std::uint64_t epoch = 0;

  void BeginChunk(std::size_t size) {
    if (tag.size() < size) {
      val.resize(size);
      tag.assign(size, 0);  // one-time cost on growth only
    }
    ++epoch;
  }
  bool SeenInChunk(vid_t v, std::size_t slot) {
    if (tag[slot] == epoch && val[slot] == v) return true;
    tag[slot] = epoch;
    val[slot] = v;
    return false;
  }
};

}  // namespace detail

/// Vertex-frontier filter: writes surviving items of `input` into `output`
/// (appending, chunk-ordered). kInvalidVid entries are always dropped.
template <typename Functor, typename Problem>
FilterResult FilterVertex(par::ThreadPool& pool,
                          std::span<const vid_t> input,
                          std::vector<vid_t>* output, Problem& prob,
                          const FilterConfig& cfg = {}) {
  FilterResult result;
  result.input_size = input.size();
  const std::size_t n = input.size();
  if (n == 0) return result;
  par::Workspace private_arena;
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<vid_t>>>(par::ws::kFilterLocals);
  if (locals.size() < num_chunks) locals.resize(num_chunks);
  const std::size_t hash_size = std::size_t{1} << cfg.history_bits;
  const std::size_t hash_mask = hash_size - 1;
  // One history table per lane, invalidated (O(1), epoch bump) at each
  // chunk boundary — identical dedup behavior to a fresh per-chunk table,
  // without the allocation or the memset.
  auto& histories =
      wsp.Get<std::vector<detail::HistoryTable>>(par::ws::kFilterHistory);
  if (cfg.history_hash && histories.size() < pool.num_threads()) {
    histories.resize(pool.num_threads());
  }
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk,
          unsigned rank) {
        auto& local = locals[chunk];
        local.clear();
        local.reserve(hi - lo);
        detail::HistoryTable* history = nullptr;
        if (cfg.history_hash) {
          history = &histories[rank];
          history->BeginChunk(hash_size);
        }
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t v = input[i];
          if (v == kInvalidVid) continue;
          if (history &&
              history->SeenInChunk(
                  v, static_cast<std::size_t>(v) & hash_mask)) {
            continue;  // likely duplicate
          }
          if (Functor::CondVertex(v, prob)) {
            Functor::ApplyVertex(v, prob);
            local.push_back(v);
          }
        }
      });
  par::ConcatChunks(pool, locals, num_chunks, output, &wsp,
                    par::ws::kFilterOffsets);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    result.output_size += locals[c].size();
  }
  return result;
}

/// Edge-frontier filter (paper Section 5.4 uses this for CC hooking): the
/// functor sees (src, dst, edge). Endpoint arrays come from
/// Csr::edge_sources / any edge list the problem owns.
///
///   static bool CondEdge(vid_t src, vid_t dst, eid_t e, Problem& p);
///   static void ApplyEdge(vid_t src, vid_t dst, eid_t e, Problem& p);
template <typename Functor, typename Problem>
FilterResult FilterEdge(par::ThreadPool& pool,
                        std::span<const vid_t> edge_src,
                        std::span<const vid_t> edge_dst,
                        std::span<const eid_t> input,
                        std::vector<eid_t>* output, Problem& prob,
                        const FilterConfig& cfg = {}) {
  FilterResult result;
  result.input_size = input.size();
  const std::size_t n = input.size();
  if (n == 0) return result;
  par::Workspace private_arena;
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<eid_t>>>(par::ws::kFilterEdgeLocals);
  if (locals.size() < num_chunks) locals.resize(num_chunks);
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        auto& local = locals[chunk];
        local.clear();
        for (std::size_t i = lo; i < hi; ++i) {
          const eid_t e = input[i];
          if (e == kInvalidEid) continue;
          const vid_t s = edge_src[static_cast<std::size_t>(e)];
          const vid_t d = edge_dst[static_cast<std::size_t>(e)];
          if (Functor::CondEdge(s, d, e, prob)) {
            Functor::ApplyEdge(s, d, e, prob);
            local.push_back(e);
          }
        }
      });
  par::ConcatChunks(pool, locals, num_chunks, output, &wsp,
                    par::ws::kFilterOffsets);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    result.output_size += locals[c].size();
  }
  return result;
}

}  // namespace gunrock::core
