// The advance operator (paper Sections 4.1 and 4.4).
//
// Advance generates a new frontier by visiting the neighbors of the
// current frontier. The user supplies a functor type with two static
// members that are *fused into the traversal loop at compile time* — the
// C++ analog of the paper's kernel fusion (Figure 3):
//
//   struct MyFunctor {
//     static bool CondEdge(vid_t src, vid_t dst, eid_t edge, Problem& p);
//     static void ApplyEdge(vid_t src, vid_t dst, eid_t edge, Problem& p);
//   };
//
// For every traversed edge, advance evaluates CondEdge; when it returns
// true it runs ApplyEdge and emits the destination (or the edge id, for a
// V2E advance) into the output frontier. Any per-edge computation — label
// updates, atomic relaxations, sigma accumulation — lives in the functor,
// so no intermediate results ever hit memory between "traversal" and
// "computation" steps.
//
// Three workload mappings implement the paper's load-balancing strategies;
// see policy.hpp. All of them report edges visited and a modeled SIMT lane
// efficiency. All scratch (degree scans, TWC bins, chunk-local buffers,
// the scatter-then-compact array) comes out of the AdvanceConfig's
// Workspace, so an enactor loop that reuses its arena performs no heap
// allocation in steady state.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "core/policy.hpp"
#include "core/simt_model.hpp"
#include "core/workspace.hpp"
#include "graph/csr.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "parallel/sorted_search.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

struct AdvanceResult {
  eid_t edges_visited = 0;
  double lane_efficiency = 1.0;
  std::size_t output_size = 0;
};

namespace detail {

template <typename OutId>
constexpr OutId Emitted(vid_t dst, eid_t edge) {
  if constexpr (std::is_same_v<OutId, vid_t>) {
    (void)edge;
    return dst;
  } else {
    (void)dst;
    return edge;
  }
}

template <typename OutId>
constexpr OutId InvalidOf() {
  if constexpr (std::is_same_v<OutId, vid_t>) {
    return kInvalidVid;
  } else {
    return kInvalidEid;
  }
}

/// Serially expands items [lo, hi), appending passing destinations to
/// `local` (when non-null). Returns edges visited.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandRange(const graph::Csr& g, std::span<const vid_t> items,
                  std::size_t lo, std::size_t hi, Problem& prob,
                  std::vector<OutId>* local) {
  eid_t edges = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const vid_t u = items[i];
    const eid_t rb = g.row_begin(u), re = g.row_end(u);
    edges += re - rb;
    for (eid_t e = rb; e < re; ++e) {
      const vid_t v = g.edge_dest(e);
      if (Functor::CondEdge(u, v, e, prob)) {
        Functor::ApplyEdge(u, v, e, prob);
        if (local) local->push_back(Emitted<OutId>(v, e));
      }
    }
  }
  return edges;
}

/// Chunked expansion over an item list: the thread-mapped path and the
/// small/medium TWC bins all reduce to this with different grains.
/// Chunk-local buffers keep their capacity across calls via the arena.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandChunked(par::ThreadPool& pool, const graph::Csr& g,
                    std::span<const vid_t> items, std::size_t grain,
                    Problem& prob, std::vector<OutId>* out,
                    par::Workspace& wsp) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  if (grain == 0) grain = par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<OutId>>>(par::ws::kAdvanceLocals);
  if (out && locals.size() < num_chunks) locals.resize(num_chunks);
  auto& counts = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceCounts);
  counts.assign(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        std::vector<OutId>* local = nullptr;
        if (out) {
          local = &locals[chunk];
          local->clear();  // keep capacity, drop last iteration's data
        }
        counts[chunk] = ExpandRange<Functor, Problem, OutId>(
            g, items, lo, hi, prob, local);
      });
  par::ConcatChunks(pool, locals, out ? num_chunks : 0, out, &wsp,
                    par::ws::kAdvanceAppendOffsets);
  eid_t edges = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) edges += counts[c];
  return edges;
}

/// Equal-work expansion: scan degrees, chunk total edge work evenly,
/// locate each chunk's first owner by sorted search (paper Figure 5).
/// Produces output by writing a dense slot per edge then compacting —
/// exactly the scatter-then-compact scheme of the paper's LB advance.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandEqualWork(par::ThreadPool& pool, const graph::Csr& g,
                      std::span<const vid_t> items, Problem& prob,
                      std::vector<OutId>* out, par::Workspace& wsp) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  auto& offsets = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceOffsets);
  offsets.resize(n + 1);
  const eid_t total = par::TransformExclusiveScan<eid_t>(
      pool, n, std::span<eid_t>(offsets.data(), n), eid_t{0},
      [&](std::size_t i) { return g.degree(items[i]); }, &wsp);
  offsets[n] = total;
  if (total == 0) return 0;

  auto& raw = wsp.Get<std::vector<OutId>>(par::ws::kAdvanceRaw);
  raw.resize(out ? static_cast<std::size_t>(total) : 0);
  const std::size_t grain = std::max<std::size_t>(
      512, par::DefaultGrain(static_cast<std::size_t>(total),
                             pool.num_threads()));
  par::ParallelForChunks(
      pool, 0, static_cast<std::size_t>(total), grain,
      [&](std::size_t lo, std::size_t hi, std::size_t, unsigned) {
        std::size_t s = par::FindOwner(
            std::span<const eid_t>(offsets.data(), n + 1),
            static_cast<eid_t>(lo));
        eid_t seg_end = offsets[s + 1];
        for (std::size_t p = lo; p < hi; ++p) {
          while (static_cast<eid_t>(p) >= seg_end) {
            ++s;
            seg_end = offsets[s + 1];
          }
          const vid_t u = items[s];
          const eid_t e = g.row_begin(u) + (static_cast<eid_t>(p) -
                                            offsets[s]);
          const vid_t v = g.edge_dest(e);
          const bool pass = Functor::CondEdge(u, v, e, prob);
          if (pass) Functor::ApplyEdge(u, v, e, prob);
          if (out) raw[p] = pass ? Emitted<OutId>(v, e)
                                 : InvalidOf<OutId>();
        }
      });
  if (out) {
    // Exact-size compaction directly into the output frontier: counts
    // first, then one resize to the final length — no worst-case tail is
    // value-initialized only to be shrunk away.
    par::AppendIf(
        pool,
        std::span<const OutId>(raw.data(), static_cast<std::size_t>(total)),
        *out, [](OutId x) { return x != InvalidOf<OutId>(); }, &wsp);
  }
  return total;
}

}  // namespace detail

/// Push advance from a vertex frontier. OutId selects V2V (vid_t, default)
/// or V2E (eid_t) output; pass output = nullptr for a visit-only advance
/// (e.g., PageRank's distribute step before its filter).
/// Emitted output may contain duplicates; a subsequent filter removes them
/// (idempotent mode) or the functor's atomics prevent them (atomic mode) —
/// exactly the paper's two advance flavors.
template <typename Functor, typename Problem, typename OutId = vid_t>
AdvanceResult AdvancePush(par::ThreadPool& pool, const graph::Csr& g,
                          std::span<const vid_t> input,
                          std::vector<OutId>* output, Problem& prob,
                          const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = input.size();
  if (n == 0) return result;
  par::Workspace private_arena;  // fallback when the caller passes none
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  const std::size_t out_base = output ? output->size() : 0;
  const auto degree_of = [&](std::size_t i) { return g.degree(input[i]); };

  switch (ResolveLoadBalance(cfg)) {
    case LoadBalance::kThreadMapped: {
      result.edges_visited = detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, input, cfg.grain, prob, output, wsp);
      if (cfg.model_efficiency) {
        result.lane_efficiency =
            LaneEfficiencyThreadMapped(pool, n, degree_of, &wsp);
      }
      break;
    }
    case LoadBalance::kTwc: {
      // Bin items by neighbor-list size (paper Figure 4), then process
      // each bin with a matched shape: small lists chunked many-per-lane,
      // medium lists few-per-lane, large lists with equal-work splitting
      // (the CTA-cooperative role). The binning is one fused three-way
      // partition — a single classify-count pass plus a single scatter
      // pass — instead of three independent compactions.
      auto& small = wsp.Get<std::vector<vid_t>>(par::ws::kTwcSmall);
      auto& medium = wsp.Get<std::vector<vid_t>>(par::ws::kTwcMedium);
      auto& large = wsp.Get<std::vector<vid_t>>(par::ws::kTwcLarge);
      small.resize(n);
      medium.resize(n);
      large.resize(n);
      const std::array<std::size_t, 3> sizes = par::GenerateThreeWay<vid_t>(
          pool, n,
          {std::span<vid_t>(small), std::span<vid_t>(medium),
           std::span<vid_t>(large)},
          [&](std::size_t i) {
            const eid_t d = degree_of(i);
            if (d <= kTwcWarpThreshold) return 0;
            return d <= kTwcCtaThreshold ? 1 : 2;
          },
          [&](std::size_t i) { return input[i]; }, &wsp);
      result.edges_visited += detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, std::span<const vid_t>(small.data(), sizes[0]),
          std::max<std::size_t>(cfg.grain, 128), prob, output, wsp);
      result.edges_visited += detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, std::span<const vid_t>(medium.data(), sizes[1]), 16,
          prob, output, wsp);
      result.edges_visited += detail::ExpandEqualWork<Functor, Problem,
                                                      OutId>(
          pool, g, std::span<const vid_t>(large.data(), sizes[2]), prob,
          output, wsp);
      if (cfg.model_efficiency) {
        result.lane_efficiency =
            LaneEfficiencyTwc(pool, n, degree_of, &wsp);
      }
      break;
    }
    case LoadBalance::kEqualWork:
    case LoadBalance::kAuto: {  // kAuto already resolved; silences -Wswitch
      result.edges_visited = detail::ExpandEqualWork<Functor, Problem,
                                                     OutId>(
          pool, g, input, prob, output, wsp);
      if (cfg.model_efficiency) {
        result.lane_efficiency =
            LaneEfficiencyEqualWork(result.edges_visited);
      }
      break;
    }
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

/// Pull ("bottom-up") advance, paper Section 4.5: instead of expanding the
/// current frontier, iterate over *candidate* (unvisited) vertices and
/// probe their incoming neighbors against a bitmap of the current
/// frontier; on the first hit, run the functor and emit the candidate.
/// The early break after the first valid parent is the source of pull's
/// advantage on large frontiers.
///
/// `rg` must be the reverse graph (== g for undirected graphs). The edge
/// id passed to the functor is a reverse-graph edge id.
///
/// FrontierSet is any type exposing `bool Test(std::size_t)` —
/// par::Bitmap, or par::EpochBitmap when the caller rebuilds the set each
/// direction switch and wants the O(1) epoch reset instead of a full
/// Bitmap::Reset.
template <typename Functor, typename Problem, typename FrontierSet>
AdvanceResult AdvancePull(par::ThreadPool& pool, const graph::Csr& rg,
                          const FrontierSet& frontier_bitmap,
                          std::span<const vid_t> candidates,
                          std::vector<vid_t>* output, Problem& prob,
                          const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = candidates.size();
  if (n == 0) return result;
  par::Workspace private_arena;
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  const std::size_t out_base = output ? output->size() : 0;
  const std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<vid_t>>>(par::ws::kAdvanceLocals);
  if (output && locals.size() < num_chunks) locals.resize(num_chunks);
  auto& counts = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceCounts);
  counts.assign(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        std::vector<vid_t>* local = nullptr;
        if (output) {
          local = &locals[chunk];
          local->clear();
        }
        eid_t edges = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t v = candidates[i];
          for (eid_t e = rg.row_begin(v); e < rg.row_end(v); ++e) {
            const vid_t u = rg.edge_dest(e);
            ++edges;
            if (frontier_bitmap.Test(static_cast<std::size_t>(u)) &&
                Functor::CondEdge(u, v, e, prob)) {
              Functor::ApplyEdge(u, v, e, prob);
              if (local) local->push_back(v);
              break;
            }
          }
        }
        counts[chunk] = edges;
      });
  par::ConcatChunks(pool, locals, output ? num_chunks : 0, output, &wsp,
                    par::ws::kAdvanceAppendOffsets);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    result.edges_visited += counts[c];
  }
  // Pull scans candidate lists item-per-lane; model accordingly.
  if (cfg.model_efficiency) {
    result.lane_efficiency = LaneEfficiencyThreadMapped(
        pool, n, [&](std::size_t i) { return rg.degree(candidates[i]); },
        &wsp);
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

}  // namespace gunrock::core
