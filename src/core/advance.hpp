// The advance operator (paper Sections 4.1 and 4.4).
//
// Advance generates a new frontier by visiting the neighbors of the
// current frontier. The user supplies a functor type with two static
// members that are *fused into the traversal loop at compile time* — the
// C++ analog of the paper's kernel fusion (Figure 3):
//
//   struct MyFunctor {
//     static bool CondEdge(vid_t src, vid_t dst, eid_t edge, Problem& p);
//     static void ApplyEdge(vid_t src, vid_t dst, eid_t edge, Problem& p);
//   };
//
// For every traversed edge, advance evaluates CondEdge; when it returns
// true it runs ApplyEdge and emits the destination (or the edge id, for a
// V2E advance) into the output frontier. Any per-edge computation — label
// updates, atomic relaxations, sigma accumulation — lives in the functor,
// so no intermediate results ever hit memory between "traversal" and
// "computation" steps.
//
// Three workload mappings implement the paper's load-balancing strategies;
// see policy.hpp. All of them report edges visited and a modeled SIMT lane
// efficiency.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "core/policy.hpp"
#include "core/simt_model.hpp"
#include "graph/csr.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "parallel/sorted_search.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

struct AdvanceResult {
  eid_t edges_visited = 0;
  double lane_efficiency = 1.0;
  std::size_t output_size = 0;
};

namespace detail {

template <typename OutId>
constexpr OutId Emitted(vid_t dst, eid_t edge) {
  if constexpr (std::is_same_v<OutId, vid_t>) {
    (void)edge;
    return dst;
  } else {
    (void)dst;
    return edge;
  }
}

template <typename OutId>
constexpr OutId InvalidOf() {
  if constexpr (std::is_same_v<OutId, vid_t>) {
    return kInvalidVid;
  } else {
    return kInvalidEid;
  }
}

/// Serially expands items [lo, hi), appending passing destinations to
/// `local` (when non-null). Returns edges visited.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandRange(const graph::Csr& g, std::span<const vid_t> items,
                  std::size_t lo, std::size_t hi, Problem& prob,
                  std::vector<OutId>* local) {
  eid_t edges = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const vid_t u = items[i];
    const eid_t rb = g.row_begin(u), re = g.row_end(u);
    edges += re - rb;
    for (eid_t e = rb; e < re; ++e) {
      const vid_t v = g.edge_dest(e);
      if (Functor::CondEdge(u, v, e, prob)) {
        Functor::ApplyEdge(u, v, e, prob);
        if (local) local->push_back(Emitted<OutId>(v, e));
      }
    }
  }
  return edges;
}

/// Appends per-chunk buffers to `out` in chunk order (deterministic for a
/// given grain), with a parallel gather.
template <typename OutId>
void AppendChunks(par::ThreadPool& pool,
                  std::vector<std::vector<OutId>>& locals,
                  std::vector<OutId>* out) {
  if (!out || locals.empty()) return;
  std::vector<std::size_t> offsets(locals.size() + 1, 0);
  for (std::size_t c = 0; c < locals.size(); ++c) {
    offsets[c + 1] = offsets[c] + locals[c].size();
  }
  const std::size_t base = out->size();
  out->resize(base + offsets.back());
  par::ParallelFor(pool, 0, locals.size(), [&](std::size_t c) {
    std::copy(locals[c].begin(), locals[c].end(),
              out->begin() + base + offsets[c]);
  });
}

/// Chunked expansion over an item list: the thread-mapped path and the
/// small/medium TWC bins all reduce to this with different grains.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandChunked(par::ThreadPool& pool, const graph::Csr& g,
                    std::span<const vid_t> items, std::size_t grain,
                    Problem& prob, std::vector<OutId>* out) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  if (grain == 0) grain = par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<OutId>> locals(out ? num_chunks : 0);
  std::vector<eid_t> counts(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain, [&](std::size_t lo, std::size_t hi, unsigned) {
        const std::size_t chunk = lo / grain;
        // The serial fallback of ParallelForChunks may hand us a merged
        // range spanning several chunks; chunk 0 then absorbs everything.
        counts[chunk] += ExpandRange<Functor, Problem, OutId>(
            g, items, lo, hi, prob, out ? &locals[chunk] : nullptr);
      });
  AppendChunks(pool, locals, out);
  eid_t edges = 0;
  for (const eid_t c : counts) edges += c;
  return edges;
}

/// Equal-work expansion: scan degrees, chunk total edge work evenly,
/// locate each chunk's first owner by sorted search (paper Figure 5).
/// Produces output by writing a dense slot per edge then compacting —
/// exactly the scatter-then-compact scheme of the paper's LB advance.
template <typename Functor, typename Problem, typename OutId>
eid_t ExpandEqualWork(par::ThreadPool& pool, const graph::Csr& g,
                      std::span<const vid_t> items, Problem& prob,
                      std::vector<OutId>* out) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  std::vector<eid_t> offsets(n + 1);
  const eid_t total = par::TransformExclusiveScan<eid_t>(
      pool, n, offsets, eid_t{0},
      [&](std::size_t i) { return g.degree(items[i]); });
  offsets[n] = total;
  if (total == 0) return 0;

  std::vector<OutId> raw(out ? static_cast<std::size_t>(total) : 0);
  const std::size_t grain = std::max<std::size_t>(
      512, par::DefaultGrain(static_cast<std::size_t>(total),
                             pool.num_threads()));
  par::ParallelForChunks(
      pool, 0, static_cast<std::size_t>(total), grain,
      [&](std::size_t lo, std::size_t hi, unsigned) {
        std::size_t s = par::FindOwner(std::span<const eid_t>(offsets),
                                       static_cast<eid_t>(lo));
        eid_t seg_end = offsets[s + 1];
        for (std::size_t p = lo; p < hi; ++p) {
          while (static_cast<eid_t>(p) >= seg_end) {
            ++s;
            seg_end = offsets[s + 1];
          }
          const vid_t u = items[s];
          const eid_t e = g.row_begin(u) + (static_cast<eid_t>(p) -
                                            offsets[s]);
          const vid_t v = g.edge_dest(e);
          const bool pass = Functor::CondEdge(u, v, e, prob);
          if (pass) Functor::ApplyEdge(u, v, e, prob);
          if (out) raw[p] = pass ? Emitted<OutId>(v, e)
                                 : InvalidOf<OutId>();
        }
      });
  if (out) {
    const std::size_t base = out->size();
    out->resize(base + raw.size());
    const std::size_t kept = par::CopyIf(
        pool, std::span<const OutId>(raw),
        std::span<OutId>(out->data() + base, raw.size()),
        [](OutId x) { return x != InvalidOf<OutId>(); });
    out->resize(base + kept);
  }
  return total;
}

}  // namespace detail

/// Push advance from a vertex frontier. OutId selects V2V (vid_t, default)
/// or V2E (eid_t) output; pass output = nullptr for a visit-only advance
/// (e.g., PageRank's distribute step before its filter).
/// Emitted output may contain duplicates; a subsequent filter removes them
/// (idempotent mode) or the functor's atomics prevent them (atomic mode) —
/// exactly the paper's two advance flavors.
template <typename Functor, typename Problem, typename OutId = vid_t>
AdvanceResult AdvancePush(par::ThreadPool& pool, const graph::Csr& g,
                          std::span<const vid_t> input,
                          std::vector<OutId>* output, Problem& prob,
                          const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = input.size();
  if (n == 0) return result;
  const std::size_t out_base = output ? output->size() : 0;
  const auto degree_of = [&](std::size_t i) { return g.degree(input[i]); };

  switch (ResolveLoadBalance(cfg)) {
    case LoadBalance::kThreadMapped: {
      result.edges_visited = detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, input, cfg.grain, prob, output);
      if (cfg.model_efficiency) {
        result.lane_efficiency =
            LaneEfficiencyThreadMapped(pool, n, degree_of);
      }
      break;
    }
    case LoadBalance::kTwc: {
      // Bin items by neighbor-list size (paper Figure 4), then process
      // each bin with a matched shape: small lists chunked many-per-lane,
      // medium lists few-per-lane, large lists with equal-work splitting
      // (the CTA-cooperative role).
      std::vector<vid_t> small(n), medium(n), large(n);
      const std::size_t ns = par::GenerateIf(
          pool, n, std::span<vid_t>(small),
          [&](std::size_t i) { return degree_of(i) <= kTwcWarpThreshold; },
          [&](std::size_t i) { return input[i]; });
      const std::size_t nm = par::GenerateIf(
          pool, n, std::span<vid_t>(medium),
          [&](std::size_t i) {
            return degree_of(i) > kTwcWarpThreshold &&
                   degree_of(i) <= kTwcCtaThreshold;
          },
          [&](std::size_t i) { return input[i]; });
      const std::size_t nl = par::GenerateIf(
          pool, n, std::span<vid_t>(large),
          [&](std::size_t i) { return degree_of(i) > kTwcCtaThreshold; },
          [&](std::size_t i) { return input[i]; });
      small.resize(ns);
      medium.resize(nm);
      large.resize(nl);
      result.edges_visited += detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, small, std::max<std::size_t>(cfg.grain, 128), prob,
          output);
      result.edges_visited += detail::ExpandChunked<Functor, Problem, OutId>(
          pool, g, medium, 16, prob, output);
      result.edges_visited += detail::ExpandEqualWork<Functor, Problem,
                                                      OutId>(
          pool, g, large, prob, output);
      if (cfg.model_efficiency) {
        result.lane_efficiency = LaneEfficiencyTwc(pool, n, degree_of);
      }
      break;
    }
    case LoadBalance::kEqualWork:
    case LoadBalance::kAuto: {  // kAuto already resolved; silences -Wswitch
      result.edges_visited = detail::ExpandEqualWork<Functor, Problem,
                                                     OutId>(
          pool, g, input, prob, output);
      if (cfg.model_efficiency) {
        result.lane_efficiency =
            LaneEfficiencyEqualWork(result.edges_visited);
      }
      break;
    }
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

/// Pull ("bottom-up") advance, paper Section 4.5: instead of expanding the
/// current frontier, iterate over *candidate* (unvisited) vertices and
/// probe their incoming neighbors against a bitmap of the current
/// frontier; on the first hit, run the functor and emit the candidate.
/// The early break after the first valid parent is the source of pull's
/// advantage on large frontiers.
///
/// `rg` must be the reverse graph (== g for undirected graphs). The edge
/// id passed to the functor is a reverse-graph edge id.
template <typename Functor, typename Problem>
AdvanceResult AdvancePull(par::ThreadPool& pool, const graph::Csr& rg,
                          const par::Bitmap& frontier_bitmap,
                          std::span<const vid_t> candidates,
                          std::vector<vid_t>* output, Problem& prob,
                          const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = candidates.size();
  if (n == 0) return result;
  const std::size_t out_base = output ? output->size() : 0;
  const std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<vid_t>> locals(output ? num_chunks : 0);
  std::vector<eid_t> counts(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain, [&](std::size_t lo, std::size_t hi, unsigned) {
        const std::size_t chunk = lo / grain;
        eid_t edges = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t v = candidates[i];
          for (eid_t e = rg.row_begin(v); e < rg.row_end(v); ++e) {
            const vid_t u = rg.edge_dest(e);
            ++edges;
            if (frontier_bitmap.Test(static_cast<std::size_t>(u)) &&
                Functor::CondEdge(u, v, e, prob)) {
              Functor::ApplyEdge(u, v, e, prob);
              if (output) locals[chunk].push_back(v);
              break;
            }
          }
        }
        counts[chunk] += edges;
      });
  detail::AppendChunks(pool, locals, output);
  for (const eid_t c : counts) result.edges_visited += c;
  // Pull scans candidate lists item-per-lane; model accordingly.
  if (cfg.model_efficiency) {
    result.lane_efficiency = LaneEfficiencyThreadMapped(
        pool, n, [&](std::size_t i) { return rg.degree(candidates[i]); });
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

}  // namespace gunrock::core
