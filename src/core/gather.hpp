// Neighborhood gather-reduce operator.
//
// The paper's future-work list (Section 7) calls for exactly this: "We
// believe a new gather-reduce operator on neighborhoods associated with
// vertices in the current frontier both fits nicely into Gunrock's
// abstraction and will significantly improve performance" — global and
// neighborhood reductions otherwise require atomics. NeighborReduce
// computes, for every vertex, a reduction over its (in-)edges with
// equal-work partitioning and no atomics; PageRank's pull mode is built
// on it.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "parallel/segmented.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/types.hpp"

namespace gunrock::core {

/// out[v] = identity op value(e) over e in rg.row(v), for every vertex.
/// Pass the reverse graph to gather over in-edges (value() receives
/// reverse-graph edge ids; rg.edge_dest(e) is the in-neighbor).
/// Work is partitioned evenly over edges (sorted-search owner lookup), so
/// power-law in-degrees do not imbalance the pass.
template <typename T, typename Op, typename F>
void NeighborReduce(par::ThreadPool& pool, const graph::Csr& rg,
                    std::span<T> out, T identity, Op op, F&& value,
                    par::Workspace* wsp = nullptr) {
  par::SegmentedReduceBalanced<T, eid_t>(pool, rg.row_offsets(), out,
                                         identity, op,
                                         std::forward<F>(value), wsp);
}

}  // namespace gunrock::core
