// The compute operator (paper Section 4.1): "a programmer-specified
// compute step defines an operation on all elements (vertices or edges)
// in the current frontier; Gunrock then performs that operation in
// parallel across all elements."
//
// In hot paths compute is fused into advance/filter functors; the
// standalone form below covers regular per-element passes (initialization,
// PageRank value swaps, convergence scans).
#pragma once

#include <cstddef>
#include <span>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

/// fn(v) for every element of the frontier.
template <typename Id, typename F>
void ForEach(par::ThreadPool& pool, std::span<const Id> frontier, F&& fn) {
  par::ParallelFor(pool, 0, frontier.size(),
                   [&](std::size_t i) { fn(frontier[i]); });
}

/// fn(i) for every index in [0, n) — the "frontier contains all vertices"
/// special case (PageRank, initialization).
template <typename F>
void ForAll(par::ThreadPool& pool, std::size_t n, F&& fn) {
  par::ParallelFor(pool, 0, n, [&](std::size_t i) { fn(i); });
}

}  // namespace gunrock::core
