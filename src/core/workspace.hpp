// core::Workspace — the enactor-owned scratch arena threaded through the
// advance/filter operators (see parallel/workspace.hpp for the mechanism
// and the slot registry). The arena lives in gunrock::par so the operator
// substrate's scan/compact/segmented helpers can share it; primitives and
// user code should reach it through this alias and start private slot ids
// at par::ws::kUserFirst.
#pragma once

#include "parallel/workspace.hpp"

namespace gunrock::core {

using Workspace = par::Workspace;

}  // namespace gunrock::core
