// Two-level ("near/far") priority queue (paper Section 4.5).
//
// "Gunrock generalizes the approach of Davidson et al. by allowing
// user-defined priority functions to organize an output frontier into
// 'near' and 'far' slices... Gunrock then considers only the near slice in
// the next processing steps, adding any new elements that do not pass the
// near criterion into the far slice, until the near slice is exhausted."
//
// The split is a single high-performance pass (two stable compactions over
// the same predicate evaluations), directly manipulating the frontier —
// the operation the paper notes GAS abstractions cannot express.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/compact.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/types.hpp"

namespace gunrock::core {

/// Splits `items` by `is_near`: near items overwrite `near_out`, far items
/// are appended to `far_pile`. The predicate must be pure (it is evaluated
/// twice). Both outputs are sized to their exact final length before the
/// scatter, and the compaction scratch lives in `wsp` when provided, so a
/// steady-state near/far loop allocates nothing.
template <typename Id, typename Pred>
void SplitNearFar(par::ThreadPool& pool, std::span<const Id> items,
                  std::vector<Id>& near_out, std::vector<Id>& far_pile,
                  Pred&& is_near, par::Workspace* wsp = nullptr) {
  near_out.clear();
  par::AppendIf(pool, items, near_out, [&](Id v) { return is_near(v); },
                wsp);
  par::AppendIf(pool, items, far_pile, [&](Id v) { return !is_near(v); },
                wsp);
}

}  // namespace gunrock::core
