// Multi-source (lane-mask) advance and filter operators.
//
// The scalar operators in advance.hpp traverse the frontier of *one*
// query; these variants traverse the union frontier of up to 64 queries
// at once, propagating a 64-bit lane mask per vertex instead of a scalar
// visitation: `next[v] |= frontier[u] & ~visited[v]`. Every CSR row scan
// is thereby amortized across all concurrent lanes — the linear-algebra
// view (one sweep over an N-column bit-packed frontier matrix) that turns
// N single-source traversals into one.
//
// Functor contract (fused into the traversal loop like the scalar
// operators'):
//
//   struct MyMsFunctor {
//     // Subset of `lanes` (the source vertex's frontier mask) that
//     // should propagate across edge (u, v); 0 = none. Typically
//     // `lanes & ~visited(v) & active`.
//     static std::uint64_t CondEdge(vid_t u, vid_t v, eid_t e,
//                                   std::uint64_t lanes, Problem& p);
//   };
//
// Push comes in the same two flavors as scalar BFS: the *fused-claim*
// variant (kEmitOnce = true) dedups the output frontier exactly via
// LaneMaskFrontier::OrBits' first-touch signal, while the *filtered*
// variant (kEmitOnce = false) emits every touched vertex and leaves the
// dedup to FilterMsUnique — the multi-source analog of the idempotent
// advance + visited-claim filter pipeline.
//
// All scratch comes out of the AdvanceConfig's workspace (same slots as
// the scalar operators — the expansion helpers are phase-disjoint).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/advance.hpp"
#include "core/filter.hpp"
#include "core/policy.hpp"
#include "graph/csr.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/lane_mask.hpp"
#include "parallel/scan.hpp"
#include "parallel/sorted_search.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::core {

namespace detail {

/// Serially expands frontier items [lo, hi), ORing propagated lane masks
/// into `next` and appending output vertices to `local` (first-touch only
/// when kEmitOnce). Returns edges visited.
template <typename Functor, typename Problem, bool kEmitOnce>
eid_t ExpandRangeMs(const graph::Csr& g, std::span<const vid_t> items,
                    const par::LaneMaskFrontier& cur,
                    par::LaneMaskFrontier& next, std::size_t lo,
                    std::size_t hi, Problem& prob,
                    std::vector<vid_t>* local) {
  eid_t edges = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const vid_t u = items[i];
    const std::uint64_t lanes = cur.Load(static_cast<std::size_t>(u));
    const eid_t rb = g.row_begin(u), re = g.row_end(u);
    edges += re - rb;
    if (lanes == 0) continue;  // all of u's lanes were dropped mid-wave
    for (eid_t e = rb; e < re; ++e) {
      const vid_t v = g.edge_dest(e);
      const std::uint64_t prop = Functor::CondEdge(u, v, e, lanes, prob);
      if (prop == 0) continue;
      const std::uint64_t prev =
          next.OrBits(static_cast<std::size_t>(v), prop);
      if (local && (!kEmitOnce || prev == 0)) local->push_back(v);
    }
  }
  return edges;
}

/// Chunked multi-source expansion (thread-mapped path and the small /
/// medium TWC bins).
template <typename Functor, typename Problem, bool kEmitOnce>
eid_t ExpandChunkedMs(par::ThreadPool& pool, const graph::Csr& g,
                      std::span<const vid_t> items,
                      const par::LaneMaskFrontier& cur,
                      par::LaneMaskFrontier& next, std::size_t grain,
                      Problem& prob, std::vector<vid_t>* out,
                      par::Workspace& wsp) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  if (grain == 0) grain = par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<vid_t>>>(par::ws::kAdvanceLocals);
  if (out && locals.size() < num_chunks) locals.resize(num_chunks);
  auto& counts = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceCounts);
  counts.assign(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        std::vector<vid_t>* local = nullptr;
        if (out) {
          local = &locals[chunk];
          local->clear();
        }
        counts[chunk] = ExpandRangeMs<Functor, Problem, kEmitOnce>(
            g, items, cur, next, lo, hi, prob, local);
      });
  par::ConcatChunks(pool, locals, out ? num_chunks : 0, out, &wsp,
                    par::ws::kAdvanceAppendOffsets);
  eid_t edges = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) edges += counts[c];
  return edges;
}

/// Equal-work multi-source expansion: scan degrees, split total edge work
/// evenly, scatter-then-compact the output (paper Figure 5 applied to the
/// union frontier).
template <typename Functor, typename Problem, bool kEmitOnce>
eid_t ExpandEqualWorkMs(par::ThreadPool& pool, const graph::Csr& g,
                        std::span<const vid_t> items,
                        const par::LaneMaskFrontier& cur,
                        par::LaneMaskFrontier& next, Problem& prob,
                        std::vector<vid_t>* out, par::Workspace& wsp) {
  const std::size_t n = items.size();
  if (n == 0) return 0;
  auto& offsets = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceOffsets);
  offsets.resize(n + 1);
  const eid_t total = par::TransformExclusiveScan<eid_t>(
      pool, n, std::span<eid_t>(offsets.data(), n), eid_t{0},
      [&](std::size_t i) { return g.degree(items[i]); }, &wsp);
  offsets[n] = total;
  if (total == 0) return 0;

  auto& raw = wsp.Get<std::vector<vid_t>>(par::ws::kAdvanceRaw);
  raw.resize(out ? static_cast<std::size_t>(total) : 0);
  const std::size_t grain = std::max<std::size_t>(
      512, par::DefaultGrain(static_cast<std::size_t>(total),
                             pool.num_threads()));
  par::ParallelForChunks(
      pool, 0, static_cast<std::size_t>(total), grain,
      [&](std::size_t lo, std::size_t hi, std::size_t, unsigned) {
        std::size_t s = par::FindOwner(
            std::span<const eid_t>(offsets.data(), n + 1),
            static_cast<eid_t>(lo));
        eid_t seg_end = offsets[s + 1];
        vid_t u = items[s];
        std::uint64_t lanes = cur.Load(static_cast<std::size_t>(u));
        for (std::size_t p = lo; p < hi; ++p) {
          while (static_cast<eid_t>(p) >= seg_end) {
            ++s;
            seg_end = offsets[s + 1];
            u = items[s];
            lanes = cur.Load(static_cast<std::size_t>(u));
          }
          const eid_t e = g.row_begin(u) + (static_cast<eid_t>(p) -
                                            offsets[s]);
          const vid_t v = g.edge_dest(e);
          const std::uint64_t prop =
              lanes ? Functor::CondEdge(u, v, e, lanes, prob) : 0;
          bool emit = false;
          if (prop != 0) {
            const std::uint64_t prev =
                next.OrBits(static_cast<std::size_t>(v), prop);
            emit = !kEmitOnce || prev == 0;
          }
          if (out) raw[p] = emit ? v : kInvalidVid;
        }
      });
  if (out) {
    par::AppendIf(
        pool,
        std::span<const vid_t>(raw.data(), static_cast<std::size_t>(total)),
        *out, [](vid_t x) { return x != kInvalidVid; }, &wsp);
  }
  return total;
}

}  // namespace detail

/// Multi-source push advance over the union frontier `input` (each item's
/// lane mask read from `cur`). Propagated masks are ORed into `next`;
/// touched vertices are appended to `output` — exactly once per vertex
/// when kEmitOnce (fused-claim dedup via OrBits' first-touch signal), or
/// once per discovering edge otherwise (pair with FilterMsUnique).
template <typename Functor, typename Problem, bool kEmitOnce = true>
AdvanceResult AdvancePushMs(par::ThreadPool& pool, const graph::Csr& g,
                            std::span<const vid_t> input,
                            const par::LaneMaskFrontier& cur,
                            par::LaneMaskFrontier& next,
                            std::vector<vid_t>* output, Problem& prob,
                            const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = input.size();
  if (n == 0) return result;
  par::Workspace private_arena;
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  const std::size_t out_base = output ? output->size() : 0;

  switch (ResolveLoadBalance(cfg)) {
    case LoadBalance::kThreadMapped: {
      result.edges_visited =
          detail::ExpandChunkedMs<Functor, Problem, kEmitOnce>(
              pool, g, input, cur, next, cfg.grain, prob, output, wsp);
      break;
    }
    case LoadBalance::kTwc: {
      auto& small = wsp.Get<std::vector<vid_t>>(par::ws::kTwcSmall);
      auto& medium = wsp.Get<std::vector<vid_t>>(par::ws::kTwcMedium);
      auto& large = wsp.Get<std::vector<vid_t>>(par::ws::kTwcLarge);
      small.resize(n);
      medium.resize(n);
      large.resize(n);
      const std::array<std::size_t, 3> sizes = par::GenerateThreeWay<vid_t>(
          pool, n,
          {std::span<vid_t>(small), std::span<vid_t>(medium),
           std::span<vid_t>(large)},
          [&](std::size_t i) {
            const eid_t d = g.degree(input[i]);
            if (d <= kTwcWarpThreshold) return 0;
            return d <= kTwcCtaThreshold ? 1 : 2;
          },
          [&](std::size_t i) { return input[i]; }, &wsp);
      result.edges_visited +=
          detail::ExpandChunkedMs<Functor, Problem, kEmitOnce>(
              pool, g, std::span<const vid_t>(small.data(), sizes[0]), cur,
              next, std::max<std::size_t>(cfg.grain, 128), prob, output,
              wsp);
      result.edges_visited +=
          detail::ExpandChunkedMs<Functor, Problem, kEmitOnce>(
              pool, g, std::span<const vid_t>(medium.data(), sizes[1]),
              cur, next, 16, prob, output, wsp);
      result.edges_visited +=
          detail::ExpandEqualWorkMs<Functor, Problem, kEmitOnce>(
              pool, g, std::span<const vid_t>(large.data(), sizes[2]), cur,
              next, prob, output, wsp);
      break;
    }
    case LoadBalance::kEqualWork:
    case LoadBalance::kAuto: {  // kAuto already resolved; silences -Wswitch
      result.edges_visited =
          detail::ExpandEqualWorkMs<Functor, Problem, kEmitOnce>(
              pool, g, input, cur, next, prob, output, wsp);
      break;
    }
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

/// Multi-source pull advance: for every candidate vertex (one with lanes
/// still to discover), probe incoming neighbors and gather the union of
/// their frontier masks, stopping early once every remaining lane has
/// found a parent — the multi-source generalization of scalar pull's
/// first-parent early break, which degrades gracefully as lanes fill in.
///
/// Functor contract:
///   static std::uint64_t Remaining(vid_t v, Problem& p);
///     -> lanes candidate v still wants (typically ~visited(v) & active).
///
/// `rg` must be the reverse graph. Candidates are owned by exactly one
/// chunk, so discovered vertices are emitted exactly once.
template <typename Functor, typename Problem>
AdvanceResult AdvancePullMs(par::ThreadPool& pool, const graph::Csr& rg,
                            const par::LaneMaskFrontier& cur,
                            std::span<const vid_t> candidates,
                            par::LaneMaskFrontier& next,
                            std::vector<vid_t>* output, Problem& prob,
                            const AdvanceConfig& cfg = {}) {
  AdvanceResult result;
  const std::size_t n = candidates.size();
  if (n == 0) return result;
  par::Workspace private_arena;
  par::Workspace& wsp = cfg.workspace ? *cfg.workspace : private_arena;
  const std::size_t out_base = output ? output->size() : 0;
  const std::size_t grain =
      cfg.grain ? cfg.grain : par::DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  auto& locals =
      wsp.Get<std::vector<std::vector<vid_t>>>(par::ws::kAdvanceLocals);
  if (output && locals.size() < num_chunks) locals.resize(num_chunks);
  auto& counts = wsp.Get<std::vector<eid_t>>(par::ws::kAdvanceCounts);
  counts.assign(num_chunks, 0);
  par::ParallelForChunks(
      pool, 0, n, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        std::vector<vid_t>* local = nullptr;
        if (output) {
          local = &locals[chunk];
          local->clear();
        }
        eid_t edges = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t v = candidates[i];
          const std::uint64_t rem = Functor::Remaining(v, prob);
          if (rem == 0) continue;
          std::uint64_t acc = 0;
          for (eid_t e = rg.row_begin(v); e < rg.row_end(v); ++e) {
            const vid_t u = rg.edge_dest(e);
            ++edges;
            acc |= cur.Load(static_cast<std::size_t>(u)) & rem;
            if (acc == rem) break;  // every remaining lane found a parent
          }
          if (acc != 0) {
            next.OrBits(static_cast<std::size_t>(v), acc);
            if (local) local->push_back(v);
          }
        }
        counts[chunk] = edges;
      });
  par::ConcatChunks(pool, locals, output ? num_chunks : 0, output, &wsp,
                    par::ws::kAdvanceAppendOffsets);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    result.edges_visited += counts[c];
  }
  if (output) result.output_size = output->size() - out_base;
  return result;
}

/// Multi-source filter: exact-dedups the raw vertex list a kEmitOnce =
/// false push produced (one entry per discovering edge) down to one entry
/// per vertex, via an epoch-stamped claim — the multi-source analog of
/// idempotent BFS's visited-bitmap filter. Built on FilterVertex because
/// the claim is stateful: FilterVertex evaluates the condition exactly
/// once per item, in the same pass that writes the output. `claim` must
/// be sized to |V| and fresh (NewEpoch) for this level.
struct MsClaimProblem {
  par::EpochBitmap* claim = nullptr;
};

struct MsClaimFunctor {
  static bool CondVertex(vid_t v, MsClaimProblem& p) {
    return p.claim->TestAndSet(static_cast<std::size_t>(v));
  }
  static void ApplyVertex(vid_t, MsClaimProblem&) {}
};

inline std::size_t FilterMsUnique(par::ThreadPool& pool,
                                  std::span<const vid_t> raw,
                                  par::EpochBitmap& claim,
                                  std::vector<vid_t>* output,
                                  par::Workspace* wsp = nullptr) {
  MsClaimProblem prob{&claim};
  FilterConfig cfg;
  cfg.workspace = wsp;
  return FilterVertex<MsClaimFunctor>(pool, raw, output, prob, cfg)
      .output_size;
}

}  // namespace gunrock::core
