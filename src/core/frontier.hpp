// The frontier: Gunrock's central data structure (paper Section 4.1).
//
// "Rather than focusing on sequencing steps of computation, we instead
// focus on manipulating a data structure, the frontier of vertices or
// edges that represents the subset of the graph that is actively
// participating in the computation."
//
// A frontier is a compact array of ids plus a ping-pong partner buffer, so
// an advance/filter step reads `current()` and writes `next()` without
// allocation churn — the CPU analog of the paper's ping_pong_working_queue.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace gunrock::core {

template <typename Id>
class FrontierT {
 public:
  FrontierT() = default;

  /// Reserves capacity in both buffers (typically |V| or |E|).
  explicit FrontierT(std::size_t capacity_hint) {
    buffers_[0].reserve(capacity_hint);
    buffers_[1].reserve(capacity_hint);
  }

  std::vector<Id>& current() { return buffers_[selector_]; }
  const std::vector<Id>& current() const { return buffers_[selector_]; }

  /// The output buffer an operator fills before Flip().
  std::vector<Id>& next() { return buffers_[selector_ ^ 1]; }

  std::size_t size() const { return current().size(); }
  bool empty() const { return current().empty(); }

  /// Makes the freshly produced `next()` the current frontier and clears
  /// the retired buffer for reuse.
  void Flip() {
    selector_ ^= 1;
    buffers_[selector_ ^ 1].clear();
  }

  void Assign(std::span<const Id> items) {
    current().assign(items.begin(), items.end());
    next().clear();
  }

  void Assign(std::initializer_list<Id> items) {
    current().assign(items);
    next().clear();
  }

  void Clear() {
    buffers_[0].clear();
    buffers_[1].clear();
  }

 private:
  std::vector<Id> buffers_[2];
  int selector_ = 0;
};

using VertexFrontier = FrontierT<vid_t>;
using EdgeFrontier = FrontierT<eid_t>;

}  // namespace gunrock::core
