// Analytical SIMT lane-efficiency model (substitute for CUDA's measured
// "warp execution efficiency", paper Table 4).
//
// Work items are assigned to 32-lane virtual warps exactly as each
// workload-mapping strategy would assign them; a warp issues
// max(per-lane steps) lockstep steps and efficiency is
// useful-lane-steps / issued-lane-steps. Because the model consumes the
// *actual* per-item work distribution of the running frontier, strategy
// rankings match the paper's measurements: equal-work partitioning stays
// near 1.0 regardless of skew, while item-per-lane mapping collapses on
// power-law frontiers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "parallel/reduce.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/types.hpp"

namespace gunrock::core {

namespace detail {

struct LaneTally {
  double useful = 0.0;
  double issued = 0.0;
};

inline LaneTally CombineTally(LaneTally a, LaneTally b) {
  return {a.useful + b.useful, a.issued + b.issued};
}

}  // namespace detail

/// Item-per-lane mapping: 32 consecutive items form a warp; the warp runs
/// for max(cost) steps. cost(i) must return the per-item serial work.
template <typename CostFn>
double LaneEfficiencyThreadMapped(par::ThreadPool& pool, std::size_t n,
                                  CostFn&& cost,
                                  par::Workspace* wsp = nullptr) {
  if (n == 0) return 1.0;
  const std::size_t warps = (n + kWarpWidth - 1) / kWarpWidth;
  const auto tally = par::TransformReduce(
      pool, warps, detail::LaneTally{}, detail::CombineTally,
      [&](std::size_t w) {
        const std::size_t lo = w * kWarpWidth;
        const std::size_t hi = std::min(n, lo + kWarpWidth);
        double sum = 0.0, mx = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double c = static_cast<double>(cost(i));
          sum += c;
          mx = std::max(mx, c);
        }
        return detail::LaneTally{sum, mx * kWarpWidth};
      },
      wsp, par::ws::kSimtReducePartials);
  return tally.issued > 0 ? tally.useful / tally.issued : 1.0;
}

/// Equal-work mapping: edges are linearized, warps take 32 consecutive
/// edge slots; only the final partial warp wastes lanes.
inline double LaneEfficiencyEqualWork(eid_t total_work) {
  if (total_work <= 0) return 1.0;
  const eid_t warps = (total_work + kWarpWidth - 1) / kWarpWidth;
  return static_cast<double>(total_work) /
         static_cast<double>(warps * kWarpWidth);
}

/// TWC mapping: items are binned by cost, then each bin runs with its
/// matched shape — exactly what the operator does. Small items (<= warp
/// threshold) map one per lane *among same-bin peers*, so the divergence
/// a warp pays is the spread within the small bin, not against the whole
/// frontier; medium items get a cooperating warp (waste = the cost/32
/// tail); large items a CTA (256-slot rounding).
template <typename CostFn>
double LaneEfficiencyTwc(par::ThreadPool& pool, std::size_t n,
                         CostFn&& cost, par::Workspace* wsp = nullptr) {
  if (n == 0) return 1.0;
  // Materialize the small bin's costs so its items can be grouped into
  // warps of peers (the model mirrors the operator's binning pass).
  std::vector<double> small_local;
  std::vector<double>& small =
      wsp ? wsp->Get<std::vector<double>>(par::ws::kSimtSmallCosts)
          : small_local;
  small.clear();
  small.reserve(n);
  detail::LaneTally big{};
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(cost(i));
    if (c <= kTwcWarpThreshold) {
      small.push_back(c);
    } else if (c <= kTwcCtaThreshold) {
      big.useful += c;
      big.issued += std::ceil(c / kWarpWidth) * kWarpWidth;
    } else {
      big.useful += c;
      big.issued += std::ceil(c / kTwcCtaThreshold) * kTwcCtaThreshold;
    }
  }
  const double small_eff = LaneEfficiencyThreadMapped(
      pool, small.size(), [&](std::size_t i) { return small[i]; }, wsp);
  double small_work = 0.0;
  for (const double c : small) small_work += c;
  const double small_issued =
      small_eff > 0 ? small_work / small_eff : 0.0;
  const double useful = small_work + big.useful;
  const double issued = small_issued + big.issued;
  return issued > 0 ? std::min(1.0, useful / issued) : 1.0;
}

}  // namespace gunrock::core
