// Direction-optimizing traversal controller (paper Section 4.5, after
// Beamer et al.).
//
// Push expands the active frontier; pull probes unvisited vertices for
// active parents. "Beamer et al. showed this approach is beneficial when
// the number of unvisited vertices drops below the size of the current
// frontier." The controller implements the classic two-threshold state
// machine: switch to pull when the frontier's outgoing edge count m_f
// exceeds m_u / alpha (edges from unexplored vertices), and back to push
// when the frontier shrinks below n / beta vertices.
#pragma once

#include "util/types.hpp"

namespace gunrock::core {

class DirectionOptimizer {
 public:
  DirectionOptimizer(vid_t num_vertices, double alpha = 14.0,
                     double beta = 24.0)
      : n_(num_vertices), alpha_(alpha), beta_(beta) {}

  /// Decides the direction of the next advance.
  /// m_f: sum of out-degrees of frontier vertices;
  /// m_u: sum of out-degrees of still-unvisited vertices;
  /// n_f: frontier size.
  ///
  /// Beamer's switch applies only while the frontier is *growing*: a
  /// shrinking tail frontier trivially satisfies m_f > m_u/alpha (m_u has
  /// collapsed) but pull's per-iteration candidate scan would dominate —
  /// the exact pathology on large-diameter meshes.
  bool ShouldPull(eid_t m_f, eid_t m_u, vid_t n_f) {
    const bool growing = n_f >= last_n_f_;
    last_n_f_ = n_f;
    if (pulling_) {
      if (!growing &&
          static_cast<double>(n_f) < static_cast<double>(n_) / beta_) {
        pulling_ = false;
      }
    } else {
      if (growing && static_cast<double>(m_f) >
                         static_cast<double>(m_u) / alpha_) {
        pulling_ = true;
      }
    }
    return pulling_;
  }

  bool pulling() const { return pulling_; }

 private:
  vid_t n_;
  double alpha_;
  double beta_;
  vid_t last_n_f_ = 0;
  bool pulling_ = false;
};

}  // namespace gunrock::core
