// Operator policy knobs (paper Sections 4.4 and 4.5).
#pragma once

#include <cstddef>

#include "util/types.hpp"

namespace gunrock::par {
class Workspace;  // parallel/workspace.hpp
}  // namespace gunrock::par

namespace gunrock::core {

/// Workload-mapping strategy for advance (paper Section 4.4).
enum class LoadBalance {
  /// One frontier item per work unit, dynamic chunks. The paper's
  /// "per-thread fine-grained" baseline; imbalanced on skewed degrees.
  kThreadMapped,
  /// Merrill-style thread/warp/CTA binning: items grouped by neighbor-list
  /// size (<=32, <=256, >256) and each group processed with a matching
  /// parallel shape. The paper's fine-grained dynamic grouping.
  kTwc,
  /// Davidson-style equal-work partitioning: scan frontier degrees, chunk
  /// total edge work evenly, locate chunk owners by sorted search. The
  /// paper's coarse-grained load-balanced strategy.
  kEqualWork,
  /// Topology-aware hybrid (the Gunrock default): equal-work on scale-free
  /// graphs, TWC on small-degree large-diameter graphs (Section 4.4).
  kAuto,
};

inline const char* ToString(LoadBalance lb) {
  switch (lb) {
    case LoadBalance::kThreadMapped: return "thread-mapped";
    case LoadBalance::kTwc: return "twc";
    case LoadBalance::kEqualWork: return "equal-work";
    case LoadBalance::kAuto: return "auto";
  }
  return "?";
}

/// Execution backend for the dense-iteration primitives (PageRank, HITS,
/// SALSA, PPR): the classic frontier-operator formulation, or the
/// merge-path semiring SpMV/SpMM sweep (core/spmv.hpp). kAuto picks per
/// topology the way LoadBalance::kAuto does — the SpMV sweep wins where
/// frontiers stay dense and degree skew starves a row-mapped gather
/// (scale-free graphs); the frontier path keeps its edge on meshes and
/// for push-style sparse propagation.
enum class SpmvBackend {
  kAuto,
  kFrontier,
  kSpmv,
};

inline const char* ToString(SpmvBackend b) {
  switch (b) {
    case SpmvBackend::kAuto: return "auto";
    case SpmvBackend::kFrontier: return "frontier";
    case SpmvBackend::kSpmv: return "spmv";
  }
  return "?";
}

/// Traversal direction policy (paper Section 4.5, push vs pull).
enum class Direction {
  kPush,        ///< scatter from the frontier (forward)
  kPull,        ///< gather into unvisited vertices (reverse/bottom-up)
  kOptimizing,  ///< Beamer-style dynamic switching
};

inline const char* ToString(Direction d) {
  switch (d) {
    case Direction::kPush: return "push";
    case Direction::kPull: return "pull";
    case Direction::kOptimizing: return "direction-optimizing";
  }
  return "?";
}

struct AdvanceConfig {
  LoadBalance lb = LoadBalance::kAuto;
  /// kAuto resolves with this hint (set from graph::IsScaleFreeLike).
  bool scale_free_hint = true;
  /// Items per chunk for the thread-mapped path.
  std::size_t grain = 64;
  /// When false, skip the SIMT lane-efficiency model (saves one pass over
  /// the frontier per advance).
  bool model_efficiency = true;
  /// Enactor-owned scratch arena. When set, every internal buffer (degree
  /// scans, TWC bins, chunk-local output, compaction counters) is reused
  /// across calls, making steady-state advances allocation-free. When
  /// null the operator falls back to a private per-call arena.
  par::Workspace* workspace = nullptr;
};

/// Resolves kAuto using the topology hint: the paper's hybrid picks the
/// coarse-grained (equal-work) strategy for irregular degree
/// distributions and the TWC grouping otherwise.
inline LoadBalance ResolveLoadBalance(const AdvanceConfig& cfg) {
  if (cfg.lb != LoadBalance::kAuto) return cfg.lb;
  return cfg.scale_free_hint ? LoadBalance::kEqualWork : LoadBalance::kTwc;
}

}  // namespace gunrock::core
