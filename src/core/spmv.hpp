// Merge-path load-balanced SpMV/SpMM over pluggable semirings.
//
// GraphBLAST's observation (PAPERS.md): Gunrock's advance+reduce over a
// static frontier IS a masked sparse-matrix–vector product over a
// semiring. For the dense-frontier, high-iteration primitives
// (PageRank, HITS, SALSA, PPR) the frontier bookkeeping — filter
// passes, frontier rebuilds, atomic scatter — is pure overhead, and a
// straight semiring sweep of the CSR wins. This header is that sweep.
//
// Load balance: par::MergePathPartition cuts the (rows + nonzeros) merge
// path into equal-cell chunks, so a power-law hub row is split across
// chunks instead of serializing on one thread (the same decomposition
// Merrill & Garland use for GPU SpMV). A row split across chunks leaves
// partial sums at the seams; each chunk records its head/tail partials
// in a carry table indexed by chunk id, and one serial fixup pass folds
// the carries in chunk (= edge) order. Because the partition is a pure
// function of the structure — never the pool width — the carry table,
// the fold order, and therefore every floating-point rounding are
// identical at any thread count: results are run-to-run deterministic
// and pool-width-invariant by construction.
//
// Masking: the dense-mask variant takes a par::EpochBitmap and simply
// skips non-member rows inside the same partition (their cells still
// count toward balance — skipping is a read of the stamp array, not a
// repartition). The sparse variant compacts the selected rows into a
// synthetic CSR (prefix of their degrees) and runs the same kernel on
// it, so a tiny frontier costs O(frontier + its edges), not O(n).
//
// The SpMM path sweeps L column vectors per nonzero with the *identical*
// partition and per-lane fold order as the scalar kernel — lane l of an
// SpMM result is bit-identical to a scalar SpMV of that lane at any pool
// width, which is what lets PprBatch's fused column block share oracle
// tests with the scalar backend.
//
// Workspace: every call takes a `slot_first` base into the caller's
// arena (primitives pass pslot::kSpmvFirst) and reuses spmv_slot::kCount
// consecutive slots; steady-state iterations allocate nothing.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/for_each.hpp"
#include "parallel/merge_path.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/types.hpp"

namespace gunrock::core {

// ---------------------------------------------------------------------------
// Semirings. Add is required associative + commutative with Identity as
// neutral element; Mul distributes over Add and annihilates on Identity.
// The kernels only ever fold Add left-to-right in edge order, so a merely
// associative Add would do — commutativity is what makes the masked and
// unmasked sweeps agree on rows the mask splits differently.

/// (+, *) over double — PageRank / HITS / SALSA / PPR mass propagation.
struct PlusTimes {
  using Value = double;
  static constexpr Value Identity() { return 0.0; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
};

/// (min, +) over weight_t — one Bellman-Ford / SSSP relaxation round:
/// y[v] = min over in-edges (u,v) of x[u] + w(u,v).
struct MinPlus {
  using Value = weight_t;
  static constexpr Value Identity() { return kInfinity; }
  static Value Add(Value a, Value b) { return b < a ? b : a; }
  static Value Mul(Value a, Value b) { return a + b; }
};

/// (|, &) over uint8 — boolean reachability: y[v] = 1 iff some in-neighbor
/// is set (and the edge mask, if any, passes).
struct OrAnd {
  using Value = std::uint8_t;
  static constexpr Value Identity() { return 0; }
  static Value Add(Value a, Value b) {
    return static_cast<Value>(a | b);
  }
  static Value Mul(Value a, Value b) {
    return static_cast<Value>(a & b);
  }
};

// ---------------------------------------------------------------------------
// Workspace slot layout relative to the caller's `slot_first`.

namespace spmv_slot {
enum : unsigned {
  kPartition = 0,  // std::vector<par::MergeCoord>
  kCarryRows = 1,  // std::vector<std::size_t>
  kCarryVals = 2,  // std::vector<T> (scalar kernels)
  kSelOffsets = 3,  // std::vector<eid_t> (sparse-rows compaction)
  kSpmmCarry = 4,  // std::vector<T> (2 * chunks * stride, SpMM kernel)
  kCount = 5,
};
}  // namespace spmv_slot

/// Upper bound on SpMM lanes swept per nonzero (one stack-resident
/// accumulator block); matches the 64-bit lane masks of the batch layer.
inline constexpr std::size_t kSpmmMaxLanes = 64;

namespace detail {

inline constexpr std::size_t kNoCarry = static_cast<std::size_t>(-1);

/// The shared walk. `offs` is a CSR-shaped offset array over the *walk*
/// index space (length rows+1, offs[0]==0); `contrib(r, j)` maps a walk
/// coordinate to a semiring value, `active(r)` masks rows, and
/// `emit(r, acc)` receives each completed row exactly once — either
/// directly from the owning chunk or from the serial seam fixup. Rows
/// failing `active` are never emitted; their cells are skipped in place.
///
/// Determinism: chunk boundaries come from MergePathPartition (structure
/// only), each chunk folds its cells serially in walk order, and the
/// fixup folds the carry table in index order (= chunk order = walk
/// order). No step depends on thread count or completion order.
template <typename T, typename Off, typename Add, typename ContribAt,
          typename Active, typename Emit>
void SpmvWalk(par::ThreadPool& pool, std::span<const Off> offs, T identity,
              Add add, ContribAt contrib, Active active, Emit emit,
              par::Workspace& ws, unsigned slot_first) {
  const std::size_t rows = offs.size() - 1;
  if (rows == 0) return;
  const auto row_ends = offs.subspan(1);
  const std::size_t nnz = static_cast<std::size_t>(row_ends[rows - 1]);

  const std::size_t num_chunks = par::MergePathChunks(rows, nnz);
  auto& starts =
      ws.Get<std::vector<par::MergeCoord>>(slot_first + spmv_slot::kPartition);
  par::MergePathPartition(row_ends, nnz, num_chunks, starts);

  // Carry table: slot 2c is chunk c's head partial (its first row began in
  // an earlier chunk), slot 2c+1 its tail partial (its last row continues
  // into a later chunk). The two carries of one split row are adjacent in
  // index order, so the fixup's same-row run-fold reassembles each row
  // from its partials in edge order.
  auto& carry_row =
      ws.Get<std::vector<std::size_t>>(slot_first + spmv_slot::kCarryRows);
  auto& carry_val = ws.Get<std::vector<T>>(slot_first + spmv_slot::kCarryVals);
  carry_row.assign(2 * num_chunks, kNoCarry);
  carry_val.assign(2 * num_chunks, identity);

  // One block per chunk: FixedBlocks has no serial size cutoff, so chunks
  // run concurrently with dynamic scheduling even though there are few of
  // them (ParallelForChunks would fall below its serial threshold here).
  par::FixedBlocks(
      pool, num_chunks, num_chunks,
      [&](std::size_t c, std::size_t, std::size_t) {
        const par::MergeCoord b = starts[c];
        const par::MergeCoord e = starts[c + 1];
        std::size_t j = b.nnz;
        for (std::size_t r = b.row; r < e.row; ++r) {
          const auto re = static_cast<std::size_t>(row_ends[r]);
          if (!active(r)) {
            j = re;
            continue;
          }
          T acc = identity;
          for (; j < re; ++j) acc = add(acc, contrib(r, j));
          if (r == b.row && b.nnz > static_cast<std::size_t>(offs[r])) {
            carry_row[2 * c] = r;  // row began in an earlier chunk
            carry_val[2 * c] = acc;
          } else {
            emit(r, acc);
          }
        }
        if (j < e.nnz && active(e.row)) {  // row continues past this chunk
          T acc = identity;
          for (; j < e.nnz; ++j) acc = add(acc, contrib(e.row, j));
          carry_row[2 * c + 1] = e.row;
          carry_val[2 * c + 1] = acc;
        }
      });

  // Serial seam fixup: fold same-row carry runs in index order.
  std::size_t cur = kNoCarry;
  T acc = identity;
  for (std::size_t k = 0; k < 2 * num_chunks; ++k) {
    const std::size_t r = carry_row[k];
    if (r == kNoCarry) continue;
    if (r != cur) {
      if (cur != kNoCarry) emit(cur, acc);
      cur = r;
      acc = carry_val[k];
    } else {
      acc = add(acc, carry_val[k]);
    }
  }
  if (cur != kNoCarry) emit(cur, acc);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Scalar SpMV.

/// y[r] = finalize(r, fold of contrib(e) over row r's nonzeros, in edge
/// order) for every row r of `row_offsets` (length rows+1). `contrib(e)`
/// receives the global edge index. Deterministic and pool-width-invariant;
/// zero steady-state allocation when `wsp` is a warm arena.
template <typename T, typename Add, typename Contrib, typename Finalize>
void SpmvMergePath(par::ThreadPool& pool, std::span<const eid_t> row_offsets,
                   std::span<T> y, T identity, Add add, Contrib contrib,
                   Finalize finalize, par::Workspace* wsp,
                   unsigned slot_first) {
  par::Workspace local;
  par::Workspace& ws = wsp ? *wsp : local;
  detail::SpmvWalk<T>(
      pool, row_offsets, identity, add,
      [&](std::size_t, std::size_t j) { return contrib(j); },
      [](std::size_t) { return true; },
      [&](std::size_t r, T acc) { y[r] = finalize(r, acc); }, ws, slot_first);
}

/// Dense-mask variant: rows with mask.Test(r) false are skipped — neither
/// swept nor written. Same partition as the unmasked kernel (the mask does
/// not repartition, it short-circuits cells), so masked results on member
/// rows are bit-identical to the unmasked kernel's.
template <typename T, typename Add, typename Contrib, typename Finalize>
void SpmvMergePathMasked(par::ThreadPool& pool,
                         std::span<const eid_t> row_offsets,
                         const par::EpochBitmap& mask, std::span<T> y,
                         T identity, Add add, Contrib contrib,
                         Finalize finalize, par::Workspace* wsp,
                         unsigned slot_first) {
  par::Workspace local;
  par::Workspace& ws = wsp ? *wsp : local;
  detail::SpmvWalk<T>(
      pool, row_offsets, identity, add,
      [&](std::size_t, std::size_t j) { return contrib(j); },
      [&](std::size_t r) { return mask.Test(r); },
      [&](std::size_t r, T acc) { y[r] = finalize(r, acc); }, ws, slot_first);
}

/// Sparse-frontier variant: sweeps only the rows listed in `rows`
/// (a compacted frontier, any order), writing y only at those rows.
/// Internally builds a synthetic offset array over the selected rows'
/// degrees (O(|rows|), serial so the partition stays deterministic) and
/// runs the same kernel on it: cost is O(|rows| + their edges), not O(n).
template <typename T, typename Add, typename Contrib, typename Finalize>
void SpmvMergePathRows(par::ThreadPool& pool,
                       std::span<const eid_t> row_offsets,
                       std::span<const vid_t> rows, std::span<T> y, T identity,
                       Add add, Contrib contrib, Finalize finalize,
                       par::Workspace* wsp, unsigned slot_first) {
  par::Workspace local;
  par::Workspace& ws = wsp ? *wsp : local;
  auto& sel =
      ws.Get<std::vector<eid_t>>(slot_first + spmv_slot::kSelOffsets);
  sel.resize(rows.size() + 1);
  sel[0] = 0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto v = static_cast<std::size_t>(rows[k]);
    sel[k + 1] = sel[k] + (row_offsets[v + 1] - row_offsets[v]);
  }
  detail::SpmvWalk<T>(
      pool, std::span<const eid_t>(sel), identity, add,
      [&](std::size_t r, std::size_t j) {
        const auto v = static_cast<std::size_t>(rows[r]);
        const std::size_t e = static_cast<std::size_t>(row_offsets[v]) +
                              (j - static_cast<std::size_t>(sel[r]));
        return contrib(e);
      },
      [](std::size_t) { return true; },
      [&](std::size_t r, T acc) {
        const auto v = static_cast<std::size_t>(rows[r]);
        y[v] = finalize(v, acc);
      },
      ws, slot_first);
}

// ---------------------------------------------------------------------------
// Multi-vector SpMM.

/// Sweeps L = `stride` column vectors at once over the same structure:
/// for every row r and every lane l with bit l set in `running`,
/// y[r * stride + l] = finalize(r, l, fold of contrib(e, l) in edge
/// order). Lanes absent from `running` are neither accumulated nor
/// written (a converged batch lane keeps its frozen column untouched).
///
/// The partition and the per-lane fold order are exactly the scalar
/// kernel's, so lane l here is bit-identical to SpmvMergePath with
/// contrib(e) = contrib(e, l) — at any pool width. PprBatch's SpMM
/// backend leans on this to share oracles with the scalar PPR path.
template <typename T, typename Add, typename Contrib, typename Finalize>
void SpmmMergePath(par::ThreadPool& pool, std::span<const eid_t> row_offsets,
                   std::span<T> y, std::size_t stride, std::uint64_t running,
                   T identity, Add add, Contrib contrib, Finalize finalize,
                   par::Workspace* wsp, unsigned slot_first) {
  par::Workspace local;
  par::Workspace& ws = wsp ? *wsp : local;
  const std::size_t rows = row_offsets.size() - 1;
  if (rows == 0 || running == 0) return;
  const auto row_ends = row_offsets.subspan(1);
  const std::size_t nnz = static_cast<std::size_t>(row_ends[rows - 1]);

  const std::size_t num_chunks = par::MergePathChunks(rows, nnz);
  auto& starts =
      ws.Get<std::vector<par::MergeCoord>>(slot_first + spmv_slot::kPartition);
  par::MergePathPartition(row_ends, nnz, num_chunks, starts);

  auto& carry_row =
      ws.Get<std::vector<std::size_t>>(slot_first + spmv_slot::kCarryRows);
  auto& carry_val = ws.Get<std::vector<T>>(slot_first + spmv_slot::kSpmmCarry);
  carry_row.assign(2 * num_chunks, detail::kNoCarry);
  carry_val.assign(2 * num_chunks * stride, identity);

  par::FixedBlocks(
      pool, num_chunks, num_chunks,
      [&](std::size_t c, std::size_t, std::size_t) {
        const par::MergeCoord b = starts[c];
        const par::MergeCoord e = starts[c + 1];
        T acc[kSpmmMaxLanes];
        std::size_t j = b.nnz;
        for (std::size_t r = b.row; r < e.row; ++r) {
          const auto re = static_cast<std::size_t>(row_ends[r]);
          for (std::uint64_t m = running; m;) {
            const auto l = static_cast<std::size_t>(std::countr_zero(m));
            m &= m - 1;
            acc[l] = identity;
          }
          for (; j < re; ++j) {
            for (std::uint64_t m = running; m;) {
              const auto l = static_cast<std::size_t>(std::countr_zero(m));
              m &= m - 1;
              acc[l] = add(acc[l], contrib(j, l));
            }
          }
          if (r == b.row &&
              b.nnz > static_cast<std::size_t>(row_offsets[r])) {
            carry_row[2 * c] = r;
            for (std::uint64_t m = running; m;) {
              const auto l = static_cast<std::size_t>(std::countr_zero(m));
              m &= m - 1;
              carry_val[2 * c * stride + l] = acc[l];
            }
          } else {
            for (std::uint64_t m = running; m;) {
              const auto l = static_cast<std::size_t>(std::countr_zero(m));
              m &= m - 1;
              y[r * stride + l] = finalize(r, l, acc[l]);
            }
          }
        }
        if (j < e.nnz) {
          for (std::uint64_t m = running; m;) {
            const auto l = static_cast<std::size_t>(std::countr_zero(m));
            m &= m - 1;
            acc[l] = identity;
          }
          for (; j < e.nnz; ++j) {
            for (std::uint64_t m = running; m;) {
              const auto l = static_cast<std::size_t>(std::countr_zero(m));
              m &= m - 1;
              acc[l] = add(acc[l], contrib(j, l));
            }
          }
          carry_row[2 * c + 1] = e.row;
          for (std::uint64_t m = running; m;) {
            const auto l = static_cast<std::size_t>(std::countr_zero(m));
            m &= m - 1;
            carry_val[(2 * c + 1) * stride + l] = acc[l];
          }
        }
      });

  // Seam fixup, per lane in chunk order — same fold as the scalar kernel.
  std::size_t cur = detail::kNoCarry;
  T acc[kSpmmMaxLanes];
  const auto flush = [&] {
    for (std::uint64_t m = running; m;) {
      const auto l = static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      y[cur * stride + l] = finalize(cur, l, acc[l]);
    }
  };
  for (std::size_t k = 0; k < 2 * num_chunks; ++k) {
    const std::size_t r = carry_row[k];
    if (r == detail::kNoCarry) continue;
    if (r != cur) {
      if (cur != detail::kNoCarry) flush();
      cur = r;
      for (std::uint64_t m = running; m;) {
        const auto l = static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        acc[l] = carry_val[k * stride + l];
      }
    } else {
      for (std::uint64_t m = running; m;) {
        const auto l = static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        acc[l] = add(acc[l], carry_val[k * stride + l]);
      }
    }
  }
  if (cur != detail::kNoCarry) flush();
}

// ---------------------------------------------------------------------------
// Semiring convenience front-end: y = A ⊗.⊕ x over semiring S, where A is
// the graph's CSR (rows = destinations when A is the reverse graph — the
// usual gather orientation). Weighted graphs multiply each nonzero by its
// weight; unweighted graphs use the column value alone.

template <typename S>
void SpmvSemiring(par::ThreadPool& pool, const graph::Csr& a,
                  std::span<const typename S::Value> x,
                  std::span<typename S::Value> y, par::Workspace* wsp,
                  unsigned slot_first) {
  using T = typename S::Value;
  const auto cols = a.col_indices();
  const auto add = [](T p, T q) { return S::Add(p, q); };
  const auto fin = [](std::size_t, T acc) { return acc; };
  if (!a.weights().empty()) {
    const auto w = a.weights();
    SpmvMergePath<T>(
        pool, a.row_offsets(), y, S::Identity(), add,
        [&](std::size_t e) {
          return S::Mul(static_cast<T>(w[e]),
                        x[static_cast<std::size_t>(cols[e])]);
        },
        fin, wsp, slot_first);
  } else {
    SpmvMergePath<T>(
        pool, a.row_offsets(), y, S::Identity(), add,
        [&](std::size_t e) { return x[static_cast<std::size_t>(cols[e])]; },
        fin, wsp, slot_first);
  }
}

}  // namespace gunrock::core
