// Cooperative cancellation for primitive runs.
//
// The paper's enactors run to convergence; a serving system cannot afford
// that luxury — a query abandoned by its client, or one that blew through
// its latency budget, must release its workspace lease and its share of
// the pool. Cancellation here is cooperative and cheap: a CancelToken is
// one atomic flag plus an optional deadline, and every primitive enactor
// polls it once per iteration (the natural bulk-synchronous boundary —
// between iterations no operator is mid-flight, so stopping leaves no
// partially written frontier behind).
#pragma once

#include <atomic>
#include <chrono>

#include "util/error.hpp"

namespace gunrock::core {

/// Thrown by a primitive when its RunControl's token fires. Derives from
/// gunrock::Error so existing catch sites treat it as a normal failure;
/// the query engine catches it specifically to mark the query cancelled
/// rather than failed.
class Cancelled : public Error {
 public:
  explicit Cancelled(const char* what) : Error(what) {}
  /// True when the deadline, not an explicit Cancel(), stopped the run.
  bool deadline_exceeded = false;
};

/// Shared cancellation state. The submitter (or the engine, on behalf of a
/// deadline) flips the flag; the running primitive polls it at iteration
/// boundaries. Safe to poll from any thread.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Requests cancellation. Idempotent; takes effect at the running
  /// primitive's next iteration boundary.
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms an absolute deadline; a run past it stops at the next boundary.
  void SetDeadline(Clock::time_point deadline) noexcept {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfterMs(double ms) {
    SetDeadline(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms)));
  }

  bool has_deadline() const noexcept { return has_deadline_; }
  bool deadline_exceeded() const noexcept {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  bool ShouldStop() const noexcept {
    return cancel_requested() || deadline_exceeded();
  }

  /// Throws core::Cancelled when the token has fired. Primitives call this
  /// once per iteration; ~two relaxed loads when idle.
  void Check() const {
    if (cancel_requested()) {
      throw Cancelled("query cancelled");
    }
    if (deadline_exceeded()) {
      Cancelled c("query deadline exceeded");
      c.deadline_exceeded = true;
      throw c;
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace gunrock::core
