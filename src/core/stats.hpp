// Per-run statistics collected by enactors: runtime, edges touched (for
// MTEPS, the paper's throughput metric), and the modeled SIMT lane
// efficiency (the paper's Table 4 "warp execution efficiency").
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace gunrock::core {

struct OperatorRecord {
  std::string op;          ///< "advance", "filter", "compute", ...
  int iteration = 0;
  std::size_t input_size = 0;
  std::size_t output_size = 0;
  eid_t edges = 0;
  double lane_efficiency = 1.0;
};

struct TraversalStats {
  int iterations = 0;
  eid_t edges_visited = 0;
  double elapsed_ms = 0.0;
  /// Work-weighted average of the per-advance lane-efficiency model.
  double lane_efficiency = 1.0;
  /// Populated only when a primitive is run with collect_records = true.
  std::vector<OperatorRecord> records;

  /// Millions of traversed edges per second (Table 3's MTEPS column).
  double Mteps() const {
    return elapsed_ms > 0.0
               ? static_cast<double>(edges_visited) / (elapsed_ms * 1000.0)
               : 0.0;
  }
};

/// Accumulates the work-weighted lane-efficiency average.
class EfficiencyAccumulator {
 public:
  void Add(double efficiency, eid_t work) {
    weighted_ += efficiency * static_cast<double>(work);
    work_ += static_cast<double>(work);
  }
  double Value() const { return work_ > 0 ? weighted_ / work_ : 1.0; }

 private:
  double weighted_ = 0.0;
  double work_ = 0.0;
};

}  // namespace gunrock::core
