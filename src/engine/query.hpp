// Typed queries for the engine (engine/query_engine.hpp).
//
// A query is "one primitive run over one registered graph": the request
// carries the primitive's own options struct (so every knob a direct call
// accepts is available through the engine), the response carries the
// primitive's own result struct plus serving metadata (terminal status,
// queue/run latency split). Both sides are closed std::variants — the
// engine dispatches with one std::visit and no type erasure, and adding a
// primitive to the serving set is a one-alternative change.
#pragma once

#include <string>
#include <variant>

#include "primitives/bc.hpp"
#include "primitives/bfs.hpp"
#include "primitives/cc.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/sssp.hpp"
#include "util/types.hpp"

namespace gunrock::engine {

// --- requests ---------------------------------------------------------------
// `opts.pool` is ignored: engine queries always run on the engine's
// shared pool.

struct BfsQuery {
  vid_t source = 0;
  BfsOptions opts{};
};

struct SsspQuery {
  vid_t source = 0;
  SsspOptions opts{};
};

struct BcQuery {
  vid_t source = 0;
  BcOptions opts{};
};

struct CcQuery {
  CcOptions opts{};
};

struct PagerankQuery {
  PagerankOptions opts{};
};

using QueryRequest =
    std::variant<BfsQuery, SsspQuery, BcQuery, CcQuery, PagerankQuery>;

/// Short primitive name of a request ("bfs", "sssp", ...).
inline const char* KindName(const QueryRequest& request) {
  struct Namer {
    const char* operator()(const BfsQuery&) const { return "bfs"; }
    const char* operator()(const SsspQuery&) const { return "sssp"; }
    const char* operator()(const BcQuery&) const { return "bc"; }
    const char* operator()(const CcQuery&) const { return "cc"; }
    const char* operator()(const PagerankQuery&) const { return "pagerank"; }
  };
  return std::visit(Namer{}, request);
}

/// Copy of `request` with its source vertex replaced; requests without a
/// source (CC, PageRank) pass through unchanged. This is how SubmitAll
/// stamps one prototype request over a span of sources.
inline QueryRequest WithSource(QueryRequest request, vid_t source) {
  if (auto* bfs = std::get_if<BfsQuery>(&request)) {
    bfs->source = source;
  } else if (auto* sssp = std::get_if<SsspQuery>(&request)) {
    sssp->source = source;
  } else if (auto* bc = std::get_if<BcQuery>(&request)) {
    bc->source = source;
  }
  return request;
}

// --- responses --------------------------------------------------------------

enum class QueryStatus {
  kQueued,            ///< admitted, waiting for a runner
  kRunning,           ///< on a runner, workspace leased
  kDone,              ///< finished; response.result holds the payload
  kCancelled,         ///< stopped by QueryHandle::Cancel()
  kDeadlineExceeded,  ///< stopped by the submit-time deadline
  kRejected,          ///< refused at admission (queue full, kReject policy)
  kFailed,            ///< the primitive threw; response.error has details
};

inline const char* ToString(QueryStatus s) {
  switch (s) {
    case QueryStatus::kQueued: return "queued";
    case QueryStatus::kRunning: return "running";
    case QueryStatus::kDone: return "done";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kDeadlineExceeded: return "deadline-exceeded";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kFailed: return "failed";
  }
  return "?";
}

/// True for states a query can never leave.
inline bool IsTerminal(QueryStatus s) {
  return s != QueryStatus::kQueued && s != QueryStatus::kRunning;
}

using QueryResult = std::variant<std::monostate, BfsResult, SsspResult,
                                 BcResult, CcResult, PagerankResult>;

struct QueryResponse {
  QueryStatus status = QueryStatus::kQueued;
  /// Primitive result; std::monostate unless status == kDone. Extract
  /// with std::get<BfsResult>(response.result) etc.
  QueryResult result;
  /// Failure detail when status is kFailed / kRejected.
  std::string error;
  double queue_ms = 0.0;  ///< admission to runner pickup
  double run_ms = 0.0;    ///< runner pickup to terminal state
  double total_ms = 0.0;  ///< admission to terminal state
};

}  // namespace gunrock::engine
