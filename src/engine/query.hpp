// Typed queries for the engine (engine/query_engine.hpp).
//
// A query is "one primitive run over one registered graph": the request
// carries the primitive's own options struct (so every knob a direct call
// accepts is available through the engine), the response carries the
// primitive's own result struct plus serving metadata (terminal status,
// queue/run latency split). Both sides are closed std::variants — the
// engine dispatches with one std::visit and no type erasure, and adding a
// primitive to the serving set is a one-alternative change.
//
// The servable set covers all nine primitive families: the traversal
// five (bfs/sssp/bc/cc/pagerank) plus mst, the ranking trio
// (hits/salsa/ppr), triangles, and label propagation. HITS/SALSA run on
// a (forward, reverse) CSR pair; the engine materializes the reverse
// graph lazily per registered graph, so pure-traversal serving never
// pays for it.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "primitives/bc.hpp"
#include "primitives/bfs.hpp"
#include "primitives/cc.hpp"
#include "primitives/label_propagation.hpp"
#include "primitives/mst.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/ranking.hpp"
#include "primitives/sssp.hpp"
#include "primitives/sssp_batch.hpp"
#include "primitives/triangles.hpp"
#include "util/types.hpp"

namespace gunrock::engine {

// --- requests ---------------------------------------------------------------
// `opts.pool` is ignored: engine queries always run on the engine's
// shared pool.

struct BfsQuery {
  vid_t source = 0;
  BfsOptions opts{};
};

struct SsspQuery {
  vid_t source = 0;
  SsspOptions opts{};
};

struct BcQuery {
  vid_t source = 0;
  BcOptions opts{};
};

struct CcQuery {
  CcOptions opts{};
};

struct PagerankQuery {
  PagerankOptions opts{};
};

struct MstQuery {
  MstOptions opts{};
};

struct TrianglesQuery {
  TriangleOptions opts{};
};

struct LabelPropagationQuery {
  LabelPropagationOptions opts{};
};

/// Runs on (g, reverse(g)); the engine builds the reverse CSR lazily at
/// first use and caches it with the registered graph.
struct HitsQuery {
  HitsOptions opts{};
};

/// Runs on (g, reverse(g)) like HitsQuery.
struct SalsaQuery {
  SalsaOptions opts{};
};

struct PprQuery {
  /// Teleport set; WithSource replaces it with {source}, so a PPR
  /// prototype fans out across a SubmitAll source list like BFS does.
  std::vector<vid_t> seeds{0};
  PprOptions opts{};
};

/// Many-to-many SSSP distance table: N sources × M targets in one query,
/// executed as ≤64-lane SsspBatch waves. One query = one epoch-pinned
/// snapshot = one cancel token; every wave of it sees the same adjacency.
struct MatrixQuery {
  std::vector<vid_t> sources;
  /// Columns of the table; empty keeps every vertex (M = |V|).
  std::vector<vid_t> targets;
  /// On-demand path extraction: for each (source, target) pair the
  /// result carries the vertex sequence of one shortest path (empty when
  /// unreachable). The source must appear in `sources` — paths ride the
  /// wave that already holds that source's full distance column, so they
  /// cost one witness walk, not an extra SSSP.
  std::vector<std::pair<vid_t, vid_t>> paths;
  /// delta / backend / load-balance knobs, shared by every wave.
  /// opts.reverse is stamped by the engine for the spmv backend.
  SsspBatchOptions opts{};
  /// Lanes per wave: 0 resolves via MatrixWaveWidth (the coalescing
  /// budget model, gated on the scale-free hint like BFS wave
  /// formation); the engine stamps it at submit from its own budget. An
  /// explicit value (clamped to 64) always wins.
  std::uint32_t wave = 0;
};

using QueryRequest =
    std::variant<BfsQuery, SsspQuery, BcQuery, CcQuery, PagerankQuery,
                 MstQuery, TrianglesQuery, LabelPropagationQuery, HitsQuery,
                 SalsaQuery, PprQuery, MatrixQuery>;

/// Short primitive name of a request ("bfs", "sssp", ...).
inline const char* KindName(const QueryRequest& request) {
  struct Namer {
    const char* operator()(const BfsQuery&) const { return "bfs"; }
    const char* operator()(const SsspQuery&) const { return "sssp"; }
    const char* operator()(const BcQuery&) const { return "bc"; }
    const char* operator()(const CcQuery&) const { return "cc"; }
    const char* operator()(const PagerankQuery&) const { return "pagerank"; }
    const char* operator()(const MstQuery&) const { return "mst"; }
    const char* operator()(const TrianglesQuery&) const {
      return "triangles";
    }
    const char* operator()(const LabelPropagationQuery&) const {
      return "lp";
    }
    const char* operator()(const HitsQuery&) const { return "hits"; }
    const char* operator()(const SalsaQuery&) const { return "salsa"; }
    const char* operator()(const PprQuery&) const { return "ppr"; }
    const char* operator()(const MatrixQuery&) const { return "matrix"; }
  };
  return std::visit(Namer{}, request);
}

/// Canonical out-of-range text, shared by the engine's solo and wave run
/// paths (and by front-end pre-checks that want to match it): a client
/// must see the identical error whether its query happened to be merged
/// into a wave or ran alone.
inline std::string SourceRangeError(const char* kind, long long source,
                                    vid_t num_vertices) {
  return std::string(kind) + " source " + std::to_string(source) +
         " out of range [0, " + std::to_string(num_vertices) + ")";
}

/// Pre-run source/seed validation against a graph with `num_vertices`
/// vertices: nullopt when the request may run, the canonical error text
/// otherwise. Mirrors the solo runners' semantics exactly — PPR succeeds
/// with an empty result on an empty graph *before* its seed check, so PPR
/// seeds are not validated when num_vertices == 0; every other sourced
/// kind (bfs/sssp/bc) checks first and fails.
inline std::optional<std::string> ValidateSource(const QueryRequest& request,
                                                 vid_t num_vertices) {
  const auto check = [&](vid_t v) -> std::optional<std::string> {
    if (v < 0 || v >= num_vertices) {
      return SourceRangeError(KindName(request), v, num_vertices);
    }
    return std::nullopt;
  };
  if (const auto* bfs = std::get_if<BfsQuery>(&request)) {
    return check(bfs->source);
  }
  if (const auto* sssp = std::get_if<SsspQuery>(&request)) {
    return check(sssp->source);
  }
  if (const auto* bc = std::get_if<BcQuery>(&request)) {
    return check(bc->source);
  }
  if (const auto* ppr = std::get_if<PprQuery>(&request)) {
    if (num_vertices == 0) return std::nullopt;
    for (const vid_t seed : ppr->seeds) {
      if (auto err = check(seed)) return err;
    }
  }
  if (const auto* m = std::get_if<MatrixQuery>(&request)) {
    for (const vid_t s : m->sources) {
      if (auto err = check(s)) return err;
    }
    for (const vid_t t : m->targets) {
      if (auto err = check(t)) return err;
    }
    for (const auto& [s, t] : m->paths) {
      if (auto err = check(s)) return err;
      if (auto err = check(t)) return err;
    }
  }
  return std::nullopt;
}

/// True for request kinds that need the registered graph's reverse CSR:
/// HITS/SALSA always, PPR when its spmv backend (a gather over the
/// reverse orientation) was requested.
inline bool NeedsReverseGraph(const QueryRequest& request) {
  if (const auto* ppr = std::get_if<PprQuery>(&request)) {
    return ppr->opts.backend == core::SpmvBackend::kSpmv;
  }
  if (const auto* m = std::get_if<MatrixQuery>(&request)) {
    // The spmv backend gathers over the reverse orientation; kAuto and
    // kFrontier relax over the forward graph only.
    return m->opts.backend == MatrixBackend::kSpmv;
  }
  return std::holds_alternative<HitsQuery>(request) ||
         std::holds_alternative<SalsaQuery>(request);
}

/// Stamps a per-graph backend policy (GraphOptions::backend) onto a
/// request whose own backend is still kAuto; a non-auto request value
/// always wins. No-op for kinds without a backend knob and for a kAuto
/// policy (each primitive then resolves kAuto from the topology hint, so
/// engine and direct runs agree by construction).
inline void ApplyBackendPolicy(QueryRequest& request,
                               core::SpmvBackend backend) {
  if (backend == core::SpmvBackend::kAuto) return;
  const auto stamp = [&](core::SpmvBackend& b) {
    if (b == core::SpmvBackend::kAuto) b = backend;
  };
  if (auto* pr = std::get_if<PagerankQuery>(&request)) {
    stamp(pr->opts.backend);
  } else if (auto* hits = std::get_if<HitsQuery>(&request)) {
    stamp(hits->opts.backend);
  } else if (auto* salsa = std::get_if<SalsaQuery>(&request)) {
    stamp(salsa->opts.backend);
  } else if (auto* ppr = std::get_if<PprQuery>(&request)) {
    stamp(ppr->opts.backend);
  }
}

/// True for request kinds the engine's coalescing pass can merge into one
/// batched multi-source wave: BFS without predecessors (BfsBatch extracts
/// per-lane depths, not parent trees) and single-seed PPR (one seed = one
/// lane column). The merged run must reproduce each direct call's result
/// — exactly for BFS depths; for PPR to the same rounding spread as two
/// scalar runs of each other (bitwise on a single-lane pool, see
/// ppr_batch.hpp) — so anything else always runs solo.
inline bool CoalescibleRequest(const QueryRequest& request) {
  if (const auto* bfs = std::get_if<BfsQuery>(&request)) {
    return !bfs->opts.compute_preds && bfs->opts.reverse == nullptr &&
           !bfs->opts.collect_records;
  }
  if (const auto* ppr = std::get_if<PprQuery>(&request)) {
    return ppr->seeds.size() == 1 && !ppr->opts.collect_records;
  }
  return false;
}

/// True when two coalescible requests may share one wave: same kind and
/// identical options/variant — the source (or seed) is the lane axis, so
/// it is deliberately not compared.
inline bool CoalesceCompatible(const QueryRequest& a,
                               const QueryRequest& b) {
  if (a.index() != b.index()) return false;
  if (const auto* x = std::get_if<BfsQuery>(&a)) {
    const auto& y = std::get<BfsQuery>(b);
    return x->opts.load_balance == y.opts.load_balance &&
           x->opts.idempotent == y.opts.idempotent &&
           x->opts.direction == y.opts.direction &&
           x->opts.do_alpha == y.opts.do_alpha &&
           x->opts.do_beta == y.opts.do_beta;
  }
  if (const auto* x = std::get_if<PprQuery>(&a)) {
    const auto& y = std::get<PprQuery>(b);
    return x->opts.damping == y.opts.damping &&
           x->opts.tolerance == y.opts.tolerance &&
           x->opts.max_iterations == y.opts.max_iterations &&
           x->opts.load_balance == y.opts.load_balance &&
           x->opts.backend == y.opts.backend;
  }
  return false;
}

/// Copy of `request` with its source vertex replaced; requests without a
/// source (CC, PageRank, MST, triangles, LP, HITS, SALSA) pass through
/// unchanged, as does MatrixQuery (its source *list* is the whole
/// request — fan it out by splitting the list, not via SubmitAll). PPR
/// interprets the source as a single-seed teleport set. This is how
/// SubmitAll stamps one prototype request over a span of sources.
inline QueryRequest WithSource(QueryRequest request, vid_t source) {
  if (auto* bfs = std::get_if<BfsQuery>(&request)) {
    bfs->source = source;
  } else if (auto* sssp = std::get_if<SsspQuery>(&request)) {
    sssp->source = source;
  } else if (auto* bc = std::get_if<BcQuery>(&request)) {
    bc->source = source;
  } else if (auto* ppr = std::get_if<PprQuery>(&request)) {
    ppr->seeds.assign(1, source);
  }
  return request;
}

/// Coalescing-budget wave width for a matrix query on an n-vertex graph,
/// shared by SubmitImpl's stamp and RunMatrix's direct-call default. The
/// lease-resident wave state (buffers that stay in the recycled
/// workspace arena) costs ~64n bytes fixed — five lane-mask frontiers at
/// 12n each plus flags and piles — and ~8n per lane for the distance
/// column blocks (the spmv backend's two float blocks bound the frontier
/// backend's one), so the budget caps the lane count at ≤64. Non-scale-
/// free graphs fall back to single-lane waves — exactly the gate BFS
/// wave formation applies, and the same break-even reasoning: a shared
/// Δ window over long-diameter meshes re-scans the union frontier for
/// little lane overlap.
inline std::uint32_t MatrixWaveWidth(vid_t num_vertices, bool scale_free,
                                     std::size_t budget_bytes) {
  if (!scale_free) return 1;
  const auto n = static_cast<std::size_t>(num_vertices);
  const std::size_t fixed = 64 * n;
  const std::size_t per_lane = 8 * n;
  if (per_lane == 0) return kMaxBatchLanes;  // empty graph: width is moot
  if (fixed + per_lane > budget_bytes) return 1;
  return static_cast<std::uint32_t>(std::min<std::size_t>(
      kMaxBatchLanes, (budget_bytes - fixed) / per_lane));
}

// --- responses --------------------------------------------------------------

enum class QueryStatus {
  kQueued,            ///< admitted, waiting for a runner
  kRunning,           ///< on a runner, workspace leased
  kDone,              ///< finished; response.result holds the payload
  kCancelled,         ///< stopped by QueryHandle::Cancel()
  kDeadlineExceeded,  ///< stopped by the submit-time deadline
  kRejected,          ///< refused at admission (queue full, kReject policy)
  kFailed,            ///< the primitive threw; response.error has details
};

inline const char* ToString(QueryStatus s) {
  switch (s) {
    case QueryStatus::kQueued: return "queued";
    case QueryStatus::kRunning: return "running";
    case QueryStatus::kDone: return "done";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kDeadlineExceeded: return "deadline-exceeded";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kFailed: return "failed";
  }
  return "?";
}

/// True for states a query can never leave.
inline bool IsTerminal(QueryStatus s) {
  return s != QueryStatus::kQueued && s != QueryStatus::kRunning;
}

/// Distance table from a MatrixQuery. Row-major: table[i * num_targets
/// + j] is the shortest distance sources[i] → targets[j] (kInfinity when
/// unreachable). Every cell is bit-identical to the matching scalar
/// Sssp(g, sources[i]).dist[targets[j]] — the SsspBatch contract, so the
/// table is reproducible across backends, wave splits and pool widths.
struct MatrixResult {
  std::size_t num_sources = 0;
  std::size_t num_targets = 0;
  std::vector<weight_t> table;
  /// paths[k] answers the request's paths[k] pair: the vertex sequence
  /// source..target of one shortest path, empty when unreachable.
  std::vector<std::vector<vid_t>> paths;
  /// SsspBatch waves the query was split into.
  std::uint64_t waves = 0;
  /// Aggregate across waves; iterations sums per-wave rounds.
  core::TraversalStats stats;
};

using QueryResult =
    std::variant<std::monostate, BfsResult, SsspResult, BcResult, CcResult,
                 PagerankResult, MstResult, TriangleResult,
                 LabelPropagationResult, HitsResult, SalsaResult, PprResult,
                 MatrixResult>;

struct QueryResponse {
  QueryStatus status = QueryStatus::kQueued;
  /// Primitive result; std::monostate unless status == kDone. Extract
  /// with std::get<BfsResult>(response.result) etc.
  QueryResult result;
  /// Failure detail when status is kFailed / kRejected.
  std::string error;
  double queue_ms = 0.0;  ///< admission to runner pickup
  double run_ms = 0.0;    ///< runner pickup to terminal state
  double total_ms = 0.0;  ///< admission to terminal state
};

// --- dispatch ---------------------------------------------------------------

/// Runs a MatrixQuery as a sequence of ≤wave-lane SsspBatch waves and
/// projects the per-lane distance columns onto the target set (plus any
/// requested witness-walk path extractions). `reverse` is required only
/// for the kSpmv backend; a zero q.wave resolves via MatrixWaveWidth
/// with the default engine budget. Defined in engine/matrix.cpp.
MatrixResult RunMatrix(const graph::Csr& g, const MatrixQuery& q,
                       const graph::Csr* reverse = nullptr,
                       par::ThreadPool* pool = nullptr,
                       const RunControl& ctl = {});

/// The one request->primitive dispatch, shared by the engine's runners,
/// the bench baselines and the soak oracle (so adding a family is a
/// single-visitor change). `reverse` is required only for requests where
/// NeedsReverseGraph() holds; `pool`, when non-null, overrides the
/// request's own opts.pool (the engine pins its shared pool this way —
/// direct callers usually leave both null and run the request verbatim).
inline QueryResult RunRequest(const graph::Csr& g,
                              const QueryRequest& request,
                              const graph::Csr* reverse = nullptr,
                              par::ThreadPool* pool = nullptr,
                              const RunControl& ctl = {}) {
  GR_CHECK(!NeedsReverseGraph(request) || reverse != nullptr,
           "RunRequest: this request kind needs the reverse graph");
  return std::visit(
      [&](const auto& q) -> QueryResult {
        using Q = std::decay_t<decltype(q)>;
        auto opts = q.opts;
        if (pool) opts.pool = pool;
        if constexpr (std::is_same_v<Q, BfsQuery>) {
          return Bfs(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, SsspQuery>) {
          return Sssp(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, BcQuery>) {
          return Bc(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, CcQuery>) {
          return Cc(g, opts, ctl);
        } else if constexpr (std::is_same_v<Q, PagerankQuery>) {
          return Pagerank(g, opts, ctl);
        } else if constexpr (std::is_same_v<Q, MstQuery>) {
          return Mst(g, opts, ctl);
        } else if constexpr (std::is_same_v<Q, TrianglesQuery>) {
          return CountTriangles(g, opts, ctl);
        } else if constexpr (std::is_same_v<Q, LabelPropagationQuery>) {
          return LabelPropagation(g, opts, ctl);
        } else if constexpr (std::is_same_v<Q, HitsQuery>) {
          return Hits(g, *reverse, opts, ctl);
        } else if constexpr (std::is_same_v<Q, SalsaQuery>) {
          return Salsa(g, *reverse, opts, ctl);
        } else if constexpr (std::is_same_v<Q, MatrixQuery>) {
          return RunMatrix(g, q, reverse, pool, ctl);
        } else {
          static_assert(std::is_same_v<Q, PprQuery>);
          if (opts.backend == core::SpmvBackend::kSpmv) {
            opts.reverse = reverse;  // non-null per the check above
          }
          return PersonalizedPagerank(g, q.seeds, opts, ctl);
        }
      },
      request);
}


}  // namespace gunrock::engine
