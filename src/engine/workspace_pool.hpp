// Lease-based pool of warm core::Workspace arenas.
//
// The enactor-owned arena (DESIGN.md section 3) makes one primitive run
// allocation-free after its first iteration; the WorkspacePool extends
// that discipline across *queries*: each in-flight query leases one arena
// for its whole run and returns it warm, so the next query of the same
// shape finds every buffer already grown. Steady-state serving therefore
// allocates no workspace memory at all — the pool creates at most
// `capacity` arenas ever (verified by QueryEngineTest.LeaseRecycling via
// stats().created and Workspace::creations()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/workspace.hpp"

namespace gunrock::engine {

class WorkspacePool {
 public:
  /// `capacity` bounds the number of arenas ever created — the engine
  /// sizes it to its in-flight limit, one arena per concurrent query.
  explicit WorkspacePool(std::size_t capacity);

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// RAII hold on one arena; returns it to the pool on destruction.
  /// Movable, not copyable. A default-constructed Lease is empty.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(other.workspace_) {
      other.pool_ = nullptr;
      other.workspace_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        workspace_ = other.workspace_;
        other.pool_ = nullptr;
        other.workspace_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Release(); }

    explicit operator bool() const noexcept { return workspace_ != nullptr; }
    core::Workspace& workspace() const { return *workspace_; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, core::Workspace* workspace)
        : pool_(pool), workspace_(workspace) {}
    void Release() noexcept {
      if (pool_) pool_->Return(workspace_);
      pool_ = nullptr;
      workspace_ = nullptr;
    }

    WorkspacePool* pool_ = nullptr;
    core::Workspace* workspace_ = nullptr;
  };

  /// Acquires an arena: a recycled one when available, a fresh one while
  /// fewer than `capacity` exist, otherwise blocks until a lease returns.
  Lease Acquire();

  struct Stats {
    std::size_t capacity = 0;
    std::size_t created = 0;      ///< arenas ever constructed (<= capacity)
    std::size_t acquired = 0;     ///< total leases handed out
    std::size_t recycled = 0;     ///< leases served by a returned arena
    std::size_t outstanding = 0;  ///< leases currently held
    /// Sum of Workspace::creations() over every arena: container
    /// creations inside the leased workspaces. Constant across a warmed
    /// steady-state workload — the lease-recycling test's key assertion.
    std::size_t workspace_creations = 0;
  };
  /// Reading workspace_creations touches the arenas, so call this only
  /// while no lease is outstanding (or accept a racy sum).
  Stats stats() const;

 private:
  void Return(core::Workspace* workspace) noexcept;

  mutable std::mutex mutex_;
  std::condition_variable available_cv_;
  std::vector<std::unique_ptr<core::Workspace>> arenas_;  // owned storage
  std::vector<core::Workspace*> free_;
  std::size_t capacity_ = 0;
  std::size_t acquired_ = 0;
  std::size_t recycled_ = 0;
  std::size_t outstanding_ = 0;
};

}  // namespace gunrock::engine
