// QueryEngine: an asynchronous multi-query scheduler over one shared
// thread pool — the serving layer the Gunrock papers assume around the
// library ("a library invoked repeatedly by host applications across many
// sources and contexts").
//
// Shape of the system:
//
//   Submit(graph, request) ──► bounded admission queue ──► N runner
//   threads, each: lease a warm core::Workspace from the WorkspacePool,
//   run the primitive's engine-invokable runner on the shared
//   par::ThreadPool, fulfill the QueryHandle.
//
// The contracts that make this work:
//
//  - *One pool, pass-granular interleaving.* Every operator pass is a
//    bulk-synchronous launch that owns all lanes of the pool; the pool's
//    shared-submitter mode (ThreadPool::AcquireSharedSubmitters) serializes
//    launches, so concurrent queries interleave between passes, never
//    within one. Results are therefore identical to a direct call on the
//    same pool — the engine adds concurrency, not nondeterminism.
//  - *One warm workspace per in-flight query.* Workspace leases recycle
//    across queries, so steady-state serving performs no workspace
//    allocation (WorkspacePool's stats make this checkable).
//  - *Cooperative cancellation.* Cancel()/deadlines flip a CancelToken
//    polled by the runner at iteration boundaries; a cancelled query
//    releases its lease and lanes at the next boundary.
//  - *Bounded admission.* The queue holds at most queue_capacity queries;
//    past that, Submit either blocks (kBlock, default) or completes the
//    handle immediately as kRejected (kReject) — backpressure instead of
//    unbounded memory growth. Per-graph quotas add a second admission
//    gate: a registered graph may cap its own in-flight queries, with the
//    same block/reject semantics. Across graphs, admitted queries wait in
//    per-graph FIFO queues and runners pick the next graph by weighted
//    stride scheduling (GraphOptions::weight) — a cap bounds one tenant,
//    fair share guarantees every tenant forward progress.
//  - *Finish-order streaming.* SubmitAll(..., kStream) returns a
//    CompletionStream that yields queries as they complete instead of
//    Wait()-in-submit-order — a consumer drains results at the engine's
//    service rate with no head-of-line blocking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/query.hpp"
#include "engine/workspace_pool.hpp"
#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::engine {

struct QueryEngineOptions {
  /// Queries running concurrently (runner threads == workspace leases).
  unsigned max_in_flight = 4;
  /// Admitted-but-not-started queries the engine will hold.
  std::size_t queue_capacity = 64;
  /// What Submit does when the admission queue is full.
  enum class Backpressure {
    kBlock,   ///< block the submitter until a slot frees (default)
    kReject,  ///< complete the handle immediately with kRejected
  };
  Backpressure backpressure = Backpressure::kBlock;
  /// Shared compute pool; nullptr selects the process-global pool. The
  /// engine switches it into shared-submitter mode.
  par::ThreadPool* pool = nullptr;
  /// Master switch for the batch-coalescing pass: when a runner picks up
  /// a coalescing-enabled BFS/PPR query, it also pulls every compatible
  /// queued query on the same graph (same kind, same options) into one
  /// multi-source wave — up to 64 lanes sharing a single bit-parallel
  /// traversal (BfsBatch) or column-block power iteration (PprBatch) —
  /// and de-multiplexes the per-lane results to the individual handles.
  /// BFS results stay bit-identical to solo runs (depths are exact);
  /// PPR ranks agree with solo runs to the same rounding spread as two
  /// scalar runs of each other (bitwise on a single-lane pool — see
  /// ppr_batch.hpp). Per-query cancellation and deadlines still apply:
  /// a stopped lane drops out of the wave's active mask. Individual
  /// submits choose via SubmitOptions::coalesce; SubmitAll batches opt
  /// in by default.
  bool coalescing = true;
  /// Cap on a wave's lease-resident working set (a warm workspace lease
  /// retains its high-water mark forever): BFS waves cost ~36n bytes of
  /// lane-mask state regardless of width, PPR waves ~12n fixed plus 16n
  /// per lane (two double columns). The fixed cost over budget disables
  /// merging on that graph; otherwise the per-lane term caps the wave
  /// width. Without this, one 64-lane PPR wave on a 10M-vertex graph
  /// would permanently grow a lease by ~10 GB. When the budget allows
  /// fewer than two lanes, queries run solo.
  std::size_t coalesce_budget_bytes = std::size_t{256} << 20;
};

/// Per-registration serving knobs.
struct GraphOptions {
  /// Admission quota: maximum queries simultaneously in flight (queued +
  /// running) against this graph; 0 = unlimited. (Named `quota`, not
  /// max_in_flight, because QueryEngineOptions::max_in_flight sizes the
  /// runner/lease pool — an unrelated knob.) Submits past the quota
  /// follow the engine's backpressure policy — block until a query on
  /// this graph reaches a terminal state (kBlock) or complete the handle
  /// as kRejected (kReject). The quota is released on *any* terminal
  /// transition: done, cancelled, deadline or failure.
  std::size_t quota = 0;
  /// Fair-share weight (> 0). Queued queries are held in per-graph FIFO
  /// queues and runners pick the next graph by stride scheduling: each
  /// pickup advances the graph's virtual pass by 1/weight, and the graph
  /// with the smallest pass among those with queued work runs next. A
  /// graph with weight 2 therefore gets two pickups for every one a
  /// weight-1 graph gets — and, unlike the quota cap, a flooding tenant
  /// can never starve a light one: the light graph's next query is always
  /// at most a few pickups away, no matter how deep the flooder's
  /// backlog. Order *within* one graph stays FIFO, so single-graph
  /// workloads behave exactly as before.
  double weight = 1.0;
  /// Per-graph execution backend for the dense-iteration primitives
  /// (pagerank / hits / salsa / ppr): requests that arrive with
  /// backend == kAuto in their options are stamped with this value at
  /// submit, so the winning backend for a topology is chosen once at
  /// RegisterGraph time (the push/pull policy precedent). kAuto leaves
  /// requests untouched — each primitive then resolves kAuto from the
  /// graph's scale-free hint. A non-auto value in the request always
  /// wins over this knob.
  core::SpmvBackend backend = core::SpmvBackend::kAuto;
};

struct SubmitOptions {
  /// Latency budget from admission; 0 = none. A query past its deadline
  /// stops at the next iteration boundary (or never starts) and completes
  /// as kDeadlineExceeded.
  double deadline_ms = 0.0;
  /// Whether this query may be merged into a batched wave (only relevant
  /// for coalescible requests — see engine::CoalescibleRequest — and only
  /// when the engine's coalescing option is on). kDefault resolves to off
  /// for Submit; for SubmitAll it resolves to on only when the graph's
  /// scale-free hint is set — wave formation breaks even on meshes and
  /// road networks, so non-scale-free graphs skip it unless kOn forces
  /// the merge. kOn opts a query in regardless of entry path or topology.
  enum class Coalesce { kDefault, kOn, kOff };
  Coalesce coalesce = Coalesce::kDefault;
  /// Epoch pinning for dynamic graphs: 0 (default) resolves to the
  /// latest committed snapshot at submit time; a nonzero value pins the
  /// query to that exact epoch's view, so a reader can correlate results
  /// across a mutation storm. Submit throws for an epoch outside the
  /// graph's retention window, and for any nonzero epoch on a static
  /// registration. The snapshot is resolved once at admission — every
  /// query (and every lane of a coalesced wave, which only merges
  /// pointer-identical views) sees one consistent adjacency for its
  /// whole run, no matter what commits land meanwhile.
  std::uint64_t epoch = 0;
};

/// Tag selecting the streaming SubmitAll overload:
/// `engine.SubmitAll(graph, sources, proto, kStream)`.
struct StreamTag {};
inline constexpr StreamTag kStream{};

class QueryEngine;

/// Future-style handle to one submitted query. Copyable (shared state);
/// outlives the engine's interest in the query but must not outlive the
/// engine itself while still waiting.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  std::uint64_t id() const;
  QueryStatus status() const;
  bool Done() const { return IsTerminal(status()); }

  /// Blocks until the query reaches a terminal state; returns the
  /// response (valid for the handle's lifetime).
  const QueryResponse& Wait() const&;
  /// Rvalue-handle overload: the handle dies with the full expression, so
  /// the response is returned by value instead of by soon-dangling
  /// reference (engine.Submit(...).Wait() is safe).
  QueryResponse Wait() &&;

  /// Bounded wait; true when terminal within `ms`.
  bool WaitForMs(double ms) const;

  /// Requests cooperative cancellation (idempotent; takes effect at the
  /// next iteration boundary, or at pickup for a still-queued query).
  void Cancel() const;

 private:
  friend class QueryEngine;
  struct State;
  explicit QueryHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Finish-order drain of one streamed batch. Completions surface in the
/// order queries reach a terminal state (kDone, kCancelled, ... — every
/// submitted query is delivered exactly once, including rejects), not in
/// submission order. Copyable (shared state), but completions are
/// consumed: each one goes to exactly one Next() caller.
class CompletionStream {
 public:
  struct Completion {
    std::size_t index = 0;  ///< position in the submitted source span
    QueryHandle handle;     ///< terminal; Wait() returns immediately
  };

  CompletionStream() = default;

  /// Blocks for the next query to finish; std::nullopt once every query
  /// of the batch has been delivered (immediately for an empty batch).
  std::optional<Completion> Next();

  /// Bounded-wait Next(): std::nullopt after `ms` milliseconds with no
  /// completion — or immediately when the batch is fully delivered.
  /// Distinguish the two with delivered() == size(); a timeout leaves the
  /// stream intact, so a serving loop on a quiet stream can wake, do
  /// other work (report liveness, check shutdown flags) and come back.
  std::optional<Completion> NextFor(double ms);

  /// For open-ended streams (QueryEngine::OpenStream): declares that no
  /// further queries will be attached. Next() drains what was submitted
  /// and then returns std::nullopt; without this call an idle open stream
  /// blocks in Next() waiting for future submissions. No-op on batch
  /// streams (they are born closed at their batch size).
  void CloseSubmission();

  /// Queries in the batch (submitted so far, for an open stream).
  std::size_t size() const;
  /// Completions already handed out by Next().
  std::size_t delivered() const;

  /// Submit-order handles of the whole batch (e.g. for Cancel()); the
  /// batch is also drainable through Next() as usual afterwards.
  std::span<const QueryHandle> handles() const { return handles_; }

 private:
  friend class QueryEngine;
  friend class QueryHandle;  // QueryHandle::State feeds Shared
  struct Shared;
  std::shared_ptr<Shared> shared_;
  std::vector<QueryHandle> handles_;
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Adds `graph` to the registry under `name` (replacing any previous
  /// entry). The engine warms the lazy reverse-edge cache and computes
  /// the scale-free load-balance hint up front, so concurrent queries
  /// never race on the cache's first materialization and short queries
  /// don't pay the O(|V|) hint reduction per run. (The reverse CSR that
  /// HITS/SALSA need is built lazily at first use instead — it doubles
  /// the graph's footprint, so traversal-only serving never pays it.)
  /// In-flight queries keep their graph alive through a shared_ptr.
  void RegisterGraph(const std::string& name, graph::Csr graph,
                     const GraphOptions& gopts = {});
  void RegisterGraph(const std::string& name,
                     std::shared_ptr<const graph::Csr> graph,
                     const GraphOptions& gopts = {});
  bool HasGraph(const std::string& name) const;
  /// Throws gunrock::Error for an unknown name.
  std::shared_ptr<const graph::Csr> GetGraph(const std::string& name) const;

  /// Registers a mutable graph under `name`. Queries resolve a snapshot
  /// at submit time (SubmitOptions::epoch pins an older one); mutations
  /// go through the DynamicGraph handle itself — the engine only ever
  /// sees immutable snapshot views, so the admission, coalescing and
  /// quota machinery is unchanged. The registry-precomputed scale-free
  /// hint comes from the base at registration time (mutation batches are
  /// small relative to the base, so the topology class is stable).
  void RegisterDynamicGraph(const std::string& name,
                            std::shared_ptr<dynamic::DynamicGraph> graph,
                            const GraphOptions& gopts = {});
  /// The mutable handle registered under `name`; null when the name is
  /// bound to a static graph. Throws gunrock::Error for an unknown name.
  std::shared_ptr<dynamic::DynamicGraph> GetDynamicGraph(
      const std::string& name) const;

  /// Admits one query against a registered graph. Throws gunrock::Error
  /// for an unknown graph or a shut-down engine; applies the backpressure
  /// policy when the queue is full or the graph's quota is exhausted.
  QueryHandle Submit(const std::string& graph, QueryRequest request,
                     const SubmitOptions& options = {});

  /// Open-ended completion stream for incremental submission — the shape
  /// a long-lived connection needs: attach queries one at a time as they
  /// arrive off the wire, drain completions in finish order concurrently.
  /// The stream's Completion::index is the attach order (0, 1, 2, ...).
  /// Call CloseSubmission() when no more queries will be attached.
  CompletionStream OpenStream();
  /// Admits one query and attaches it to `stream` (which must come from
  /// OpenStream()); its completion is delivered through the stream like a
  /// batch member's. Returns the handle too (for Cancel()).
  QueryHandle Submit(const std::string& graph, QueryRequest request,
                     const SubmitOptions& options, CompletionStream& stream);

  /// Batch submission: stamps `prototype` with each source in turn
  /// (WithSource) and admits them all. With the kBlock policy this
  /// naturally throttles to the engine's service rate.
  std::vector<QueryHandle> SubmitAll(const std::string& graph,
                                     std::span<const vid_t> sources,
                                     const QueryRequest& prototype,
                                     const SubmitOptions& options = {});

  /// Streaming batch submission: same admission as SubmitAll, but the
  /// returned CompletionStream yields queries in finish order — no
  /// Wait()-in-submit-order head-of-line blocking.
  CompletionStream SubmitAll(const std::string& graph,
                             std::span<const vid_t> sources,
                             const QueryRequest& prototype,
                             const SubmitOptions& options, StreamTag);
  CompletionStream SubmitAll(const std::string& graph,
                             std::span<const vid_t> sources,
                             const QueryRequest& prototype, StreamTag tag) {
    return SubmitAll(graph, sources, prototype, SubmitOptions{}, tag);
  }

  /// Stops admission, fails queued queries over to kCancelled, waits for
  /// running queries to finish. Idempotent; the destructor calls it.
  /// Streamed batches stay drainable: their cancelled completions are
  /// delivered through the CompletionStream as usual.
  void Shutdown();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failed = 0;
    /// Batched multi-source runs executed (each served >= 2 queries).
    std::uint64_t waves = 0;
    /// Queries served through waves (waves' lane count total).
    std::uint64_t coalesced = 0;
    /// Largest wave formed so far (lanes).
    std::uint64_t max_wave = 0;
    /// Gauges (snapshot, not monotone): admitted queries waiting for a
    /// runner, and queries currently executing. The observability layer
    /// polls these for queue-depth reporting.
    std::uint64_t queued = 0;
    std::uint64_t running = 0;
  };
  Stats stats() const;

  /// Serving-telemetry summary of one terminal transition, pushed to the
  /// registered observer. Carries only what an observability layer needs
  /// (family, outcome, latency split) — never the result payload, so
  /// observing is O(1) per query.
  struct QueryObservation {
    const char* kind = "";  ///< KindName() of the request
    QueryStatus status = QueryStatus::kDone;
    double queue_ms = 0.0;
    double run_ms = 0.0;
    double total_ms = 0.0;
  };
  using QueryObserver = std::function<void(const QueryObservation&)>;
  /// Registers `observer`, called once per query on its terminal
  /// transition (any status, including rejects), after the handle is
  /// fulfilled and outside engine locks. Pass nullptr to clear. The
  /// observer must be thread-safe: runners invoke it concurrently.
  void SetObserver(QueryObserver observer);
  WorkspacePool::Stats workspace_stats() const { return workspaces_.stats(); }
  /// Queries currently in flight (queued + running) against `name`;
  /// throws for an unknown graph.
  std::size_t GraphInFlight(const std::string& name) const;
  par::ThreadPool& pool() const noexcept { return *pool_; }
  unsigned max_in_flight() const noexcept {
    return static_cast<unsigned>(runners_.size());
  }

 private:
  friend class QueryHandle;  // QueryHandle::State holds a GraphAux ref

  /// Mutable per-registration state shared between the registry entry and
  /// every in-flight query against it (so a Register replacing the entry
  /// does not orphan the accounting of already-admitted queries).
  struct GraphAux;

  void RunnerLoop();
  /// Fair-share pickup (stride scheduling): pops the front of the queued
  /// graph with the smallest virtual pass and charges it 1/weight.
  /// Returns nullptr when every per-graph queue is empty. Caller holds
  /// queue_mutex_.
  std::shared_ptr<QueryHandle::State> PickNextLocked();
  /// Removes `aux` from the scheduled set if its queue emptied; adds it
  /// on first enqueue (charging new arrivals the current virtual time so
  /// an idle graph cannot hoard credit). Caller holds queue_mutex_.
  void EnqueueLocked(const std::shared_ptr<QueryHandle::State>& state);
  void Execute(const std::shared_ptr<QueryHandle::State>& state);
  /// Solo execution body (the classic per-query path); the state is
  /// already marked running and its token pre-checked.
  void RunSolo(const std::shared_ptr<QueryHandle::State>& state);
  /// Pulls every queued query compatible with `leader` (same graph, same
  /// kind and options, coalescing-enabled) into `wave`, up to the 64-lane
  /// cap; removed queries free queue capacity.
  void GatherWave(const std::shared_ptr<QueryHandle::State>& leader,
                  std::vector<std::shared_ptr<QueryHandle::State>>* wave);
  /// Runs a >= 2-lane wave through BfsBatch / PprBatch and de-multiplexes
  /// per-lane results to the handles; per-lane tokens are polled at every
  /// iteration boundary, dropping stopped lanes from the active mask.
  void RunWave(std::vector<std::shared_ptr<QueryHandle::State>> wave);
  /// `from_batch` marks the SubmitAll entry paths: a Coalesce::kDefault
  /// query opts into wave formation only from a batch AND on a graph
  /// whose scale-free hint is set (meshes break even; see
  /// SubmitOptions::Coalesce).
  QueryHandle SubmitImpl(const std::string& graph, QueryRequest request,
                         const SubmitOptions& options, bool from_batch,
                         std::shared_ptr<CompletionStream::Shared> stream,
                         std::size_t stream_index);
  /// Fulfills the handle (idempotent) and, on the actual transition,
  /// releases the graph quota, notifies blocked submitters and feeds the
  /// completion stream.
  void Complete(const std::shared_ptr<QueryHandle::State>& state,
                QueryStatus status, QueryResult result, std::string error);
  void Count(QueryStatus status);

  QueryEngineOptions options_;
  par::ThreadPool* pool_ = nullptr;
  WorkspacePool workspaces_;

  struct GraphEntry {
    std::shared_ptr<const graph::Csr> graph;
    /// Non-null for RegisterDynamicGraph entries; queries resolve their
    /// snapshot view from it at submit time.
    std::shared_ptr<dynamic::DynamicGraph> dynamic;
    bool scale_free = false;  // precomputed ComputeScaleFreeHint
    core::SpmvBackend backend = core::SpmvBackend::kAuto;  // GraphOptions
    std::shared_ptr<GraphAux> aux;
  };
  GraphEntry GetEntry(const std::string& name) const;
  /// Reverse CSR of `g`, built on first use and cached in `aux`
  /// (thread-safe; concurrent first users serialize on a once_flag).
  const graph::Csr& ReverseOf(const graph::Csr& g, GraphAux& aux);

  mutable std::mutex graphs_mutex_;
  std::map<std::string, GraphEntry> graphs_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;      // runners wait for work
  std::condition_variable not_full_cv_;   // blocked submitters wait here
  /// Fair-share scheduled set: every GraphAux with a non-empty waiting
  /// queue, scanned linearly at pickup (registrations are few). The
  /// per-graph FIFO queues live inside GraphAux; queued_ is their total,
  /// bounded by options_.queue_capacity.
  std::vector<std::shared_ptr<GraphAux>> scheduled_;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  /// Virtual time floor: the pass charged at the latest pickup. A graph
  /// entering the scheduled set starts at max(its pass, this), so credit
  /// does not accrue while idle.
  double virtual_time_ = 0.0;
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  Stats stats_;

  mutable std::mutex observer_mutex_;
  std::shared_ptr<const QueryObserver> observer_;

  std::vector<std::thread> runners_;
};

}  // namespace gunrock::engine
