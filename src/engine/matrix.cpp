// MatrixQuery execution: the wave loop over SsspBatch plus the target
// projection and on-demand path extraction (engine/query.hpp).
#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "core/compute.hpp"
#include "engine/query.hpp"
#include "engine/query_engine.hpp"  // QueryEngineOptions' default budget
#include "graph/stats.hpp"
#include "util/error.hpp"

namespace gunrock::engine {

namespace {

/// One shortest path source..target recovered from the source's finished
/// distance column by walking witness edges: (u, v) is a witness when
/// fl(dist[u] + w) == dist[v]. Every vertex with a finite label has a
/// witness predecessor (the last edge of the optimal fold that produced
/// its label), so a DFS over witness edges from the target always
/// reaches the source — the visited set makes that robust to zero-weight
/// plateaus, where a greedy single-step walk can ping-pong forever.
/// Scans target-side out-neighbors as in-edges, the symmetric-graph
/// assumption scalar SSSP's predecessor recompute already makes.
std::vector<vid_t> ExtractPath(const graph::Csr& g,
                               std::span<const weight_t> dist, vid_t source,
                               vid_t target) {
  if (dist[static_cast<std::size_t>(target)] == kInfinity) return {};
  std::vector<vid_t> path;
  if (source == target) {
    path.push_back(source);
    return path;
  }
  std::vector<std::uint8_t> visited(
      static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> stack{target};
  // parent[v] = the vertex we reached v *from* during the DFS — i.e. the
  // next hop towards the target in the recovered path.
  std::vector<vid_t> parent(static_cast<std::size_t>(g.num_vertices()),
                            kInvalidVid);
  visited[static_cast<std::size_t>(target)] = 1;
  while (!stack.empty()) {
    const vid_t v = stack.back();
    stack.pop_back();
    if (v == source) {
      for (vid_t cur = source; cur != kInvalidVid;
           cur = parent[static_cast<std::size_t>(cur)]) {
        path.push_back(cur);
      }
      return path;
    }
    const weight_t dv = dist[static_cast<std::size_t>(v)];
    for (eid_t e = g.row_begin(v); e < g.row_end(v); ++e) {
      const vid_t u = g.edge_dest(e);
      if (visited[static_cast<std::size_t>(u)]) continue;
      if (dist[static_cast<std::size_t>(u)] + g.edge_weight(e) != dv) {
        continue;
      }
      visited[static_cast<std::size_t>(u)] = 1;
      parent[static_cast<std::size_t>(u)] = v;
      stack.push_back(u);
    }
  }
  return {};  // no witness chain (asymmetric input): report "no path"
}

}  // namespace

MatrixResult RunMatrix(const graph::Csr& g, const MatrixQuery& q,
                       const graph::Csr* reverse, par::ThreadPool* pool,
                       const RunControl& ctl) {
  GR_CHECK(!q.sources.empty(), "matrix query needs at least one source");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  for (const vid_t t : q.targets) {
    GR_CHECK(t >= 0 && static_cast<std::size_t>(t) < n,
             SourceRangeError("matrix target", t, g.num_vertices()));
  }
  // Each path request rides the wave holding its source's column; map it
  // to the first occurrence of that source in the lane axis up front.
  std::vector<std::size_t> path_lane(q.paths.size());
  for (std::size_t k = 0; k < q.paths.size(); ++k) {
    const auto [s, t] = q.paths[k];
    GR_CHECK(t >= 0 && static_cast<std::size_t>(t) < n,
             SourceRangeError("matrix path target", t, g.num_vertices()));
    const auto it = std::find(q.sources.begin(), q.sources.end(), s);
    GR_CHECK(it != q.sources.end(),
             "matrix path source " + std::to_string(s) +
                 " is not in the query's source list");
    path_lane[k] = static_cast<std::size_t>(it - q.sources.begin());
  }

  SsspBatchOptions opts = q.opts;
  if (pool) opts.pool = pool;
  if (opts.backend == MatrixBackend::kSpmv) {
    opts.reverse = reverse;  // RunRequest pre-checked non-null
  }
  // Resolve the hint once so per-wave kAuto resolution (and a zero
  // q.wave) never pays the O(|V|) reduction more than once.
  const bool scale_free = ctl.scale_free_hint >= 0
                              ? ctl.scale_free_hint > 0
                              : graph::ComputeScaleFreeHint(g, opts.Pool());
  RunControl inner = ctl;
  inner.scale_free_hint = scale_free ? 1 : 0;
  const std::uint32_t wave =
      q.wave > 0 ? std::min<std::uint32_t>(q.wave, kMaxBatchLanes)
                 : MatrixWaveWidth(g.num_vertices(), scale_free,
                                   QueryEngineOptions{}.coalesce_budget_bytes);

  MatrixResult out;
  out.num_sources = q.sources.size();
  out.num_targets = q.targets.empty() ? n : q.targets.size();
  out.table.resize(out.num_sources * out.num_targets);
  out.paths.resize(q.paths.size());

  for (std::size_t base = 0; base < out.num_sources; base += wave) {
    const std::size_t lanes =
        std::min<std::size_t>(wave, out.num_sources - base);
    const auto r = SsspBatch(
        g, std::span<const vid_t>(q.sources).subspan(base, lanes), opts,
        inner);
    ++out.waves;
    out.stats.edges_visited += r.stats.edges_visited;
    out.stats.iterations += r.stats.iterations;
    par::ThreadPool& p = opts.Pool();
    p.Parallel([&](unsigned rank) {
      for (std::size_t l = rank; l < lanes; l += p.num_threads()) {
        const std::vector<weight_t>& dist = r.dist[l];
        weight_t* row = out.table.data() + (base + l) * out.num_targets;
        if (q.targets.empty()) {
          std::memcpy(row, dist.data(), n * sizeof(weight_t));
        } else {
          for (std::size_t j = 0; j < out.num_targets; ++j) {
            row[j] = dist[static_cast<std::size_t>(q.targets[j])];
          }
        }
      }
    });
    for (std::size_t k = 0; k < q.paths.size(); ++k) {
      if (path_lane[k] < base || path_lane[k] >= base + lanes) continue;
      out.paths[k] = ExtractPath(g, r.dist[path_lane[k] - base],
                                 q.paths[k].first, q.paths[k].second);
    }
  }
  out.stats.lane_efficiency = 1.0;
  return out;
}

}  // namespace gunrock::engine
