#include "engine/query_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "core/cancel.hpp"
#include "graph/stats.hpp"
#include "primitives/bfs_batch.hpp"
#include "primitives/ppr_batch.hpp"
#include "util/error.hpp"

namespace gunrock::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Terminal status of a query whose token fired: a pure deadline expiry
/// maps to kDeadlineExceeded, an explicit Cancel() (even one racing a
/// deadline) to kCancelled. The single classification shared by the
/// queued-drop, mid-wave-drop and post-wave paths.
QueryStatus StoppedStatus(const core::CancelToken& token) {
  const bool deadline =
      token.deadline_exceeded() && !token.cancel_requested();
  return deadline ? QueryStatus::kDeadlineExceeded
                  : QueryStatus::kCancelled;
}

}  // namespace

/// Mutable per-registration state shared by the registry entry and every
/// query admitted against it. `quota` and `weight` are immutable after
/// registration; `in_flight`, `waiting` and `pass` are guarded by the
/// engine's queue_mutex_; the reverse CSR is built at most once behind
/// the once_flag.
struct QueryEngine::GraphAux {
  std::size_t quota = 0;      ///< 0 = unlimited
  double weight = 1.0;        ///< fair-share weight (> 0)
  std::size_t in_flight = 0;  ///< queued + running (guarded by queue_mutex_)
  /// Admitted queries not yet picked up, FIFO within the graph. The
  /// engine's fair-share scheduler drains these queues by weighted
  /// stride: `pass` is this graph's virtual time, advanced by 1/weight
  /// per pickup; the scheduled graph with the smallest pass runs next.
  std::deque<std::shared_ptr<QueryHandle::State>> waiting;
  double pass = 0.0;
  std::once_flag reverse_once;
  std::shared_ptr<const graph::Csr> reverse;
};

/// Queue feeding one CompletionStream: Complete() pushes every terminal
/// query of the batch here, in the order the transitions happen.
struct CompletionStream::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<CompletionStream::Completion> ready;
  std::size_t expected = 0;   ///< batch size / queries attached so far
  std::size_t delivered = 0;  ///< completions handed out by Next()
  /// True for OpenStream() streams still accepting attachments: their
  /// `expected` grows per Submit, and Next() must keep waiting on an
  /// empty drained stream until CloseSubmission() flips this off. Batch
  /// streams are born closed at their batch size.
  bool open = false;

  bool DrainedLocked() const {
    return !open && delivered == expected;
  }

  /// Shared drain step of Next()/NextFor(): pops the next completion
  /// under the caller's lock, or nullopt when nothing is ready (fully
  /// delivered batch or timed-out wait) — one copy of the delivery
  /// bookkeeping.
  std::optional<Completion> PopReadyLocked() {
    if (ready.empty()) return std::nullopt;
    Completion next = std::move(ready.front());
    ready.pop_front();
    ++delivered;
    return next;
  }
};

/// Shared state behind one QueryHandle: the request, the cancellation
/// token, and the response slot the runner fulfills.
struct QueryHandle::State {
  std::uint64_t id = 0;
  std::shared_ptr<const graph::Csr> graph;
  /// For dynamic graphs: the epoch-pinned snapshot backing `graph`, held
  /// so the view (and its lazily built reverse) outlives the run even if
  /// the epoch ages out of the retention window mid-query.
  std::shared_ptr<const dynamic::Snapshot> snapshot;
  std::shared_ptr<QueryEngine::GraphAux> aux;
  int scale_free_hint = -1;  // registry-precomputed (see RunControl)
  QueryRequest request;
  core::CancelToken token;
  /// Holds one slot of the graph's quota (set at admission; rejected
  /// queries never count).
  bool counted = false;
  /// May be merged into a batched multi-source wave (resolved at submit:
  /// engine coalescing on + submit opted in + request coalescible).
  bool coalescible = false;
  /// Left its waiting queue for a runner (guarded by queue_mutex_);
  /// backs the stats().running gauge.
  bool picked = false;
  /// Streamed batch this query belongs to (null for plain submits).
  std::shared_ptr<CompletionStream::Shared> stream;
  std::size_t stream_index = 0;
  /// Claimed by the one Complete() call that performs the terminal
  /// transition; later calls are no-ops.
  std::atomic<bool> completed{false};

  Clock::time_point submitted_at{};
  Clock::time_point started_at{};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  QueryStatus status = QueryStatus::kQueued;
  QueryResponse response;
};

// --- QueryHandle ------------------------------------------------------------

std::uint64_t QueryHandle::id() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  return state_->id;
}

QueryStatus QueryHandle::status() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

const QueryResponse& QueryHandle::Wait() const& {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return IsTerminal(state_->status); });
  return state_->response;
}

QueryResponse QueryHandle::Wait() && {
  const QueryHandle& self = *this;
  return self.Wait();  // copy out: the temporary handle owns the state
}

bool QueryHandle::WaitForMs(double ms) const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(ms),
      [&] { return IsTerminal(state_->status); });
}

void QueryHandle::Cancel() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  state_->token.Cancel();
}

// --- CompletionStream -------------------------------------------------------

std::optional<CompletionStream::Completion> CompletionStream::Next() {
  if (!shared_) return std::nullopt;
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [&] {
    return !shared_->ready.empty() || shared_->DrainedLocked();
  });
  return shared_->PopReadyLocked();  // empty = batch fully delivered
}

std::optional<CompletionStream::Completion> CompletionStream::NextFor(
    double ms) {
  if (!shared_) return std::nullopt;
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(ms), [&] {
        return !shared_->ready.empty() || shared_->DrainedLocked();
      });
  return shared_->PopReadyLocked();  // empty = timeout or drained
}

void CompletionStream::CloseSubmission() {
  if (!shared_) return;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->open = false;
  }
  shared_->cv.notify_all();
}

std::size_t CompletionStream::size() const {
  if (!shared_) return 0;
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->expected;
}

std::size_t CompletionStream::delivered() const {
  if (!shared_) return 0;
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->delivered;
}

// --- QueryEngine ------------------------------------------------------------

QueryEngine::QueryEngine(QueryEngineOptions options)
    : options_(options),
      pool_(options.pool ? options.pool : &par::ThreadPool::Global()),
      workspaces_(options.max_in_flight > 0 ? options.max_in_flight : 1) {
  GR_CHECK(options_.max_in_flight > 0, "QueryEngine needs max_in_flight >= 1");
  GR_CHECK(options_.queue_capacity > 0,
           "QueryEngine needs queue_capacity >= 1");
  // Runner threads are concurrent external submitters of the shared pool;
  // serialize their bulk-synchronous launches instead of treating them as
  // misuse. Released in Shutdown(), so the pool reverts to the strict
  // single-owner contract once no engine is using it.
  pool_->AcquireSharedSubmitters();
  runners_.reserve(options_.max_in_flight);
  for (unsigned r = 0; r < options_.max_in_flight; ++r) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::RegisterGraph(const std::string& name, graph::Csr graph,
                                const GraphOptions& gopts) {
  RegisterGraph(name, std::make_shared<const graph::Csr>(std::move(graph)),
                gopts);
}

void QueryEngine::RegisterGraph(const std::string& name,
                                std::shared_ptr<const graph::Csr> graph,
                                const GraphOptions& gopts) {
  GR_CHECK(graph != nullptr, "RegisterGraph: null graph");
  GR_CHECK(gopts.weight > 0.0, "RegisterGraph: fair-share weight must be > 0");
  GraphEntry entry;
  // Materialize the lazily built per-edge source array now: its first
  // build mutates a cache inside the (otherwise read-only) Csr, and two
  // concurrent CC queries must not race on it. The scale-free hint is
  // likewise graph-invariant — pay its O(|V|) reduction once here, not
  // once per query.
  graph->edge_sources(*pool_);
  entry.scale_free = graph::ComputeScaleFreeHint(*graph, *pool_);
  entry.backend = gopts.backend;
  entry.graph = std::move(graph);
  entry.aux = std::make_shared<GraphAux>();
  entry.aux->quota = gopts.quota;
  entry.aux->weight = gopts.weight;
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  graphs_[name] = std::move(entry);
}

void QueryEngine::RegisterDynamicGraph(
    const std::string& name, std::shared_ptr<dynamic::DynamicGraph> graph,
    const GraphOptions& gopts) {
  GR_CHECK(graph != nullptr, "RegisterDynamicGraph: null graph");
  GR_CHECK(gopts.weight > 0.0,
           "RegisterDynamicGraph: fair-share weight must be > 0");
  // Same registration-time warming as a static graph, applied to the
  // initial base view: snapshot views created by later commits warm
  // their own caches when they materialize.
  std::shared_ptr<const graph::Csr> base =
      graph->Current()->View(*pool_);
  base->edge_sources(*pool_);
  GraphEntry entry;
  entry.scale_free = graph::ComputeScaleFreeHint(*base, *pool_);
  entry.backend = gopts.backend;
  entry.graph = std::move(base);
  entry.dynamic = std::move(graph);
  entry.aux = std::make_shared<GraphAux>();
  entry.aux->quota = gopts.quota;
  entry.aux->weight = gopts.weight;
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  graphs_[name] = std::move(entry);
}

std::shared_ptr<dynamic::DynamicGraph> QueryEngine::GetDynamicGraph(
    const std::string& name) const {
  return GetEntry(name).dynamic;
}

bool QueryEngine::HasGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  return graphs_.count(name) > 0;
}

QueryEngine::GraphEntry QueryEngine::GetEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  auto it = graphs_.find(name);
  GR_CHECK(it != graphs_.end(), "QueryEngine: unknown graph '" + name + "'");
  return it->second;
}

std::shared_ptr<const graph::Csr> QueryEngine::GetGraph(
    const std::string& name) const {
  return GetEntry(name).graph;
}

const graph::Csr& QueryEngine::ReverseOf(const graph::Csr& g,
                                         GraphAux& aux) {
  std::call_once(aux.reverse_once, [&] {
    aux.reverse = std::make_shared<const graph::Csr>(
        graph::ReverseCsr(g, *pool_));
  });
  return *aux.reverse;
}

std::size_t QueryEngine::GraphInFlight(const std::string& name) const {
  const GraphEntry entry = GetEntry(name);  // throws on unknown graph
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return entry.aux->in_flight;
}

QueryHandle QueryEngine::Submit(const std::string& graph,
                                QueryRequest request,
                                const SubmitOptions& options) {
  return SubmitImpl(graph, std::move(request), options, false, nullptr, 0);
}

CompletionStream QueryEngine::OpenStream() {
  CompletionStream stream;
  stream.shared_ = std::make_shared<CompletionStream::Shared>();
  stream.shared_->open = true;
  return stream;
}

QueryHandle QueryEngine::Submit(const std::string& graph,
                                QueryRequest request,
                                const SubmitOptions& options,
                                CompletionStream& stream) {
  GR_CHECK(stream.shared_ != nullptr,
           "Submit: stream must come from OpenStream()");
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(stream.shared_->mutex);
    GR_CHECK(stream.shared_->open,
             "Submit: stream's submission side is closed");
    index = stream.shared_->expected++;
  }
  try {
    return SubmitImpl(graph, std::move(request), options, false,
                      stream.shared_, index);
  } catch (...) {
    // The query was never admitted, so no completion will ever arrive
    // for this slot — give it back or the stream can never drain.
    {
      std::lock_guard<std::mutex> lock(stream.shared_->mutex);
      --stream.shared_->expected;
    }
    stream.shared_->cv.notify_all();
    throw;
  }
}

QueryHandle QueryEngine::SubmitImpl(
    const std::string& graph, QueryRequest request,
    const SubmitOptions& options, bool from_batch,
    std::shared_ptr<CompletionStream::Shared> stream,
    std::size_t stream_index) {
  auto state = std::make_shared<QueryHandle::State>();
  GraphEntry entry = GetEntry(graph);  // throws on unknown graph
  if (entry.dynamic) {
    // Resolve the pinned view now: the query keeps exactly this
    // adjacency no matter what commits land while it waits or runs.
    std::shared_ptr<const dynamic::Snapshot> snap =
        options.epoch == 0 ? entry.dynamic->Current()
                           : entry.dynamic->SnapshotAt(options.epoch);
    state->graph = snap->View(*pool_);
    state->snapshot = std::move(snap);
  } else {
    GR_CHECK(options.epoch == 0,
             "QueryEngine: graph '" + graph +
                 "' is static; epoch pinning needs a dynamic graph");
    state->graph = std::move(entry.graph);
  }
  state->aux = entry.aux;
  state->scale_free_hint = entry.scale_free ? 1 : 0;
  state->request = std::move(request);
  ApplyBackendPolicy(state->request, entry.backend);
  // Matrix queries reuse the coalescing budget model for their internal
  // wave width, gated on the registry's scale-free hint like BFS wave
  // formation; an explicit request value always wins.
  if (auto* m = std::get_if<MatrixQuery>(&state->request);
      m != nullptr && m->wave == 0) {
    m->wave = MatrixWaveWidth(state->graph->num_vertices(),
                              entry.scale_free,
                              options_.coalesce_budget_bytes);
  }
  // kDefault opts into wave formation only from the SubmitAll fan-out
  // paths AND on scale-free graphs — wave formation breaks even on
  // meshes/road networks, so those skip it unless kOn forces the merge.
  const bool opted_in =
      options.coalesce == SubmitOptions::Coalesce::kOn ||
      (options.coalesce == SubmitOptions::Coalesce::kDefault &&
       from_batch && entry.scale_free);
  state->coalescible = options_.coalescing && opted_in &&
                       CoalescibleRequest(state->request);
  state->stream = std::move(stream);
  state->stream_index = stream_index;
  state->submitted_at = Clock::now();
  if (options.deadline_ms > 0.0) {
    state->token.SetDeadlineAfterMs(options.deadline_ms);
  }

  GraphAux& aux = *entry.aux;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    GR_CHECK(accepting_, "QueryEngine: Submit after Shutdown");
    state->id = next_id_++;
    // Two admission gates with one policy: the global bounded queue
    // (queued_ totals the per-graph queues) and the graph's own
    // in-flight quota.
    const auto admissible = [&] {
      return queued_ < options_.queue_capacity &&
             (aux.quota == 0 || aux.in_flight < aux.quota);
    };
    if (!admissible()) {
      if (options_.backpressure ==
          QueryEngineOptions::Backpressure::kReject) {
        ++stats_.submitted;
        ++stats_.rejected;
        const char* why = queued_ >= options_.queue_capacity
                              ? "admission queue full"
                              : "graph quota exhausted";
        lock.unlock();
        Complete(state, QueryStatus::kRejected, {}, why);
        return QueryHandle(std::move(state));
      }
      not_full_cv_.wait(lock, [&] { return admissible() || !accepting_; });
      GR_CHECK(accepting_, "QueryEngine: shut down while Submit blocked");
    }
    EnqueueLocked(state);
    ++stats_.submitted;
    ++aux.in_flight;
    state->counted = true;
  }
  queue_cv_.notify_one();
  return QueryHandle(std::move(state));
}

void QueryEngine::EnqueueLocked(
    const std::shared_ptr<QueryHandle::State>& state) {
  const std::shared_ptr<GraphAux>& aux = state->aux;
  if (aux->waiting.empty()) {
    // Joining the scheduled set: start at the current virtual time, not
    // at a pass left behind before going idle — otherwise a graph could
    // bank credit while quiet and lock out the others on return.
    aux->pass = std::max(aux->pass, virtual_time_);
    scheduled_.push_back(aux);
  }
  aux->waiting.push_back(state);
  ++queued_;
}

std::shared_ptr<QueryHandle::State> QueryEngine::PickNextLocked() {
  if (queued_ == 0) return nullptr;
  std::size_t best = scheduled_.size();
  for (std::size_t i = 0; i < scheduled_.size(); ++i) {
    if (best == scheduled_.size() ||
        scheduled_[i]->pass < scheduled_[best]->pass) {
      best = i;
    }
  }
  GraphAux& aux = *scheduled_[best];
  auto state = std::move(aux.waiting.front());
  aux.waiting.pop_front();
  --queued_;
  virtual_time_ = aux.pass;
  aux.pass += 1.0 / aux.weight;
  state->picked = true;
  ++running_;
  if (aux.waiting.empty()) {
    scheduled_.erase(scheduled_.begin() +
                     static_cast<std::ptrdiff_t>(best));
  }
  return state;
}

std::vector<QueryHandle> QueryEngine::SubmitAll(
    const std::string& graph, std::span<const vid_t> sources,
    const QueryRequest& prototype, const SubmitOptions& options) {
  std::vector<QueryHandle> handles;
  handles.reserve(sources.size());
  for (const vid_t s : sources) {
    handles.push_back(SubmitImpl(graph, WithSource(prototype, s), options,
                                 /*from_batch=*/true, nullptr, 0));
  }
  return handles;
}

CompletionStream QueryEngine::SubmitAll(const std::string& graph,
                                        std::span<const vid_t> sources,
                                        const QueryRequest& prototype,
                                        const SubmitOptions& options,
                                        StreamTag) {
  CompletionStream stream;
  stream.shared_ = std::make_shared<CompletionStream::Shared>();
  stream.shared_->expected = sources.size();
  stream.handles_.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    stream.handles_.push_back(SubmitImpl(graph,
                                         WithSource(prototype, sources[i]),
                                         options, /*from_batch=*/true,
                                         stream.shared_, i));
  }
  return stream;
}

void QueryEngine::Shutdown() {
  std::deque<std::shared_ptr<QueryHandle::State>> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) return;
    stopping_ = true;
    accepting_ = false;
    for (const auto& aux : scheduled_) {
      for (auto& state : aux->waiting) orphaned.push_back(std::move(state));
      aux->waiting.clear();
    }
    scheduled_.clear();
    queued_ = 0;
    stats_.cancelled += orphaned.size();
  }
  queue_cv_.notify_all();
  not_full_cv_.notify_all();
  for (auto& state : orphaned) {
    Complete(state, QueryStatus::kCancelled, {},
             "engine shut down before the query started");
  }
  for (auto& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  pool_->ReleaseSharedSubmitters();  // runners are gone; give the pool back
}

QueryEngine::Stats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  Stats snapshot = stats_;
  snapshot.queued = queued_;
  snapshot.running = running_;
  return snapshot;
}

void QueryEngine::SetObserver(QueryObserver observer) {
  auto shared = observer ? std::make_shared<const QueryObserver>(
                               std::move(observer))
                         : nullptr;
  std::lock_guard<std::mutex> lock(observer_mutex_);
  observer_ = std::move(shared);
}

void QueryEngine::Count(QueryStatus status) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  switch (status) {
    case QueryStatus::kDone: ++stats_.done; break;
    case QueryStatus::kCancelled: ++stats_.cancelled; break;
    case QueryStatus::kDeadlineExceeded: ++stats_.deadline_exceeded; break;
    case QueryStatus::kFailed: ++stats_.failed; break;
    default: break;
  }
}

void QueryEngine::RunnerLoop() {
  for (;;) {
    std::shared_ptr<QueryHandle::State> state;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || queued_ > 0; });
      state = PickNextLocked();
      if (!state) return;  // stopping_ and drained
    }
    not_full_cv_.notify_all();
    Execute(state);
  }
}

void QueryEngine::Execute(
    const std::shared_ptr<QueryHandle::State>& state) {
  std::vector<std::shared_ptr<QueryHandle::State>> wave;
  wave.push_back(state);
  if (options_.coalescing && state->coalescible) {
    GatherWave(state, &wave);
  }
  for (const auto& s : wave) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->started_at = Clock::now();
    s->status = QueryStatus::kRunning;
  }
  // Queries cancelled (or expired) while queued never touch the pool.
  std::vector<std::shared_ptr<QueryHandle::State>> live;
  live.reserve(wave.size());
  for (auto& s : wave) {
    if (s->token.ShouldStop()) {
      const QueryStatus status = StoppedStatus(s->token);
      Count(status);  // count first: Wait() returning implies stats landed
      Complete(s, status, {}, "stopped before start");
    } else {
      live.push_back(std::move(s));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    RunSolo(live.front());  // a wave of one is just a query
    return;
  }
  RunWave(std::move(live));
}

void QueryEngine::RunSolo(
    const std::shared_ptr<QueryHandle::State>& state) {
  QueryStatus status;
  QueryResult result;
  std::string error;
  // Engine-level source validation with the canonical error text, shared
  // with the wave path's per-lane check — a client sees the identical
  // message whether its query ran solo or merged into a wave. (The
  // primitives' own GR_CHECKs stay as the backstop for direct callers.)
  if (auto bad = ValidateSource(state->request,
                                state->graph->num_vertices())) {
    Count(QueryStatus::kFailed);
    Complete(state, QueryStatus::kFailed, {}, std::move(*bad));
    return;
  }
  try {
    // Resolve the reverse graph before leasing a workspace: its one-time
    // build is a registry concern, not part of this query's scratch. The
    // build itself is not cancellable; re-check the token right after so
    // a query cancelled (or expired) during it stops before leasing a
    // workspace and starting the run.
    const graph::Csr* reverse = nullptr;
    if (NeedsReverseGraph(state->request)) {
      // Snapshot views carry their own reverse cache (one per epoch);
      // the registry cache only ever sees the static registration.
      reverse = state->snapshot
                    ? state->snapshot->ReverseView(*pool_).get()
                    : &ReverseOf(*state->graph, *state->aux);
      state->token.Check();
    }

    WorkspacePool::Lease lease = workspaces_.Acquire();
    RunControl ctl;
    ctl.workspace = &lease.workspace();
    ctl.cancel = &state->token;
    ctl.scale_free_hint = state->scale_free_hint;
    result = RunRequest(*state->graph, state->request, reverse, pool_, ctl);
    status = QueryStatus::kDone;
  } catch (const core::Cancelled& c) {
    status = c.deadline_exceeded ? QueryStatus::kDeadlineExceeded
                                 : QueryStatus::kCancelled;
    error = c.what();
  } catch (const std::exception& e) {
    status = QueryStatus::kFailed;
    error = e.what();
  }
  // The lease died with the try scope; bump the counters before
  // fulfilling the handle: a waiter observing the terminal state must
  // also observe the lease as released and the engine stats as updated.
  Count(status);
  Complete(state, status, std::move(result), std::move(error));
}

void QueryEngine::GatherWave(
    const std::shared_ptr<QueryHandle::State>& leader,
    std::vector<std::shared_ptr<QueryHandle::State>>* wave) {
  // Budget the *lease-resident* wave state — the buffers that stay in
  // the recycled workspace arena after the wave ends (per-lane result
  // vectors are handle-owned and freed with the response, so they don't
  // count). BFS waves cost a lane-count-independent ~36n bytes (three
  // LaneMaskFrontiers: an 8n mask plus 4n stamp array each) plus
  // frontier/candidate lists; PPR waves cost ~12n fixed (inv_out +
  // all-vertices) plus 16n per lane (two double columns). An over-budget
  // fixed cost disables merging on that graph outright; otherwise the
  // per-lane term caps the wave width.
  const auto n = static_cast<std::size_t>(leader->graph->num_vertices());
  const bool leader_is_bfs =
      std::holds_alternative<BfsQuery>(leader->request);
  // A PPR wave on the spmv backend keeps a third double column per lane
  // (the pre-scaled scores the SpMM gathers from): 24n/lane, not 16n.
  const bool leader_is_spmv_ppr =
      !leader_is_bfs && std::get<PprQuery>(leader->request).opts.backend ==
                            core::SpmvBackend::kSpmv;
  const std::size_t fixed_bytes = leader_is_bfs ? n * 36 : n * 12;
  const std::size_t per_lane_bytes =
      leader_is_bfs ? 0 : (leader_is_spmv_ppr ? n * 24 : n * 16);
  if (fixed_bytes > options_.coalesce_budget_bytes) return;
  const std::size_t budget_lanes =
      per_lane_bytes == 0
          ? kMaxBatchLanes
          : (options_.coalesce_budget_bytes - fixed_bytes) /
                per_lane_bytes;
  const std::size_t max_lanes =
      std::min<std::size_t>(kMaxBatchLanes, budget_lanes);
  if (max_lanes < 2) return;
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Wave members must share the leader's graph, so only the leader's
    // own per-graph queue can hold candidates. Members ride the leader's
    // pickup without a stride charge of their own: a wave occupies one
    // runner slot, so fair share bills it as one pickup.
    GraphAux& aux = *leader->aux;
    auto it = aux.waiting.begin();
    while (it != aux.waiting.end() && wave->size() < max_lanes) {
      const auto& s = *it;
      if (s->coalescible && s->graph == leader->graph &&
          CoalesceCompatible(leader->request, s->request)) {
        (*it)->picked = true;
        ++running_;
        wave->push_back(std::move(*it));
        it = aux.waiting.erase(it);
        --queued_;
        freed = true;
      } else {
        ++it;
      }
    }
    if (aux.waiting.empty()) {
      std::erase(scheduled_, leader->aux);
    }
  }
  // Pulling members out of the queue freed admission capacity.
  if (freed) not_full_cv_.notify_all();
}

void QueryEngine::RunWave(
    std::vector<std::shared_ptr<QueryHandle::State>> wave) {
  const bool is_bfs =
      std::holds_alternative<BfsQuery>(wave.front()->request);
  // Per-lane source validation up front: an out-of-range source fails
  // *its own* query (exactly what the solo runner's GR_CHECK would do)
  // instead of poisoning the batched run and failing every lane of the
  // wave alongside it. One asymmetry mirrored from the solo runners: on
  // an empty graph PersonalizedPagerank succeeds with an empty result
  // *before* its seed range check (PprBatch does the same), so PPR
  // lanes skip validation there; scalar Bfs checks its source first, so
  // BFS lanes fail like solo calls do.
  const vid_t num_vertices = wave.front()->graph->num_vertices();
  const bool validate = is_bfs || num_vertices > 0;
  std::vector<vid_t> sources;
  sources.reserve(wave.size());
  {
    std::vector<std::shared_ptr<QueryHandle::State>> valid;
    valid.reserve(wave.size());
    for (auto& s : wave) {
      const vid_t source =
          is_bfs ? std::get<BfsQuery>(s->request).source
                 : std::get<PprQuery>(s->request).seeds.front();
      if (validate && (source < 0 || source >= num_vertices)) {
        Count(QueryStatus::kFailed);
        Complete(s, QueryStatus::kFailed, {},
                 SourceRangeError(is_bfs ? "bfs" : "ppr", source,
                                  num_vertices));
      } else {
        sources.push_back(source);
        valid.push_back(std::move(s));
      }
    }
    wave = std::move(valid);
  }
  if (wave.empty()) return;
  if (wave.size() == 1) {
    RunSolo(wave.front());
    return;
  }
  const std::size_t num_lanes = wave.size();
  // Wave accounting lands before any lane can observably complete (the
  // same stats-then-fulfill order Count/Complete follow): a waiter that
  // saw its handle finish also sees the wave counted.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    ++stats_.waves;
    stats_.coalesced += num_lanes;
    stats_.max_wave = std::max<std::uint64_t>(stats_.max_wave, num_lanes);
  }

  // Per-lane cancellation: polled by the batch primitive at every
  // iteration boundary. A fired lane completes right here — its waiter
  // wakes at the boundary, not at wave end — and drops out of the active
  // mask; the surviving lanes' results are unaffected (lane columns are
  // independent).
  std::vector<char> finished(num_lanes, 0);
  BatchLaneControl lanes;
  lanes.keep = [&](std::uint64_t active) {
    std::uint64_t keep = active;
    for (std::size_t l = 0; l < num_lanes; ++l) {
      if (((active >> l) & 1) == 0) continue;
      const auto& s = wave[l];
      if (!s->token.ShouldStop()) continue;
      keep &= ~(std::uint64_t{1} << l);
      const QueryStatus status = StoppedStatus(s->token);
      Count(status);
      Complete(s, status, {}, "lane stopped mid-wave");
      finished[l] = 1;
    }
    return keep;
  };

  std::optional<BfsBatchResult> bfs_result;
  std::optional<PprBatchResult> ppr_result;
  try {
    // Resolve the reverse graph (spmv-backend PPR waves gather over it)
    // before leasing a workspace, mirroring the solo path: its one-time
    // build is a registry concern, not part of this wave's scratch.
    const graph::Csr* ppr_reverse = nullptr;
    if (!is_bfs && std::get<PprQuery>(wave.front()->request).opts.backend ==
                       core::SpmvBackend::kSpmv) {
      const auto& leader = wave.front();
      ppr_reverse = leader->snapshot
                        ? leader->snapshot->ReverseView(*pool_).get()
                        : &ReverseOf(*leader->graph, *leader->aux);
    }
    WorkspacePool::Lease lease = workspaces_.Acquire();
    RunControl ctl;
    ctl.workspace = &lease.workspace();
    ctl.cancel = nullptr;  // stopping is per-lane, never whole-wave
    ctl.scale_free_hint = wave.front()->scale_free_hint;
    if (is_bfs) {
      const auto& q = std::get<BfsQuery>(wave.front()->request);
      BfsBatchOptions bopts;
      bopts.load_balance = q.opts.load_balance;
      bopts.pool = pool_;
      bopts.direction = q.opts.direction;
      bopts.do_alpha = q.opts.do_alpha;
      bopts.do_beta = q.opts.do_beta;
      // The variant axis maps onto scalar BFS's advance flavors: the
      // idempotent pipeline becomes emit-then-filter, the atomic one the
      // fused claim. Depths are variant-invariant either way.
      bopts.variant = q.opts.idempotent ? BfsBatchVariant::kFiltered
                                        : BfsBatchVariant::kFused;
      bfs_result = BfsBatch(*wave.front()->graph, sources, bopts, ctl,
                            lanes);
    } else {
      const auto& q = std::get<PprQuery>(wave.front()->request);
      PprBatchOptions popts;
      popts.load_balance = q.opts.load_balance;
      popts.pool = pool_;
      popts.damping = q.opts.damping;
      popts.tolerance = q.opts.tolerance;
      popts.max_iterations = q.opts.max_iterations;
      popts.backend = q.opts.backend;
      popts.reverse = ppr_reverse;
      ppr_result = PprBatch(*wave.front()->graph, sources, popts, ctl,
                            lanes);
    }
  } catch (const std::exception& e) {
    for (std::size_t l = 0; l < num_lanes; ++l) {
      if (finished[l]) continue;
      Count(QueryStatus::kFailed);
      Complete(wave[l], QueryStatus::kFailed, {}, e.what());
    }
    return;
  }
  // The lease died with the try scope; de-multiplex per-lane results.
  const std::uint64_t completed = is_bfs ? bfs_result->completed_mask
                                         : ppr_result->completed_mask;
  for (std::size_t l = 0; l < num_lanes; ++l) {
    if (finished[l]) continue;
    if (((completed >> l) & 1) == 0) {
      // Dropped after its completion in the poll callback raced the wave
      // end (or the whole wave emptied): close it out by its token.
      const QueryStatus status = StoppedStatus(wave[l]->token);
      Count(status);
      Complete(wave[l], status, {}, "lane stopped mid-wave");
      continue;
    }
    QueryResult result;
    if (is_bfs) {
      BfsResult r;
      r.depth = std::move(bfs_result->depth[l]);
      r.stats.iterations = bfs_result->lane_iterations[l];
      r.stats.edges_visited = bfs_result->stats.edges_visited;
      r.stats.elapsed_ms = bfs_result->stats.elapsed_ms;
      result = std::move(r);
    } else {
      PprResult r;
      r.rank = std::move(ppr_result->rank[l]);
      r.iterations = ppr_result->iterations[l];
      r.stats.iterations = ppr_result->iterations[l];
      r.stats.edges_visited = ppr_result->stats.edges_visited;
      r.stats.elapsed_ms = ppr_result->stats.elapsed_ms;
      result = std::move(r);
    }
    Count(QueryStatus::kDone);
    Complete(wave[l], QueryStatus::kDone, std::move(result), {});
  }
}

void QueryEngine::Complete(const std::shared_ptr<QueryHandle::State>& state,
                           QueryStatus status, QueryResult result,
                           std::string error) {
  // Claim the one terminal transition (Shutdown and a finishing runner
  // can race here).
  if (state->completed.exchange(true)) return;
  // Release the graph quota before the handle observably completes, so a
  // waiter that saw the terminal state also sees the slot as free.
  if (state->counted) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --state->aux->in_flight;
      if (state->picked) --running_;
    }
    not_full_cv_.notify_all();
  }
  const auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->status = status;
    state->response.status = status;
    state->response.result = std::move(result);
    state->response.error = std::move(error);
    const auto started =
        state->started_at.time_since_epoch().count() != 0
            ? state->started_at
            : now;  // never picked up: all wait, no run
    state->response.queue_ms = MsBetween(state->submitted_at, started);
    state->response.run_ms = MsBetween(started, now);
    state->response.total_ms = MsBetween(state->submitted_at, now);
  }
  state->cv.notify_all();
  // Feed the stream last: a consumer popping this completion must find
  // the handle already terminal. Drop the state's back-reference once
  // fed — the queued Completion owns this State, so keeping the State's
  // shared_ptr to Shared would form a reference cycle that leaks any
  // batch abandoned before being fully drained.
  if (auto stream = std::move(state->stream)) {
    {
      std::lock_guard<std::mutex> lock(stream->mutex);
      stream->ready.push_back({state->stream_index, QueryHandle(state)});
    }
    stream->cv.notify_all();
  }
  // Observability last, outside every lock: the observer sees only
  // already-fulfilled queries, and a slow observer can't stall waiters.
  std::shared_ptr<const QueryObserver> observer;
  {
    std::lock_guard<std::mutex> lock(observer_mutex_);
    observer = observer_;
  }
  if (observer) {
    QueryObservation obs;
    obs.kind = KindName(state->request);
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      obs.status = state->response.status;
      obs.queue_ms = state->response.queue_ms;
      obs.run_ms = state->response.run_ms;
      obs.total_ms = state->response.total_ms;
    }
    (*observer)(obs);
  }
}

}  // namespace gunrock::engine
