#include "engine/query_engine.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "core/cancel.hpp"
#include "graph/stats.hpp"
#include "util/error.hpp"

namespace gunrock::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

/// Shared state behind one QueryHandle: the request, the cancellation
/// token, and the response slot the runner fulfills.
struct QueryHandle::State {
  std::uint64_t id = 0;
  std::shared_ptr<const graph::Csr> graph;
  int scale_free_hint = -1;  // registry-precomputed (see RunControl)
  QueryRequest request;
  core::CancelToken token;

  Clock::time_point submitted_at{};
  Clock::time_point started_at{};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  QueryStatus status = QueryStatus::kQueued;
  QueryResponse response;
};

// --- QueryHandle ------------------------------------------------------------

std::uint64_t QueryHandle::id() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  return state_->id;
}

QueryStatus QueryHandle::status() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

const QueryResponse& QueryHandle::Wait() const& {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return IsTerminal(state_->status); });
  return state_->response;
}

QueryResponse QueryHandle::Wait() && {
  const QueryHandle& self = *this;
  return self.Wait();  // copy out: the temporary handle owns the state
}

bool QueryHandle::WaitForMs(double ms) const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(ms),
      [&] { return IsTerminal(state_->status); });
}

void QueryHandle::Cancel() const {
  GR_CHECK(state_ != nullptr, "empty QueryHandle");
  state_->token.Cancel();
}

// --- QueryEngine ------------------------------------------------------------

QueryEngine::QueryEngine(QueryEngineOptions options)
    : options_(options),
      pool_(options.pool ? options.pool : &par::ThreadPool::Global()),
      workspaces_(options.max_in_flight > 0 ? options.max_in_flight : 1) {
  GR_CHECK(options_.max_in_flight > 0, "QueryEngine needs max_in_flight >= 1");
  GR_CHECK(options_.queue_capacity > 0,
           "QueryEngine needs queue_capacity >= 1");
  // Runner threads are concurrent external submitters of the shared pool;
  // serialize their bulk-synchronous launches instead of treating them as
  // misuse. Released in Shutdown(), so the pool reverts to the strict
  // single-owner contract once no engine is using it.
  pool_->AcquireSharedSubmitters();
  runners_.reserve(options_.max_in_flight);
  for (unsigned r = 0; r < options_.max_in_flight; ++r) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::RegisterGraph(const std::string& name, graph::Csr graph) {
  RegisterGraph(name,
                std::make_shared<const graph::Csr>(std::move(graph)));
}

void QueryEngine::RegisterGraph(const std::string& name,
                                std::shared_ptr<const graph::Csr> graph) {
  GR_CHECK(graph != nullptr, "RegisterGraph: null graph");
  GraphEntry entry;
  // Materialize the lazily built per-edge source array now: its first
  // build mutates a cache inside the (otherwise read-only) Csr, and two
  // concurrent CC queries must not race on it. The scale-free hint is
  // likewise graph-invariant — pay its O(|V|) reduction once here, not
  // once per query.
  graph->edge_sources(*pool_);
  entry.scale_free = graph::ComputeScaleFreeHint(*graph, *pool_);
  entry.graph = std::move(graph);
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  graphs_[name] = std::move(entry);
}

bool QueryEngine::HasGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  return graphs_.count(name) > 0;
}

QueryEngine::GraphEntry QueryEngine::GetEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  auto it = graphs_.find(name);
  GR_CHECK(it != graphs_.end(), "QueryEngine: unknown graph '" + name + "'");
  return it->second;
}

std::shared_ptr<const graph::Csr> QueryEngine::GetGraph(
    const std::string& name) const {
  return GetEntry(name).graph;
}

QueryHandle QueryEngine::Submit(const std::string& graph,
                                QueryRequest request,
                                const SubmitOptions& options) {
  auto state = std::make_shared<QueryHandle::State>();
  GraphEntry entry = GetEntry(graph);  // throws on unknown graph
  state->graph = std::move(entry.graph);
  state->scale_free_hint = entry.scale_free ? 1 : 0;
  state->request = std::move(request);
  state->submitted_at = Clock::now();
  if (options.deadline_ms > 0.0) {
    state->token.SetDeadlineAfterMs(options.deadline_ms);
  }

  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    GR_CHECK(accepting_, "QueryEngine: Submit after Shutdown");
    state->id = next_id_++;
    if (queue_.size() >= options_.queue_capacity) {
      if (options_.backpressure ==
          QueryEngineOptions::Backpressure::kReject) {
        ++stats_.submitted;
        ++stats_.rejected;
        lock.unlock();
        Complete(state, QueryStatus::kRejected, {},
                 "admission queue full");
        return QueryHandle(std::move(state));
      }
      not_full_cv_.wait(lock, [&] {
        return queue_.size() < options_.queue_capacity || !accepting_;
      });
      GR_CHECK(accepting_, "QueryEngine: shut down while Submit blocked");
    }
    queue_.push_back(state);
    ++stats_.submitted;
  }
  queue_cv_.notify_one();
  return QueryHandle(std::move(state));
}

std::vector<QueryHandle> QueryEngine::SubmitAll(
    const std::string& graph, std::span<const vid_t> sources,
    const QueryRequest& prototype, const SubmitOptions& options) {
  std::vector<QueryHandle> handles;
  handles.reserve(sources.size());
  for (const vid_t s : sources) {
    handles.push_back(Submit(graph, WithSource(prototype, s), options));
  }
  return handles;
}

void QueryEngine::Shutdown() {
  std::deque<std::shared_ptr<QueryHandle::State>> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) return;
    stopping_ = true;
    accepting_ = false;
    orphaned.swap(queue_);
    stats_.cancelled += orphaned.size();
  }
  queue_cv_.notify_all();
  not_full_cv_.notify_all();
  for (auto& state : orphaned) {
    Complete(state, QueryStatus::kCancelled, {},
             "engine shut down before the query started");
  }
  for (auto& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  pool_->ReleaseSharedSubmitters();  // runners are gone; give the pool back
}

QueryEngine::Stats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return stats_;
}

void QueryEngine::Count(QueryStatus status) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  switch (status) {
    case QueryStatus::kDone: ++stats_.done; break;
    case QueryStatus::kCancelled: ++stats_.cancelled; break;
    case QueryStatus::kDeadlineExceeded: ++stats_.deadline_exceeded; break;
    case QueryStatus::kFailed: ++stats_.failed; break;
    default: break;
  }
}

void QueryEngine::RunnerLoop() {
  for (;;) {
    std::shared_ptr<QueryHandle::State> state;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      state = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_cv_.notify_one();
    Execute(state);
  }
}

namespace {

/// Runs the request's primitive on the engine's pool with the leased
/// workspace and the query's cancellation token.
QueryResult Dispatch(const graph::Csr& g, const QueryRequest& request,
                     par::ThreadPool& pool, const RunControl& ctl) {
  return std::visit(
      [&](const auto& q) -> QueryResult {
        using Q = std::decay_t<decltype(q)>;
        auto opts = q.opts;
        opts.pool = &pool;
        if constexpr (std::is_same_v<Q, BfsQuery>) {
          return Bfs(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, SsspQuery>) {
          return Sssp(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, BcQuery>) {
          return Bc(g, q.source, opts, ctl);
        } else if constexpr (std::is_same_v<Q, CcQuery>) {
          return Cc(g, opts, ctl);
        } else {
          static_assert(std::is_same_v<Q, PagerankQuery>);
          return Pagerank(g, opts, ctl);
        }
      },
      request);
}

}  // namespace

void QueryEngine::Execute(
    const std::shared_ptr<QueryHandle::State>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->started_at = Clock::now();
    state->status = QueryStatus::kRunning;
  }
  // A query cancelled (or expired) while queued never touches the pool.
  if (state->token.ShouldStop()) {
    const bool deadline = state->token.deadline_exceeded() &&
                          !state->token.cancel_requested();
    const QueryStatus status = deadline ? QueryStatus::kDeadlineExceeded
                                        : QueryStatus::kCancelled;
    Count(status);  // count first: Wait() returning implies stats landed
    Complete(state, status, {}, "stopped before start");
    return;
  }

  WorkspacePool::Lease lease = workspaces_.Acquire();
  RunControl ctl;
  ctl.workspace = &lease.workspace();
  ctl.cancel = &state->token;
  ctl.scale_free_hint = state->scale_free_hint;

  QueryStatus status;
  QueryResult result;
  std::string error;
  try {
    result = Dispatch(*state->graph, state->request, *pool_, ctl);
    status = QueryStatus::kDone;
  } catch (const core::Cancelled& c) {
    status = c.deadline_exceeded ? QueryStatus::kDeadlineExceeded
                                 : QueryStatus::kCancelled;
    error = c.what();
  } catch (const std::exception& e) {
    status = QueryStatus::kFailed;
    error = e.what();
  }
  // Return the arena and bump the counters before fulfilling the handle:
  // a waiter observing the terminal state must also observe the lease as
  // released and the engine stats as updated.
  lease = WorkspacePool::Lease();
  Count(status);
  Complete(state, status, std::move(result), std::move(error));
}

void QueryEngine::Complete(const std::shared_ptr<QueryHandle::State>& state,
                           QueryStatus status, QueryResult result,
                           std::string error) {
  const auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (IsTerminal(state->status)) return;  // already fulfilled
    state->status = status;
    state->response.status = status;
    state->response.result = std::move(result);
    state->response.error = std::move(error);
    const auto started =
        state->started_at.time_since_epoch().count() != 0
            ? state->started_at
            : now;  // never picked up: all wait, no run
    state->response.queue_ms = MsBetween(state->submitted_at, started);
    state->response.run_ms = MsBetween(started, now);
    state->response.total_ms = MsBetween(state->submitted_at, now);
  }
  state->cv.notify_all();
}

}  // namespace gunrock::engine
