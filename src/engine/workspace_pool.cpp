#include "engine/workspace_pool.hpp"

#include "util/error.hpp"

namespace gunrock::engine {

WorkspacePool::WorkspacePool(std::size_t capacity) : capacity_(capacity) {
  GR_CHECK(capacity > 0, "WorkspacePool needs capacity >= 1");
  arenas_.reserve(capacity);
  free_.reserve(capacity);
}

WorkspacePool::Lease WorkspacePool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_cv_.wait(lock, [&] {
    return !free_.empty() || arenas_.size() < capacity_;
  });
  core::Workspace* workspace = nullptr;
  if (!free_.empty()) {
    workspace = free_.back();
    free_.pop_back();
    ++recycled_;
  } else {
    arenas_.push_back(std::make_unique<core::Workspace>());
    workspace = arenas_.back().get();
  }
  ++acquired_;
  ++outstanding_;
  return Lease(this, workspace);
}

void WorkspacePool::Return(core::Workspace* workspace) noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(workspace);
    --outstanding_;
  }
  available_cv_.notify_one();
}

WorkspacePool::Stats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.capacity = capacity_;
  s.created = arenas_.size();
  s.acquired = acquired_;
  s.recycled = recycled_;
  s.outstanding = outstanding_;
  for (const auto& arena : arenas_) {
    s.workspace_creations += arena->creations();
  }
  return s;
}

}  // namespace gunrock::engine
