#include "hardwired/hardwired.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/atomics.hpp"
#include "parallel/bitmap.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/reduce.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gunrock::hardwired {

namespace {

/// Expand a frontier chunk with CAS claims into a per-chunk buffer.
/// Shared by the BFS/BC top-down loops.
template <typename Claim>
void ExpandTopDown(const graph::Csr& g, std::span<const vid_t> frontier,
                   std::size_t lo, std::size_t hi,
                   std::vector<vid_t>* local, eid_t* edges, Claim&& claim) {
  for (std::size_t i = lo; i < hi; ++i) {
    const vid_t u = frontier[i];
    const eid_t rb = g.row_begin(u), re = g.row_end(u);
    *edges += re - rb;
    for (eid_t e = rb; e < re; ++e) {
      const vid_t v = g.edge_dest(e);
      if (claim(u, v, e)) local->push_back(v);
    }
  }
}

void GatherChunks(par::ThreadPool& pool,
                  const std::vector<std::vector<vid_t>>& locals,
                  std::size_t count, std::vector<vid_t>* out) {
  out->clear();
  par::ConcatChunks(pool, locals, count, out);
}

/// Reusable per-chunk expansion scratch: the chunk-local buffers keep
/// their capacity across iterations, so a steady-state traversal loop
/// performs no heap allocation.
struct ChunkScratch {
  std::vector<std::vector<vid_t>> locals;
  std::vector<eid_t> counts;

  /// Prepares for `chunks` chunks; chunk bodies must clear their local
  /// buffer before appending.
  void Reset(std::size_t chunks) {
    if (locals.size() < chunks) locals.resize(chunks);
    counts.assign(chunks, 0);
  }

  eid_t TotalCount(std::size_t chunks) const {
    eid_t total = 0;
    for (std::size_t c = 0; c < chunks; ++c) total += counts[c];
    return total;
  }
};

}  // namespace

TimedDepths Bfs(const graph::Csr& g, vid_t source, par::ThreadPool& pool) {
  GR_CHECK(source >= 0 && source < g.num_vertices(), "bad source");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  TimedDepths out;
  out.depth.assign(n, -1);
  std::int32_t* depth = out.depth.data();

  par::Bitmap in_frontier(n);
  std::vector<vid_t> frontier{source}, next;
  std::vector<vid_t> candidates;
  ChunkScratch scratch;
  depth[source] = 0;
  eid_t m_unvisited = g.num_edges() - g.degree(source);

  WallTimer timer;
  std::int32_t level = 1;
  bool pulling = false;
  while (!frontier.empty()) {
    const eid_t m_f = par::TransformReduce(
        pool, frontier.size(), eid_t{0},
        [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t i) { return g.degree(frontier[i]); });
    if (!pulling && m_f > m_unvisited / 14) pulling = true;
    if (pulling &&
        frontier.size() < static_cast<std::size_t>(g.num_vertices()) / 24) {
      pulling = false;
    }

    if (pulling) {
      in_frontier.Reset(pool);
      par::ParallelFor(pool, 0, frontier.size(), [&](std::size_t i) {
        in_frontier.Set(static_cast<std::size_t>(frontier[i]));
      });
      candidates.resize(n);
      const std::size_t nc = par::GenerateIf(
          pool, n, std::span<vid_t>(candidates),
          [&](std::size_t v) { return depth[v] == -1; },
          [](std::size_t v) { return static_cast<vid_t>(v); });
      candidates.resize(nc);
      const std::size_t grain = 64;
      const std::size_t chunks = (nc + grain - 1) / grain;
      scratch.Reset(chunks);
      par::ParallelForChunks(
          pool, 0, nc, grain,
          [&](std::size_t lo, std::size_t hi, std::size_t c, unsigned) {
            auto& local = scratch.locals[c];
            local.clear();
            for (std::size_t i = lo; i < hi; ++i) {
              const vid_t v = candidates[i];
              for (eid_t e = g.row_begin(v); e < g.row_end(v); ++e) {
                ++scratch.counts[c];
                const vid_t u = g.edge_dest(e);
                if (in_frontier.Test(static_cast<std::size_t>(u))) {
                  depth[v] = level;
                  local.push_back(v);
                  break;
                }
              }
            }
          });
      GatherChunks(pool, scratch.locals, chunks, &next);
      out.edges_visited += scratch.TotalCount(chunks);
    } else {
      const std::size_t grain = 64;
      const std::size_t chunks = (frontier.size() + grain - 1) / grain;
      scratch.Reset(chunks);
      par::ParallelForChunks(
          pool, 0, frontier.size(), grain,
          [&](std::size_t lo, std::size_t hi, std::size_t c, unsigned) {
            auto& local = scratch.locals[c];
            local.clear();
            ExpandTopDown(g, frontier, lo, hi, &local, &scratch.counts[c],
                          [&](vid_t, vid_t v, eid_t) {
                            return par::AtomicCas(&depth[v],
                                                  std::int32_t{-1}, level);
                          });
          });
      GatherChunks(pool, scratch.locals, chunks, &next);
      out.edges_visited += scratch.TotalCount(chunks);
    }

    const eid_t m_new = par::TransformReduce(
        pool, next.size(), eid_t{0}, [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t i) { return g.degree(next[i]); });
    m_unvisited -= m_new;
    frontier.swap(next);
    ++level;
  }
  out.elapsed_ms = timer.ElapsedMs();
  return out;
}

TimedDists Sssp(const graph::Csr& g, vid_t source, par::ThreadPool& pool) {
  GR_CHECK(g.has_weights(), "hardwired SSSP needs weights");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  TimedDists out;
  out.dist.assign(n, kInfinity);
  out.dist[source] = 0;
  weight_t* dist = out.dist.data();

  const double mean_w =
      static_cast<double>(par::ReduceSum(pool, g.weights())) /
      static_cast<double>(g.num_edges());
  const weight_t delta = static_cast<weight_t>(std::max(
      1.0, kWarpWidth * mean_w / std::max(1.0, g.average_degree())));

  std::vector<std::int32_t> mark(n, 0);
  std::int32_t* mark_p = mark.data();
  std::int32_t epoch = 0;

  std::vector<vid_t> near{source}, far, next_near, next_far;
  ChunkScratch scratch;                 // near-slice chunk buffers
  std::vector<std::vector<vid_t>> lf;  // far-slice chunk buffers
  weight_t threshold = delta;
  WallTimer timer;
  while (!near.empty() || !far.empty()) {
    if (near.empty()) {
      threshold += delta;
      next_far.clear();
      for (const vid_t v : far) {
        (dist[v] < threshold ? near : next_far).push_back(v);
      }
      far.swap(next_far);
      if (near.empty()) continue;
    }
    ++epoch;
    const std::int32_t e_now = epoch;
    const std::size_t grain = 64;
    const std::size_t chunks = (near.size() + grain - 1) / grain;
    scratch.Reset(chunks);
    if (lf.size() < chunks) lf.resize(chunks);
    par::ParallelForChunks(
        pool, 0, near.size(), grain,
        [&](std::size_t lo, std::size_t hi, std::size_t c, unsigned) {
          auto& local_near = scratch.locals[c];
          auto& local_far = lf[c];
          local_near.clear();
          local_far.clear();
          for (std::size_t i = lo; i < hi; ++i) {
            const vid_t u = near[i];
            const weight_t du = par::AtomicLoad(&dist[u]);
            const eid_t rb = g.row_begin(u), re = g.row_end(u);
            scratch.counts[c] += re - rb;
            for (eid_t e = rb; e < re; ++e) {
              const vid_t v = g.edge_dest(e);
              const weight_t nd = du + g.edge_weight(e);
              if (nd < par::AtomicMin(&dist[v], nd) &&
                  par::AtomicExchange(&mark_p[v], e_now) != e_now) {
                (nd < threshold ? local_near : local_far).push_back(v);
              }
            }
          }
        });
    GatherChunks(pool, scratch.locals, chunks, &next_near);
    for (std::size_t c = 0; c < chunks; ++c) {
      far.insert(far.end(), lf[c].begin(), lf[c].end());
    }
    out.edges_visited += scratch.TotalCount(chunks);
    near.swap(next_near);
  }
  out.elapsed_ms = timer.ElapsedMs();
  return out;
}

TimedBc Bc(const graph::Csr& g, vid_t source, par::ThreadPool& pool) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  TimedBc out;
  out.bc.assign(n, 0.0);
  std::vector<std::int32_t> depth(n, -1);
  std::vector<double> sigma(n, 0.0), delta(n, 0.0);
  std::int32_t* depth_p = depth.data();
  double* sigma_p = sigma.data();
  double* delta_p = delta.data();

  depth[source] = 0;
  sigma[source] = 1.0;
  std::vector<std::vector<vid_t>> levels;
  levels.push_back({source});

  WallTimer timer;
  // Forward: fused discovery + sigma accumulation. Chunk scratch is
  // reused across levels; only the stored level frontiers themselves
  // allocate (they must outlive the loop for the backward sweep).
  ChunkScratch scratch;
  while (!levels.back().empty()) {
    const auto& frontier = levels.back();
    const std::int32_t level = static_cast<std::int32_t>(levels.size());
    const std::size_t grain = 64;
    const std::size_t chunks = (frontier.size() + grain - 1) / grain;
    scratch.Reset(chunks);
    par::ParallelForChunks(
        pool, 0, frontier.size(), grain,
        [&](std::size_t lo, std::size_t hi, std::size_t c, unsigned) {
          auto& local = scratch.locals[c];
          local.clear();
          ExpandTopDown(g, frontier, lo, hi, &local, &scratch.counts[c],
                        [&](vid_t u, vid_t v, eid_t) {
                          const bool first = par::AtomicCas(
                              &depth_p[v], std::int32_t{-1}, level);
                          if (par::AtomicLoad(&depth_p[v]) == level) {
                            par::AtomicAdd(&sigma_p[v],
                                           par::AtomicLoad(&sigma_p[u]));
                          }
                          return first;
                        });
        });
    std::vector<vid_t> next;
    GatherChunks(pool, scratch.locals, chunks, &next);
    out.edges_visited += scratch.TotalCount(chunks);
    levels.push_back(std::move(next));
  }
  levels.pop_back();

  // Backward: dependency accumulation, deepest level first.
  for (std::size_t l = levels.size(); l-- > 1;) {
    const auto& frontier = levels[l];
    par::ParallelFor(pool, 0, frontier.size(), [&](std::size_t i) {
      const vid_t u = frontier[i];
      double acc = 0.0;
      for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
        const vid_t w = g.edge_dest(e);
        if (depth_p[w] == depth_p[u] + 1 && sigma_p[w] > 0) {
          acc += sigma_p[u] / sigma_p[w] * (1.0 + delta_p[w]);
        }
      }
      delta_p[u] = acc;
    });
    out.edges_visited += par::TransformReduce(
        pool, frontier.size(), eid_t{0},
        [](eid_t a, eid_t b) { return a + b; },
        [&](std::size_t i) { return g.degree(frontier[i]); });
  }
  par::ParallelFor(pool, 0, n, [&](std::size_t v) {
    if (static_cast<vid_t>(v) != source) out.bc[v] = delta[v] / 2.0;
  });
  out.elapsed_ms = timer.ElapsedMs();
  return out;
}

TimedComponents Cc(const graph::Csr& g, par::ThreadPool& pool) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  TimedComponents out;
  out.component.resize(n);
  vid_t* comp = out.component.data();

  WallTimer timer;
  par::ParallelFor(pool, 0, n,
                   [&](std::size_t v) { comp[v] = static_cast<vid_t>(v); });
  const auto srcs = g.edge_sources(pool);
  const auto dsts = g.col_indices();

  // Concurrent union-find with CAS hooks and path halving: one pass over
  // the edges suffices — a failed hook retries with the refreshed roots
  // until the endpoints share one. This is the fused, frontier-free loop
  // a hardwired implementation gets to write.
  const auto find = [&](vid_t x) {
    while (true) {
      const vid_t p = par::AtomicLoad(&comp[x]);
      if (p == x) return x;
      const vid_t gp = par::AtomicLoad(&comp[p]);
      if (p == gp) return p;
      // Path halving; benign race (labels only ever decrease).
      par::AtomicCas(&comp[x], p, gp);
      x = gp;
    }
  };
  par::ParallelFor(pool, 0, m, [&](std::size_t e) {
    const vid_t eu = srcs[e], ev = dsts[e];
    if (eu > ev) return;  // each undirected edge once
    vid_t u = eu, v = ev;
    while (true) {
      const vid_t ru = find(u), rv = find(v);
      if (ru == rv) return;
      const vid_t hi = std::max(ru, rv), lo = std::min(ru, rv);
      if (par::AtomicCas(&comp[hi], hi, lo)) return;
      u = hi;  // lost the race: rediscover roots and retry
      v = lo;
    }
  });
  // Final flatten to the (now stable) roots.
  par::ParallelFor(pool, 0, n, [&](std::size_t v) {
    vid_t root = comp[v];
    while (comp[root] != root) root = comp[root];
    comp[v] = root;
  });

  out.num_components = static_cast<vid_t>(par::TransformReduce(
      pool, n, std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return comp[v] == static_cast<vid_t>(v) ? std::size_t{1} : 0;
      }));
  out.elapsed_ms = timer.ElapsedMs();
  return out;
}

}  // namespace gunrock::hardwired
