// Hardwired (primitive-specific) parallel implementations: the role the
// paper's b40c BFS [24], delta-stepping SSSP [5], gpu_BC [31] and conn
// CC [34] comparators play. Each bypasses the frontier abstraction
// entirely — fused loops over raw arrays, buffers reused across
// iterations, no operator dispatch, no statistics model — so the gap
// between these and the Gunrock-style primitives measures the
// abstraction's overhead (paper Section 6: comparable for BFS/SSSP/BC,
// ~5x for CC).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::hardwired {

struct TimedDepths {
  std::vector<std::int32_t> depth;
  eid_t edges_visited = 0;
  double elapsed_ms = 0.0;
};

/// Direction-optimizing BFS with fused claim+emit loops (b40c role).
TimedDepths Bfs(const graph::Csr& g, vid_t source, par::ThreadPool& pool);

struct TimedDists {
  std::vector<weight_t> dist;
  eid_t edges_visited = 0;
  double elapsed_ms = 0.0;
};

/// Near-far delta-stepping SSSP on raw buffers (Davidson et al. role).
TimedDists Sssp(const graph::Csr& g, vid_t source, par::ThreadPool& pool);

struct TimedBc {
  std::vector<double> bc;
  eid_t edges_visited = 0;
  double elapsed_ms = 0.0;
};

/// Fused single-source Brandes BC (gpu_BC role).
TimedBc Bc(const graph::Csr& g, vid_t source, par::ThreadPool& pool);

struct TimedComponents {
  std::vector<vid_t> component;
  vid_t num_components = 0;
  double elapsed_ms = 0.0;
};

/// Parallel hook-and-compress union-find over the raw edge list (conn
/// role). One tight loop, no frontier maintenance — the reason the
/// hardwired CC beats the BSP formulation by a wide margin.
TimedComponents Cc(const graph::Csr& g, par::ThreadPool& pool);

}  // namespace gunrock::hardwired
