#include "dynamic/incremental.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/advance.hpp"
#include "parallel/atomics.hpp"
#include "util/error.hpp"

namespace gunrock::dynamic {

namespace {

/// Relax every edge out of the frontier, CAS-min on the depth label with
/// -1 standing in for +inf. The same functor serves the base layer (with
/// the snapshot's tombstone list) and the delta layer (tombs empty).
struct BfsRepairProblem {
  std::int32_t* depth = nullptr;
  const eid_t* tombs = nullptr;
  std::size_t num_tombs = 0;
};

struct BfsRepairFunctor {
  static bool CondEdge(vid_t u, vid_t v, eid_t e, BfsRepairProblem& p) {
    if (p.num_tombs != 0 && IsTombstoned({p.tombs, p.num_tombs}, e)) {
      return false;
    }
    const std::int32_t du = par::AtomicLoad(&p.depth[u]);
    if (du < 0) return false;
    const std::int32_t cand = du + 1;
    std::int32_t dv = par::AtomicLoad(&p.depth[v]);
    while (dv < 0 || cand < dv) {
      if (par::AtomicCas(&p.depth[v], dv, cand)) return true;
      dv = par::AtomicLoad(&p.depth[v]);
    }
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, BfsRepairProblem&) {}
};

struct SsspRepairProblem {
  weight_t* dist = nullptr;
  const weight_t* weights = nullptr;
  const eid_t* tombs = nullptr;
  std::size_t num_tombs = 0;
};

struct SsspRepairFunctor {
  static bool CondEdge(vid_t u, vid_t v, eid_t e, SsspRepairProblem& p) {
    if (p.num_tombs != 0 && IsTombstoned({p.tombs, p.num_tombs}, e)) {
      return false;
    }
    // +inf propagates: an unreached u yields cand == +inf, never < dv.
    const weight_t cand = par::AtomicLoad(&p.dist[u]) + p.weights[e];
    weight_t dv = par::AtomicLoad(&p.dist[v]);
    while (cand < dv) {
      if (par::AtomicCas(&p.dist[v], dv, cand)) return true;
      dv = par::AtomicLoad(&p.dist[v]);
    }
    return false;
  }
  static void ApplyEdge(vid_t, vid_t, eid_t, SsspRepairProblem&) {}
};

void SortUnique(std::vector<vid_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// Runs a repair wave to fixpoint: each iteration advances the frontier
/// over the snapshot's base layer (skipping tombstones) and delta layer,
/// collecting every improved vertex into the next frontier. Labels only
/// decrease and are bounded below, so the wave terminates; work is
/// proportional to the affected region, not the graph.
template <typename Functor, typename Problem>
void RepairWave(par::ThreadPool& pool, const Snapshot& snap,
                Problem& base_prob, Problem& delta_prob,
                std::vector<vid_t>* frontier, core::Workspace* ws) {
  core::AdvanceConfig cfg;
  cfg.model_efficiency = false;
  cfg.workspace = ws;
  std::vector<vid_t> next;
  while (!frontier->empty()) {
    next.clear();
    core::AdvancePush<Functor>(pool, snap.base(),
                               std::span<const vid_t>(*frontier), &next,
                               base_prob, cfg);
    if (snap.delta().num_edges() != 0) {
      core::AdvancePush<Functor>(pool, snap.delta(),
                                 std::span<const vid_t>(*frontier), &next,
                                 delta_prob, cfg);
    }
    SortUnique(&next);
    frontier->swap(next);
  }
}

}  // namespace

IncrementalBfs::IncrementalBfs(std::shared_ptr<const Snapshot> snapshot,
                               vid_t source, BfsOptions opts)
    : opts_(std::move(opts)), source_(source),
      snapshot_(std::move(snapshot)) {
  GR_CHECK(snapshot_ != nullptr, "IncrementalBfs needs a snapshot");
  opts_.compute_preds = false;  // parent trees are not unique; depth is
  Recompute();
}

void IncrementalBfs::Recompute() {
  par::ThreadPool& pool = opts_.Pool();
  RunControl ctl;
  ctl.workspace = &ws_;
  depth_ = Bfs(*snapshot_->View(pool), source_, opts_, ctl).depth;
  ++stats_.full_recomputes;
}

void IncrementalBfs::Repair() {
  par::ThreadPool& pool = opts_.Pool();
  BfsRepairProblem base_prob;
  base_prob.depth = depth_.data();
  base_prob.tombs = snapshot_->tombstones().data();
  base_prob.num_tombs = snapshot_->tombstones().size();
  BfsRepairProblem delta_prob;
  delta_prob.depth = depth_.data();

  std::vector<vid_t> frontier;
  for (const EdgeUpdate& up : snapshot_->inserted_since_parent()) {
    const std::int32_t du = depth_[up.src];
    if (du < 0) continue;
    const std::int32_t cand = du + 1;
    if (depth_[up.dst] < 0 || cand < depth_[up.dst]) {
      depth_[up.dst] = cand;
      frontier.push_back(up.dst);
    }
  }
  SortUnique(&frontier);
  RepairWave<BfsRepairFunctor>(pool, *snapshot_, base_prob, delta_prob,
                               &frontier, &ws_);
  ++stats_.repairs;
}

void IncrementalBfs::Update(std::shared_ptr<const Snapshot> next) {
  GR_CHECK(next != nullptr, "Update needs a snapshot");
  if (next->epoch() == snapshot_->epoch()) return;
  const bool repairable = detail::Repairable(*next, snapshot_->epoch());
  snapshot_ = std::move(next);
  if (repairable) {
    Repair();
  } else {
    Recompute();
  }
}

IncrementalSssp::IncrementalSssp(std::shared_ptr<const Snapshot> snapshot,
                                 vid_t source, SsspOptions opts)
    : opts_(std::move(opts)), source_(source),
      snapshot_(std::move(snapshot)) {
  GR_CHECK(snapshot_ != nullptr, "IncrementalSssp needs a snapshot");
  GR_CHECK(snapshot_->base().has_weights(),
           "IncrementalSssp needs a weighted graph");
  opts_.compute_preds = false;
  Recompute();
}

void IncrementalSssp::Recompute() {
  par::ThreadPool& pool = opts_.Pool();
  RunControl ctl;
  ctl.workspace = &ws_;
  dist_ = Sssp(*snapshot_->View(pool), source_, opts_, ctl).dist;
  ++stats_.full_recomputes;
}

void IncrementalSssp::Repair() {
  par::ThreadPool& pool = opts_.Pool();
  SsspRepairProblem base_prob;
  base_prob.dist = dist_.data();
  base_prob.weights = snapshot_->base().weights().data();
  base_prob.tombs = snapshot_->tombstones().data();
  base_prob.num_tombs = snapshot_->tombstones().size();
  SsspRepairProblem delta_prob;
  delta_prob.dist = dist_.data();
  delta_prob.weights = snapshot_->delta().weights().data();

  std::vector<vid_t> frontier;
  for (const EdgeUpdate& up : snapshot_->inserted_since_parent()) {
    const weight_t cand = dist_[up.src] + up.weight;
    if (cand < dist_[up.dst]) {
      dist_[up.dst] = cand;
      frontier.push_back(up.dst);
    }
  }
  SortUnique(&frontier);
  RepairWave<SsspRepairFunctor>(pool, *snapshot_, base_prob, delta_prob,
                                &frontier, &ws_);
  ++stats_.repairs;
}

void IncrementalSssp::Update(std::shared_ptr<const Snapshot> next) {
  GR_CHECK(next != nullptr, "Update needs a snapshot");
  if (next->epoch() == snapshot_->epoch()) return;
  const bool repairable = detail::Repairable(*next, snapshot_->epoch());
  snapshot_ = std::move(next);
  if (repairable) {
    Repair();
  } else {
    Recompute();
  }
}

IncrementalCc::IncrementalCc(std::shared_ptr<const Snapshot> snapshot,
                             CcOptions opts)
    : opts_(std::move(opts)), snapshot_(std::move(snapshot)) {
  GR_CHECK(snapshot_ != nullptr, "IncrementalCc needs a snapshot");
  Recompute();
}

void IncrementalCc::Recompute() {
  par::ThreadPool& pool = opts_.Pool();
  RunControl ctl;
  ctl.workspace = &ws_;
  CcResult r = Cc(*snapshot_->View(pool), opts_, ctl);
  component_ = std::move(r.component);
  num_components_ = r.num_components;
  ++stats_.full_recomputes;
}

void IncrementalCc::Repair() {
  // Union-by-min over the labels touched by inserted cross-component
  // edges. Labels are min-vertex-ids, so attaching the larger root under
  // the smaller keeps the invariant and the final remap reproduces
  // exactly what a from-scratch run would compute.
  std::unordered_map<vid_t, vid_t> parent;
  auto find = [&](vid_t x) {
    while (true) {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      x = it->second;
    }
  };
  vid_t merges = 0;
  for (const EdgeUpdate& up : snapshot_->inserted_since_parent()) {
    const vid_t ru = find(component_[up.src]);
    const vid_t rv = find(component_[up.dst]);
    if (ru == rv) continue;
    const vid_t lo = std::min(ru, rv), hi = std::max(ru, rv);
    parent[hi] = lo;
    ++merges;
  }
  if (merges != 0) {
    // Flatten the root map once, then remap every vertex label through
    // the read-only table.
    std::unordered_map<vid_t, vid_t> root;
    root.reserve(parent.size());
    for (const auto& [from, _] : parent) root.emplace(from, find(from));
    for (vid_t& label : component_) {
      auto it = root.find(label);
      if (it != root.end()) label = it->second;
    }
    num_components_ -= merges;
  }
  ++stats_.repairs;
}

void IncrementalCc::Update(std::shared_ptr<const Snapshot> next) {
  GR_CHECK(next != nullptr, "Update needs a snapshot");
  if (next->epoch() == snapshot_->epoch()) return;
  const bool repairable = detail::Repairable(*next, snapshot_->epoch());
  snapshot_ = std::move(next);
  if (repairable) {
    Repair();
  } else {
    Recompute();
  }
}

}  // namespace gunrock::dynamic
