// Incremental maintenance for the monotone primitives (DESIGN.md §10).
//
// After an insert-only commit, a BFS/SSSP labeling can only improve, and
// only downstream of the new edges — so instead of recomputing from
// scratch, each maintainer seeds a frontier from the affected endpoints
// and re-relaxes with the same advance operator the full primitive uses,
// iterating the snapshot's base and delta CSRs layer by layer (tombstoned
// base slots are rejected in the functor). CC needs no traversal at all:
// every inserted cross-component edge unions two labels, and one O(|V|)
// remap restores the min-vertex-id labeling. Deletions (and epoch gaps —
// an Update() that skipped a snapshot) break monotonicity, so those fall
// back to a full recompute on the snapshot's merged view; the oracle
// tests prove both paths bit-identical to from-scratch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/workspace.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "primitives/bfs.hpp"
#include "primitives/cc.hpp"
#include "primitives/sssp.hpp"

namespace gunrock::dynamic {

/// How often each maintenance path ran, for tests and CLI reporting.
struct IncrementalStats {
  std::uint64_t repairs = 0;
  std::uint64_t full_recomputes = 0;
};

namespace detail {
/// True when `next` can be repaired on top of state computed at epoch
/// `seen`: it must be the direct successor snapshot and insert-only.
inline bool Repairable(const Snapshot& next, std::uint64_t seen) {
  return next.parent_epoch() == seen && next.removed_since_parent() == 0;
}
}  // namespace detail

/// Maintains BFS depths (the unique labeling; predecessors are not
/// maintained — parent trees are not unique) across snapshots.
class IncrementalBfs {
 public:
  IncrementalBfs(std::shared_ptr<const Snapshot> snapshot, vid_t source,
                 BfsOptions opts = {});

  /// Advances the maintained state to `next`: a no-op for the same epoch,
  /// a repair wave for a direct insert-only successor, a full recompute
  /// otherwise.
  void Update(std::shared_ptr<const Snapshot> next);

  const std::vector<std::int32_t>& depth() const noexcept { return depth_; }
  std::uint64_t epoch() const noexcept { return snapshot_->epoch(); }
  const IncrementalStats& stats() const noexcept { return stats_; }

 private:
  void Recompute();
  void Repair();

  BfsOptions opts_;
  vid_t source_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::vector<std::int32_t> depth_;
  IncrementalStats stats_;
  core::Workspace ws_;
};

/// Maintains SSSP distances (unique; predecessors are not maintained).
/// Requires a weighted base graph.
class IncrementalSssp {
 public:
  IncrementalSssp(std::shared_ptr<const Snapshot> snapshot, vid_t source,
                  SsspOptions opts = {});

  void Update(std::shared_ptr<const Snapshot> next);

  const std::vector<weight_t>& dist() const noexcept { return dist_; }
  std::uint64_t epoch() const noexcept { return snapshot_->epoch(); }
  const IncrementalStats& stats() const noexcept { return stats_; }

 private:
  void Recompute();
  void Repair();

  SsspOptions opts_;
  vid_t source_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::vector<weight_t> dist_;
  IncrementalStats stats_;
  core::Workspace ws_;
};

/// Maintains connected-component labels (smallest vertex id per
/// component) and the component count via union-on-insert.
class IncrementalCc {
 public:
  explicit IncrementalCc(std::shared_ptr<const Snapshot> snapshot,
                         CcOptions opts = {});

  void Update(std::shared_ptr<const Snapshot> next);

  const std::vector<vid_t>& component() const noexcept {
    return component_;
  }
  vid_t num_components() const noexcept { return num_components_; }
  std::uint64_t epoch() const noexcept { return snapshot_->epoch(); }
  const IncrementalStats& stats() const noexcept { return stats_; }

 private:
  void Recompute();
  void Repair();

  CcOptions opts_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::vector<vid_t> component_;
  vid_t num_components_ = 0;
  IncrementalStats stats_;
  core::Workspace ws_;
};

}  // namespace gunrock::dynamic
