// Epoch-versioned mutable graphs (DESIGN.md §10).
//
// Static Gunrock loads a CSR once and never touches it again; a serving
// engine for live graphs needs mutations without ever yanking the
// adjacency out from under an in-flight traversal. DynamicGraph keeps a
// frozen base CSR plus an uncommitted mutation set (inserted edges and
// tombstoned base slots); Commit() freezes the accumulated mutations into
// an immutable Snapshot — delta CSR + sorted tombstone list layered over
// the shared base — and bumps the epoch. Queries resolve a snapshot once
// at submit time and keep that exact view for their whole run, so a
// mutate/commit storm never perturbs running queries and older epochs
// remain queryable until they age out of the retention window.
//
// When the delta grows past a configurable fraction of the base, Commit()
// compacts: the merged adjacency is materialized once and republished as
// the new base with an empty delta, restoring pure-CSR iteration speed.
// Snapshots published before the compaction keep their old base alive via
// shared_ptr, so compaction is invisible to readers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::dynamic {

/// One directed edge mutation. `weight` is ignored when the base graph is
/// unweighted; an insert into a weighted graph defaults to weight 1.
struct EdgeUpdate {
  vid_t src = 0;
  vid_t dst = 0;
  weight_t weight = 1;
};

struct DynamicGraphOptions {
  /// Mirror every mutation onto (dst, src) so a symmetric base stays
  /// symmetric — matches the paper's all-undirected dataset discipline.
  bool undirected = true;
  /// Commit() compacts when (delta edges + tombstones) exceeds this
  /// fraction of the base edge count.
  double compact_threshold = 0.25;
  /// How many published snapshots stay addressable via SnapshotAt().
  /// The current snapshot is always retained.
  std::size_t retain_snapshots = 8;
};

/// Point-in-time gauges for /stats and test assertions.
struct DynamicGraphStats {
  std::uint64_t epoch = 0;
  std::uint64_t commits = 0;
  std::uint64_t compactions = 0;
  eid_t base_edges = 0;
  eid_t delta_edges = 0;      ///< committed delta slots in the current epoch
  eid_t tombstones = 0;       ///< committed tombstoned base slots
  eid_t pending_inserts = 0;  ///< applied but not yet committed
  eid_t pending_removes = 0;
};

struct CommitInfo {
  std::uint64_t epoch = 0;  ///< epoch now current (unchanged if no-op)
  bool changed = false;     ///< false when nothing was pending
  bool compacted = false;
  eid_t base_edges = 0;
  eid_t delta_edges = 0;
};

/// An immutable published view of the graph at one epoch. Snapshots are
/// shared freely across threads; every member is either const after
/// construction or guarded by std::once_flag (the lazily materialized
/// merged/reverse views).
class Snapshot {
 public:
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t parent_epoch() const noexcept { return parent_epoch_; }
  vid_t num_vertices() const { return base_->num_vertices(); }
  /// Visible edges: base − tombstones + delta.
  eid_t num_edges() const {
    return base_->num_edges() -
           static_cast<eid_t>(tombstones_.size()) + delta_.num_edges();
  }
  bool delta_empty() const noexcept {
    return delta_.num_edges() == 0 && tombstones_.empty();
  }

  /// The layered pieces, for incremental repair waves that want to touch
  /// only the affected region instead of the merged adjacency.
  const graph::Csr& base() const noexcept { return *base_; }
  const graph::Csr& delta() const noexcept { return delta_; }
  /// Sorted base-CSR edge slots deleted in this snapshot.
  std::span<const eid_t> tombstones() const noexcept { return tombstones_; }

  /// The adjacency the core/ operators iterate. When the delta is empty
  /// this is the base CSR itself (pointer-equal, zero cost — the static
  /// fast path is untouched); otherwise the merged CSR is materialized
  /// once, lazily, and cached for the snapshot's lifetime.
  std::shared_ptr<const graph::Csr> View(par::ThreadPool& pool) const;
  /// Transposed view for primitives that pull (lazily cached; equals
  /// View() structurally for symmetric graphs but is computed explicitly
  /// so directed dynamic graphs stay correct).
  std::shared_ptr<const graph::Csr> ReverseView(par::ThreadPool& pool) const;

  /// Repair metadata: the directed edge insertions between parent_epoch
  /// and this epoch (both directions listed for undirected graphs), and
  /// how many removals happened. Incremental maintainers repair from
  /// these seeds when removed_since_parent() == 0 and fall back to full
  /// recompute otherwise.
  const std::vector<EdgeUpdate>& inserted_since_parent() const noexcept {
    return inserted_since_parent_;
  }
  std::size_t removed_since_parent() const noexcept {
    return removed_since_parent_;
  }

  /// Default-constructed snapshots are only useful to DynamicGraph,
  /// which fills the fields before publishing; public so make_shared
  /// can reach it.
  Snapshot() = default;

 private:
  friend class DynamicGraph;

  std::uint64_t epoch_ = 0;
  std::uint64_t parent_epoch_ = 0;
  std::shared_ptr<const graph::Csr> base_;
  graph::Csr delta_;               // same vertex count as base; maybe empty
  std::vector<eid_t> tombstones_;  // sorted base edge slots
  std::vector<EdgeUpdate> inserted_since_parent_;
  std::size_t removed_since_parent_ = 0;

  mutable std::once_flag merged_once_;
  mutable std::shared_ptr<const graph::Csr> merged_;
  mutable std::once_flag reverse_once_;
  mutable std::shared_ptr<const graph::Csr> reverse_;
};

/// The mutable handle. All mutation and snapshot access is serialized by
/// one internal mutex; published Snapshots are lock-free to read. Batches
/// are atomic: every update is validated (endpoints in range, no self
/// loops) before any is applied, so a throwing batch leaves no trace.
class DynamicGraph {
 public:
  explicit DynamicGraph(graph::Csr base, DynamicGraphOptions opts = {});

  /// Applies edge insertions. Already-visible edges (in the pending view)
  /// are skipped. Returns how many updates actually applied; for
  /// undirected graphs an edge and its mirror count once.
  std::size_t AddEdges(std::span<const EdgeUpdate> edges);
  /// Applies edge removals (weight ignored). Unknown edges are skipped.
  std::size_t RemoveEdges(std::span<const EdgeUpdate> edges);

  /// Publishes the pending mutations as a new immutable snapshot and
  /// bumps the epoch; compacts first when the delta has outgrown
  /// opts.compact_threshold. With nothing pending this is a no-op that
  /// returns the current epoch with changed == false.
  CommitInfo Commit();

  /// The latest published snapshot (epoch >= 1; never null).
  std::shared_ptr<const Snapshot> Current() const;
  /// A retained snapshot by epoch. Throws gunrock::Error when the epoch
  /// was never published or has aged out of the retention window.
  std::shared_ptr<const Snapshot> SnapshotAt(std::uint64_t epoch) const;

  DynamicGraphStats Stats() const;
  bool undirected() const noexcept { return opts_.undirected; }
  vid_t num_vertices() const noexcept { return num_vertices_; }

 private:
  // Pending-view visibility; all callees hold mutex_.
  bool VisibleLocked(vid_t u, vid_t v) const;
  std::size_t AddOneLocked(const EdgeUpdate& e);
  std::size_t RemoveOneLocked(vid_t u, vid_t v);
  void ValidateBatch(std::span<const EdgeUpdate> edges) const;

  static std::uint64_t PackEdge(vid_t u, vid_t v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
            << 32) |
           static_cast<std::uint32_t>(v);
  }

  DynamicGraphOptions opts_;
  vid_t num_vertices_ = 0;

  mutable std::mutex mutex_;
  std::shared_ptr<const graph::Csr> base_;
  /// Every insert since the last compaction, committed and pending, in
  /// arrival order; entries killed by a later remove have src == -1. The
  /// delta CSR of each snapshot is rebuilt from the live entries.
  std::vector<EdgeUpdate> adds_;
  std::unordered_map<std::uint64_t, std::size_t> adds_index_;
  /// Tombstoned base slots since the last compaction (committed and
  /// pending), kept sorted and unique.
  std::vector<eid_t> tombs_;
  /// adds_ entries below this watermark are part of the current snapshot.
  std::size_t committed_adds_ = 0;

  std::uint64_t epoch_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t pending_inserts_ = 0;
  std::size_t pending_removes_ = 0;

  std::shared_ptr<const Snapshot> current_;
  std::deque<std::shared_ptr<const Snapshot>> retained_;
};

/// True when the sorted tombstone list contains base edge slot e (the
/// functor-side visibility test for repair waves; O(log t)).
inline bool IsTombstoned(std::span<const eid_t> tombs, eid_t e) {
  auto it = std::lower_bound(tombs.begin(), tombs.end(), e);
  return it != tombs.end() && *it == e;
}

}  // namespace gunrock::dynamic
