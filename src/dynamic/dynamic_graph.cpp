#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace gunrock::dynamic {

namespace {

/// Appends every base edge that survives the sorted tombstone list.
void PushBaseSurvivors(const graph::Csr& base, std::span<const eid_t> tombs,
                       graph::Coo* coo) {
  const bool weighted = base.has_weights();
  std::size_t t = 0;  // cursor into the sorted tombstone list
  for (vid_t u = 0; u < base.num_vertices(); ++u) {
    for (eid_t e = base.row_begin(u); e < base.row_end(u); ++e) {
      if (t < tombs.size() && tombs[t] == e) {
        ++t;
        continue;
      }
      if (weighted) {
        coo->PushEdge(u, base.edge_dest(e), base.edge_weight(e));
      } else {
        coo->PushEdge(u, base.edge_dest(e));
      }
    }
  }
}

graph::Csr BuildMerged(graph::Coo coo, par::ThreadPool& pool) {
  graph::BuildOptions bopts;
  bopts.symmetrize = false;
  bopts.remove_self_loops = false;
  bopts.remove_duplicates = false;
  return graph::BuildCsr(coo, bopts, pool);
}

/// Merged adjacency: base minus tombstones plus live delta edges, rebuilt
/// through BuildCsr so rows come back sorted (VisibleLocked and the
/// repair functors binary-search them).
graph::Csr Merge(const graph::Csr& base, std::span<const eid_t> tombs,
                 std::span<const EdgeUpdate> delta, par::ThreadPool& pool) {
  graph::Coo coo;
  coo.num_vertices = base.num_vertices();
  coo.Reserve(static_cast<std::size_t>(base.num_edges()) - tombs.size() +
              delta.size());
  const bool weighted = base.has_weights();
  PushBaseSurvivors(base, tombs, &coo);
  for (const EdgeUpdate& up : delta) {
    if (up.src == kInvalidVid) continue;
    if (weighted) {
      coo.PushEdge(up.src, up.dst, up.weight);
    } else {
      coo.PushEdge(up.src, up.dst);
    }
  }
  return BuildMerged(std::move(coo), pool);
}

/// Snapshot-side merge: the delta is already frozen as a CSR.
graph::Csr Merge(const graph::Csr& base, std::span<const eid_t> tombs,
                 const graph::Csr& delta, par::ThreadPool& pool) {
  graph::Coo coo;
  coo.num_vertices = base.num_vertices();
  coo.Reserve(static_cast<std::size_t>(base.num_edges()) - tombs.size() +
              static_cast<std::size_t>(delta.num_edges()));
  const bool weighted = base.has_weights();
  PushBaseSurvivors(base, tombs, &coo);
  for (vid_t u = 0; u < delta.num_vertices(); ++u) {
    for (eid_t e = delta.row_begin(u); e < delta.row_end(u); ++e) {
      if (weighted) {
        coo.PushEdge(u, delta.edge_dest(e), delta.edge_weight(e));
      } else {
        coo.PushEdge(u, delta.edge_dest(e));
      }
    }
  }
  return BuildMerged(std::move(coo), pool);
}

graph::Csr BuildDelta(vid_t num_vertices, bool weighted,
                      std::span<const EdgeUpdate> adds,
                      par::ThreadPool& pool) {
  graph::Coo coo;
  coo.num_vertices = num_vertices;
  for (const EdgeUpdate& up : adds) {
    if (up.src == kInvalidVid) continue;
    if (weighted) {
      coo.PushEdge(up.src, up.dst, up.weight);
    } else {
      coo.PushEdge(up.src, up.dst);
    }
  }
  graph::BuildOptions bopts;
  bopts.symmetrize = false;
  bopts.remove_self_loops = false;
  bopts.remove_duplicates = false;
  return graph::BuildCsr(coo, bopts, pool);
}

}  // namespace

std::shared_ptr<const graph::Csr> Snapshot::View(
    par::ThreadPool& pool) const {
  if (delta_empty()) return base_;
  std::call_once(merged_once_, [&] {
    auto merged = std::make_shared<const graph::Csr>(
        Merge(*base_, tombstones_, delta_, pool));
    // Warm the lazy per-edge source cache now: it mutates the otherwise
    // read-only Csr, and concurrent queries sharing this view must not
    // race on its first build (RegisterGraph's precedent).
    merged->edge_sources(pool);
    merged_ = std::move(merged);
  });
  return merged_;
}

std::shared_ptr<const graph::Csr> Snapshot::ReverseView(
    par::ThreadPool& pool) const {
  std::call_once(reverse_once_, [&] {
    reverse_ = std::make_shared<const graph::Csr>(
        graph::ReverseCsr(*View(pool), pool));
  });
  return reverse_;
}

DynamicGraph::DynamicGraph(graph::Csr base, DynamicGraphOptions opts)
    : opts_(opts), num_vertices_(base.num_vertices()) {
  GR_CHECK(opts_.compact_threshold > 0,
           "compact_threshold must be positive");
  GR_CHECK(opts_.retain_snapshots >= 1,
           "retain_snapshots must be at least 1");
  base_ = std::make_shared<const graph::Csr>(std::move(base));
  auto snap = std::make_shared<Snapshot>();
  snap->epoch_ = 1;
  snap->parent_epoch_ = 0;
  snap->base_ = base_;
  epoch_ = 1;
  current_ = snap;
  retained_.push_back(current_);
}

bool DynamicGraph::VisibleLocked(vid_t u, vid_t v) const {
  if (adds_index_.count(PackEdge(u, v)) != 0) return true;
  const graph::Csr& g = *base_;
  const auto nbrs = g.neighbors(u);
  auto [lo, hi] = std::equal_range(nbrs.begin(), nbrs.end(), v);
  for (auto it = lo; it != hi; ++it) {
    const eid_t e = g.row_begin(u) + (it - nbrs.begin());
    if (!IsTombstoned(tombs_, e)) return true;
  }
  return false;
}

void DynamicGraph::ValidateBatch(
    std::span<const EdgeUpdate> edges) const {
  for (const EdgeUpdate& e : edges) {
    if (e.src < 0 || e.src >= num_vertices_ || e.dst < 0 ||
        e.dst >= num_vertices_) {
      std::ostringstream os;
      os << "edge (" << e.src << ", " << e.dst
         << ") out of range for a graph with " << num_vertices_
         << " vertices";
      throw Error(os.str());
    }
    if (e.src == e.dst) {
      std::ostringstream os;
      os << "self loop (" << e.src << ", " << e.dst << ") rejected";
      throw Error(os.str());
    }
  }
}

std::size_t DynamicGraph::AddOneLocked(const EdgeUpdate& e) {
  if (VisibleLocked(e.src, e.dst)) return 0;
  adds_index_.emplace(PackEdge(e.src, e.dst), adds_.size());
  adds_.push_back(e);
  ++pending_inserts_;
  return 1;
}

std::size_t DynamicGraph::RemoveOneLocked(vid_t u, vid_t v) {
  auto it = adds_index_.find(PackEdge(u, v));
  if (it != adds_index_.end()) {
    const std::size_t idx = it->second;
    adds_[idx].src = kInvalidVid;  // dead; dropped at the next commit
    adds_index_.erase(it);
    if (idx < committed_adds_) {
      ++pending_removes_;
    } else {
      // Killed an insert from the same uncommitted batch: net zero.
      --pending_inserts_;
    }
    return 1;
  }
  const graph::Csr& g = *base_;
  const auto nbrs = g.neighbors(u);
  auto [lo, hi] = std::equal_range(nbrs.begin(), nbrs.end(), v);
  std::size_t applied = 0;
  for (auto nit = lo; nit != hi; ++nit) {
    const eid_t e = g.row_begin(u) + (nit - nbrs.begin());
    auto pos = std::lower_bound(tombs_.begin(), tombs_.end(), e);
    if (pos == tombs_.end() || *pos != e) {
      tombs_.insert(pos, e);
      applied = 1;
    }
  }
  if (applied) ++pending_removes_;
  return applied;
}

std::size_t DynamicGraph::AddEdges(std::span<const EdgeUpdate> edges) {
  ValidateBatch(edges);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t applied = 0;
  for (const EdgeUpdate& e : edges) {
    const std::size_t a = AddOneLocked(e);
    std::size_t b = 0;
    if (opts_.undirected) {
      b = AddOneLocked({e.dst, e.src, e.weight});
    }
    applied += (a | b);
  }
  return applied;
}

std::size_t DynamicGraph::RemoveEdges(std::span<const EdgeUpdate> edges) {
  ValidateBatch(edges);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t applied = 0;
  for (const EdgeUpdate& e : edges) {
    const std::size_t a = RemoveOneLocked(e.src, e.dst);
    std::size_t b = 0;
    if (opts_.undirected) {
      b = RemoveOneLocked(e.dst, e.src);
    }
    applied += (a | b);
  }
  return applied;
}

CommitInfo DynamicGraph::Commit() {
  par::ThreadPool& pool = par::ThreadPool::Global();
  std::lock_guard<std::mutex> lock(mutex_);
  CommitInfo info;
  if (pending_inserts_ == 0 && pending_removes_ == 0) {
    info.epoch = epoch_;
    info.base_edges = base_->num_edges();
    info.delta_edges = current_->delta().num_edges();
    return info;
  }

  // The just-committed inserts, recorded before the dead-entry compaction
  // below invalidates indices: these seed the repair waves.
  std::vector<EdgeUpdate> inserted;
  inserted.reserve(pending_inserts_);
  for (std::size_t i = committed_adds_; i < adds_.size(); ++i) {
    if (adds_[i].src != kInvalidVid) inserted.push_back(adds_[i]);
  }

  // Drop entries killed by removes and reindex the survivors.
  std::vector<EdgeUpdate> live;
  live.reserve(adds_.size());
  for (const EdgeUpdate& e : adds_) {
    if (e.src != kInvalidVid) live.push_back(e);
  }
  adds_ = std::move(live);
  adds_index_.clear();
  for (std::size_t i = 0; i < adds_.size(); ++i) {
    adds_index_.emplace(PackEdge(adds_[i].src, adds_[i].dst), i);
  }
  committed_adds_ = adds_.size();

  const bool weighted = base_->has_weights();
  const double pressure =
      static_cast<double>(adds_.size() + tombs_.size()) /
      static_cast<double>(std::max<eid_t>(base_->num_edges(), 1));
  const bool compact = pressure > opts_.compact_threshold;
  if (compact) {
    auto merged = std::make_shared<const graph::Csr>(
        Merge(*base_, tombs_, adds_, pool));
    merged->edge_sources(pool);  // warm: post-compaction snapshots share it
    base_ = std::move(merged);
    adds_.clear();
    adds_index_.clear();
    tombs_.clear();
    committed_adds_ = 0;
    ++compactions_;
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch_ = ++epoch_;
  snap->parent_epoch_ = current_->epoch_;
  snap->base_ = base_;
  if (!adds_.empty()) {
    snap->delta_ = BuildDelta(num_vertices_, weighted, adds_, pool);
  }
  snap->tombstones_ = tombs_;
  snap->inserted_since_parent_ = std::move(inserted);
  snap->removed_since_parent_ = pending_removes_;
  current_ = snap;
  retained_.push_back(current_);
  while (retained_.size() > opts_.retain_snapshots) {
    retained_.pop_front();
  }
  ++commits_;
  pending_inserts_ = 0;
  pending_removes_ = 0;

  info.epoch = epoch_;
  info.changed = true;
  info.compacted = compact;
  info.base_edges = base_->num_edges();
  info.delta_edges = snap->delta_.num_edges();
  return info;
}

std::shared_ptr<const Snapshot> DynamicGraph::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const Snapshot> DynamicGraph::SnapshotAt(
    std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : retained_) {
    if (s->epoch_ == epoch) return s;
  }
  std::ostringstream os;
  os << "epoch " << epoch << " is not retained (current epoch " << epoch_
     << ", retention window " << opts_.retain_snapshots << ")";
  throw Error(os.str());
}

DynamicGraphStats DynamicGraph::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DynamicGraphStats s;
  s.epoch = epoch_;
  s.commits = commits_;
  s.compactions = compactions_;
  s.base_edges = base_->num_edges();
  s.delta_edges = current_->delta().num_edges();
  s.tombstones = static_cast<eid_t>(current_->tombstones().size());
  s.pending_inserts = static_cast<eid_t>(pending_inserts_);
  s.pending_removes = static_cast<eid_t>(pending_removes_);
  return s;
}

}  // namespace gunrock::dynamic
