// Batched sorted search: the merge-path ingredient of load-balanced advance.
//
// Given the scanned degree offsets of a frontier, equal-work partitioning
// must find, for each chunk's starting edge position, the frontier item that
// owns it ("we use an efficient sorted search to map such indices with the
// scanned edge offset queue", paper Section 4.4). Both the batch form and
// the single-query form used inside the advance kernel live here.
#pragma once

#include <cstddef>
#include <span>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

/// Index of the last element of `haystack` (sorted ascending, non-empty
/// prefix property: haystack[0] <= q assumed by callers) that is <= q.
/// Equivalent to upper_bound(q) - 1.
template <typename T>
std::size_t FindOwner(std::span<const T> haystack, T q) {
  std::size_t lo = 0, hi = haystack.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (haystack[mid] <= q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// For every query q (ascending or not), writes FindOwner(haystack, q).
template <typename T>
void SortedSearch(ThreadPool& pool, std::span<const T> haystack,
                  std::span<const T> queries, std::span<std::size_t> out) {
  ParallelFor(pool, 0, queries.size(), [&](std::size_t i) {
    out[i] = FindOwner(haystack, queries[i]);
  });
}

}  // namespace gunrock::par
