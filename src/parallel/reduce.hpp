// Parallel reductions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"

namespace gunrock::par {

/// Generic transform-reduce: op(acc, transform(i)) over i in [0, n).
/// `identity` must satisfy op(identity, x) == x. Partial results are
/// accumulated per block and combined serially, so the result is
/// deterministic for associative/commutative op up to block partition
/// (exactly deterministic for integers; floating point combines in block
/// order, which is fixed for a given (n, pool size)).
/// Pass a Workspace to reuse the per-block partial buffer across calls;
/// callers whose reduction type differs from their loop's other reduces
/// should claim a private slot to avoid type churn in the arena.
template <typename T, typename Op, typename F>
T TransformReduce(ThreadPool& pool, std::size_t n, T identity, Op op,
                  F&& transform, Workspace* wsp = nullptr,
                  unsigned slot = ws::kReducePartials) {
  if (n == 0) return identity;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<T> local;
  std::vector<T>& partial =
      wsp ? wsp->Get<std::vector<T>>(slot) : local;
  partial.assign(nblocks, identity);
  FixedBlocks(pool, n, nblocks, [&](std::size_t b, std::size_t lo,
                                    std::size_t hi) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, transform(i));
    partial[b] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Sum of a span.
template <typename T>
T ReduceSum(ThreadPool& pool, std::span<const T> data) {
  return TransformReduce(pool, data.size(), T{},
                         [](T a, T b) { return a + b; },
                         [&](std::size_t i) { return data[i]; });
}

/// Maximum of a span (requires non-empty input semantics via identity).
template <typename T>
T ReduceMax(ThreadPool& pool, std::span<const T> data, T identity) {
  return TransformReduce(pool, data.size(), identity,
                         [](T a, T b) { return a < b ? b : a; },
                         [&](std::size_t i) { return data[i]; });
}

/// Minimum of a span.
template <typename T>
T ReduceMin(ThreadPool& pool, std::span<const T> data, T identity) {
  return TransformReduce(pool, data.size(), identity,
                         [](T a, T b) { return b < a ? b : a; },
                         [&](std::size_t i) { return data[i]; });
}

/// Count of elements satisfying pred.
template <typename T, typename Pred>
std::size_t CountIf(ThreadPool& pool, std::span<const T> data, Pred pred) {
  return TransformReduce(
      pool, data.size(), std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t i) { return pred(data[i]) ? std::size_t{1} : 0; });
}

}  // namespace gunrock::par
