// Parallel LSD radix sort for unsigned keys with optional payload.
//
// The graph builder sorts (src, dst) edge pairs packed into 64-bit keys;
// the near/far priority queue and several primitives sort (key, value)
// pairs. 8-bit digits, per-block histograms, digit-major scan for stable
// scatter — the standard GPU formulation transplanted to fixed CPU blocks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

namespace detail {

inline constexpr int kRadixBits = 8;
inline constexpr std::size_t kRadix = 1u << kRadixBits;

template <typename K>
inline unsigned Digit(K key, int pass) {
  return static_cast<unsigned>((key >> (pass * kRadixBits)) &
                               (kRadix - 1));
}

/// One stable counting-sort pass on digit `pass` from src to dst.
/// Returns true if the pass was skipped because all keys share the digit.
template <typename K, typename V, bool kHasValues>
bool RadixPass(ThreadPool& pool, std::span<K> src_keys, std::span<K> dst_keys,
               std::span<V> src_vals, std::span<V> dst_vals, int pass) {
  const std::size_t n = src_keys.size();
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  // counts[b * kRadix + d] = occurrences of digit d in block b.
  std::vector<std::size_t> counts(nblocks * kRadix, 0);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t* local = &counts[b * kRadix];
                for (std::size_t i = lo; i < hi; ++i) {
                  ++local[Digit(src_keys[i], pass)];
                }
              });
  // Skip the scatter when a single digit value covers all keys.
  {
    std::array<std::size_t, kRadix> totals{};
    for (std::size_t b = 0; b < nblocks; ++b) {
      for (std::size_t d = 0; d < kRadix; ++d) {
        totals[d] += counts[b * kRadix + d];
      }
    }
    for (std::size_t d = 0; d < kRadix; ++d) {
      if (totals[d] == n) return true;
    }
    // Digit-major exclusive scan: offset for (d, b) = all smaller digits
    // plus same digit in earlier blocks — this is what makes LSD stable.
    std::size_t run = 0;
    for (std::size_t d = 0; d < kRadix; ++d) {
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t c = counts[b * kRadix + d];
        counts[b * kRadix + d] = run;
        run += c;
      }
    }
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t* local = &counts[b * kRadix];
                for (std::size_t i = lo; i < hi; ++i) {
                  const std::size_t pos = local[Digit(src_keys[i], pass)]++;
                  dst_keys[pos] = src_keys[i];
                  if constexpr (kHasValues) dst_vals[pos] = src_vals[i];
                }
              });
  return false;
}

template <typename K, typename V, bool kHasValues>
void RadixSortImpl(ThreadPool& pool, std::span<K> keys, std::span<V> vals) {
  static_assert(std::is_unsigned_v<K>, "radix sort needs unsigned keys");
  const std::size_t n = keys.size();
  if (n <= 1) return;
  std::vector<K> tmp_keys(n);
  std::vector<V> tmp_vals(kHasValues ? n : 0);
  std::span<K> a = keys, b{tmp_keys};
  std::span<V> av = vals, bv{tmp_vals};
  const int passes = static_cast<int>(sizeof(K));
  for (int p = 0; p < passes; ++p) {
    if (!RadixPass<K, V, kHasValues>(pool, a, b, av, bv, p)) {
      std::swap(a, b);
      std::swap(av, bv);
    }
  }
  if (a.data() != keys.data()) {
    ParallelFor(pool, 0, n, [&](std::size_t i) {
      keys[i] = a[i];
      if constexpr (kHasValues) vals[i] = av[i];
    });
  }
}

struct NoValue {};

}  // namespace detail

/// Sorts keys ascending (stable, not that it matters for keys alone).
template <typename K>
void RadixSortKeys(ThreadPool& pool, std::span<K> keys) {
  std::span<detail::NoValue> none;
  detail::RadixSortImpl<K, detail::NoValue, false>(pool, keys, none);
}

/// Sorts (key, value) pairs by key ascending, stably.
template <typename K, typename V>
void RadixSortPairs(ThreadPool& pool, std::span<K> keys, std::span<V> vals) {
  detail::RadixSortImpl<K, V, true>(pool, keys, vals);
}

}  // namespace gunrock::par
