// Concurrent bitmap over 64-bit words.
//
// Used for the paper's visited-status tests (idempotent BFS filter
// heuristics) and for the pull-direction frontier representation
// ("Gunrock internally converts the current frontier into a bitmap of
// vertices", Section 4.5).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64) {}

  std::size_t size() const noexcept { return num_bits_; }

  /// Clears all bits (parallel over words for large maps).
  void Reset(ThreadPool& pool) {
    ParallelFor(pool, 0, words_.size(), [&](std::size_t w) {
      words_[w].store(0, std::memory_order_relaxed);
    });
  }

  void Reset() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  bool Test(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >>
            (i & 63)) & 1ULL;
  }

  /// Sets bit i (relaxed; idempotent).
  void Set(std::size_t i) {
    words_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Sets bit i; returns true if this call flipped it (i.e., it was clear).
  bool TestAndSet(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Non-atomic set for single-threaded build-up phases.
  void SetUnsynchronized(std::size_t i) {
    auto& w = words_[i >> 6];
    w.store(w.load(std::memory_order_relaxed) | (1ULL << (i & 63)),
            std::memory_order_relaxed);
  }

  /// Population count (parallel).
  std::size_t Count(ThreadPool& pool) const;

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

/// Epoch-stamped membership set: the O(frontier) alternative to clearing
/// a Bitmap between uses.
///
/// The pull-direction frontier is rebuilt from scratch on every direction
/// switch; with a plain Bitmap that costs a full O(|V|/64) Reset before
/// the O(frontier) Set pass. EpochBitmap instead stamps members with the
/// current epoch — exactly the filter history tables' trick
/// (core/filter.hpp): NewEpoch() is one counter bump that invalidates
/// every previous stamp at once, so building a frontier set costs only
/// the Set pass over its members.
///
/// The representation is one 32-bit stamp per element (not one bit), so
/// membership tests are a single aligned load with no bit arithmetic;
/// the memory trade (4 B/vertex vs 1 bit) buys the O(1) reset. Set() is
/// an idempotent relaxed store — concurrent setters write the same value,
/// so no CAS is needed. Stamps wrap every 2^32-1 epochs; NewEpoch() then
/// pays one full clear (amortized to nothing).
class EpochBitmap {
 public:
  EpochBitmap() = default;
  explicit EpochBitmap(std::size_t size) : stamps_(size) {
    for (auto& s : stamps_) s.store(0, std::memory_order_relaxed);
  }

  std::size_t size() const noexcept { return stamps_.size(); }

  /// Invalidates every current member in O(1). A fresh EpochBitmap is
  /// already empty (stamps hold 0, the never-valid epoch).
  void NewEpoch() {
    if (++epoch_ == 0) {  // wrap: stale stamps could alias; hard reset
      for (auto& s : stamps_) s.store(0, std::memory_order_relaxed);
      epoch_ = 1;
    }
  }

  /// Resizes to `size` elements. Storage is replaced (and the epoch
  /// reset) only when the size actually changes, so a workspace-resident
  /// instance serving one graph allocates exactly once.
  void Resize(std::size_t size) {
    if (stamps_.size() != size) {
      stamps_ = std::vector<std::atomic<std::uint32_t>>(size);
      epoch_ = 1;
    }
  }

  /// Marks i a member of the current epoch (relaxed; idempotent).
  void Set(std::size_t i) {
    stamps_[i].store(epoch_, std::memory_order_relaxed);
  }

  /// Marks i a member; returns true iff this call made it one — an
  /// atomic claim, like Bitmap::TestAndSet (exactly one of several
  /// concurrent claimants wins the exchange).
  bool TestAndSet(std::size_t i) {
    return stamps_[i].exchange(epoch_, std::memory_order_relaxed) !=
           epoch_;
  }

  /// True iff i was Set() since the last NewEpoch().
  bool Test(std::size_t i) const {
    return stamps_[i].load(std::memory_order_relaxed) == epoch_;
  }

 private:
  std::vector<std::atomic<std::uint32_t>> stamps_;
  std::uint32_t epoch_ = 1;  // stamp 0 is never a valid epoch
};

}  // namespace gunrock::par
