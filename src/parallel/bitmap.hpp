// Concurrent bitmap over 64-bit words.
//
// Used for the paper's visited-status tests (idempotent BFS filter
// heuristics) and for the pull-direction frontier representation
// ("Gunrock internally converts the current frontier into a bitmap of
// vertices", Section 4.5).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64) {}

  std::size_t size() const noexcept { return num_bits_; }

  /// Clears all bits (parallel over words for large maps).
  void Reset(ThreadPool& pool) {
    ParallelFor(pool, 0, words_.size(), [&](std::size_t w) {
      words_[w].store(0, std::memory_order_relaxed);
    });
  }

  void Reset() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  bool Test(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >>
            (i & 63)) & 1ULL;
  }

  /// Sets bit i (relaxed; idempotent).
  void Set(std::size_t i) {
    words_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Sets bit i; returns true if this call flipped it (i.e., it was clear).
  bool TestAndSet(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Non-atomic set for single-threaded build-up phases.
  void SetUnsynchronized(std::size_t i) {
    auto& w = words_[i >> 6];
    w.store(w.load(std::memory_order_relaxed) | (1ULL << (i & 63)),
            std::memory_order_relaxed);
  }

  /// Population count (parallel).
  std::size_t Count(ThreadPool& pool) const;

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace gunrock::par
