// Data-parallel loop helpers built on ThreadPool::Parallel.
//
// Two scheduling shapes cover everything in the library:
//  - ParallelForChunks: dynamic self-scheduling over fixed-size chunks
//    (an atomic ticket counter), good for irregular per-item cost — this is
//    the CPU analog of a grid of CTAs draining a work queue.
//  - FixedBlocks: a deterministic partition into `nblocks` contiguous
//    blocks, used by multi-phase primitives (scan, compact, radix sort)
//    that need stable block boundaries across phases.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "parallel/thread_pool.hpp"

namespace gunrock::par {

/// Below this many items a loop runs serially on the caller; forking the
/// pool costs ~a few microseconds and is not worth it.
inline constexpr std::size_t kSerialCutoff = 2048;

/// Chunk size that amortizes the ticket counter while keeping enough chunks
/// for load balance (~8 chunks per lane). Floored so tiny inputs are not
/// shredded into chunks whose scheduling bookkeeping outweighs their work.
inline constexpr std::size_t kMinGrain = 64;

inline std::size_t DefaultGrain(std::size_t n, unsigned num_threads) {
  const std::size_t target_chunks =
      static_cast<std::size_t>(num_threads) * 8;
  return std::max<std::size_t>(kMinGrain,
                               (n + target_chunks - 1) / target_chunks);
}

/// Start offset of block `b` out of `nblocks` over `n` items.
inline std::size_t BlockStart(std::size_t n, std::size_t nblocks,
                              std::size_t b) {
  return n / nblocks * b + std::min<std::size_t>(n % nblocks, b);
}

/// Dynamic chunked loop: fn(lo, hi, chunk, rank) over chunk [lo, hi).
/// The chunk index is explicit so per-chunk accounting stays correct on
/// every execution path: the serial fallback visits the chunks one by one
/// with their true indices instead of handing the callback one merged
/// range (which silently attributed everything to chunk 0). Chunk
/// boundaries depend only on (begin, end, grain), so per-chunk output is
/// deterministic for a fixed grain regardless of thread count.
template <typename F>
void ParallelForChunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                       std::size_t grain, F&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = DefaultGrain(n, pool.num_threads());
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1 || n <= kSerialCutoff || pool.num_threads() == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      fn(lo, hi, c, 0u);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  pool.Parallel([&](unsigned rank) {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      fn(lo, hi, c, rank);
    }
  });
}

/// Dynamic per-index loop: fn(i) for i in [begin, end).
template <typename F>
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 F&& fn, std::size_t grain = 0) {
  ParallelForChunks(
      pool, begin, end, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t, unsigned) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      });
}

/// Deterministic partition into `nblocks` blocks; fn(b, lo, hi) per block.
/// Blocks are processed with dynamic scheduling but their boundaries depend
/// only on (n, nblocks), so a later phase can recompute them.
template <typename F>
void FixedBlocks(ThreadPool& pool, std::size_t n, std::size_t nblocks,
                 F&& fn) {
  if (n == 0 || nblocks == 0) return;
  if (nblocks == 1 || pool.num_threads() == 1) {
    for (std::size_t b = 0; b < nblocks; ++b) {
      fn(b, BlockStart(n, nblocks, b), BlockStart(n, nblocks, b + 1));
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  pool.Parallel([&](unsigned) {
    for (;;) {
      const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= nblocks) break;
      fn(b, BlockStart(n, nblocks, b), BlockStart(n, nblocks, b + 1));
    }
  });
}

/// A reasonable block count for multi-phase primitives: enough blocks to
/// keep every lane busy, few enough that the serial inter-block phase
/// stays negligible.
inline std::size_t DefaultBlockCount(std::size_t n, unsigned num_threads) {
  const std::size_t by_threads = static_cast<std::size_t>(num_threads) * 4;
  const std::size_t by_size = std::max<std::size_t>(1, n / 4096);
  return std::max<std::size_t>(1, std::min(by_threads, by_size));
}

}  // namespace gunrock::par
