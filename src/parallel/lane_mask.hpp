// Lane-mask frontier: the bit-parallel multi-source traversal state
// (Then et al., "The More the Merrier: Efficient Multi-Source Graph
// Traversal", VLDB 2015; Yang et al., GraphBLAST's multi-column SpMM
// view of batched BFS).
//
// One 64-bit word per vertex holds the membership of up to 64 concurrent
// source lanes, so a single CSR row scan propagates the frontier of all
// lanes at once: `next[v] |= frontier[u] & ~visited[v]`. The structure is
// epoch-stamped like par::EpochBitmap — a new traversal level (or a new
// wave on a recycled workspace lease) invalidates every mask with one
// counter bump instead of an O(|V|) clear.
//
// Unlike EpochBitmap, a slot's payload (the lane mask) cannot be folded
// into the stamp, so first-touch-per-epoch must both reset the stale mask
// and publish the stamp without losing a concurrent OR. OrBits() resolves
// the reset-vs-or race with a tiny claim protocol: the first toucher CASes
// the stamp to a reserved kResetting value, stores its bits over the stale
// mask, then publishes the epoch stamp; concurrent touchers spin (bounded:
// two stores) until the stamp is current and then fetch_or. In the common
// case — the slot is already stamped — OrBits is one load plus one
// fetch_or, exactly the scalar Bitmap::Set cost.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace gunrock::par {

class LaneMaskFrontier {
 public:
  LaneMaskFrontier() = default;

  std::size_t size() const noexcept { return masks_.size(); }

  /// Resizes to `n` vertices. Storage is replaced (and the epoch reset)
  /// only when the size actually changes, so a workspace-resident
  /// instance serving one graph allocates exactly once.
  void Resize(std::size_t n) {
    if (masks_.size() != n) {
      masks_ = std::vector<std::atomic<std::uint64_t>>(n);
      stamps_ = std::vector<std::atomic<std::uint32_t>>(n);  // zeroed
      epoch_ = 1;
    }
  }

  /// Invalidates every current mask in O(1). Callers must not run
  /// NewEpoch concurrently with OrBits/Load (levels are bulk-synchronous;
  /// the epoch bump happens at the serial level boundary).
  void NewEpoch() {
    ++epoch_;
    if (epoch_ == 0 || epoch_ == kResetting) {  // wrap: stale stamps alias
      for (auto& s : stamps_) s.store(0, std::memory_order_relaxed);
      epoch_ = 1;
    }
  }

  /// Lane mask of vertex `i` this epoch (0 when untouched).
  std::uint64_t Load(std::size_t i) const {
    return stamps_[i].load(std::memory_order_acquire) == epoch_
               ? masks_[i].load(std::memory_order_relaxed)
               : 0;
  }

  /// ORs `bits` into vertex i's mask; returns the *previous* mask, so a
  /// zero return means this call was the vertex's first touch this epoch
  /// (the caller's exact-dedup signal — exactly one of any set of
  /// concurrent claimants observes it). Safe to call concurrently for the
  /// same vertex from any number of threads.
  std::uint64_t OrBits(std::size_t i, std::uint64_t bits) {
    for (;;) {
      std::uint32_t s = stamps_[i].load(std::memory_order_acquire);
      if (s == epoch_) {
        return masks_[i].fetch_or(bits, std::memory_order_relaxed);
      }
      if (s != kResetting &&
          stamps_[i].compare_exchange_weak(s, kResetting,
                                           std::memory_order_acquire)) {
        // We own the reset: overwrite the stale mask, then publish. The
        // release pairs with the acquire loads above, so a thread that
        // sees the current stamp also sees the reset mask.
        masks_[i].store(bits, std::memory_order_relaxed);
        stamps_[i].store(epoch_, std::memory_order_release);
        return 0;
      }
      // Another thread holds the reset claim (or the CAS raced); its
      // publish is two stores away — spin.
    }
  }

 private:
  /// Reserved stamp marking a slot mid-reset; never a valid epoch.
  static constexpr std::uint32_t kResetting = 0xffffffffu;

  std::vector<std::atomic<std::uint64_t>> masks_;
  std::vector<std::atomic<std::uint32_t>> stamps_;
  std::uint32_t epoch_ = 1;  // stamp 0 is never a valid epoch
};

/// Mask of the first `lanes` lane bits (lanes == 64 -> all ones).
inline constexpr std::uint64_t LaneMaskOf(std::size_t lanes) {
  return lanes >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << lanes) - 1;
}

}  // namespace gunrock::par
