// Parallel histogram with per-block privatized bins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

/// bins[binner(i)] += 1 for i in [0, n). binner must return values in
/// [0, bins.size()).
template <typename F>
void Histogram(ThreadPool& pool, std::size_t n, std::span<std::int64_t> bins,
               F&& binner) {
  const std::size_t num_bins = bins.size();
  std::fill(bins.begin(), bins.end(), 0);
  if (n == 0) return;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::int64_t> local(nblocks * num_bins, 0);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::int64_t* mine = &local[b * num_bins];
                for (std::size_t i = lo; i < hi; ++i) ++mine[binner(i)];
              });
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (std::size_t k = 0; k < num_bins; ++k) {
      bins[k] += local[b * num_bins + k];
    }
  }
}

}  // namespace gunrock::par
