// Persistent fork-join thread pool: the CPU substitute for the GPU's
// streaming multiprocessors.
//
// The pool exposes a single primitive — Parallel(fn) — which runs
// fn(rank) once on every worker plus the calling thread, then joins.
// Everything higher level (parallel_for, scan, sort, the Gunrock
// operators) is a data-parallel pass built from this one bulk-synchronous
// primitive, mirroring how the paper's operators are bulk-synchronous
// kernel launches.
//
// Launch protocol (the operator hot path, so it must stay cheap):
//  - The caller publishes the job as a bare function pointer + context
//    (no std::function, no allocation) and bumps a single atomic epoch.
//  - Workers spin briefly on the epoch, then yield, then park on a
//    condvar. The caller only touches the condvar when a worker is
//    actually parked, so back-to-back launches never pay a mutex or a
//    futex wake.
//  - Completion is reported through cache-line-aligned per-worker slots
//    (each worker stores the epoch it finished); the caller spins over
//    the slots, parking only after its own spin budget runs out. There
//    is no shared countdown counter for finishing workers to contend on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace gunrock::par {

/// Alignment that keeps per-worker state on private cache lines.
inline constexpr std::size_t kCacheLineSize = 64;

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of execution (including
  /// the caller). 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total number of execution lanes, including the calling thread.
  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(rank) for every rank in [0, num_threads()) concurrently; the
  /// calling thread participates as rank 0. Blocks until all lanes finish.
  /// If any lane throws, the first exception is rethrown on the caller
  /// after all lanes have completed (no lane is left running).
  ///
  /// Not reentrant: a lane must not call Parallel() on the same pool —
  /// that is detected (thread-locally, so it cannot be confused with
  /// contention) and reported with std::logic_error instead of
  /// deadlocking. By default two external threads must not share one pool
  /// concurrently either; AcquireSharedSubmitters() lifts that
  /// restriction by serializing launches, which is how the query engine
  /// multiplexes many in-flight queries onto one pool.
  ///
  /// `fn` is invoked through a function-pointer trampoline on the caller's
  /// stack frame — no std::function, no heap traffic per launch.
  template <typename F>
  void Parallel(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    Launch(&Trampoline<Fn>,
           const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Opts this pool into multi-submitter mode: while at least one holder
  /// is registered, concurrent Parallel() calls from distinct external
  /// threads serialize on an internal mutex instead of being reported as
  /// misuse. Refcounted so the mode is scoped to its users' lifetimes
  /// (each QueryEngine acquires on construction and releases on
  /// shutdown); when the count returns to zero the pool reverts to the
  /// strict single-owner contract, misuse diagnostics included. The
  /// single-owner fast path is untouched while the count is zero; in
  /// shared mode a launch pays one uncontended lock. Launches from a lane
  /// of this pool always throw std::logic_error — blocking there would
  /// deadlock the barrier the lane is part of.
  void AcquireSharedSubmitters() noexcept {
    shared_submitters_.fetch_add(1, std::memory_order_acq_rel);
  }
  void ReleaseSharedSubmitters() noexcept {
    shared_submitters_.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool shared_submitters() const noexcept {
    return shared_submitters_.load(std::memory_order_acquire) > 0;
  }

  /// Process-wide default pool, sized to hardware concurrency. Constructed
  /// on first use; safe to use from main() onward.
  static ThreadPool& Global();

 private:
  using Thunk = void (*)(void*, unsigned);

  template <typename Fn>
  static void Trampoline(void* ctx, unsigned rank) {
    (*static_cast<Fn*>(ctx))(rank);
  }

  /// One completion flag per worker, each on its own cache line so
  /// finishing workers never contend on a shared counter.
  struct alignas(kCacheLineSize) DoneSlot {
    std::atomic<std::uint64_t> epoch{0};
  };

  void Launch(Thunk thunk, void* ctx);
  void LaunchLocked(Thunk thunk, void* ctx);
  void WorkerLoop(unsigned rank);
  void RecordError() noexcept;
  bool AllDone(std::uint64_t e) const noexcept;

  // Spin budgets before falling back to yields and finally the condvar.
  // Deliberately modest, and zeroed entirely when the pool has more lanes
  // than hardware threads: an oversubscribed spinner only burns the
  // timeslice the other side needs to make progress, so yielding
  // immediately is the fastest handoff.
  static constexpr int kSpinIters = 128;
  static constexpr int kYieldIters = 32;
  static constexpr int kYieldItersOversubscribed = 64;
  int spin_iters_ = kSpinIters;
  int yield_iters_ = kYieldIters;

  // Job broadcast: written by the caller before the epoch bump, read by
  // workers after observing the bump (release/acquire through epoch_).
  Thunk thunk_ = nullptr;
  void* ctx_ = nullptr;

  alignas(kCacheLineSize) std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> active_{false};        // reentrancy/misuse detection
  std::atomic<int> shared_submitters_{0};
  std::atomic<unsigned> parked_{0};        // workers blocked on work_cv_
  std::atomic<bool> caller_waiting_{false};
  std::mutex submit_mutex_;                // shared-submitter serialization

  std::unique_ptr<DoneSlot[]> slots_;      // one per worker (rank - 1)
  std::vector<std::thread> workers_;

  std::mutex work_mutex_;                  // slow path only
  std::condition_variable work_cv_;
  std::mutex done_mutex_;                  // slow path only
  std::condition_variable done_cv_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace gunrock::par
