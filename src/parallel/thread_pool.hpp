// Persistent fork-join thread pool: the CPU substitute for the GPU's
// streaming multiprocessors.
//
// The pool exposes a single primitive — Parallel(fn) — which runs
// fn(rank, num_threads) once on every worker plus the calling thread, then
// joins. Everything higher level (parallel_for, scan, sort, the Gunrock
// operators) is a data-parallel pass built from this one bulk-synchronous
// primitive, mirroring how the paper's operators are bulk-synchronous
// kernel launches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gunrock::par {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of execution (including
  /// the caller). 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total number of execution lanes, including the calling thread.
  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(rank) for every rank in [0, num_threads()) concurrently; the
  /// calling thread participates as rank 0. Blocks until all lanes finish.
  /// If any lane throws, the first exception is rethrown on the caller
  /// after all lanes have completed (no lane is left running).
  ///
  /// Not reentrant: a lane must not call Parallel() on the same pool.
  void Parallel(const std::function<void(unsigned)>& fn);

  /// Process-wide default pool, sized to hardware concurrency. Constructed
  /// on first use; safe to use from main() onward.
  static ThreadPool& Global();

 private:
  void WorkerLoop(unsigned rank);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals a new job epoch to workers
  std::condition_variable done_cv_;   // signals job completion to the caller
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace gunrock::par
