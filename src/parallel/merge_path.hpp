// Merge-path diagonal partitioning (Merrill & Garland's SpMV
// decomposition, the CPU form).
//
// A CSR sweep has two kinds of work interleaved: consuming nonzeros and
// finishing rows. Treat the row-end offsets and the nonzero indices as two
// sorted sequences being merged; the merge path is the staircase that
// consumes row r's end exactly after its last nonzero. Cutting the path on
// equally spaced diagonals gives every chunk the same number of
// (row + nonzero) cells regardless of degree skew — a 10^5-degree hub row
// costs its owner chunks no more than 10^5 cells split evenly, where a
// row-mapped sweep would serialize it on one thread.
//
// This generalizes par::FindOwner (sorted_search.hpp): FindOwner splits
// one sequence at a scalar; MergePathSearch splits the *merge* of two
// sequences at a diagonal. The partition is a pure function of the
// structure (row offsets + a chunk-cell constant), never of the pool
// width, so chunk seams — and therefore any seam-combine order built on
// them — are identical at any thread count. core/spmv.hpp builds its
// deterministic semiring backend on exactly that property.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace gunrock::par {

/// A point on the merge path: `row` rows fully consumed (so `row` is the
/// index of the row currently being swept), `nnz` nonzeros consumed.
struct MergeCoord {
  std::size_t row = 0;
  std::size_t nnz = 0;
};

/// Intersection of diagonal `d` (row + nnz == d) with the merge path of
/// A = `row_ends` (the CSR row *end* offsets, offsets[1..rows]) and
/// B = the nonzero indices 0..num_nnz-1. The path consumes A[i] once
/// B has advanced past it (row_ends[i] <= j), so the returned coordinate
/// satisfies row_ends[row-1] <= nnz <= row_ends[row]: every row before
/// `row` has all its nonzeros on the left of the diagonal.
template <typename Off>
MergeCoord MergePathSearch(std::size_t diagonal,
                           std::span<const Off> row_ends,
                           std::size_t num_nnz) {
  std::size_t lo = diagonal > num_nnz ? diagonal - num_nnz : 0;
  std::size_t hi = std::min(diagonal, row_ends.size());
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (static_cast<std::size_t>(row_ends[mid]) <= diagonal - mid - 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, diagonal - lo};
}

/// Cells (rows + nonzeros) per chunk, and the chunk-count ceiling. Both
/// are constants of the library, not of the pool: the partition must not
/// change with thread count (see header comment). 4096 cells amortize the
/// per-chunk dispatch; 256 chunks bound the serial seam fixup while
/// feeding any realistic pool width with dynamic slack.
inline constexpr std::size_t kMergeChunkCells = 4096;
inline constexpr std::size_t kMergeMaxChunks = 256;

inline std::size_t MergePathChunks(std::size_t rows, std::size_t nnz) {
  const std::size_t work = rows + nnz;
  return std::clamp<std::size_t>(work / kMergeChunkCells, std::size_t{1},
                                 kMergeMaxChunks);
}

/// Fills `out` with the `num_chunks`+1 chunk boundaries of the merge path
/// cut on equally spaced diagonals (diagonal c = work * c / num_chunks).
/// Boundary coordinates are non-decreasing in both components; chunk c
/// owns the half-open cell range [out[c], out[c+1]).
template <typename Off>
void MergePathPartition(std::span<const Off> row_ends, std::size_t num_nnz,
                        std::size_t num_chunks,
                        std::vector<MergeCoord>& out) {
  const std::size_t work = row_ends.size() + num_nnz;
  out.resize(num_chunks + 1);
  out[0] = {0, 0};
  out[num_chunks] = {row_ends.size(), num_nnz};
  for (std::size_t c = 1; c < num_chunks; ++c) {
    out[c] = MergePathSearch(work * c / num_chunks, row_ends, num_nnz);
  }
}

}  // namespace gunrock::par
