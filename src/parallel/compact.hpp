// Stream compaction (parallel copy_if).
//
// The filter operator's backbone: "using parallel scan for efficient
// filtering is well-understood on GPUs" (paper Section 4.1). Two fixed-block
// phases — count, then scatter at scanned offsets — produce a stable
// (order-preserving) compaction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::par {

/// Copies in[i] to out (densely, preserving order) for every i where
/// pred(i) is true. out must have room for n elements in the worst case.
/// Returns the number of elements kept. `in` and `out` must not overlap.
template <typename T, typename Pred>
std::size_t CopyIfIndexed(ThreadPool& pool, std::span<const T> in,
                          std::span<T> out, Pred pred) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> block_count(nblocks);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c = 0;
                for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
                block_count[b] = c;
              });
  std::size_t total = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t c = block_count[b];
    block_count[b] = total;
    total += c;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t pos = block_count[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  if (pred(i)) out[pos++] = in[i];
                }
              });
  return total;
}

/// Value-predicate overload.
template <typename T, typename Pred>
std::size_t CopyIf(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                   Pred pred) {
  return CopyIfIndexed(pool, in, out,
                       [&](std::size_t i) { return pred(in[i]); });
}

/// Produces transform(i) densely for every index i in [0, n) passing pred.
/// Used to materialize index sets (e.g., "all unvisited vertices").
template <typename T, typename Pred, typename F>
std::size_t GenerateIf(ThreadPool& pool, std::size_t n, std::span<T> out,
                       Pred pred, F&& transform) {
  if (n == 0) return 0;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> block_count(nblocks);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c = 0;
                for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
                block_count[b] = c;
              });
  std::size_t total = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t c = block_count[b];
    block_count[b] = total;
    total += c;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t pos = block_count[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  if (pred(i)) out[pos++] = transform(i);
                }
              });
  return total;
}

}  // namespace gunrock::par
