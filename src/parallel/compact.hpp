// Stream compaction (parallel copy_if) and partitioning.
//
// The filter operator's backbone: "using parallel scan for efficient
// filtering is well-understood on GPUs" (paper Section 4.1). Two fixed-block
// phases — count, then scatter at scanned offsets — produce a stable
// (order-preserving) compaction. Every helper takes an optional Workspace
// so its block-counter scratch is reused across calls (allocation-free in
// steady state).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"

namespace gunrock::par {

/// Copies in[i] to out (densely, preserving order) for every i where
/// pred(i) is true. out must have room for n elements in the worst case.
/// Returns the number of elements kept. `in` and `out` must not overlap.
template <typename T, typename Pred>
std::size_t CopyIfIndexed(ThreadPool& pool, std::span<const T> in,
                          std::span<T> out, Pred pred,
                          Workspace* wsp = nullptr) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> local;
  std::vector<std::size_t>& block_count =
      wsp ? wsp->Get<std::vector<std::size_t>>(ws::kCompactBlockCounts)
          : local;
  block_count.resize(nblocks);  // fully overwritten below
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c = 0;
                for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
                block_count[b] = c;
              });
  std::size_t total = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t c = block_count[b];
    block_count[b] = total;
    total += c;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t pos = block_count[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  if (pred(i)) out[pos++] = in[i];
                }
              });
  return total;
}

/// Value-predicate overload.
template <typename T, typename Pred>
std::size_t CopyIf(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                   Pred pred, Workspace* wsp = nullptr) {
  return CopyIfIndexed(pool, in, out,
                       [&](std::size_t i) { return pred(in[i]); }, wsp);
}

/// Appends the passing elements of `in` to `out` (stable). Unlike CopyIf
/// into a worst-case-sized span, this sizes `out` to the exact final
/// length *before* scattering, so no excess tail is ever value-initialized
/// just to be thrown away. `in` must not alias `out`.
template <typename T, typename Pred>
std::size_t AppendIf(ThreadPool& pool, std::span<const T> in,
                     std::vector<T>& out, Pred pred,
                     Workspace* wsp = nullptr) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (pool.num_threads() == 1) {
    // Single lane: one stable pass, no counting phase, no value-
    // initializing resize of the destination gap.
    const std::size_t base = out.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(in[i])) out.push_back(in[i]);
    }
    return out.size() - base;
  }
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> local;
  std::vector<std::size_t>& block_count =
      wsp ? wsp->Get<std::vector<std::size_t>>(ws::kCompactBlockCounts)
          : local;
  block_count.resize(nblocks);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c = 0;
                for (std::size_t i = lo; i < hi; ++i) {
                  c += pred(in[i]) ? 1 : 0;
                }
                block_count[b] = c;
              });
  const std::size_t base = out.size();
  std::size_t total = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t c = block_count[b];
    block_count[b] = base + total;
    total += c;
  }
  out.resize(base + total);
  T* dst = out.data();
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t pos = block_count[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  if (pred(in[i])) dst[pos++] = in[i];
                }
              });
  return total;
}

/// Appends the first `count` chunk-local buffers to `out` in chunk order
/// (deterministic for a given chunking) — the gather step every chunked
/// operator ends with. A single lane appends directly (no positioning
/// pass, no value-initializing resize of the gap); multiple lanes resize
/// once and copy in parallel at scanned offsets. `slot` selects the
/// workspace buffer for those offsets so callers sharing one arena don't
/// collide.
template <typename T>
void ConcatChunks(ThreadPool& pool,
                  const std::vector<std::vector<T>>& locals,
                  std::size_t count, std::vector<T>* out,
                  Workspace* wsp = nullptr,
                  unsigned slot = ws::kConcatOffsets) {
  if (!out || count == 0) return;
  if (pool.num_threads() == 1) {
    for (std::size_t c = 0; c < count; ++c) {
      out->insert(out->end(), locals[c].begin(), locals[c].end());
    }
    return;
  }
  std::vector<std::size_t> local;
  std::vector<std::size_t>& offsets =
      wsp ? wsp->Get<std::vector<std::size_t>>(slot) : local;
  offsets.resize(count + 1);
  offsets[0] = 0;
  for (std::size_t c = 0; c < count; ++c) {
    offsets[c + 1] = offsets[c] + locals[c].size();
  }
  const std::size_t base = out->size();
  out->resize(base + offsets[count]);
  ParallelFor(pool, 0, count, [&](std::size_t c) {
    std::copy(locals[c].begin(), locals[c].end(),
              out->begin() + static_cast<std::ptrdiff_t>(base + offsets[c]));
  });
}

/// Produces transform(i) densely for every index i in [0, n) passing pred.
/// Used to materialize index sets (e.g., "all unvisited vertices").
template <typename T, typename Pred, typename F>
std::size_t GenerateIf(ThreadPool& pool, std::size_t n, std::span<T> out,
                       Pred pred, F&& transform, Workspace* wsp = nullptr) {
  if (n == 0) return 0;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> local;
  std::vector<std::size_t>& block_count =
      wsp ? wsp->Get<std::vector<std::size_t>>(ws::kGenerateBlockCounts)
          : local;
  block_count.resize(nblocks);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c = 0;
                for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
                block_count[b] = c;
              });
  std::size_t total = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t c = block_count[b];
    block_count[b] = total;
    total += c;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t pos = block_count[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  if (pred(i)) out[pos++] = transform(i);
                }
              });
  return total;
}

/// Single-pass three-way partition: routes transform(i) into out[0..2]
/// according to classify(i) ∈ {0, 1, 2}, preserving index order within
/// each class (stable). One classification pass for counting plus one for
/// scattering — the fused replacement for running GenerateIf once per
/// class, which costs three times the passes and three times the
/// classification work. Returns the number of elements per class; each
/// out span must have room for n elements in the worst case.
template <typename T, typename Classify, typename F>
std::array<std::size_t, 3> GenerateThreeWay(ThreadPool& pool, std::size_t n,
                                            std::array<std::span<T>, 3> out,
                                            Classify classify, F&& transform,
                                            Workspace* wsp = nullptr) {
  std::array<std::size_t, 3> sizes{0, 0, 0};
  if (n == 0) return sizes;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<std::size_t> local;
  std::vector<std::size_t>& counts =
      wsp ? wsp->Get<std::vector<std::size_t>>(ws::kThreeWayBlockCounts)
          : local;
  counts.resize(3 * nblocks);  // [block][class], fully overwritten
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::size_t c0 = 0, c1 = 0, c2 = 0;
                for (std::size_t i = lo; i < hi; ++i) {
                  const int k = classify(i);
                  c0 += k == 0 ? 1 : 0;
                  c1 += k == 1 ? 1 : 0;
                  c2 += k == 2 ? 1 : 0;
                }
                counts[3 * b + 0] = c0;
                counts[3 * b + 1] = c1;
                counts[3 * b + 2] = c2;
              });
  for (int k = 0; k < 3; ++k) {
    std::size_t total = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t c = counts[3 * b + static_cast<std::size_t>(k)];
      counts[3 * b + static_cast<std::size_t>(k)] = total;
      total += c;
    }
    sizes[static_cast<std::size_t>(k)] = total;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                std::array<std::size_t, 3> pos = {counts[3 * b + 0],
                                                  counts[3 * b + 1],
                                                  counts[3 * b + 2]};
                for (std::size_t i = lo; i < hi; ++i) {
                  const auto k = static_cast<std::size_t>(classify(i));
                  out[k][pos[k]++] = transform(i);
                }
              });
  return sizes;
}

}  // namespace gunrock::par
