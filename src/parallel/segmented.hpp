// Segmented reduction over CSR-style offsets.
//
// Two flavors mirror the frameworks under comparison: the segment-mapped
// form assigns one segment per work item (the vertex-parallel gather of
// GAS frameworks — deliberately load-imbalanced on power-law graphs), and
// the balanced form partitions total work evenly (what Gunrock's advance
// does internally).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/sorted_search.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"

namespace gunrock::par {

/// out[s] = identity op values(j) for j in [offsets[s], offsets[s+1]),
/// one segment per work item (vertex-mapped).
template <typename T, typename Off, typename Op, typename F>
void SegmentedReduceSegmentMapped(ThreadPool& pool,
                                  std::span<const Off> offsets,
                                  std::span<T> out, T identity, Op op,
                                  F&& values) {
  const std::size_t num_segments = offsets.size() - 1;
  ParallelFor(pool, 0, num_segments, [&](std::size_t s) {
    T acc = identity;
    for (Off j = offsets[s]; j < offsets[s + 1]; ++j) {
      acc = op(acc, values(static_cast<std::size_t>(j)));
    }
    out[s] = acc;
  });
}

/// Equal-work segmented reduce. The element range [0, total) is cut into
/// equal chunks; each chunk locates its first segment by sorted search and
/// walks forward. Segments fully inside a chunk are written directly; the
/// chunk's first and last (possibly straddling) segments produce partials
/// that a serial pass merges afterwards (at most 2 per chunk).
/// Pass a Workspace to reuse the per-chunk partial buffers across calls.
template <typename T, typename Off, typename Op, typename F>
void SegmentedReduceBalanced(ThreadPool& pool, std::span<const Off> offsets,
                             std::span<T> out, T identity, Op op,
                             F&& values, Workspace* wsp = nullptr) {
  const std::size_t num_segments = offsets.size() - 1;
  if (num_segments == 0) return;
  const std::size_t total = static_cast<std::size_t>(offsets[num_segments]);
  ParallelFor(pool, 0, num_segments,
              [&](std::size_t s) { out[s] = identity; });
  if (total == 0) return;

  const std::size_t grain =
      std::max<std::size_t>(256, DefaultGrain(total, pool.num_threads()));
  const std::size_t num_chunks = (total + grain - 1) / grain;
  struct Partial {
    std::size_t segment;
    T value;
    bool present;
  };
  std::vector<Partial> local_heads, local_tails;
  std::vector<Partial>& heads =
      wsp ? wsp->Get<std::vector<Partial>>(ws::kSegmentedHeads)
          : local_heads;
  std::vector<Partial>& tails =
      wsp ? wsp->Get<std::vector<Partial>>(ws::kSegmentedTails)
          : local_tails;
  heads.resize(num_chunks);  // every chunk writes its head below
  tails.resize(num_chunks);  // ... and its tail (at least `present`)

  ParallelForChunks(
      pool, 0, total, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk, unsigned) {
        std::size_t s = FindOwner(offsets, static_cast<Off>(lo));
        const std::size_t first = s;
        T acc = identity;
        for (std::size_t j = lo; j < hi; ++j) {
          while (j >= static_cast<std::size_t>(offsets[s + 1])) {
            // Leaving segment s: the chunk's head segment may extend left
            // of lo, so it becomes a partial; interior ones are complete.
            if (s == first) {
              heads[chunk] = {s, acc, true};
            } else {
              out[s] = acc;
            }
            acc = identity;
            ++s;  // FindOwner skips empties at lo; the while skips the rest
          }
          acc = op(acc, values(j));
        }
        // Segment s holds element hi-1. It is complete inside this chunk
        // iff it ends exactly at hi and did not begin before lo.
        const bool ends_at_hi =
            static_cast<std::size_t>(offsets[s + 1]) == hi;
        if (s == first) {
          heads[chunk] = {s, acc, true};
          tails[chunk].present = false;
        } else if (ends_at_hi) {
          out[s] = acc;
          tails[chunk].present = false;
        } else {
          tails[chunk] = {s, acc, true};
        }
      });
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (heads[c].present) {
      out[heads[c].segment] = op(out[heads[c].segment], heads[c].value);
    }
    if (tails[c].present) {
      out[tails[c].segment] = op(out[tails[c].segment], tails[c].value);
    }
  }
}

}  // namespace gunrock::par
