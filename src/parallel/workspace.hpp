// Workspace arena: typed, growable scratch buffers keyed by slot id.
//
// The paper's operators keep their working sets resident on the GPU and
// ping-pong between preallocated queues so "no intermediate results ever
// hit memory" between launches. The CPU analog: an enactor loop owns one
// Workspace and threads it through every operator call, so the chunk-local
// buffers, degree-scan offsets, scatter arrays and compaction counters are
// allocated once during warm-up and reused on every subsequent iteration.
// In steady state a full advance/filter iteration performs no heap
// allocation.
//
// A slot holds one value of an arbitrary container type (std::vector<T>,
// std::vector<std::vector<T>>, ...). Get<T>(slot) returns a reference that
// stays valid across later Get calls for other slots — the arena stores
// each container behind a stable pointer — so an operator may hold its
// buffers while nested helpers (scan, compact) fetch theirs. Requesting a
// slot with a different type than it currently holds replaces the buffer;
// slot ids are partitioned per layer below so that cannot happen by
// accident.
//
// Reuse discipline (enforced by tests/test_determinism.cpp): operators
// must fully overwrite whatever region of a reused buffer they read back,
// so results never depend on data left by a previous iteration.
#pragma once

#include <cstddef>
#include <memory>
#include <typeinfo>
#include <vector>

namespace gunrock::par {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Returns the container stored in `slot`, default-constructing it on
  /// first use (or when the requested type changed). The reference remains
  /// valid until the slot is reassigned a different type or Release() is
  /// called — growing the slot table does not move the containers.
  template <typename T>
  T& Get(unsigned slot) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    Entry& e = slots_[slot];
    if (!e.ptr || *e.type != typeid(T)) {
      e.ptr = std::make_shared<T>();
      e.type = &typeid(T);
      ++creations_;
    }
    return *static_cast<T*>(e.ptr.get());
  }

  /// Number of container creations so far (first-use allocations plus
  /// type-change replacements). A warm arena serving a steady workload
  /// must hold this constant — the workspace-lease recycling tests assert
  /// exactly that.
  std::size_t creations() const noexcept { return creations_; }

  /// Drops every buffer (capacity included). Mainly for tests and for
  /// releasing memory after an unusually large run.
  void Release() { slots_.clear(); }

 private:
  struct Entry {
    std::shared_ptr<void> ptr;            // type-erased owning pointer
    const std::type_info* type = nullptr;
  };
  std::vector<Entry> slots_;
  std::size_t creations_ = 0;
};

/// Slot-id registry. Each call site owns a fixed id; layers get disjoint
/// ranges so composed operators (advance -> scan -> compact) never collide
/// while sharing one arena.
namespace ws {
enum : unsigned {
  // parallel/ helpers (scan, compact, segmented).
  kScanBlockSums = 0,
  kCompactBlockCounts,
  kGenerateBlockCounts,
  kThreeWayBlockCounts,
  kSegmentedHeads,
  kSegmentedTails,
  kReducePartials,
  kConcatOffsets,

  // core/ operators (advance, filter).
  kCoreFirst = 16,
  kAdvanceOffsets = kCoreFirst,
  kAdvanceRaw,
  kAdvanceLocals,
  kAdvanceCounts,
  kAdvanceAppendOffsets,
  kTwcSmall,
  kTwcMedium,
  kTwcLarge,
  kFilterLocals,
  kFilterEdgeLocals,
  kFilterOffsets,
  kFilterHistory,
  kSimtSmallCosts,
  kSimtReducePartials,

  // primitives/ and applications: private scratch starts here.
  kUserFirst = 48,
};
}  // namespace ws

}  // namespace gunrock::par
