// Parallel prefix sums.
//
// Scan is the workhorse the paper leans on to "reorganize sparse and uneven
// workloads into dense and uniform ones" (Section 3): advance scans frontier
// degrees to size its output, filter scans validity flags to compact.
// Classic three-phase blocked scan: per-block sums, serial scan of block
// sums, per-block rescan with offset.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"

namespace gunrock::par {

/// Exclusive scan of transform(i) for i in [0, n) into out (size n).
/// Returns the total sum. out[i] = init + sum_{j<i} transform(j).
/// Pass a Workspace to reuse the block-sum scratch across calls.
template <typename T, typename F>
T TransformExclusiveScan(ThreadPool& pool, std::size_t n, std::span<T> out,
                         T init, F&& transform, Workspace* wsp = nullptr) {
  if (n == 0) return init;
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<T> local;
  std::vector<T>& block_sum =
      wsp ? wsp->Get<std::vector<T>>(ws::kScanBlockSums) : local;
  block_sum.resize(nblocks);  // every entry is overwritten below
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                T acc{};
                for (std::size_t i = lo; i < hi; ++i) acc += transform(i);
                block_sum[b] = acc;
              });
  T total = init;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const T s = block_sum[b];
    block_sum[b] = total;
    total += s;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                T acc = block_sum[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  const T v = transform(i);
                  out[i] = acc;
                  acc += v;
                }
              });
  return total;
}

/// Exclusive scan of a span. Alias-safe: out may equal in.
template <typename T>
T ExclusiveScan(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                T init = T{}, Workspace* wsp = nullptr) {
  return TransformExclusiveScan(pool, in.size(), out, init,
                                [&](std::size_t i) { return in[i]; }, wsp);
}

/// Inclusive scan of a span. Alias-safe.
template <typename T>
T InclusiveScan(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                Workspace* wsp = nullptr) {
  if (in.empty()) return T{};
  const std::size_t n = in.size();
  const std::size_t nblocks = DefaultBlockCount(n, pool.num_threads());
  std::vector<T> local;
  std::vector<T>& block_sum =
      wsp ? wsp->Get<std::vector<T>>(ws::kScanBlockSums) : local;
  block_sum.resize(nblocks);
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                T acc{};
                for (std::size_t i = lo; i < hi; ++i) acc += in[i];
                block_sum[b] = acc;
              });
  T total{};
  for (std::size_t b = 0; b < nblocks; ++b) {
    const T s = block_sum[b];
    block_sum[b] = total;
    total += s;
  }
  FixedBlocks(pool, n, nblocks,
              [&](std::size_t b, std::size_t lo, std::size_t hi) {
                T acc = block_sum[b];
                for (std::size_t i = lo; i < hi; ++i) {
                  acc += in[i];
                  out[i] = acc;
                }
              });
  return total;
}

}  // namespace gunrock::par
