#include "parallel/thread_pool.hpp"

namespace gunrock::par {

namespace {

/// One polite busy-wait step (PAUSE/YIELD keeps the spin from starving a
/// hyperthread sibling and saves power).
inline void CpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Pool this thread is currently executing a parallel region of (as a
/// worker lane or as the participating caller). Nested Parallel() on the
/// same pool is detected through this instead of the shared `active_`
/// flag, so the check stays exact when multiple external submitters share
/// a pool: a lane re-entering its own pool is misuse (it would deadlock
/// the barrier it belongs to), another thread merely waiting its turn is
/// not.
thread_local const ThreadPool* tl_running_pool = nullptr;

/// RAII marker for "this thread is inside a parallel region of `pool`".
struct RunningPoolScope {
  const ThreadPool* previous;
  explicit RunningPoolScope(const ThreadPool* pool)
      : previous(tl_running_pool) {
    tl_running_pool = pool;
  }
  ~RunningPoolScope() { tl_running_pool = previous; }
};

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = num_threads;
  if (num_threads > hw) {
    spin_iters_ = 0;
    yield_iters_ = kYieldItersOversubscribed;
  }
  if (num_threads > 1) {
    slots_ = std::make_unique<DoneSlot[]>(num_threads - 1);
    workers_.reserve(num_threads - 1);
    for (unsigned r = 1; r < num_threads; ++r) {
      workers_.emplace_back([this, r] { WorkerLoop(r); });
    }
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_seq_cst);
  {
    // Empty critical section: pairs with the predicate re-check inside
    // work_cv_.wait so a worker between "decide to park" and "wait" cannot
    // miss the shutdown notify.
    std::lock_guard<std::mutex> lock(work_mutex_);
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RecordError() noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

bool ThreadPool::AllDone(std::uint64_t e) const noexcept {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (slots_[w].epoch.load(std::memory_order_acquire) != e) return false;
  }
  return true;
}

void ThreadPool::WorkerLoop(unsigned rank) {
  std::uint64_t seen = 0;
  DoneSlot& slot = slots_[rank - 1];
  for (;;) {
    // Wait for a new epoch: spin, then yield, then park on the condvar.
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e == seen) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      ++spins;
      if (spins <= spin_iters_) {
        CpuRelax();
      } else if (spins <= spin_iters_ + yield_iters_) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(work_mutex_);
        parked_.fetch_add(1, std::memory_order_seq_cst);
        work_cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_acquire) ||
                 epoch_.load(std::memory_order_acquire) != seen;
        });
        parked_.fetch_sub(1, std::memory_order_seq_cst);
        spins = 0;
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    try {
      RunningPoolScope scope(this);
      thunk_(ctx_, rank);
    } catch (...) {
      RecordError();
    }
    // Publish completion in our private slot; only poke the caller's
    // condvar if the caller actually gave up spinning.
    slot.epoch.store(seen, std::memory_order_seq_cst);
    if (caller_waiting_.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> lock(done_mutex_); }
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::Launch(Thunk thunk, void* ctx) {
  if (tl_running_pool == this) {
    throw std::logic_error(
        "ThreadPool::Parallel is not reentrant: this thread is already "
        "inside a parallel region of this pool (nested Parallel would "
        "deadlock the barrier it belongs to)");
  }
  if (shared_submitters()) {
    // Multi-submitter mode (query engine): serialize whole launches. Each
    // bulk-synchronous operator pass still owns every lane of the pool;
    // concurrent queries interleave at pass granularity.
    std::lock_guard<std::mutex> lock(submit_mutex_);
    LaunchLocked(thunk, ctx);
    return;
  }
  LaunchLocked(thunk, ctx);
}

void ThreadPool::LaunchLocked(Thunk thunk, void* ctx) {
  if (active_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error(
        "ThreadPool::Parallel misuse: two threads are sharing one pool "
        "concurrently (call AcquireSharedSubmitters() to serialize "
        "multi-submitter launches instead)");
  }
  struct ActiveGuard {
    std::atomic<bool>& flag;
    ~ActiveGuard() { flag.store(false, std::memory_order_release); }
  } guard{active_};
  RunningPoolScope scope(this);  // caller participates as rank 0

  if (workers_.empty()) {
    thunk(ctx, 0);  // single-lane pool: run inline, propagate directly
    return;
  }

  thunk_ = thunk;
  ctx_ = ctx;
  const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section for the same lost-wakeup reason as above.
    { std::lock_guard<std::mutex> lock(work_mutex_); }
    work_cv_.notify_all();
  }

  try {
    thunk(ctx, 0);
  } catch (...) {
    RecordError();
  }

  // Completion barrier: poll the per-worker slots, then park.
  int spins = 0;
  while (!AllDone(e)) {
    ++spins;
    if (spins <= spin_iters_) {
      CpuRelax();
    } else if (spins <= spin_iters_ + yield_iters_) {
      std::this_thread::yield();
    } else {
      caller_waiting_.store(true, std::memory_order_seq_cst);
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] { return AllDone(e); });
      caller_waiting_.store(false, std::memory_order_seq_cst);
      break;
    }
  }
  thunk_ = nullptr;
  ctx_ = nullptr;

  if (first_error_) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gunrock::par
