#include "parallel/thread_pool.hpp"

namespace gunrock::par {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads - 1);
  for (unsigned r = 1; r < num_threads; ++r) {
    workers_.emplace_back([this, r] { WorkerLoop(r); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(unsigned rank) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      (*job)(rank);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Parallel(const std::function<void(unsigned)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gunrock::par
