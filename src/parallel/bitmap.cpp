#include "parallel/bitmap.hpp"

#include <bit>

#include "parallel/reduce.hpp"

namespace gunrock::par {

std::size_t Bitmap::Count(ThreadPool& pool) const {
  return TransformReduce(
      pool, words_.size(), std::size_t{0},
      [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t w) {
        return static_cast<std::size_t>(
            std::popcount(words_[w].load(std::memory_order_relaxed)));
      });
}

}  // namespace gunrock::par
