// Atomic read-modify-write operations on plain arrays.
//
// The paper's functors rely on CUDA atomicMin / atomicAdd / atomicCAS; the
// CPU analogs below operate on unadorned memory through std::atomic_ref
// (C++20) so that problem state can stay in ordinary std::vector storage.
// All operations use relaxed ordering: Gunrock operators are bulk
// synchronous, and the fork/join of each pass provides the necessary
// happens-before edges between steps.
#pragma once

#include <atomic>

namespace gunrock::par {

/// Atomically stores min(*addr, val); returns the previous value.
template <typename T>
inline T AtomicMin(T* addr, T val) {
  std::atomic_ref<T> ref(*addr);
  T old = ref.load(std::memory_order_relaxed);
  while (val < old &&
         !ref.compare_exchange_weak(old, val, std::memory_order_relaxed)) {
  }
  return old;
}

/// Atomically stores max(*addr, val); returns the previous value.
template <typename T>
inline T AtomicMax(T* addr, T val) {
  std::atomic_ref<T> ref(*addr);
  T old = ref.load(std::memory_order_relaxed);
  while (old < val &&
         !ref.compare_exchange_weak(old, val, std::memory_order_relaxed)) {
  }
  return old;
}

/// Atomic fetch-add for integral types.
template <typename T>
inline T AtomicAdd(T* addr, T val) {
  static_assert(std::is_integral_v<T>);
  return std::atomic_ref<T>(*addr).fetch_add(val, std::memory_order_relaxed);
}

/// Atomic fetch-add for float/double via CAS (portable across libstdc++
/// versions that lack atomic_ref<float>::fetch_add).
inline float AtomicAdd(float* addr, float val) {
  std::atomic_ref<float> ref(*addr);
  float old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + val,
                                    std::memory_order_relaxed)) {
  }
  return old;
}

inline double AtomicAdd(double* addr, double val) {
  std::atomic_ref<double> ref(*addr);
  double old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + val,
                                    std::memory_order_relaxed)) {
  }
  return old;
}

/// Atomic compare-and-swap; returns true when *addr was `expected` and has
/// been replaced by `desired` (the CUDA atomicCAS success test).
template <typename T>
inline bool AtomicCas(T* addr, T expected, T desired) {
  std::atomic_ref<T> ref(*addr);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_relaxed);
}

/// Atomic exchange; returns the previous value.
template <typename T>
inline T AtomicExchange(T* addr, T val) {
  return std::atomic_ref<T>(*addr).exchange(val, std::memory_order_relaxed);
}

/// Relaxed atomic load / store for values raced on by functors.
template <typename T>
inline T AtomicLoad(const T* addr) {
  return std::atomic_ref<const T>(*addr).load(std::memory_order_relaxed);
}

template <typename T>
inline void AtomicStore(T* addr, T val) {
  std::atomic_ref<T>(*addr).store(val, std::memory_order_relaxed);
}

}  // namespace gunrock::par
