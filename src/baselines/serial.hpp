// Serial reference implementations (the Boost Graph Library role in the
// paper's Table 2/3 comparisons, and the oracles for the test suite).
//
// Textbook algorithms, deliberately sequential: queue BFS, binary-heap
// Dijkstra, Bellman-Ford, Brandes betweenness, union-find components,
// power-iteration PageRank.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace gunrock::serial {

struct BfsOutput {
  std::vector<std::int32_t> depth;
  std::vector<vid_t> pred;
};

BfsOutput Bfs(const graph::Csr& g, vid_t source);

struct SsspOutput {
  std::vector<weight_t> dist;
  std::vector<vid_t> pred;
};

/// Dijkstra with a binary heap (non-negative weights).
SsspOutput Dijkstra(const graph::Csr& g, vid_t source);

/// Bellman-Ford; returns false if a negative cycle is reachable.
bool BellmanFord(const graph::Csr& g, vid_t source,
                 std::vector<weight_t>* dist);

/// Brandes single-source BC contribution added into `bc` (must be sized
/// |V|; halved per pair to match the library's undirected convention).
void BrandesAccumulate(const graph::Csr& g, vid_t source,
                       std::vector<double>* bc);

/// BC from a set of sources (exact when all vertices).
std::vector<double> Brandes(const graph::Csr& g,
                            std::span<const vid_t> sources);

/// Union-find with path compression.
struct CcOutput {
  std::vector<vid_t> component;  // labeled by smallest vertex id
  vid_t num_components = 0;
};

CcOutput ConnectedComponents(const graph::Csr& g);

struct MstOutput {
  double total_weight = 0.0;
  std::size_t num_tree_edges = 0;
};

/// Kruskal with union-find over the canonical (src < dst) arcs.
MstOutput KruskalMst(const graph::Csr& g);

struct PagerankOutput {
  std::vector<double> rank;
  int iterations = 0;
};

/// Power iteration with uniform dangling redistribution; stops when the
/// max per-vertex residual drops below `tolerance`.
PagerankOutput Pagerank(const graph::Csr& g, double damping = 0.85,
                        double tolerance = 1e-9, int max_iterations = 1000);

}  // namespace gunrock::serial
