// GAS programs for BFS, SSSP, PageRank and CC (label propagation — the
// PowerGraph formulation of connected components).
#include "baselines/gas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "parallel/reduce.hpp"

namespace gunrock::gas {

namespace {

struct BfsProgram {
  using GatherT = std::int32_t;
  static GatherT Identity() {
    return std::numeric_limits<std::int32_t>::max();
  }
  static GatherT Gather(vid_t u, vid_t, eid_t, const BfsState& s) {
    return s.depth[u] < 0 ? Identity() : s.depth[u] + 1;
  }
  static GatherT Combine(GatherT a, GatherT b) { return std::min(a, b); }
  static bool Apply(vid_t v, GatherT acc, BfsState& s) {
    if (acc == Identity()) return false;
    if (s.depth[v] < 0 || acc < s.depth[v]) {
      s.depth[v] = acc;
      return true;
    }
    return false;
  }
};

struct SsspProgram {
  using GatherT = weight_t;
  static GatherT Identity() { return kInfinity; }
  static GatherT Gather(vid_t u, vid_t, eid_t e, const SsspState& s) {
    // e indexes the reverse graph, whose weights mirror the forward ones.
    return s.dist[u] + s.graph->weights()[e];
  }
  static GatherT Combine(GatherT a, GatherT b) { return std::min(a, b); }
  static bool Apply(vid_t v, GatherT acc, SsspState& s) {
    if (acc < s.dist[v]) {
      s.dist[v] = acc;
      return true;
    }
    return false;
  }
};

struct PrProgram {
  using GatherT = double;
  static GatherT Identity() { return 0.0; }
  static GatherT Gather(vid_t u, vid_t, eid_t, const PrState& s) {
    return s.rank[u] * s.inv_outdeg[u];
  }
  static GatherT Combine(GatherT a, GatherT b) { return a + b; }
  static bool Apply(vid_t v, GatherT acc, PrState& s) {
    const double next = s.base + s.damping * acc;
    const bool moving = std::abs(next - s.rank[v]) > s.tolerance;
    s.rank[v] = next;
    return moving;
  }
};

struct CcProgram {
  using GatherT = vid_t;
  static GatherT Identity() {
    return std::numeric_limits<vid_t>::max();
  }
  static GatherT Gather(vid_t u, vid_t, eid_t, const CcState& s) {
    return s.comp[u];
  }
  static GatherT Combine(GatherT a, GatherT b) { return std::min(a, b); }
  static bool Apply(vid_t v, GatherT acc, CcState& s) {
    if (acc < s.comp[v]) {
      s.comp[v] = acc;
      return true;
    }
    return false;
  }
};

}  // namespace

GasBfsResult Bfs(const graph::Csr& g, vid_t source, par::ThreadPool& pool) {
  GasBfsResult result;
  BfsState state;
  state.depth.assign(g.num_vertices(), -1);
  state.depth[source] = 0;
  const vid_t init[] = {source};
  result.stats = Run<BfsProgram>(pool, g, g, state, init);
  result.depth = std::move(state.depth);
  return result;
}

GasSsspResult Sssp(const graph::Csr& g, vid_t source,
                   par::ThreadPool& pool) {
  GasSsspResult result;
  SsspState state;
  state.dist.assign(g.num_vertices(), kInfinity);
  state.dist[source] = 0;
  state.graph = &g;
  const vid_t init[] = {source};
  result.stats = Run<SsspProgram>(pool, g, g, state, init);
  result.dist = std::move(state.dist);
  return result;
}

GasPagerankResult Pagerank(const graph::Csr& g, par::ThreadPool& pool,
                           double damping, double tolerance,
                           int max_iterations) {
  GasPagerankResult result;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  if (n == 0) return result;
  PrState state;
  state.rank.assign(n, 1.0 / static_cast<double>(n));
  state.inv_outdeg.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    state.inv_outdeg[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  state.damping = damping;
  state.tolerance = tolerance;

  // PR runs supersteps one at a time so the dangling-mass base can be
  // refreshed between iterations (GAS has no global-reduce step, so the
  // driver does it — the same pattern PowerGraph applications use).
  std::vector<vid_t> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<vid_t>(v);
  std::vector<double> prev = state.rank;
  WallTimer timer;
  for (int it = 0; it < max_iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (g.degree(static_cast<vid_t>(v)) == 0) dangling += state.rank[v];
    }
    state.base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    const GasStats step = Run<PrProgram>(pool, g, g, state, all, 1);
    result.stats.edges_processed += step.edges_processed;
    result.stats.lane_efficiency = step.lane_efficiency;
    ++result.stats.supersteps;
    // Driver-side convergence on the max residual vs the previous iterate
    // (GAS itself has no global-reduce step).
    bool moving = false;
    for (std::size_t v = 0; v < n && !moving; ++v) {
      if (std::abs(state.rank[v] - prev[v]) > tolerance) moving = true;
    }
    prev = state.rank;
    if (!moving) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.rank = std::move(state.rank);
  return result;
}

GasCcResult Cc(const graph::Csr& g, par::ThreadPool& pool) {
  GasCcResult result;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  CcState state;
  state.comp.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    state.comp[v] = static_cast<vid_t>(v);
  }
  std::vector<vid_t> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<vid_t>(v);
  result.stats = Run<CcProgram>(pool, g, g, state, all);
  result.component = std::move(state.comp);
  result.num_components = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (result.component[v] == static_cast<vid_t>(v)) {
      ++result.num_components;
    }
  }
  return result;
}

}  // namespace gunrock::gas
