#include "baselines/serial.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stack>

#include "util/error.hpp"

namespace gunrock::serial {

BfsOutput Bfs(const graph::Csr& g, vid_t source) {
  GR_CHECK(source >= 0 && source < g.num_vertices(), "bad source");
  BfsOutput out;
  out.depth.assign(g.num_vertices(), -1);
  out.pred.assign(g.num_vertices(), kInvalidVid);
  std::queue<vid_t> q;
  out.depth[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop();
    for (const vid_t v : g.neighbors(u)) {
      if (out.depth[v] < 0) {
        out.depth[v] = out.depth[u] + 1;
        out.pred[v] = u;
        q.push(v);
      }
    }
  }
  return out;
}

SsspOutput Dijkstra(const graph::Csr& g, vid_t source) {
  GR_CHECK(source >= 0 && source < g.num_vertices(), "bad source");
  GR_CHECK(g.has_weights(), "Dijkstra needs weights");
  SsspOutput out;
  out.dist.assign(g.num_vertices(), kInfinity);
  out.pred.assign(g.num_vertices(), kInvalidVid);
  using Entry = std::pair<weight_t, vid_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.dist[u]) continue;  // stale entry
    for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
      const vid_t v = g.edge_dest(e);
      const weight_t nd = d + g.edge_weight(e);
      if (nd < out.dist[v]) {
        out.dist[v] = nd;
        out.pred[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  return out;
}

bool BellmanFord(const graph::Csr& g, vid_t source,
                 std::vector<weight_t>* dist) {
  GR_CHECK(g.has_weights(), "Bellman-Ford needs weights");
  dist->assign(g.num_vertices(), kInfinity);
  (*dist)[source] = 0;
  const vid_t n = g.num_vertices();
  for (vid_t round = 0; round < n; ++round) {
    bool changed = false;
    for (vid_t u = 0; u < n; ++u) {
      if ((*dist)[u] == kInfinity) continue;
      for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
        const vid_t v = g.edge_dest(e);
        const weight_t nd = (*dist)[u] + g.edge_weight(e);
        if (nd < (*dist)[v]) {
          (*dist)[v] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return true;
  }
  // One more sweep: any improvement implies a negative cycle.
  for (vid_t u = 0; u < n; ++u) {
    if ((*dist)[u] == kInfinity) continue;
    for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
      if ((*dist)[u] + g.edge_weight(e) < (*dist)[g.edge_dest(e)]) {
        return false;
      }
    }
  }
  return true;
}

void BrandesAccumulate(const graph::Csr& g, vid_t source,
                       std::vector<double>* bc) {
  const vid_t n = g.num_vertices();
  std::vector<std::int32_t> depth(n, -1);
  std::vector<double> sigma(n, 0.0), delta(n, 0.0);
  std::vector<vid_t> order;  // vertices in non-decreasing depth
  order.reserve(n);
  depth[source] = 0;
  sigma[source] = 1.0;
  std::queue<vid_t> q;
  q.push(source);
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop();
    order.push_back(u);
    for (const vid_t v : g.neighbors(u)) {
      if (depth[v] < 0) {
        depth[v] = depth[u] + 1;
        q.push(v);
      }
      if (depth[v] == depth[u] + 1) sigma[v] += sigma[u];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vid_t u = *it;
    for (const vid_t v : g.neighbors(u)) {
      if (depth[v] == depth[u] + 1 && sigma[v] > 0) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (u != source) (*bc)[u] += delta[u] / 2.0;
  }
}

std::vector<double> Brandes(const graph::Csr& g,
                            std::span<const vid_t> sources) {
  std::vector<double> bc(g.num_vertices(), 0.0);
  for (const vid_t s : sources) BrandesAccumulate(g, s, &bc);
  return bc;
}

CcOutput ConnectedComponents(const graph::Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](vid_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (vid_t u = 0; u < n; ++u) {
    for (const vid_t v : g.neighbors(u)) {
      const vid_t ru = find(u), rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  CcOutput out;
  out.component.resize(n);
  for (vid_t v = 0; v < n; ++v) out.component[v] = find(v);
  for (vid_t v = 0; v < n; ++v) {
    if (out.component[v] == v) ++out.num_components;
  }
  return out;
}

MstOutput KruskalMst(const graph::Csr& g) {
  GR_CHECK(g.has_weights(), "Kruskal needs weights");
  const vid_t n = g.num_vertices();
  struct Arc {
    weight_t w;
    vid_t u, v;
  };
  std::vector<Arc> arcs;
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = g.row_begin(u); e < g.row_end(u); ++e) {
      const vid_t v = g.edge_dest(e);
      if (u < v) arcs.push_back({g.edge_weight(e), u, v});
    }
  }
  std::sort(arcs.begin(), arcs.end(),
            [](const Arc& a, const Arc& b) { return a.w < b.w; });
  std::vector<vid_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](vid_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  MstOutput out;
  for (const Arc& a : arcs) {
    const vid_t ru = find(a.u), rv = find(a.v);
    if (ru == rv) continue;
    parent[std::max(ru, rv)] = std::min(ru, rv);
    out.total_weight += a.w;
    ++out.num_tree_edges;
  }
  return out;
}

PagerankOutput Pagerank(const graph::Csr& g, double damping,
                        double tolerance, int max_iterations) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PagerankOutput out;
  if (n == 0) return out;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n)), next(n);
  for (; out.iterations < max_iterations; ++out.iterations) {
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (g.degree(static_cast<vid_t>(v)) == 0) dangling += rank[v];
    }
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (std::size_t u = 0; u < n; ++u) {
      const eid_t deg = g.degree(static_cast<vid_t>(u));
      if (deg == 0) continue;
      const double share = damping * rank[u] / static_cast<double>(deg);
      for (const vid_t v : g.neighbors(static_cast<vid_t>(u))) {
        next[v] += share;
      }
    }
    double residual = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      residual = std::max(residual, std::abs(next[v] - rank[v]));
    }
    rank.swap(next);
    if (residual < tolerance) {
      ++out.iterations;
      break;
    }
  }
  out.rank = std::move(rank);
  return out;
}

}  // namespace gunrock::serial
