// Mini Pregel / Medusa engine: bulk-synchronous message passing with
// per-destination combiners (the paper's Section 2.3 / 4.2 comparison).
//
// The cost structure the paper attributes to this model is kept intact:
// every superstep materializes a combined per-vertex mailbox (value +
// arrival flag) and runs message delivery and vertex compute as distinct
// phases over memory — "the overhead of any management of messages is a
// significant contributor to runtime". Like Medusa, vertex parallelism is
// one vertex per lane, so power-law out-degrees imbalance the send phase.
//
// Program contract:
//   struct Program {
//     using MessageT = <32/64-bit arithmetic scalar>;
//     static MessageT Identity();                        // combine identity
//     static MessageT Combine(MessageT a, MessageT b);   // associative
//     // Called for every vertex that received a message (and the initial
//     // actives at superstep 0, with has_msg = false). May update state;
//     // returns true to send `*out` along every out-edge. EdgeMessage()
//     // can transform the payload per edge (e.g., add the edge weight).
//     static bool Compute(vid_t v, bool has_msg, MessageT msg,
//                         State& state, int superstep, MessageT* out);
//     static MessageT EdgeMessage(MessageT base, vid_t src, vid_t dst,
//                                 eid_t e, const State& state);
//   };
#pragma once

#include <span>
#include <vector>

#include "core/simt_model.hpp"
#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace gunrock::pregel {

struct PregelStats {
  int supersteps = 0;
  eid_t messages_sent = 0;
  double elapsed_ms = 0.0;
  double lane_efficiency = 1.0;  // of the vertex-mapped send phase
  double Mteps() const {
    return elapsed_ms > 0
               ? static_cast<double>(messages_sent) / (elapsed_ms * 1000.0)
               : 0.0;
  }
};

template <typename Program, typename State>
PregelStats Run(par::ThreadPool& pool, const graph::Csr& g, State& state,
                std::span<const vid_t> initially_active,
                int max_supersteps = 1 << 20) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  using MessageT = typename Program::MessageT;

  // Mailboxes: combined inbound value + arrival flag, double buffered.
  std::vector<MessageT> inbox(n), outbox(n);
  std::vector<char> in_flag(n, 0), out_flag(n, 0);

  std::vector<vid_t> active(initially_active.begin(),
                            initially_active.end());

  PregelStats stats;
  WallTimer timer;
  core::EfficiencyAccumulator efficiency;

  while (!active.empty() && stats.supersteps < max_supersteps) {
    // Mailbox reset: part of the per-superstep message-management cost.
    par::ParallelFor(pool, 0, n, [&](std::size_t v) {
      out_flag[v] = 0;
      outbox[v] = Program::Identity();
    });

    // Compute + send phase: one vertex per lane (Medusa's vertex-parallel
    // EdgeProc/VertexProc shape).
    const eid_t sendable = [&] {
      eid_t acc = 0;
      for (const vid_t v : active) acc += g.degree(v);
      return acc;
    }();
    efficiency.Add(
        core::LaneEfficiencyThreadMapped(
            pool, active.size(),
            [&](std::size_t i) { return g.degree(active[i]); }),
        sendable);

    const bool has_inbox = stats.supersteps > 0;
    std::atomic<eid_t> sent{0};
    par::ParallelFor(pool, 0, active.size(), [&](std::size_t i) {
      const vid_t v = active[i];
      MessageT out{};
      const bool send = Program::Compute(
          v, has_inbox && in_flag[static_cast<std::size_t>(v)],
          inbox[static_cast<std::size_t>(v)], state, stats.supersteps,
          &out);
      if (!send) return;
      eid_t local_sent = 0;
      for (eid_t e = g.row_begin(v); e < g.row_end(v); ++e) {
        const vid_t d = g.edge_dest(e);
        const MessageT payload =
            Program::EdgeMessage(out, v, d, e, state);
        par::AtomicStore(&out_flag[static_cast<std::size_t>(d)], char{1});
        // Combine into the destination mailbox atomically.
        std::atomic_ref<MessageT> slot(
            outbox[static_cast<std::size_t>(d)]);
        MessageT cur = slot.load(std::memory_order_relaxed);
        while (!slot.compare_exchange_weak(
            cur, Program::Combine(cur, payload),
            std::memory_order_relaxed)) {
        }
        ++local_sent;
      }
      sent.fetch_add(local_sent, std::memory_order_relaxed);
    });
    stats.messages_sent += sent.load();

    // Delivery phase: vertices with mail become next superstep's actives.
    std::vector<vid_t> next(n);
    const std::size_t na = par::GenerateIf(
        pool, n, std::span<vid_t>(next),
        [&](std::size_t v) { return out_flag[v] != 0; },
        [](std::size_t v) { return static_cast<vid_t>(v); });
    next.resize(na);
    active.swap(next);
    inbox.swap(outbox);
    in_flag.swap(out_flag);
    ++stats.supersteps;
  }
  stats.elapsed_ms = timer.ElapsedMs();
  stats.lane_efficiency = efficiency.Value();
  return stats;
}

// --- Applications ---

struct PregelBfsResult {
  std::vector<std::int32_t> depth;
  PregelStats stats;
};
PregelBfsResult Bfs(const graph::Csr& g, vid_t source,
                    par::ThreadPool& pool);

struct PregelSsspResult {
  std::vector<weight_t> dist;
  PregelStats stats;
};
PregelSsspResult Sssp(const graph::Csr& g, vid_t source,
                      par::ThreadPool& pool);

struct PregelPagerankResult {
  std::vector<double> rank;
  PregelStats stats;
};
PregelPagerankResult Pagerank(const graph::Csr& g, par::ThreadPool& pool,
                              double damping = 0.85,
                              double tolerance = 1e-9,
                              int max_iterations = 1000);

}  // namespace gunrock::pregel
