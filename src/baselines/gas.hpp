// Mini gather-apply-scatter engine: the PowerGraph / MapGraph / CuSha role
// in the paper's comparisons (Sections 2.3 and 4.2).
//
// Deliberately faithful to what GPU GAS frameworks do — and therefore to
// their costs the paper attributes the performance gap to:
//  * three separate, unfused passes per superstep (gather, apply, scatter)
//    with the gather result *materialized* to memory between them
//    ("significant fragmentation of GAS programs across many kernels");
//  * vertex-mapped gather over the full vertex set, walking each vertex's
//    complete in-edge list (the load imbalance GAS inherits on power-law
//    degree distributions);
//  * no access to the frontier: activity is a per-vertex flag array, so
//    work cannot be reorganized (no push/pull switch, no priority queue).
//
// Program contract:
//   struct Program {
//     using GatherT = <32/64-bit scalar>;
//     static GatherT Identity();
//     static GatherT Gather(vid_t u, vid_t v, eid_t e, const State&);
//     static GatherT Combine(GatherT a, GatherT b);
//     // Updates v's state from the combined gather; true = changed
//     // (out-neighbors are activated for the next superstep).
//     static bool Apply(vid_t v, GatherT acc, State&);
//   };
#pragma once

#include <span>
#include <vector>

#include "core/simt_model.hpp"
#include "graph/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/for_each.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace gunrock::gas {

struct GasStats {
  int supersteps = 0;
  eid_t edges_processed = 0;
  double elapsed_ms = 0.0;
  double lane_efficiency = 1.0;  // of the vertex-mapped gather
  double Mteps() const {
    return elapsed_ms > 0
               ? static_cast<double>(edges_processed) / (elapsed_ms * 1000.0)
               : 0.0;
  }
};

/// Runs the synchronous GAS loop until no vertex changes (or the cap).
/// `rg` is the reverse graph (gather reads in-edges); pass g itself for
/// symmetric graphs.
template <typename Program, typename State>
GasStats Run(par::ThreadPool& pool, const graph::Csr& g,
             const graph::Csr& rg, State& state,
             std::span<const vid_t> initially_active,
             int max_supersteps = 1 << 20) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  using GatherT = typename Program::GatherT;

  std::vector<char> active(n, 0), next_active(n, 0);
  for (const vid_t v : initially_active) {
    active[static_cast<std::size_t>(v)] = 1;
  }
  // The materialized intermediate that kernel fusion would eliminate.
  std::vector<GatherT> gathered(n);
  std::vector<char> changed(n, 0);

  GasStats stats;
  // Vertex-mapped gather cost model: one lane per vertex, cost = in-degree
  // (identical every superstep — GAS sweeps the whole edge list).
  stats.lane_efficiency = core::LaneEfficiencyThreadMapped(
      pool, n,
      [&](std::size_t v) { return rg.degree(static_cast<vid_t>(v)); });

  WallTimer timer;
  bool any_active = !initially_active.empty();
  while (any_active && stats.supersteps < max_supersteps) {
    // --- Gather kernel (unfused, full sweep, vertex-mapped). ---
    par::ParallelFor(pool, 0, n, [&](std::size_t vi) {
      const vid_t v = static_cast<vid_t>(vi);
      GatherT acc = Program::Identity();
      for (eid_t e = rg.row_begin(v); e < rg.row_end(v); ++e) {
        const vid_t u = rg.edge_dest(e);
        if (!active[static_cast<std::size_t>(u)]) continue;
        acc = Program::Combine(acc, Program::Gather(u, v, e, state));
      }
      gathered[vi] = acc;
    });
    stats.edges_processed += rg.num_edges();

    // --- Apply kernel. ---
    par::ParallelFor(pool, 0, n, [&](std::size_t vi) {
      changed[vi] =
          Program::Apply(static_cast<vid_t>(vi), gathered[vi], state) ? 1
                                                                      : 0;
    });

    // --- Scatter kernel: a changed vertex stays active so its neighbors
    // gather its new value next superstep (synchronous signal-and-pull,
    // the PowerGraph sync-engine dataflow). ---
    par::ParallelFor(pool, 0, n,
                     [&](std::size_t vi) { next_active[vi] = changed[vi]; });
    active.swap(next_active);
    (void)g;
    any_active = false;
    for (std::size_t vi = 0; vi < n && !any_active; ++vi) {
      if (active[vi]) any_active = true;
    }
    ++stats.supersteps;
  }
  stats.elapsed_ms = timer.ElapsedMs();
  return stats;
}

// --- Programs for the paper's benchmarked primitives. ---

struct BfsState {
  std::vector<std::int32_t> depth;
};

struct SsspState {
  std::vector<weight_t> dist;
  const graph::Csr* graph = nullptr;
};

struct PrState {
  std::vector<double> rank;
  std::vector<double> inv_outdeg;
  double damping = 0.85;
  double tolerance = 1e-9;
  double base = 0.0;
};

struct CcState {
  std::vector<vid_t> comp;
};

struct GasBfsResult {
  std::vector<std::int32_t> depth;
  GasStats stats;
};
GasBfsResult Bfs(const graph::Csr& g, vid_t source, par::ThreadPool& pool);

struct GasSsspResult {
  std::vector<weight_t> dist;
  GasStats stats;
};
GasSsspResult Sssp(const graph::Csr& g, vid_t source,
                   par::ThreadPool& pool);

struct GasPagerankResult {
  std::vector<double> rank;
  GasStats stats;
};
GasPagerankResult Pagerank(const graph::Csr& g, par::ThreadPool& pool,
                           double damping = 0.85, double tolerance = 1e-9,
                           int max_iterations = 1000);

struct GasCcResult {
  std::vector<vid_t> component;  // min-id labels (label propagation)
  vid_t num_components = 0;
  GasStats stats;
};
GasCcResult Cc(const graph::Csr& g, par::ThreadPool& pool);

}  // namespace gunrock::gas
