// Pregel/Medusa vertex programs for BFS, SSSP and PageRank.
#include "baselines/pregel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gunrock::pregel {

namespace {

struct BfsState {
  std::vector<std::int32_t> depth;
};

struct BfsProgram {
  using MessageT = std::int32_t;
  static MessageT Identity() {
    return std::numeric_limits<std::int32_t>::max();
  }
  static MessageT Combine(MessageT a, MessageT b) { return std::min(a, b); }
  static bool Compute(vid_t v, bool has_msg, MessageT msg, BfsState& s,
                      int superstep, MessageT* out) {
    if (superstep == 0) {
      *out = s.depth[v] + 1;  // source seeds its neighbors
      return true;
    }
    if (!has_msg) return false;
    if (s.depth[v] >= 0 && s.depth[v] <= msg) return false;
    s.depth[v] = msg;
    *out = msg + 1;
    return true;
  }
  static MessageT EdgeMessage(MessageT base, vid_t, vid_t, eid_t,
                              const BfsState&) {
    return base;
  }
};

struct SsspState {
  std::vector<weight_t> dist;
  const graph::Csr* graph = nullptr;
};

struct SsspProgram {
  using MessageT = weight_t;
  static MessageT Identity() { return kInfinity; }
  static MessageT Combine(MessageT a, MessageT b) { return std::min(a, b); }
  static bool Compute(vid_t v, bool has_msg, MessageT msg, SsspState& s,
                      int superstep, MessageT* out) {
    if (superstep == 0) {
      *out = s.dist[v];
      return true;
    }
    if (!has_msg || msg >= s.dist[v]) return false;
    s.dist[v] = msg;
    *out = msg;
    return true;
  }
  static MessageT EdgeMessage(MessageT base, vid_t, vid_t, eid_t e,
                              const SsspState& s) {
    return base + s.graph->weights()[e];
  }
};

struct PrState {
  std::vector<double> rank;
  std::vector<double> inv_outdeg;
  double damping = 0.85;
  double tolerance = 1e-9;
  double base = 0.0;
  bool converged = true;  // any vertex moving resets this per superstep
};

struct PrProgram {
  using MessageT = double;
  static MessageT Identity() { return 0.0; }
  static MessageT Combine(MessageT a, MessageT b) { return a + b; }
  static bool Compute(vid_t v, bool has_msg, MessageT msg, PrState& s,
                      int superstep, MessageT* out) {
    if (superstep == 0) {
      // Send phase of the driver iteration.
      *out = s.rank[v] * s.inv_outdeg[v];
      return true;
    }
    // Receive phase: update, send nothing (the driver reseeds).
    const double next = s.base + s.damping * (has_msg ? msg : 0.0);
    if (std::abs(next - s.rank[v]) > s.tolerance) {
      par::AtomicStore(&s.converged, false);
    }
    s.rank[v] = next;
    return false;
  }
  static MessageT EdgeMessage(MessageT base, vid_t, vid_t, eid_t,
                              const PrState&) {
    return base;
  }
};

}  // namespace

PregelBfsResult Bfs(const graph::Csr& g, vid_t source,
                    par::ThreadPool& pool) {
  PregelBfsResult result;
  BfsState state;
  state.depth.assign(g.num_vertices(), -1);
  state.depth[source] = 0;
  const vid_t init[] = {source};
  result.stats = Run<BfsProgram>(pool, g, state, init);
  result.depth = std::move(state.depth);
  return result;
}

PregelSsspResult Sssp(const graph::Csr& g, vid_t source,
                      par::ThreadPool& pool) {
  PregelSsspResult result;
  SsspState state;
  state.dist.assign(g.num_vertices(), kInfinity);
  state.dist[source] = 0;
  state.graph = &g;
  const vid_t init[] = {source};
  result.stats = Run<SsspProgram>(pool, g, state, init);
  result.dist = std::move(state.dist);
  return result;
}

PregelPagerankResult Pagerank(const graph::Csr& g, par::ThreadPool& pool,
                              double damping, double tolerance,
                              int max_iterations) {
  PregelPagerankResult result;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  if (n == 0) return result;
  PrState state;
  state.rank.assign(n, 1.0 / static_cast<double>(n));
  state.inv_outdeg.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    state.inv_outdeg[v] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  state.damping = damping;
  state.tolerance = tolerance;

  std::vector<vid_t> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<vid_t>(v);
  // In-degrees: vertices that can never receive mail take the base value.
  std::vector<eid_t> indeg(n, 0);
  for (const vid_t d : g.col_indices()) {
    ++indeg[static_cast<std::size_t>(d)];
  }

  WallTimer timer;
  // Drive one superstep at a time: the dangling-mass base is a global
  // reduction Pregel applications run as an aggregator between supersteps.
  // Superstep k updates ranks from superstep k-1's messages, so one extra
  // "flush" superstep follows convergence.
  for (int it = 0; it < max_iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (g.degree(static_cast<vid_t>(v)) == 0) dangling += state.rank[v];
    }
    state.base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    state.converged = true;
    // Each driver iteration replays seed-all (send) then one receive
    // superstep; PregelStats accumulates across the driver loop.
    const PregelStats step = Run<PrProgram>(pool, g, state, all, 2);
    result.stats.messages_sent += step.messages_sent;
    result.stats.lane_efficiency = step.lane_efficiency;
    ++result.stats.supersteps;
    // Vertices with no in-edges receive no message; their rank is the
    // base value by definition.
    for (std::size_t v = 0; v < n; ++v) {
      if (indeg[v] == 0) {
        if (std::abs(state.base - state.rank[v]) > tolerance) {
          state.converged = false;
        }
        state.rank[v] = state.base;
      }
    }
    if (state.converged) break;
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  result.rank = std::move(state.rank);
  return result;
}

}  // namespace gunrock::pregel
