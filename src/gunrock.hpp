// Umbrella header: the full public API of the Gunrock-CPU library.
//
// Layering (see DESIGN.md):
//   gunrock::par    — parallel runtime & primitives (thread pool, scan,
//                     sort, compact, atomics, bitmap)
//   gunrock::graph  — storage (CSR/COO), Matrix Market I/O, generators,
//                     statistics
//   gunrock::core   — the data-centric abstraction: frontier + advance /
//                     filter / compute operators, priority queue,
//                     direction optimizer, SIMT lane-efficiency model
//   gunrock::       — graph primitives built on the core: Bfs, Sssp, Bc,
//                     Cc, Pagerank, and extended node-ranking primitives
//   gunrock::engine — the serving layer: QueryEngine multiplexes many
//                     in-flight queries onto one shared pool with leased
//                     workspaces, admission control and cancellation
//   gunrock::serial — sequential reference implementations
#pragma once

#include "baselines/gas.hpp"
#include "baselines/pregel.hpp"
#include "baselines/serial.hpp"
#include "core/advance.hpp"
#include "core/cancel.hpp"
#include "core/compute.hpp"
#include "core/direction.hpp"
#include "core/filter.hpp"
#include "core/frontier.hpp"
#include "core/gather.hpp"
#include "core/policy.hpp"
#include "core/priority_queue.hpp"
#include "core/simt_model.hpp"
#include "core/spmv.hpp"
#include "core/stats.hpp"
#include "core/workspace.hpp"
#include "engine/query.hpp"
#include "engine/query_engine.hpp"
#include "engine/workspace_pool.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/market.hpp"
#include "graph/stats.hpp"
#include "hardwired/hardwired.hpp"
#include "parallel/lane_mask.hpp"
#include "parallel/thread_pool.hpp"
#include "primitives/bc.hpp"
#include "primitives/bfs.hpp"
#include "primitives/bfs_batch.hpp"
#include "primitives/cc.hpp"
#include "primitives/ppr_batch.hpp"
#include "primitives/mst.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/ranking.hpp"
#include "primitives/sets.hpp"
#include "primitives/sssp.hpp"
#include "primitives/sssp_batch.hpp"
#include "primitives/triangles.hpp"
#include "primitives/label_propagation.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
