#include "graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>

#include "parallel/for_each.hpp"
#include "parallel/histogram.hpp"
#include "parallel/reduce.hpp"
#include "parallel/sort.hpp"

namespace gunrock::graph {

DegreeStats ComputeDegreeStats(const Csr& g, par::ThreadPool& pool) {
  DegreeStats s;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  if (n == 0) return s;
  s.max_degree = par::TransformReduce(
      pool, n, eid_t{0}, [](eid_t a, eid_t b) { return std::max(a, b); },
      [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)); });
  s.min_degree = par::TransformReduce(
      pool, n, g.degree(0), [](eid_t a, eid_t b) { return std::min(a, b); },
      [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)); });
  s.mean_degree = g.average_degree();
  const std::size_t below = par::TransformReduce(
      pool, n, std::size_t{0}, [](std::size_t a, std::size_t b) { return a + b; },
      [&](std::size_t v) {
        return g.degree(static_cast<vid_t>(v)) < 64 ? std::size_t{1} : 0;
      });
  s.frac_degree_below_64 = static_cast<double>(below) / n;

  // Gini = (2 * sum_i (i+1) * d_sorted[i]) / (n * sum d) - (n+1)/n.
  std::vector<std::uint64_t> deg(n);
  par::ParallelFor(pool, 0, n, [&](std::size_t v) {
    deg[v] = static_cast<std::uint64_t>(g.degree(static_cast<vid_t>(v)));
  });
  par::RadixSortKeys<std::uint64_t>(pool, deg);
  const double total = static_cast<double>(g.num_edges());
  if (total > 0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(deg[i]);
    }
    s.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return s;
}

namespace {

/// Simple serial BFS returning (farthest vertex, eccentricity). Local to
/// stats to avoid depending on the primitives layer.
std::pair<vid_t, std::int32_t> BfsEccentricity(const Csr& g, vid_t src) {
  std::vector<std::int32_t> depth(g.num_vertices(), -1);
  std::queue<vid_t> q;
  depth[src] = 0;
  q.push(src);
  vid_t far = src;
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop();
    for (const vid_t v : g.neighbors(u)) {
      if (depth[v] < 0) {
        depth[v] = depth[u] + 1;
        if (depth[v] > depth[far]) far = v;
        q.push(v);
      }
    }
  }
  return {far, depth[far]};
}

}  // namespace

std::int32_t PseudoDiameter(const Csr& g, vid_t seed_vertex) {
  if (g.num_vertices() == 0) return 0;
  // Start from a non-isolated vertex near the seed.
  vid_t start = seed_vertex;
  while (start < g.num_vertices() && g.degree(start) == 0) ++start;
  if (start >= g.num_vertices()) return 0;
  auto [far, ecc1] = BfsEccentricity(g, start);
  auto [far2, ecc2] = BfsEccentricity(g, far);
  (void)far2;
  return std::max(ecc1, ecc2);
}

std::vector<std::int64_t> DegreeHistogram(const Csr& g,
                                          par::ThreadPool& pool) {
  std::vector<std::int64_t> hist(34, 0);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  par::Histogram(pool, n, hist, [&](std::size_t v) {
    const eid_t d = g.degree(static_cast<vid_t>(v));
    if (d == 0) return std::size_t{0};
    const int k = 64 - std::countl_zero(static_cast<std::uint64_t>(d));
    return std::min<std::size_t>(static_cast<std::size_t>(k), 33);
  });
  return hist;
}

bool ComputeScaleFreeHint(const Csr& g, par::ThreadPool& pool) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  if (n == 0 || g.num_edges() == 0) return false;
  const eid_t max_degree = par::TransformReduce(
      pool, n, eid_t{0}, [](eid_t a, eid_t b) { return std::max(a, b); },
      [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)); });
  return static_cast<double>(max_degree) / g.average_degree() > 16.0;
}

bool IsScaleFreeLike(const DegreeStats& stats) {
  // Mesh-like graphs (rgg, roadnet) have max degree within a small factor
  // of the mean and low Gini; scale-free graphs exceed both by orders of
  // magnitude. Thresholds chosen so that all six Table 1 classes classify
  // the way the paper describes them.
  return stats.mean_degree > 0 &&
         (static_cast<double>(stats.max_degree) / stats.mean_degree > 16.0 ||
          stats.gini > 0.5);
}

}  // namespace gunrock::graph
