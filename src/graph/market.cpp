#include "graph/market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace gunrock::graph {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// "line 7: " prefix — every malformed-input error below names the
/// offending line, so a bad 10M-edge file is a one-glance fix, not a
/// bisection.
std::string At(long long line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

}  // namespace

Coo ReadMarket(std::istream& in) {
  std::string line;
  long long line_no = 0;
  const auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  };

  GR_CHECK(next_line(), "empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  GR_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  GR_CHECK(ToLower(object) == "matrix", "unsupported object: " + object);
  GR_CHECK(ToLower(format) == "coordinate",
           "unsupported format: " + format);
  field = ToLower(field);
  symmetry = ToLower(symmetry);
  const bool pattern = field == "pattern";
  GR_CHECK(pattern || field == "real" || field == "integer",
           "unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  GR_CHECK(symmetric || symmetry == "general",
           "unsupported symmetry: " + symmetry);

  // Skip comments, read the size line: exactly three non-negative
  // integers — whole-token checked, so "4 4 x" and "4 4 3 junk" are
  // errors that name the line, never a zero-filled header.
  long long rows = 0, cols = 0, nnz = 0;
  for (;;) {
    GR_CHECK(next_line(), "missing size line (input ended at line " +
                              std::to_string(line_no) + ")");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    std::string r_tok, c_tok, n_tok, extra;
    GR_CHECK(static_cast<bool>(sizes >> r_tok >> c_tok >> n_tok),
             At(line_no) + "bad size line (need rows cols nnz): " + line);
    GR_CHECK(!(sizes >> extra), At(line_no) + "trailing garbage '" + extra +
                                    "' on size line: " + line);
    const auto parse_size = [&](const std::string& token,
                                const char* what) -> long long {
      const auto parsed = util::ParseInt(
          token, 0, std::numeric_limits<long long>::max());
      GR_CHECK(parsed.has_value(), At(line_no) + std::string(what) + " '" +
                                       token +
                                       "' is not a non-negative integer: " +
                                       line);
      return *parsed;
    };
    rows = parse_size(r_tok, "row count");
    cols = parse_size(c_tok, "column count");
    nnz = parse_size(n_tok, "entry count");
    break;
  }

  Coo coo;
  coo.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  coo.Reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
  if (!pattern) {
    coo.weight.reserve(static_cast<std::size_t>(nnz) *
                       (symmetric ? 2 : 1));
  }

  long long seen = 0;
  while (seen < nnz) {
    GR_CHECK(next_line(), "expected " + std::to_string(nnz) +
                              " entries, got " + std::to_string(seen) +
                              " (input ended at line " +
                              std::to_string(line_no) + ")");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::string r_tok, c_tok, w_tok, extra;
    GR_CHECK(static_cast<bool>(entry >> r_tok >> c_tok),
             At(line_no) + "bad entry (need row col" +
                 (pattern ? "" : " value") + "): " + line);
    const auto parse_index = [&](const std::string& token) -> long long {
      const auto parsed = util::ParseInt(token);
      GR_CHECK(parsed.has_value(), At(line_no) + "entry index '" + token +
                                       "' is not an integer: " + line);
      return *parsed;
    };
    const long long r = parse_index(r_tok);
    const long long c = parse_index(c_tok);
    // Matrix Market indices are 1-based: 0 is as out-of-range as rows+1.
    GR_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
             At(line_no) + "entry (" + std::to_string(r) + ", " +
                 std::to_string(c) + ") out of range [1, " +
                 std::to_string(rows) + "] x [1, " + std::to_string(cols) +
                 "] (indices are 1-based): " + line);
    double w = 1.0;
    if (!pattern) {
      GR_CHECK(static_cast<bool>(entry >> w_tok),
               At(line_no) + "missing value: " + line);
      const auto parsed = util::ParseDouble(w_tok);
      GR_CHECK(parsed.has_value(), At(line_no) + "value '" + w_tok +
                                       "' is not a number: " + line);
      w = *parsed;
    }
    GR_CHECK(!(entry >> extra), At(line_no) + "trailing garbage '" + extra +
                                    "' after entry: " + line);
    const vid_t u = static_cast<vid_t>(r - 1);
    const vid_t v = static_cast<vid_t>(c - 1);
    if (pattern) {
      coo.PushEdge(u, v);
      if (symmetric && u != v) coo.PushEdge(v, u);
    } else {
      coo.PushEdge(u, v, static_cast<weight_t>(w));
      if (symmetric && u != v) coo.PushEdge(v, u, static_cast<weight_t>(w));
    }
    ++seen;
  }
  return coo;
}

Coo ReadMarketFile(const std::string& path) {
  std::ifstream f(path);
  GR_CHECK(f.good(), "cannot open " + path);
  return ReadMarket(f);
}

void WriteMarket(std::ostream& out, const Coo& coo) {
  const bool pattern = !coo.has_weights();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_vertices << " " << coo.num_vertices << " "
      << coo.src.size() << "\n";
  for (std::size_t i = 0; i < coo.src.size(); ++i) {
    out << (coo.src[i] + 1) << " " << (coo.dst[i] + 1);
    if (!pattern) out << " " << coo.weight[i];
    out << "\n";
  }
}

void WriteMarketFile(const std::string& path, const Coo& coo) {
  std::ofstream f(path);
  GR_CHECK(f.good(), "cannot open " + path);
  WriteMarket(f, coo);
}

}  // namespace gunrock::graph
