#include "graph/market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace gunrock::graph {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Coo ReadMarket(std::istream& in) {
  std::string line;
  GR_CHECK(static_cast<bool>(std::getline(in, line)), "empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  GR_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  GR_CHECK(ToLower(object) == "matrix", "unsupported object: " + object);
  GR_CHECK(ToLower(format) == "coordinate",
           "unsupported format: " + format);
  field = ToLower(field);
  symmetry = ToLower(symmetry);
  const bool pattern = field == "pattern";
  GR_CHECK(pattern || field == "real" || field == "integer",
           "unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  GR_CHECK(symmetric || symmetry == "general",
           "unsupported symmetry: " + symmetry);

  // Skip comments, read the size line.
  long long rows = 0, cols = 0, nnz = 0;
  for (;;) {
    GR_CHECK(static_cast<bool>(std::getline(in, line)),
             "missing size line");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    GR_CHECK(static_cast<bool>(sizes >> rows >> cols >> nnz),
             "bad size line: " + line);
    break;
  }
  GR_CHECK(rows >= 0 && cols >= 0 && nnz >= 0, "negative size");

  Coo coo;
  coo.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  coo.Reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
  if (!pattern) {
    coo.weight.reserve(static_cast<std::size_t>(nnz) *
                       (symmetric ? 2 : 1));
  }

  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long r, c;
    GR_CHECK(static_cast<bool>(entry >> r >> c), "bad entry: " + line);
    GR_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
             "entry out of range: " + line);
    double w = 1.0;
    if (!pattern) {
      GR_CHECK(static_cast<bool>(entry >> w), "missing value: " + line);
    }
    const vid_t u = static_cast<vid_t>(r - 1);
    const vid_t v = static_cast<vid_t>(c - 1);
    if (pattern) {
      coo.PushEdge(u, v);
      if (symmetric && u != v) coo.PushEdge(v, u);
    } else {
      coo.PushEdge(u, v, static_cast<weight_t>(w));
      if (symmetric && u != v) coo.PushEdge(v, u, static_cast<weight_t>(w));
    }
    ++seen;
  }
  GR_CHECK(seen == nnz, "expected " + std::to_string(nnz) + " entries, got " +
                            std::to_string(seen));
  return coo;
}

Coo ReadMarketFile(const std::string& path) {
  std::ifstream f(path);
  GR_CHECK(f.good(), "cannot open " + path);
  return ReadMarket(f);
}

void WriteMarket(std::ostream& out, const Coo& coo) {
  const bool pattern = !coo.has_weights();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_vertices << " " << coo.num_vertices << " "
      << coo.src.size() << "\n";
  for (std::size_t i = 0; i < coo.src.size(); ++i) {
    out << (coo.src[i] + 1) << " " << (coo.dst[i] + 1);
    if (!pattern) out << " " << coo.weight[i];
    out << "\n";
  }
}

void WriteMarketFile(const std::string& path, const Coo& coo) {
  std::ofstream f(path);
  GR_CHECK(f.good(), "cannot open " + path);
  WriteMarket(f, coo);
}

}  // namespace gunrock::graph
