// Matrix Market (.mtx) coordinate-format reader/writer.
//
// The paper's artifact distributes all datasets as Matrix Market files
// ("We currently only support matrix market format files as input").
// Supported: `matrix coordinate {pattern|real|integer} {general|symmetric}`.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/coo.hpp"

namespace gunrock::graph {

/// Parses a Matrix Market stream into a COO edge list. Symmetric files are
/// expanded (both directions emitted for off-diagonal entries). Indices are
/// converted from 1-based to 0-based. Throws gunrock::Error on malformed
/// input.
Coo ReadMarket(std::istream& in);

/// Convenience: read from a file path.
Coo ReadMarketFile(const std::string& path);

/// Writes a COO edge list as `matrix coordinate real general` (or
/// `pattern` when unweighted), 1-based.
void WriteMarket(std::ostream& out, const Coo& coo);

void WriteMarketFile(const std::string& path, const Coo& coo);

}  // namespace gunrock::graph
