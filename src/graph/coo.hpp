// Coordinate-format edge list: the exchange format between generators,
// Matrix Market I/O, and the CSR builder.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace gunrock::graph {

struct Coo {
  vid_t num_vertices = 0;
  std::vector<vid_t> src;
  std::vector<vid_t> dst;
  /// Empty when the graph is unweighted; otherwise parallel to src/dst.
  std::vector<weight_t> weight;

  eid_t num_edges() const { return static_cast<eid_t>(src.size()); }
  bool has_weights() const { return !weight.empty(); }

  void Reserve(std::size_t n) {
    src.reserve(n);
    dst.reserve(n);
  }

  void PushEdge(vid_t u, vid_t v) {
    src.push_back(u);
    dst.push_back(v);
  }

  void PushEdge(vid_t u, vid_t v, weight_t w) {
    src.push_back(u);
    dst.push_back(v);
    weight.push_back(w);
  }
};

}  // namespace gunrock::graph
