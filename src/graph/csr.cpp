#include "graph/csr.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/for_each.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "util/error.hpp"

namespace gunrock::graph {

namespace {

std::uint64_t PackEdge(vid_t src, vid_t dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

struct CsrBuilderAccess {
  static Csr Make(vid_t n, std::vector<eid_t> offsets,
                  std::vector<vid_t> cols, std::vector<weight_t> weights) {
    Csr g;
    g.num_vertices_ = n;
    g.row_offsets_ = std::move(offsets);
    g.col_indices_ = std::move(cols);
    g.weights_ = std::move(weights);
    return g;
  }
};

Csr BuildCsr(const Coo& coo, const BuildOptions& opts,
             par::ThreadPool& pool) {
  const vid_t n = coo.num_vertices;
  GR_CHECK(n >= 0, "negative vertex count");
  const std::size_t m_in = coo.src.size();
  GR_CHECK(coo.dst.size() == m_in, "src/dst size mismatch");
  GR_CHECK(coo.weight.empty() || coo.weight.size() == m_in,
           "weight size mismatch");
  const bool weighted = coo.has_weights();

  // Phase 1: pack (src, dst) into sortable 64-bit keys, dropping self loops
  // and appending reversed edges if symmetrizing. Two deterministic block
  // passes (count, then place) keep the pre-sort edge order a pure function
  // of the input, so "first duplicate wins" is reproducible run to run.
  const std::size_t nblocks =
      par::DefaultBlockCount(std::max<std::size_t>(m_in, 1),
                             pool.num_threads());
  std::vector<std::size_t> block_out(nblocks + 1, 0);
  const auto emitted = [&](std::size_t i) -> std::size_t {
    const vid_t u = coo.src[i], v = coo.dst[i];
    GR_CHECK(u >= 0 && u < n && v >= 0 && v < n,
             "edge endpoint out of range");
    if (opts.remove_self_loops && u == v) return 0;
    return (opts.symmetrize && u != v) ? 2 : 1;
  };
  par::FixedBlocks(pool, m_in, nblocks,
                   [&](std::size_t b, std::size_t lo, std::size_t hi) {
                     std::size_t c = 0;
                     for (std::size_t i = lo; i < hi; ++i) c += emitted(i);
                     block_out[b + 1] = c;
                   });
  for (std::size_t b = 0; b < nblocks; ++b) block_out[b + 1] += block_out[b];
  std::vector<std::uint64_t> keys(block_out[nblocks]);
  std::vector<weight_t> vals(weighted ? keys.size() : 0);
  par::FixedBlocks(
      pool, m_in, nblocks,
      [&](std::size_t b, std::size_t lo, std::size_t hi) {
        std::size_t at = block_out[b];
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t u = coo.src[i], v = coo.dst[i];
          if (opts.remove_self_loops && u == v) continue;
          keys[at] = PackEdge(u, v);
          if (weighted) vals[at] = coo.weight[i];
          ++at;
          if (opts.symmetrize && u != v) {
            keys[at] = PackEdge(v, u);
            if (weighted) vals[at] = coo.weight[i];
            ++at;
          }
        }
      });

  // Phase 2: sort edges by (src, dst).
  if (weighted) {
    par::RadixSortPairs<std::uint64_t, weight_t>(pool, keys, vals);
  } else {
    par::RadixSortKeys<std::uint64_t>(pool, keys);
  }

  // Phase 3: optionally drop duplicate edges (first weight wins — the sort
  // is stable, so "first" means first in pre-sort order per (u,v) group).
  if (opts.remove_duplicates && !keys.empty()) {
    std::vector<std::uint64_t> dk(keys.size());
    std::vector<weight_t> dv(weighted ? keys.size() : 0);
    auto keep = [&](std::size_t i) {
      return i == 0 || keys[i] != keys[i - 1];
    };
    std::size_t kept;
    if (weighted) {
      // Compact keys and weights with the same predicate/offsets.
      kept = par::GenerateIf(
          pool, keys.size(), std::span<std::uint64_t>(dk), keep,
          [&](std::size_t i) { return keys[i]; });
      par::GenerateIf(pool, keys.size(), std::span<weight_t>(dv), keep,
                      [&](std::size_t i) { return vals[i]; });
    } else {
      kept = par::GenerateIf(pool, keys.size(), std::span<std::uint64_t>(dk),
                             keep,
                             [&](std::size_t i) { return keys[i]; });
    }
    dk.resize(kept);
    keys.swap(dk);
    if (weighted) {
      dv.resize(kept);
      vals.swap(dv);
    }
  }

  // Phase 4: offsets by atomic degree count + scan; columns by unpack.
  const std::size_t m = keys.size();
  std::vector<eid_t> degree(static_cast<std::size_t>(n) + 1, 0);
  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    par::AtomicAdd(&degree[keys[i] >> 32], eid_t{1});
  });
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1);
  par::ExclusiveScan<eid_t>(pool, degree, offsets);
  offsets[n] = static_cast<eid_t>(m);

  std::vector<vid_t> cols(m);
  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    cols[i] = static_cast<vid_t>(keys[i] & 0xffffffffu);
  });

  Csr g = CsrBuilderAccess::Make(n, std::move(offsets), std::move(cols),
                                 weighted ? std::move(vals)
                                          : std::vector<weight_t>{});
  return g;
}

std::span<const vid_t> Csr::edge_sources(par::ThreadPool& pool) const {
  if (edge_src_.empty() && num_edges() > 0) {
    std::vector<vid_t> src(static_cast<std::size_t>(num_edges()));
    par::ParallelFor(pool, 0, static_cast<std::size_t>(num_vertices_),
                     [&](std::size_t v) {
                       for (eid_t e = row_begin(static_cast<vid_t>(v));
                            e < row_end(static_cast<vid_t>(v)); ++e) {
                         src[static_cast<std::size_t>(e)] =
                             static_cast<vid_t>(v);
                       }
                     });
    edge_src_ = std::move(src);
  }
  return edge_src_;
}

bool Csr::IsSymmetric(par::ThreadPool& pool) const {
  const auto srcs = edge_sources(pool);
  return par::TransformReduce(
      pool, static_cast<std::size_t>(num_edges()), true,
      [](bool a, bool b) { return a && b; },
      [&](std::size_t e) {
        const vid_t u = srcs[e];
        const vid_t v = col_indices_[e];
        const auto nb = neighbors(v);
        return std::binary_search(nb.begin(), nb.end(), u);
      });
}

void Csr::Validate() const {
  GR_CHECK(row_offsets_.size() ==
               static_cast<std::size_t>(num_vertices_) + 1,
           "row_offsets size");
  GR_CHECK(row_offsets_.front() == 0, "row_offsets[0] != 0");
  GR_CHECK(row_offsets_.back() == num_edges(), "row_offsets[n] != m");
  for (std::size_t v = 0; v + 1 < row_offsets_.size(); ++v) {
    GR_CHECK(row_offsets_[v] <= row_offsets_[v + 1],
             "row offsets not monotone");
  }
  for (const vid_t c : col_indices_) {
    GR_CHECK(c >= 0 && c < num_vertices_, "column index out of range");
  }
  GR_CHECK(weights_.empty() || weights_.size() == col_indices_.size(),
           "weights size");
}

Csr ReverseCsr(const Csr& g, par::ThreadPool& pool) {
  const vid_t n = g.num_vertices();
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  std::vector<eid_t> in_degree(static_cast<std::size_t>(n) + 1, 0);
  par::ParallelFor(pool, 0, m, [&](std::size_t e) {
    par::AtomicAdd(&in_degree[g.col_indices()[e]], eid_t{1});
  });
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1);
  par::ExclusiveScan<eid_t>(pool, in_degree, offsets);
  offsets[n] = static_cast<eid_t>(m);

  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<vid_t> cols(m);
  std::vector<weight_t> weights(g.has_weights() ? m : 0);
  const auto srcs = g.edge_sources(pool);
  par::ParallelFor(pool, 0, m, [&](std::size_t e) {
    const vid_t d = g.col_indices()[e];
    const eid_t slot = par::AtomicAdd(&cursor[d], eid_t{1});
    cols[static_cast<std::size_t>(slot)] = srcs[e];
    if (g.has_weights()) {
      weights[static_cast<std::size_t>(slot)] = g.weights()[e];
    }
  });
  // Neighbor lists must be sorted for binary-search lookups.
  par::ParallelFor(pool, 0, static_cast<std::size_t>(n), [&](std::size_t v) {
    const auto b = static_cast<std::size_t>(offsets[v]);
    const auto e = static_cast<std::size_t>(offsets[v + 1]);
    if (weights.empty()) {
      std::sort(cols.begin() + b, cols.begin() + e);
    } else {
      // Sort columns and weights together.
      std::vector<std::pair<vid_t, weight_t>> tmp;
      tmp.reserve(e - b);
      for (std::size_t i = b; i < e; ++i) tmp.emplace_back(cols[i], weights[i]);
      std::sort(tmp.begin(), tmp.end(),
                [](auto& a, auto& c) { return a.first < c.first; });
      for (std::size_t i = b; i < e; ++i) {
        cols[i] = tmp[i - b].first;
        weights[i] = tmp[i - b].second;
      }
    }
  });
  return CsrBuilderAccess::Make(n, std::move(offsets), std::move(cols),
                                std::move(weights));
}

Coo CsrToCoo(const Csr& g, par::ThreadPool& pool) {
  Coo coo;
  coo.num_vertices = g.num_vertices();
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  coo.src.resize(m);
  coo.dst.resize(m);
  if (g.has_weights()) coo.weight.resize(m);
  const auto srcs = g.edge_sources(pool);
  par::ParallelFor(pool, 0, m, [&](std::size_t e) {
    coo.src[e] = srcs[e];
    coo.dst[e] = g.col_indices()[e];
    if (g.has_weights()) coo.weight[e] = g.weights()[e];
  });
  return coo;
}

}  // namespace gunrock::graph
