// Synthetic graph generators reproducing the topology classes of the
// paper's six datasets (Table 1): four scale-free graphs (two social-style
// R-MATs, one web-crawl-style R-MAT, one Graph500 Kronecker) and two
// small-degree large-diameter graphs (random geometric, road mesh).
//
// All generators are deterministic in (parameters, seed) and independent of
// thread count: every edge/point derives its randomness from a counter RNG.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::graph {

struct RmatParams {
  int scale = 14;                 // num_vertices = 2^scale
  int edge_factor = 16;           // directed edges before cleanup
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c (Graph500)
  std::uint64_t seed = 1;
  /// Randomly permute vertex ids to break the locality R-MAT bakes in
  /// (Graph500 requires this; keeps "vertex 0 is the hub" artifacts out).
  bool permute = true;
};

/// R-MAT / Kronecker generator (recursive quadrant sampling).
Coo GenerateRmat(const RmatParams& p, par::ThreadPool& pool);

struct RggParams {
  int scale = 15;                 // num_points = 2^scale
  /// Connection radius; 0 selects the radius that targets ~15 average
  /// degree like rgg_n_2_24 in Table 1 (deg ≈ pi * r^2 * n).
  double radius = 0.0;
  std::uint64_t seed = 2;
};

/// Random geometric graph on the unit square via cell-list search.
Coo GenerateRgg(const RggParams& p, par::ThreadPool& pool);

struct RoadParams {
  int width = 512;
  int height = 512;
  /// Probability that a lattice edge is removed (creates irregular blocks).
  double drop_prob = 0.05;
  /// Probability of adding a diagonal shortcut at a cell.
  double diag_prob = 0.05;
  std::uint64_t seed = 3;
};

/// Road-network-like mesh: 2D lattice with dropped edges, occasional
/// diagonals, and Euclidean-style weights. Mimics roadnet_CA's profile
/// (mean degree < 3, large diameter).
Coo GenerateRoad(const RoadParams& p, par::ThreadPool& pool);

struct ErdosRenyiParams {
  vid_t num_vertices = 1 << 14;
  eid_t num_edges = 1 << 18;     // directed samples before cleanup
  std::uint64_t seed = 4;
};

/// Uniform random (Erdős–Rényi G(n, m)) graph.
Coo GenerateErdosRenyi(const ErdosRenyiParams& p, par::ThreadPool& pool);

struct BipartiteParams {
  vid_t num_users = 1 << 12;
  vid_t num_items = 1 << 12;
  int edges_per_user = 16;
  /// Preferential skew: item popularity follows ~ rank^-skew.
  double skew = 0.8;
  std::uint64_t seed = 5;
};

/// Bipartite user→item graph for the who-to-follow primitives (HITS,
/// SALSA, personalized PageRank; paper Section 5.5). Users occupy vertex
/// ids [0, num_users), items [num_users, num_users + num_items).
Coo GenerateBipartite(const BipartiteParams& p, par::ThreadPool& pool);

struct PlantedPartitionParams {
  int num_clusters = 16;
  vid_t cluster_size = 1 << 10;
  int intra_edges_per_vertex = 8;
  /// Number of random cross-cluster edges (0 keeps clusters disconnected —
  /// handy for CC tests with a known component count).
  eid_t inter_edges = 0;
  std::uint64_t seed = 6;
};

/// Clustered graph with a known community structure.
Coo GeneratePlantedPartition(const PlantedPartitionParams& p,
                             par::ThreadPool& pool);

/// Attaches uniform random integer weights in [lo, hi] to an unweighted
/// COO (the paper: "edge weight values for each dataset are random values
/// between 1 and 64"). Deterministic in seed.
void AttachRandomWeights(Coo& coo, weight_t lo = 1, weight_t hi = 64,
                         std::uint64_t seed = 7);

// --- Deterministic toy graphs (test fixtures) ---

Coo MakePath(vid_t n);              // 0-1-2-...-(n-1)
Coo MakeCycle(vid_t n);
Coo MakeStar(vid_t n);              // hub 0 connected to 1..n-1
Coo MakeComplete(vid_t n);
Coo MakeGrid(vid_t width, vid_t height);
Coo MakeBinaryTree(int levels);     // complete binary tree
/// Zachary's karate club (34 vertices, 78 undirected edges).
Coo MakeKarate();

}  // namespace gunrock::graph
