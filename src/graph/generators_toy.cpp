// Small deterministic graphs used as test fixtures and documentation
// examples.
#include "graph/generators.hpp"

namespace gunrock::graph {

Coo MakePath(vid_t n) {
  Coo coo;
  coo.num_vertices = n;
  for (vid_t v = 0; v + 1 < n; ++v) coo.PushEdge(v, v + 1);
  return coo;
}

Coo MakeCycle(vid_t n) {
  Coo coo = MakePath(n);
  if (n > 2) coo.PushEdge(n - 1, 0);
  return coo;
}

Coo MakeStar(vid_t n) {
  Coo coo;
  coo.num_vertices = n;
  for (vid_t v = 1; v < n; ++v) coo.PushEdge(0, v);
  return coo;
}

Coo MakeComplete(vid_t n) {
  Coo coo;
  coo.num_vertices = n;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) coo.PushEdge(u, v);
  }
  return coo;
}

Coo MakeGrid(vid_t width, vid_t height) {
  Coo coo;
  coo.num_vertices = width * height;
  for (vid_t y = 0; y < height; ++y) {
    for (vid_t x = 0; x < width; ++x) {
      const vid_t v = y * width + x;
      if (x + 1 < width) coo.PushEdge(v, v + 1);
      if (y + 1 < height) coo.PushEdge(v, v + width);
    }
  }
  return coo;
}

Coo MakeBinaryTree(int levels) {
  Coo coo;
  const vid_t n = (vid_t{1} << levels) - 1;
  coo.num_vertices = n;
  for (vid_t v = 0; 2 * v + 2 < n + 1; ++v) {
    if (2 * v + 1 < n) coo.PushEdge(v, 2 * v + 1);
    if (2 * v + 2 < n) coo.PushEdge(v, 2 * v + 2);
  }
  return coo;
}

Coo MakeKarate() {
  // Zachary (1977); 0-based, 78 undirected edges.
  static constexpr int kEdges[78][2] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33}};
  Coo coo;
  coo.num_vertices = 34;
  for (const auto& e : kEdges) {
    coo.PushEdge(static_cast<vid_t>(e[0]), static_cast<vid_t>(e[1]));
  }
  return coo;
}

}  // namespace gunrock::graph
