#include <cmath>

#include "graph/generators.hpp"
#include "parallel/for_each.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gunrock::graph {

Coo GenerateRmat(const RmatParams& p, par::ThreadPool& pool) {
  GR_CHECK(p.scale >= 1 && p.scale <= 30, "rmat scale out of range");
  GR_CHECK(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0,
           "rmat quadrant probabilities invalid");
  const vid_t n = vid_t{1} << p.scale;
  const std::size_t m =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(p.edge_factor);

  Coo coo;
  coo.num_vertices = n;
  coo.src.resize(m);
  coo.dst.resize(m);

  // Optional id permutation: a deterministic Feistel-style mix keeps the
  // permutation O(1) per lookup (no materialized table).
  const std::uint64_t perm_key = SplitMix64(p.seed ^ 0xabcdef12345ULL);
  const auto permute = [&](vid_t v) -> vid_t {
    if (!p.permute) return v;
    // Linear permutation x -> (x * A + B) mod 2^scale with odd A is
    // bijective on the power-of-two id domain and O(1) per lookup.
    const std::uint64_t mask = static_cast<std::uint64_t>(n) - 1;
    const std::uint64_t a = (perm_key | 1) & mask;
    const std::uint64_t b = SplitMix64(perm_key) & mask;
    return static_cast<vid_t>((static_cast<std::uint64_t>(v) * a + b) &
                              mask);
  };

  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    CounterRng rng(p.seed, i);
    vid_t u = 0, v = 0;
    for (int bit = p.scale - 1; bit >= 0; --bit) {
      const double r = rng.NextDouble();
      if (r < p.a) {
        // top-left: no bits set
      } else if (r < p.a + p.b) {
        v |= vid_t{1} << bit;
      } else if (r < p.a + p.b + p.c) {
        u |= vid_t{1} << bit;
      } else {
        u |= vid_t{1} << bit;
        v |= vid_t{1} << bit;
      }
    }
    coo.src[i] = permute(u);
    coo.dst[i] = permute(v);
  });
  return coo;
}

Coo GenerateErdosRenyi(const ErdosRenyiParams& p, par::ThreadPool& pool) {
  GR_CHECK(p.num_vertices > 0, "need at least one vertex");
  Coo coo;
  coo.num_vertices = p.num_vertices;
  const std::size_t m = static_cast<std::size_t>(p.num_edges);
  coo.src.resize(m);
  coo.dst.resize(m);
  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    CounterRng rng(p.seed, i);
    coo.src[i] = static_cast<vid_t>(
        rng.NextBounded(static_cast<std::uint64_t>(p.num_vertices)));
    coo.dst[i] = static_cast<vid_t>(
        rng.NextBounded(static_cast<std::uint64_t>(p.num_vertices)));
  });
  return coo;
}

Coo GenerateBipartite(const BipartiteParams& p, par::ThreadPool& pool) {
  GR_CHECK(p.num_users > 0 && p.num_items > 0, "empty side");
  Coo coo;
  coo.num_vertices = p.num_users + p.num_items;
  const std::size_t m = static_cast<std::size_t>(p.num_users) *
                        static_cast<std::size_t>(p.edges_per_user);
  coo.src.resize(m);
  coo.dst.resize(m);
  const double exponent = 1.0 / (1.0 - std::min(p.skew, 0.99));
  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    CounterRng rng(p.seed, i);
    const vid_t user = static_cast<vid_t>(i / p.edges_per_user);
    // Inverse-CDF sample from an approximate power law over item ranks:
    // item = floor(num_items * u^exponent) concentrates mass on low ranks.
    const double u = rng.NextDouble();
    const vid_t item = static_cast<vid_t>(
        std::min<double>(p.num_items - 1,
                         std::pow(u, exponent) * p.num_items));
    coo.src[i] = user;
    coo.dst[i] = p.num_users + item;
  });
  return coo;
}

Coo GeneratePlantedPartition(const PlantedPartitionParams& p,
                             par::ThreadPool& pool) {
  GR_CHECK(p.num_clusters > 0 && p.cluster_size > 1, "bad cluster shape");
  Coo coo;
  const vid_t n = static_cast<vid_t>(p.num_clusters) * p.cluster_size;
  coo.num_vertices = n;
  const std::size_t intra =
      static_cast<std::size_t>(n) *
      static_cast<std::size_t>(p.intra_edges_per_vertex);
  const std::size_t m = intra + static_cast<std::size_t>(p.inter_edges);
  coo.src.resize(m);
  coo.dst.resize(m);
  par::ParallelFor(pool, 0, m, [&](std::size_t i) {
    CounterRng rng(p.seed, i);
    if (i < intra) {
      const vid_t v = static_cast<vid_t>(i / p.intra_edges_per_vertex);
      const vid_t cluster = v / p.cluster_size;
      const vid_t base = cluster * p.cluster_size;
      vid_t other = base + static_cast<vid_t>(rng.NextBounded(
                               static_cast<std::uint64_t>(p.cluster_size)));
      if (other == v) other = base + (v - base + 1) % p.cluster_size;
      coo.src[i] = v;
      coo.dst[i] = other;
    } else {
      coo.src[i] = static_cast<vid_t>(
          rng.NextBounded(static_cast<std::uint64_t>(n)));
      coo.dst[i] = static_cast<vid_t>(
          rng.NextBounded(static_cast<std::uint64_t>(n)));
    }
  });
  return coo;
}

void AttachRandomWeights(Coo& coo, weight_t lo, weight_t hi,
                         std::uint64_t seed) {
  coo.weight.resize(coo.src.size());
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  for (std::size_t i = 0; i < coo.weight.size(); ++i) {
    // Weight depends on the undirected endpoint pair, so that (u,v) and
    // (v,u) carry the same weight and symmetrized graphs stay consistent.
    const std::uint64_t a = static_cast<std::uint64_t>(
        std::min(coo.src[i], coo.dst[i]));
    const std::uint64_t b = static_cast<std::uint64_t>(
        std::max(coo.src[i], coo.dst[i]));
    const std::uint64_t h = SplitMix64(seed ^ (a * 0x100000001b3ULL + b));
    coo.weight[i] = lo + static_cast<weight_t>(h % range);
  }
}

}  // namespace gunrock::graph
