// Topology statistics used by Table 1 and by the Auto load-balance policy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"

namespace gunrock::graph {

struct DegreeStats {
  eid_t max_degree = 0;
  eid_t min_degree = 0;
  double mean_degree = 0.0;
  /// Fraction of vertices with degree < 64 — the paper characterizes its
  /// scale-free datasets by "80% of nodes have degree less than 64".
  double frac_degree_below_64 = 0.0;
  /// Gini coefficient of the degree distribution in [0, 1); higher means
  /// more skew. Scale-free graphs land well above mesh-like graphs.
  double gini = 0.0;
};

DegreeStats ComputeDegreeStats(const Csr& g, par::ThreadPool& pool);

/// Lower bound on the diameter via the classic double-sweep heuristic:
/// BFS from `seed_vertex`, then BFS again from the farthest vertex found.
/// Matches how Table 1's "Diameter" column is normally estimated.
std::int32_t PseudoDiameter(const Csr& g, vid_t seed_vertex = 0);

/// Degree histogram with power-of-two buckets: bucket k counts vertices
/// with degree in [2^k, 2^(k+1)).
std::vector<std::int64_t> DegreeHistogram(const Csr& g,
                                          par::ThreadPool& pool);

/// The Auto load-balance policy classifies topology by skew: scale-free
/// graphs (high skew) prefer equal-work partitioning, mesh-like graphs
/// prefer fine-grained per-item mapping (paper Section 4.4: "our
/// coarse-grained (load-balancing) traversal method performs better on
/// social graphs with irregular distributed degrees, while the fine-grained
/// method is superior on graphs where most nodes have small degrees").
bool IsScaleFreeLike(const DegreeStats& stats);

/// Cheap per-run version of the scale-free test (max/mean degree only, no
/// sorting) — what primitives consult on every invocation.
bool ComputeScaleFreeHint(const Csr& g, par::ThreadPool& pool);

}  // namespace gunrock::graph
