// Compressed sparse row graph storage (paper Section 3).
//
// "In Gunrock, we use a compressed sparse row (CSR) sparse matrix for
// vertex-centric operations by default and allow users to choose an
// edge-list-only representation for edge-centric operations." Both live
// here: the CSR arrays plus an optional materialized edge list (src per
// edge) for edge-frontier primitives such as connected components.
#pragma once

#include <span>
#include <vector>

#include "graph/coo.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace gunrock::graph {

class Csr {
 public:
  vid_t num_vertices() const noexcept { return num_vertices_; }
  eid_t num_edges() const noexcept {
    return static_cast<eid_t>(col_indices_.size());
  }
  bool has_weights() const noexcept { return !weights_.empty(); }

  eid_t row_begin(vid_t v) const { return row_offsets_[v]; }
  eid_t row_end(vid_t v) const { return row_offsets_[v + 1]; }
  eid_t degree(vid_t v) const { return row_end(v) - row_begin(v); }
  vid_t edge_dest(eid_t e) const { return col_indices_[e]; }
  weight_t edge_weight(eid_t e) const { return weights_[e]; }

  std::span<const eid_t> row_offsets() const { return row_offsets_; }
  std::span<const vid_t> col_indices() const { return col_indices_; }
  std::span<const weight_t> weights() const { return weights_; }

  std::span<const vid_t> neighbors(vid_t v) const {
    return {col_indices_.data() + row_begin(v),
            static_cast<std::size_t>(degree(v))};
  }
  std::span<const weight_t> neighbor_weights(vid_t v) const {
    return {weights_.data() + row_begin(v),
            static_cast<std::size_t>(degree(v))};
  }

  /// Source vertex of every edge slot, materialized on demand (the
  /// "edge-list-only representation for edge-centric operations").
  /// Thread-compatible: call once before sharing the graph across threads.
  std::span<const vid_t> edge_sources(par::ThreadPool& pool) const;

  /// True when every (u,v) has a matching (v,u) with equal weight slot
  /// count (the datasets in the paper are all converted to undirected).
  bool IsSymmetric(par::ThreadPool& pool) const;

  /// Throws gunrock::Error if structural invariants are violated
  /// (monotone offsets, column indices in range, weight array size).
  void Validate() const;

  /// Average out-degree.
  double average_degree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices_;
  }

 private:
  friend struct CsrBuilderAccess;
  vid_t num_vertices_ = 0;
  std::vector<eid_t> row_offsets_;
  std::vector<vid_t> col_indices_;
  std::vector<weight_t> weights_;
  mutable std::vector<vid_t> edge_src_;  // lazily materialized
};

struct BuildOptions {
  /// Add the reverse of every edge (paper: "We converted all datasets to
  /// undirected graphs").
  bool symmetrize = false;
  bool remove_self_loops = true;
  /// Collapse parallel edges, keeping the first weight in sort order.
  bool remove_duplicates = true;
};

/// Builds a CSR from a COO edge list: sort by (src, dst) with a parallel
/// radix sort on packed 64-bit keys, optional symmetrization/cleanup, then
/// offset construction.
Csr BuildCsr(const Coo& coo, const BuildOptions& opts,
             par::ThreadPool& pool);

inline Csr BuildCsr(const Coo& coo, const BuildOptions& opts = {}) {
  return BuildCsr(coo, opts, par::ThreadPool::Global());
}

/// Transposed graph (CSC of the original). For symmetric graphs this equals
/// the input; primitives on directed graphs (pull traversal, HITS, SALSA)
/// need it explicitly.
Csr ReverseCsr(const Csr& g, par::ThreadPool& pool);

/// Converts back to COO (used by tests and by Matrix Market output).
Coo CsrToCoo(const Csr& g, par::ThreadPool& pool);

}  // namespace gunrock::graph
