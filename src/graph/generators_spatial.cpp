// Spatial generators: random geometric graph and road-style mesh.
#include <cmath>
#include <vector>

#include "graph/generators.hpp"
#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gunrock::graph {

Coo GenerateRgg(const RggParams& p, par::ThreadPool& pool) {
  GR_CHECK(p.scale >= 4 && p.scale <= 26, "rgg scale out of range");
  const std::size_t n = std::size_t{1} << p.scale;
  // Target ~15 mean degree (rgg_n_2_24 has |E|/|V| ≈ 15.8): expected
  // degree of an RGG is pi * r^2 * n.
  const double radius =
      p.radius > 0 ? p.radius
                   : std::sqrt(15.0 / (3.14159265358979 *
                                       static_cast<double>(n)));

  std::vector<float> x(n), y(n);
  par::ParallelFor(pool, 0, n, [&](std::size_t i) {
    CounterRng rng(p.seed, i);
    x[i] = static_cast<float>(rng.NextDouble());
    y[i] = static_cast<float>(rng.NextDouble());
  });

  // Cell list: grid of side `cells` with cell width >= radius, so all
  // neighbors of a point lie in its 3x3 cell neighborhood.
  const std::size_t cells = std::max<std::size_t>(
      1, static_cast<std::size_t>(1.0 / radius));
  const auto cell_of = [&](std::size_t i) {
    auto cx = std::min<std::size_t>(
        cells - 1, static_cast<std::size_t>(x[i] * cells));
    auto cy = std::min<std::size_t>(
        cells - 1, static_cast<std::size_t>(y[i] * cells));
    return cy * cells + cx;
  };
  // Counting sort points into cells.
  const std::size_t num_cells = cells * cells;
  std::vector<eid_t> cell_count(num_cells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++cell_count[cell_of(i)];
  std::vector<eid_t> cell_start(num_cells + 1);
  par::ExclusiveScan<eid_t>(pool, cell_count, cell_start);
  cell_start[num_cells] = static_cast<eid_t>(n);
  std::vector<vid_t> order(n);
  {
    std::vector<eid_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      order[static_cast<std::size_t>(cursor[cell_of(i)]++)] =
          static_cast<vid_t>(i);
    }
  }

  // Emit each undirected edge once (i < j); the CSR builder symmetrizes.
  const double r2 = radius * radius;
  const std::size_t nblocks =
      par::DefaultBlockCount(n, pool.num_threads());
  std::vector<std::vector<vid_t>> bsrc(nblocks), bdst(nblocks);
  par::FixedBlocks(pool, n, nblocks, [&](std::size_t blk, std::size_t lo,
                                         std::size_t hi) {
    auto& es = bsrc[blk];
    auto& ed = bdst[blk];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t c = cell_of(i);
      const std::size_t cx = c % cells, cy = c / cells;
      for (std::size_t dy = cy == 0 ? 0 : cy - 1;
           dy <= std::min(cells - 1, cy + 1); ++dy) {
        for (std::size_t dx = cx == 0 ? 0 : cx - 1;
             dx <= std::min(cells - 1, cx + 1); ++dx) {
          const std::size_t cc = dy * cells + dx;
          for (eid_t k = cell_start[cc]; k < cell_start[cc + 1]; ++k) {
            const std::size_t j =
                static_cast<std::size_t>(order[static_cast<std::size_t>(k)]);
            if (j <= i) continue;
            const double ddx = x[i] - x[j], ddy = y[i] - y[j];
            if (ddx * ddx + ddy * ddy <= r2) {
              es.push_back(static_cast<vid_t>(i));
              ed.push_back(static_cast<vid_t>(j));
            }
          }
        }
      }
    }
  });

  Coo coo;
  coo.num_vertices = static_cast<vid_t>(n);
  std::size_t total = 0;
  for (const auto& b : bsrc) total += b.size();
  coo.src.reserve(total);
  coo.dst.reserve(total);
  for (std::size_t b = 0; b < nblocks; ++b) {
    coo.src.insert(coo.src.end(), bsrc[b].begin(), bsrc[b].end());
    coo.dst.insert(coo.dst.end(), bdst[b].begin(), bdst[b].end());
  }
  return coo;
}

Coo GenerateRoad(const RoadParams& p, par::ThreadPool& pool) {
  (void)pool;
  GR_CHECK(p.width >= 2 && p.height >= 2, "road grid too small");
  const vid_t w = p.width, h = p.height;
  Coo coo;
  coo.num_vertices = w * h;
  const auto id = [&](vid_t cx, vid_t cy) { return cy * w + cx; };
  coo.Reserve(static_cast<std::size_t>(w) * h * 2);
  // Serial emission keeps the generator trivially deterministic; road
  // grids are small relative to the scale-free datasets.
  for (vid_t cy = 0; cy < h; ++cy) {
    for (vid_t cx = 0; cx < w; ++cx) {
      const vid_t v = id(cx, cy);
      CounterRng rng(p.seed, static_cast<std::uint64_t>(v));
      if (cx + 1 < w && rng.NextDouble() >= p.drop_prob) {
        coo.PushEdge(v, id(cx + 1, cy),
                     1.0f + rng.NextFloat(0.0f, 0.5f));
      }
      if (cy + 1 < h && rng.NextDouble() >= p.drop_prob) {
        coo.PushEdge(v, id(cx, cy + 1),
                     1.0f + rng.NextFloat(0.0f, 0.5f));
      }
      if (cx + 1 < w && cy + 1 < h && rng.NextDouble() < p.diag_prob) {
        coo.PushEdge(v, id(cx + 1, cy + 1),
                     1.4f + rng.NextFloat(0.0f, 0.5f));
      }
    }
  }
  return coo;
}

}  // namespace gunrock::graph
