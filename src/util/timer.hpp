// Wall-clock timer used by enactors, benches and examples.
#pragma once

#include <chrono>

namespace gunrock {

/// Monotonic wall-clock stopwatch with millisecond readout.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gunrock
