// Fundamental scalar types and sentinels used across the library.
//
// Gunrock (the paper) uses 32-bit vertex ids and 32/64-bit edge ids on the
// GPU; we keep the same convention. Edge ids are 64-bit so that CSR offsets
// never overflow even for dense generated graphs.
#pragma once

#include <cstdint>
#include <limits>

namespace gunrock {

/// Vertex identifier. Signed so that -1 can flag "no predecessor".
using vid_t = std::int32_t;

/// Edge identifier / CSR offset.
using eid_t = std::int64_t;

/// Edge weight type (paper: random integer weights in [1, 64] stored as
/// float so atomic-min CAS loops and Bellman-Ford relaxation share code).
using weight_t = float;

/// Sentinel meaning "invalid / not present" in frontiers and predecessor
/// arrays. Filter passes compact these away.
inline constexpr vid_t kInvalidVid = -1;
inline constexpr eid_t kInvalidEid = -1;

/// Infinite distance for SSSP-style labels.
inline constexpr weight_t kInfinity = std::numeric_limits<weight_t>::infinity();

/// Width of a virtual SIMT warp used by the lane-efficiency model and by
/// the TWC (thread/warp/CTA) load-balancing thresholds. Matches NVIDIA's
/// warp width so the paper's thresholds (32 / 256) carry over unchanged.
inline constexpr int kWarpWidth = 32;

/// TWC thresholds from the paper (Section 4.4, Figure 4): neighbor lists
/// larger than a CTA (256) are "large", larger than a warp (32) "medium".
inline constexpr int kTwcWarpThreshold = 32;
inline constexpr int kTwcCtaThreshold = 256;

/// Frontier-size threshold (paper Section 4.4): below it, equal-work load
/// balancing partitions per *vertex*; above it, per *edge*. The paper found
/// 4096 to be robust across primitives.
inline constexpr std::int64_t kLbFrontierThreshold = 4096;

}  // namespace gunrock
