// Deterministic, splittable random number generation.
//
// Graph generators must produce identical output regardless of thread count,
// so all randomness is counter-based: every edge/point derives its own
// stream from (seed, index) via SplitMix64, which is statistically solid for
// this purpose and avoids any shared generator state.
#pragma once

#include <cstdint>

namespace gunrock {

/// One round of SplitMix64: maps a 64-bit counter to a well-mixed value.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Small counter-based RNG: deterministic stream per (seed, stream id).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed, std::uint64_t stream = 0)
      : state_(SplitMix64(seed ^ (stream * 0x9e3779b97f4a7c15ULL))) {}

  std::uint64_t NextU64() {
    state_ = SplitMix64(state_);
    return state_;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the graph-generation bounds used here (< 2^32).
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gunrock
