// Checked numeric parsing for every user-facing input path (CLI flags,
// daemon config files, wire-protocol fields, stdin serve commands).
//
// std::atoi / std::atof silently turn "banana" into 0 and "4x" into 4 —
// exactly the failure mode a serving front-end cannot afford. These
// helpers accept a token only when the *entire* token is a number in
// range, and report what was wrong otherwise.
#pragma once

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace gunrock::util {

/// Parses `text` as a base-10 integer. The whole token must be consumed
/// (no trailing garbage, no leading junk beyond an optional sign) and the
/// value must fit [min, max]; anything else yields std::nullopt.
inline std::optional<long long> ParseInt(
    std::string_view text,
    long long min = std::numeric_limits<long long>::min(),
    long long max = std::numeric_limits<long long>::max()) {
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (value < min || value > max) return std::nullopt;
  return value;
}

/// Parses `text` as a finite double. Whole-token consumption required;
/// "1e3" is fine, "1e" and "nan" are not. (Implemented over strtod
/// because libstdc++'s from_chars<double> landed late; the empty-token
/// and trailing-garbage checks make it equally strict.)
inline std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
    return std::nullopt;
  }
  const std::string owned(text);  // strtod needs a terminator
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || errno == ERANGE) {
    return std::nullopt;
  }
  if (!(value == value) || value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace gunrock::util
