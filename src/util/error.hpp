// Error handling helpers: a library-wide exception type and check macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gunrock {

/// Exception thrown on precondition violations and I/O failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowError(const char* cond, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gunrock

/// Precondition check that survives NDEBUG (used at API boundaries).
#define GR_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gunrock::detail::ThrowError(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (0)
