// Micro-benchmarks (google-benchmark) for the substrate and the advance
// strategies — the ablation data behind DESIGN.md's design choices, not a
// paper table. Kept quick: small fixed inputs, real-time reporting.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gunrock.hpp"
#include "parallel/sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace gunrock;

par::ThreadPool& Pool() { return par::ThreadPool::Global(); }

// Set from --quick in main() before any benchmark (and thus any lazy
// graph construction) runs.
bool g_quick = false;

const graph::Csr& ScaleFreeGraph() {
  static const graph::Csr g = [] {
    graph::RmatParams p;
    p.scale = g_quick ? 11 : 15;
    p.edge_factor = 16;
    graph::BuildOptions opts;
    opts.symmetrize = true;
    return graph::BuildCsr(GenerateRmat(p, Pool()), opts);
  }();
  return g;
}

const graph::Csr& MeshGraph() {
  static const graph::Csr g = [] {
    graph::RggParams p;
    p.scale = g_quick ? 11 : 15;
    graph::BuildOptions opts;
    opts.symmetrize = true;
    return graph::BuildCsr(GenerateRgg(p, Pool()), opts);
  }();
  return g;
}

void BM_Scan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> data(n, 3), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::ExclusiveScan<std::int64_t>(
        Pool(), data, out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_RadixSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = SplitMix64(i);
  std::vector<std::uint64_t> work(n);
  for (auto _ : state) {
    work = keys;
    par::RadixSortKeys<std::uint64_t>(Pool(), work);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_Compact(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> data(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::int32_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::CopyIf<std::int32_t>(
        Pool(), data, out, [](std::int32_t v) { return v % 3 == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Compact)->Arg(1 << 20);

struct PassFunctor {
  struct P {};
  static bool CondEdge(vid_t, vid_t, eid_t, P&) { return true; }
  static void ApplyEdge(vid_t, vid_t, eid_t, P&) {}
};

template <core::LoadBalance kLb, bool kScaleFree>
void BM_AdvanceStrategy(benchmark::State& state) {
  const auto& g = kScaleFree ? ScaleFreeGraph() : MeshGraph();
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < g.num_vertices(); v += 4) frontier.push_back(v);
  core::AdvanceConfig cfg;
  cfg.lb = kLb;
  cfg.model_efficiency = false;
  PassFunctor::P prob;
  eid_t edges = 0;
  for (auto _ : state) {
    std::vector<vid_t> out;
    const auto r = core::AdvancePush<PassFunctor>(Pool(), g, frontier,
                                                  &out, prob, cfg);
    edges = r.edges_visited;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kThreadMapped, true>)
    ->Name("BM_Advance/thread_mapped/scale_free");
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kTwc, true>)
    ->Name("BM_Advance/twc/scale_free");
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kEqualWork, true>)
    ->Name("BM_Advance/equal_work/scale_free");
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kThreadMapped, false>)
    ->Name("BM_Advance/thread_mapped/mesh");
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kTwc, false>)
    ->Name("BM_Advance/twc/mesh");
BENCHMARK(BM_AdvanceStrategy<core::LoadBalance::kEqualWork, false>)
    ->Name("BM_Advance/equal_work/mesh");

// Steady-state operator iterations: model one enactor iteration on a
// small frontier, where per-launch overhead (scratch-buffer allocation,
// binning passes, barrier round-trips) dominates edge work. The output
// buffer persists across iterations like a ping-pong frontier, so after
// warm-up the loop should be allocation-free.
template <core::LoadBalance kLb>
void BM_AdvanceIterSmall(benchmark::State& state) {
  const auto& g = ScaleFreeGraph();
  const std::size_t n_f = static_cast<std::size_t>(state.range(0));
  const vid_t stride = std::max<vid_t>(
      1, g.num_vertices() / static_cast<vid_t>(n_f));
  std::vector<vid_t> frontier(n_f);
  for (std::size_t i = 0; i < n_f; ++i) {
    frontier[i] = (static_cast<vid_t>(i) * stride) % g.num_vertices();
  }
  core::Workspace ws;  // enactor-owned arena: steady state allocates nothing
  core::AdvanceConfig cfg;
  cfg.lb = kLb;
  cfg.model_efficiency = false;
  cfg.workspace = &ws;
  PassFunctor::P prob;
  std::vector<vid_t> out;
  eid_t edges = 0;
  for (auto _ : state) {
    out.clear();
    const auto r = core::AdvancePush<PassFunctor>(Pool(), g, frontier,
                                                  &out, prob, cfg);
    edges = r.edges_visited;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_AdvanceIterSmall<core::LoadBalance::kThreadMapped>)
    ->Name("BM_AdvanceIter/thread_mapped")
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096);
BENCHMARK(BM_AdvanceIterSmall<core::LoadBalance::kTwc>)
    ->Name("BM_AdvanceIter/twc")
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096);
BENCHMARK(BM_AdvanceIterSmall<core::LoadBalance::kEqualWork>)
    ->Name("BM_AdvanceIter/equal_work")
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096);

/// One filter iteration on a small frontier with the history-hash dedup
/// heuristic enabled (the allocation-heavy configuration: per-chunk
/// history tables plus per-chunk output buffers).
void BM_FilterIterSmall(benchmark::State& state) {
  struct Pass {
    struct P {};
    static bool CondVertex(vid_t, P&) { return true; }
    static void ApplyVertex(vid_t, P&) {}
  };
  const std::size_t n_f = static_cast<std::size_t>(state.range(0));
  std::vector<vid_t> input(n_f);
  for (std::size_t i = 0; i < n_f; ++i) {
    input[i] = static_cast<vid_t>(SplitMix64(i) % (2 * n_f));
  }
  core::Workspace ws;
  core::FilterConfig cfg;
  cfg.history_hash = true;
  cfg.workspace = &ws;
  Pass::P prob;
  std::vector<vid_t> out;
  for (auto _ : state) {
    out.clear();
    core::FilterVertex<Pass>(Pool(), input, &out, prob, cfg);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n_f);
}
BENCHMARK(BM_FilterIterSmall)
    ->Name("BM_FilterIter")
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096);

/// Raw fork-join launch cost: the per-pass price every operator pays.
void BM_PoolBarrier(benchmark::State& state) {
  par::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    pool.Parallel([](unsigned) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolBarrier)->Arg(1)->Arg(2)->Arg(4);

void BM_FilterClaim(benchmark::State& state) {
  struct Claim {
    struct P {
      par::Bitmap* seen;
    };
    static bool CondVertex(vid_t v, P& p) {
      return p.seen->TestAndSet(static_cast<std::size_t>(v));
    }
    static void ApplyVertex(vid_t, P&) {}
  };
  const std::size_t n = 1 << 20;
  std::vector<vid_t> input(n);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = static_cast<vid_t>(SplitMix64(i) % (n / 2));
  }
  for (auto _ : state) {
    par::Bitmap seen(n);
    Claim::P prob{&seen};
    std::vector<vid_t> out;
    core::FilterVertex<Claim>(Pool(), input, &out, prob);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterClaim);

/// Serial normalization anchor: a fixed single-threaded ALU workload
/// (SplitMix64 chain, no memory traffic, no pool) measuring nothing but
/// this machine's scalar speed. compare_bench.py's google-benchmark
/// `--normalize-by BM_SerialAnchor` divides every gated row by this row
/// from the same file, so the committed small-frontier baseline compares
/// machine-speed-invariantly (1.2x threshold) instead of absolutely
/// (1.5x to absorb the machine-class gap).
void BM_SerialAnchor(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < 1 << 16; ++i) x = SplitMix64(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
// Explicit MinTime overrides --quick's benchmark_min_time: the anchor's
// noise multiplies every normalized row, so it gets a longer, steadier
// measurement than the gated micro rows.
BENCHMARK(BM_SerialAnchor)->MinTime(0.2);

void BM_BfsEndToEnd(benchmark::State& state) {
  const auto& g = ScaleFreeGraph();
  BfsOptions opts;
  opts.direction = core::Direction::kOptimizing;
  opts.compute_preds = false;
  eid_t edges = 0;
  for (auto _ : state) {
    const auto r = Bfs(g, 0, opts);
    edges = r.stats.edges_visited;
    benchmark::DoNotOptimize(r.depth.data());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_BfsEndToEnd);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): translates the repo-wide
// bench CLI (--quick, --json PATH) into google-benchmark flags so the
// ctest smoke run can exercise this binary like the table benches.
int main(int argc, char** argv) {
  std::vector<std::string> flags = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      g_quick = true;
      flags.push_back("--benchmark_min_time=0.01");
    } else if (a == "--json" && i + 1 < argc) {
      flags.push_back(std::string("--benchmark_out=") + argv[++i]);
      flags.push_back("--benchmark_out_format=json");
    } else {
      flags.push_back(a);  // pass through native benchmark flags
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(flags.size());
  for (auto& f : flags) cargs.push_back(f.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
