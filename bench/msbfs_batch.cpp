// Batched multi-source traversal vs N sequential single-source runs —
// the amortization the MS-BFS subsystem exists for, measured end to end.
//
// Rows (envelope JSON, schema_version 1):
//   primitive "msbfs"       64-source BfsBatch vs 64 sequential Bfs runs
//                           on the scale-free serving shapes (gated rows:
//                           wavefronts synchronize at small diameter, so
//                           lane amortization is structural)
//   primitive "msbfs_mesh"  the same contrast on a long-diameter mesh —
//                           informational: scattered mesh wavefronts
//                           desynchronize and the mask win shrinks
//   primitive "msppr"       64-seed PprBatch vs 64 sequential PPR runs
//                           (column-block amortization is unconditional)
//
// Every measurement is min-of-N (GUNROCK_BENCH_REPS, default 3): the
// contrast is algorithmic, so the best-observed time of each side is the
// honest comparison. Sequential rows reuse one warm workspace across
// runs, so the batch side never wins on allocation effects.
//
//   --quick / --json PATH   as every bench binary (see bench/common.hpp)
//   --min-speedup X         exit 1 unless geomean(sequential/batched)
//                           over the gated msbfs rows is >= X — the CI
//                           acceptance check for the batched win
//   GUNROCK_BENCH_SCALE / GUNROCK_BENCH_REPS  as usual
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace bench;

double g_min_speedup = 0.0;

/// Times fn() `reps` times and keeps the minimum — the repo's TimeMs
/// averages, but an algorithmic-contrast bench wants each side's best.
template <typename F>
double TimeMinMs(F&& fn, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double ms = t.ElapsedMs();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

struct Contrast {
  double batched_ms = 0.0;
  double sequential_ms = 0.0;
  double speedup() const {
    return batched_ms > 0 ? sequential_ms / batched_ms : 0.0;
  }
};

Contrast MeasureBfs(const Dataset& d, std::span<const vid_t> sources,
                    int reps) {
  BfsBatchOptions bopts;
  bopts.direction = core::Direction::kOptimizing;
  BfsOptions sopts;
  sopts.direction = core::Direction::kOptimizing;
  sopts.compute_preds = false;

  core::Workspace batch_ws, seq_ws;
  RunControl batch_ctl, seq_ctl;
  batch_ctl.workspace = &batch_ws;
  seq_ctl.workspace = &seq_ws;

  // Untimed warm-up (grows both arenas) doubling as a correctness check:
  // a bench that silently measured wrong answers would be worse than no
  // bench.
  const auto warm = BfsBatch(d.graph, sources, bopts, batch_ctl);
  const auto ref = Bfs(d.graph, sources[0], sopts, seq_ctl);
  if (warm.depth[0] != ref.depth) {
    std::fprintf(stderr, "msbfs_batch: lane 0 diverged from scalar BFS\n");
    std::exit(1);
  }
  for (std::size_t i = 1; i < sources.size(); ++i) {
    Bfs(d.graph, sources[i], sopts, seq_ctl);
  }

  Contrast c;
  c.batched_ms = TimeMinMs(
      [&] { BfsBatch(d.graph, sources, bopts, batch_ctl); }, reps);
  c.sequential_ms = TimeMinMs(
      [&] {
        for (const vid_t s : sources) Bfs(d.graph, s, sopts, seq_ctl);
      },
      reps);
  return c;
}

Contrast MeasurePpr(const Dataset& d, std::span<const vid_t> seeds,
                    int reps) {
  PprBatchOptions bopts;
  bopts.max_iterations = 10;
  PprOptions sopts;
  sopts.max_iterations = 10;

  core::Workspace batch_ws, seq_ws;
  RunControl batch_ctl, seq_ctl;
  batch_ctl.workspace = &batch_ws;
  seq_ctl.workspace = &seq_ws;

  PprBatch(d.graph, seeds, bopts, batch_ctl);  // warm-up
  for (const vid_t s : seeds) {
    const vid_t seed[] = {s};
    PersonalizedPagerank(d.graph, seed, sopts, seq_ctl);
  }

  Contrast c;
  c.batched_ms =
      TimeMinMs([&] { PprBatch(d.graph, seeds, bopts, batch_ctl); }, reps);
  c.sequential_ms = TimeMinMs(
      [&] {
        for (const vid_t s : seeds) {
          const vid_t seed[] = {s};
          PersonalizedPagerank(d.graph, seed, sopts, seq_ctl);
        }
      },
      reps);
  return c;
}

void EmitRows(JsonWriter& writer, Table& table, const std::string& primitive,
              const Dataset& d, std::size_t lanes, const Contrast& c) {
  table.Cell(d.name);
  table.Cell(primitive);
  table.Cell(static_cast<double>(lanes), "%.0f");
  table.Cell(c.batched_ms);
  table.Cell(c.sequential_ms);
  table.Cell(c.speedup(), "%.2fx");
  table.EndRow();

  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "gunrock")
      .Field("dataset", d.name)
      .Field("lanes", lanes)
      .Field("ms", c.batched_ms)
      .Field("speedup", c.speedup());
  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "sequential")
      .Field("dataset", d.name)
      .Field("lanes", lanes)
      .Field("ms", c.sequential_ms);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --min-speedup before the shared parser (which rejects unknown
  // flags so typos can't silently run the full-size bench).
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup" && i + 1 < argc) {
      g_min_speedup = std::atof(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  ParseArgs(static_cast<int>(rest.size()), rest.data());

  const int d = EnvScaleDelta();
  // min-of-N needs real N: quick rows here are sub-ms, so a floor of 7
  // reps costs nothing and keeps the gated speedups out of min-of-1
  // noise.
  const int reps = std::max(Reps(), 7);
  auto& pool = par::ThreadPool::Global();

  std::vector<Dataset> social;
  {
    graph::RmatParams p;  // soc-orkut role
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.seed = 101;
    social.push_back(MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // kron-g500 role: Graph500 parameters
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.seed = 104;
    social.push_back(MakeDataset("kron-g500", "gs", GenerateRmat(p, pool)));
  }
  Dataset mesh;
  {
    graph::RoadParams p;  // long-diameter contrast case
    const int shift = d / 2;
    p.width = 256 >> (shift < 0 ? -shift : 0) << (shift > 0 ? shift : 0);
    p.height = p.width;
    p.seed = 106;
    mesh = MakeDataset("roadnet", "rm", GenerateRoad(p, pool));
  }

  JsonWriter writer("msbfs_batch");
  Table table({"dataset", "primitive", "lanes", "batched-ms",
               "sequential-ms", "speedup"});
  table.PrintHeader();

  std::vector<double> gated_speedups;
  for (const auto& ds : social) {
    const auto sources = PickSources(ds.graph, kMaxBatchLanes);
    const Contrast bfs = MeasureBfs(ds, sources, reps);
    EmitRows(writer, table, "msbfs", ds, sources.size(), bfs);
    gated_speedups.push_back(bfs.speedup());
  }
  {
    const auto sources = PickSources(mesh.graph, kMaxBatchLanes);
    const Contrast bfs = MeasureBfs(mesh, sources, reps);
    EmitRows(writer, table, "msbfs_mesh", mesh, sources.size(), bfs);
  }
  {
    const auto seeds = PickSources(social[0].graph, kMaxBatchLanes);
    const Contrast ppr = MeasurePpr(social[0], seeds, reps);
    EmitRows(writer, table, "msppr", social[0], seeds.size(), ppr);
  }
  {
    const auto seeds = PickSources(mesh.graph, kMaxBatchLanes);
    const Contrast ppr = MeasurePpr(mesh, seeds, reps);
    EmitRows(writer, table, "msppr", mesh, seeds.size(), ppr);
  }

  const double geomean = Geomean(gated_speedups);
  std::printf("\nmsbfs geomean speedup (batched vs %zu sequential, "
              "scale-free rows): %.2fx\n",
              static_cast<std::size_t>(kMaxBatchLanes), geomean);
  writer.BeginRecord()
      .Field("primitive", "msbfs_geomean")
      .Field("framework", "summary")
      .Field("dataset", "scale-free")
      .Field("speedup", geomean);
  writer.WriteIfRequested();

  if (g_min_speedup > 0 && geomean < g_min_speedup) {
    std::fprintf(stderr,
                 "msbfs_batch: geomean speedup %.2fx below the required "
                 "%.2fx\n",
                 geomean, g_min_speedup);
    return 1;
  }
  return 0;
}
