// Shared benchmark infrastructure: the six Table-1 dataset analogs, source
// selection, timing helpers and table formatting.
//
// Dataset sizes are CPU-bench-friendly by default and scalable through the
// environment:
//   GUNROCK_BENCH_SCALE  integer delta applied to every generator scale
//                        (e.g. -2 quarters the graphs, +2 quadruples)
//   GUNROCK_BENCH_REPS   repetitions per timed measurement (default 3)
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gunrock.hpp"

namespace bench {

using namespace gunrock;

inline int EnvScaleDelta() {
  const char* s = std::getenv("GUNROCK_BENCH_SCALE");
  return s ? std::atoi(s) : 0;
}

inline int Reps() {
  const char* s = std::getenv("GUNROCK_BENCH_REPS");
  const int r = s ? std::atoi(s) : 3;
  return r > 0 ? r : 1;
}

struct Dataset {
  std::string name;
  std::string type;  // Table 1 taxonomy: rs / gs / gm / rm
  graph::Csr graph;
  vid_t source = 0;  // max-degree vertex (a connected, busy start)
};

inline vid_t MaxDegreeVertex(const graph::Csr& g) {
  vid_t best = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

inline Dataset MakeDataset(std::string name, std::string type,
                           graph::Coo coo) {
  graph::AttachRandomWeights(coo, 1, 64);  // paper: weights in [1, 64]
  graph::BuildOptions opts;
  opts.symmetrize = true;  // paper: "We converted all datasets to undirected"
  Dataset d;
  d.name = std::move(name);
  d.type = std::move(type);
  d.graph = graph::BuildCsr(coo, opts);
  d.source = MaxDegreeVertex(d.graph);
  return d;
}

/// The six datasets of Table 1, reproduced as topology classes:
/// four scale-free (two social R-MATs, one web-crawl R-MAT, one Graph500
/// Kronecker) and two small-degree large-diameter meshes (RGG, road).
inline std::vector<Dataset> LoadDatasets() {
  const int d = EnvScaleDelta();
  auto& pool = par::ThreadPool::Global();
  std::vector<Dataset> sets;

  {
    graph::RmatParams p;  // soc-orkut role: social, moderately skewed
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.a = 0.50;
    p.b = 0.23;
    p.c = 0.23;
    p.seed = 101;
    sets.push_back(MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // hollywood-09 role: denser collaboration net
    p.scale = 15 + d;
    p.edge_factor = 32;
    p.a = 0.45;
    p.b = 0.25;
    p.c = 0.25;
    p.seed = 102;
    sets.push_back(MakeDataset("hollywood-rmat", "rs",
                               GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // indochina-04 role: web crawl, extreme skew
    p.scale = 16 + d;
    p.edge_factor = 20;
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    p.seed = 103;
    sets.push_back(MakeDataset("indochina-rmat", "rs",
                               GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // kron_g500-logn21 role: Graph500 parameters
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.seed = 104;
    sets.push_back(MakeDataset("kron-g500", "gs", GenerateRmat(p, pool)));
  }
  {
    graph::RggParams p;  // rgg_n_2_24 role
    p.scale = 17 + d;
    p.seed = 105;
    sets.push_back(MakeDataset("rgg", "gm", GenerateRgg(p, pool)));
  }
  {
    graph::RoadParams p;  // roadnet_CA role
    const int shift = d / 2;  // area scales quadratically
    p.width = 512 >> (shift < 0 ? -shift : 0) << (shift > 0 ? shift : 0);
    p.height = p.width;
    p.seed = 106;
    sets.push_back(MakeDataset("roadnet", "rm", GenerateRoad(p, pool)));
  }
  return sets;
}

/// Times fn() `reps` times, returns the average milliseconds.
template <typename F>
double TimeMs(F&& fn, int reps) {
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    total += t.ElapsedMs();
  }
  return total / reps;
}

inline double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (const double x : xs) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(xs.size()));
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const auto& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int c = 0; c < width_ - 1; ++c) std::printf("-");
      std::printf(" ");
    }
    std::printf("\n");
  }

  void Cell(const std::string& s) const {
    std::printf("%-*s", width_, s.c_str());
  }
  void Cell(double v, const char* fmt = "%.2f") const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    std::printf("%-*s", width_, buf);
  }
  void EndRow() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string Fmt(double v, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace bench
