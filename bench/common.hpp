// Shared benchmark infrastructure: the six Table-1 dataset analogs, source
// selection, timing helpers, table formatting, CLI parsing and JSON
// result emission.
//
// Every bench binary accepts:
//   --quick        smoke mode: tiny graphs, one rep per measurement —
//                  used by the `ctest -L bench` smoke runs
//   --json PATH    write the measurements as a JSON document (schema:
//                  {"bench", "quick", "schema_version", "results": [...]})
//                  for BENCH_*.json trajectory tracking. Exception:
//                  micro_operators emits google-benchmark's native JSON
//                  ({"context", "benchmarks"}) instead of this envelope.
//
// Dataset sizes are CPU-bench-friendly by default and scalable through the
// environment:
//   GUNROCK_BENCH_SCALE  integer delta applied to every generator scale
//                        (e.g. -2 quarters the graphs, +2 quadruples)
//   GUNROCK_BENCH_REPS   repetitions per timed measurement (default 3)
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gunrock.hpp"

namespace bench {

using namespace gunrock;

struct BenchArgs {
  bool quick = false;
  std::string json_path;  // empty: no JSON output
};

inline BenchArgs& Args() {
  static BenchArgs args;
  return args;
}

/// Parses --quick / --json PATH. Exits with a usage message on anything
/// unrecognized so a typo can't silently run the full-size benchmark.
inline void ParseArgs(int argc, char** argv) {
  auto& args = Args();
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      args.quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
}

/// Quick mode shrinks every generator scale so a full bench run finishes
/// in seconds; -7 turns the default 2^15..2^17-vertex graphs into
/// 2^8..2^10.
inline constexpr int kQuickScaleDelta = -7;

inline int EnvScaleDelta() {
  const char* s = std::getenv("GUNROCK_BENCH_SCALE");
  const int d = s ? std::atoi(s) : 0;
  return Args().quick ? d + kQuickScaleDelta : d;
}

inline int Reps() {
  if (Args().quick) return 1;
  const char* s = std::getenv("GUNROCK_BENCH_REPS");
  const int r = s ? std::atoi(s) : 3;
  return r > 0 ? r : 1;
}

/// Flat JSON result accumulator. Records are key→value maps; values are
/// strings, doubles or integers. Output shape:
///   {"bench": "<name>", "quick": <bool>, "schema_version": 1,
///    "results": [{...}, ...]}
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonWriter& BeginRecord() {
    records_.emplace_back();
    return *this;
  }

  JsonWriter& Field(const std::string& key, const std::string& value) {
    records_.back().emplace_back(key, Quote(value));
    return *this;
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const std::string& key, double value) {
    // JSON has no inf/nan literals; degrade to null.
    records_.back().emplace_back(
        key, std::isfinite(value) ? Fmt(value, "%.17g") : "null");
    return *this;
  }
  template <typename T>
    requires std::is_integral_v<T>
  JsonWriter& Field(const std::string& key, T value) {
    records_.back().emplace_back(key, std::to_string(value));
    return *this;
  }

  /// Writes the document to Args().json_path when --json was given.
  void WriteIfRequested() const {
    const auto& path = Args().json_path;
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\"bench\": %s, \"quick\": %s, "
                    "\"schema_version\": 1, \"results\": [",
                 Quote(bench_name_).c_str(),
                 Args().quick ? "true" : "false");
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "%s{", r == 0 ? "" : ", ");
      for (std::size_t i = 0; i < records_[r].size(); ++i) {
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     Quote(records_[r][i].first).c_str(),
                     records_[r][i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(c));
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string Fmt(double v, const char* fmt) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
  }

  std::string bench_name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

struct Dataset {
  std::string name;
  std::string type;  // Table 1 taxonomy: rs / gs / gm / rm
  graph::Csr graph;
  vid_t source = 0;  // max-degree vertex (a connected, busy start)
};

/// `count` deterministic, well-spread vertices ((i*997 + 1) mod |V|) —
/// the shared source sampling of the serving-shaped benches
/// (engine_throughput, msbfs_batch), kept in one place so they measure
/// comparable source sets.
inline std::vector<vid_t> PickSources(const graph::Csr& g,
                                      std::size_t count) {
  std::vector<vid_t> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vid_t>(
        (static_cast<std::int64_t>(i) * 997 + 1) % g.num_vertices()));
  }
  return sources;
}

inline vid_t MaxDegreeVertex(const graph::Csr& g) {
  vid_t best = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

inline Dataset MakeDataset(std::string name, std::string type,
                           graph::Coo coo) {
  graph::AttachRandomWeights(coo, 1, 64);  // paper: weights in [1, 64]
  graph::BuildOptions opts;
  opts.symmetrize = true;  // paper: "We converted all datasets to undirected"
  Dataset d;
  d.name = std::move(name);
  d.type = std::move(type);
  d.graph = graph::BuildCsr(coo, opts);
  d.source = MaxDegreeVertex(d.graph);
  return d;
}

/// The six datasets of Table 1, reproduced as topology classes:
/// four scale-free (two social R-MATs, one web-crawl R-MAT, one Graph500
/// Kronecker) and two small-degree large-diameter meshes (RGG, road).
inline std::vector<Dataset> LoadDatasets() {
  const int d = EnvScaleDelta();
  auto& pool = par::ThreadPool::Global();
  std::vector<Dataset> sets;

  {
    graph::RmatParams p;  // soc-orkut role: social, moderately skewed
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.a = 0.50;
    p.b = 0.23;
    p.c = 0.23;
    p.seed = 101;
    sets.push_back(MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // hollywood-09 role: denser collaboration net
    p.scale = 15 + d;
    p.edge_factor = 32;
    p.a = 0.45;
    p.b = 0.25;
    p.c = 0.25;
    p.seed = 102;
    sets.push_back(MakeDataset("hollywood-rmat", "rs",
                               GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // indochina-04 role: web crawl, extreme skew
    p.scale = 16 + d;
    p.edge_factor = 20;
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    p.seed = 103;
    sets.push_back(MakeDataset("indochina-rmat", "rs",
                               GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // kron_g500-logn21 role: Graph500 parameters
    p.scale = 16 + d;
    p.edge_factor = 16;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.seed = 104;
    sets.push_back(MakeDataset("kron-g500", "gs", GenerateRmat(p, pool)));
  }
  {
    graph::RggParams p;  // rgg_n_2_24 role
    p.scale = 17 + d;
    p.seed = 105;
    sets.push_back(MakeDataset("rgg", "gm", GenerateRgg(p, pool)));
  }
  {
    graph::RoadParams p;  // roadnet_CA role
    const int shift = d / 2;  // area scales quadratically
    p.width = 512 >> (shift < 0 ? -shift : 0) << (shift > 0 ? shift : 0);
    p.height = p.width;
    p.seed = 106;
    sets.push_back(MakeDataset("roadnet", "rm", GenerateRoad(p, pool)));
  }
  return sets;
}

/// Times fn() `reps` times, returns the average milliseconds.
template <typename F>
double TimeMs(F&& fn, int reps) {
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    total += t.ElapsedMs();
  }
  return total / reps;
}

inline double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (const double x : xs) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(xs.size()));
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const auto& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int c = 0; c < width_ - 1; ++c) std::printf("-");
      std::printf(" ");
    }
    std::printf("\n");
  }

  void Cell(const std::string& s) const {
    std::printf("%-*s", width_, s.c_str());
  }
  void Cell(double v, const char* fmt = "%.2f") const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    std::printf("%-*s", width_, buf);
  }
  void EndRow() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string Fmt(double v, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace bench
