// Incremental recompute vs from-scratch reruns on a mutating graph —
// the amortization the dynamic subsystem (src/dynamic/) exists for,
// measured per delta size.
//
// Rows (envelope JSON, schema_version 1):
//   primitive "dyn_bfs"   IncrementalBfs::Update after an insert-only
//                         commit vs a full Bfs on the post-commit view
//   primitive "dyn_sssp"  the same contrast for IncrementalSssp
//   primitive "dyn_cc"    the same contrast for IncrementalCc
// each at delta sizes 16 / 64 / 256 / 1024 inserted edges per commit
// (dataset key "<name>/d<delta>"). Each side is timed as its full
// pipeline from "mutation batch applied" to "labels fresh": the
// incremental row pays Commit (delta publication) + Update, the scratch
// row pays the merged-view materialization + the full run. Commit is
// charged only to the incremental side even though the scratch pipeline
// needs it too — deliberately conservative in the scratch side's favor
// (and it keeps the incremental rows above compare_bench.py's 0.05 ms
// timer-noise floor, which raw repair-wave times of a few microseconds
// would fall under).
//
// Every measurement is min-of-N (GUNROCK_BENCH_REPS floored at 5): each
// rep commits a fresh batch, so min-of-N is "best observed repair" vs
// "best observed rerun" over N distinct same-size deltas. The first rep
// of every primitive double-checks the repaired labels against the
// from-scratch run — a bench that measured wrong answers would be worse
// than no bench.
//
//   --quick / --json PATH   as every bench binary (see bench/common.hpp)
//   --min-speedup X         exit 1 unless geomean(scratch/incremental)
//                           over the small-delta rows (delta <= 64) is
//                           >= X — the CI acceptance check for the
//                           incremental win
//   GUNROCK_BENCH_SCALE / GUNROCK_BENCH_REPS  as usual
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"

namespace {

using namespace bench;
using dynamic::DynamicGraph;
using dynamic::EdgeUpdate;

double g_min_speedup = 0.0;

/// Deltas per commit; rows at or below kSmallDelta gate the geomean.
constexpr std::size_t kDeltas[] = {16, 64, 256, 1024};
constexpr std::size_t kSmallDelta = 64;

/// Deterministic batch of `count` candidate inserts (xorshift over the
/// salt): distinct salts give distinct batches, so min-of-N reps time N
/// independent same-size deltas.
std::vector<EdgeUpdate> MakeBatch(vid_t n, std::size_t count,
                                  std::uint64_t salt) {
  std::uint64_t x = salt * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::vector<EdgeUpdate> batch;
  batch.reserve(count);
  while (batch.size() < count) {
    const auto u = static_cast<vid_t>(next() % static_cast<std::uint64_t>(n));
    const auto v = static_cast<vid_t>(next() % static_cast<std::uint64_t>(n));
    if (u == v) continue;
    batch.push_back({u, v, static_cast<weight_t>(1 + next() % 64)});
  }
  return batch;
}

struct Contrast {
  double incremental_ms = 0.0;
  double scratch_ms = 0.0;
  double speedup() const {
    return incremental_ms > 0 ? scratch_ms / incremental_ms : 0.0;
  }
};

/// One primitive's full delta sweep. Every delta size runs on a fresh
/// DynamicGraph + maintainer pair (untimed setup), so the per-row delta
/// buffer never carries another row's accumulated inserts. `MakeInc`
/// builds the maintainer (IncrementalBfs/IncrementalSssp/IncrementalCc)
/// from an epoch-1 snapshot, `scratch` runs the from-scratch primitive
/// on a merged view and `verify` compares the maintainer's labels
/// against that run's.
template <typename MakeInc, typename Scratch, typename Verify>
std::vector<Contrast> Sweep(const Dataset& d, int reps, std::uint64_t tag,
                            MakeInc&& make_inc, Scratch&& scratch,
                            Verify&& verify) {
  auto& pool = par::ThreadPool::Global();
  std::vector<Contrast> out;
  bool verified = false;
  for (const std::size_t delta : kDeltas) {
    DynamicGraph dyn{graph::Csr(d.graph)};
    auto inc = make_inc(dyn.Current());
    Contrast best;
    best.incremental_ms = -1.0;
    best.scratch_ms = -1.0;
    for (int r = 0; r < reps; ++r) {
      const auto batch =
          MakeBatch(d.graph.num_vertices(), delta,
                    tag * 1000003 + delta * 131 + static_cast<unsigned>(r));
      dyn.AddEdges(batch);

      WallTimer t;
      if (!dyn.Commit().changed) continue;
      const auto snap = dyn.Current();
      inc.Update(snap);
      const double inc_ms = t.ElapsedMs();

      WallTimer s;
      const auto view = snap->View(pool);  // the scratch pipeline's merge
      scratch(*view);
      const double scratch_ms = s.ElapsedMs();

      if (!verified) {
        verify(*view, inc);
        verified = true;
      }
      if (best.incremental_ms < 0 || inc_ms < best.incremental_ms) {
        best.incremental_ms = inc_ms;
      }
      if (best.scratch_ms < 0 || scratch_ms < best.scratch_ms) {
        best.scratch_ms = scratch_ms;
      }
    }
    out.push_back(best);
    // Insert-only commits must all have taken the repair path; a silent
    // fallback would time a full recompute and call it "incremental".
    if (inc.stats().full_recomputes != 1) {
      std::fprintf(stderr,
                   "dynamic_update: maintainer fell back to full recompute "
                   "(%llu) on an insert-only stream\n",
                   static_cast<unsigned long long>(
                       inc.stats().full_recomputes));
      std::exit(1);
    }
  }
  return out;
}

void EmitRows(JsonWriter& writer, Table& table, const std::string& primitive,
              const Dataset& d, std::vector<double>* gated,
              const std::vector<Contrast>& sweep) {
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::size_t delta = kDeltas[i];
    const Contrast& c = sweep[i];
    table.Cell(d.name);
    table.Cell(primitive);
    table.Cell(static_cast<double>(delta), "%.0f");
    table.Cell(c.incremental_ms, "%.4f");
    table.Cell(c.scratch_ms, "%.4f");
    table.Cell(c.speedup(), "%.2fx");
    table.EndRow();

    const std::string dataset = d.name + "/d" + std::to_string(delta);
    writer.BeginRecord()
        .Field("primitive", primitive)
        .Field("framework", "incremental")
        .Field("dataset", dataset)
        .Field("delta", delta)
        .Field("ms", c.incremental_ms)
        .Field("speedup", c.speedup());
    writer.BeginRecord()
        .Field("primitive", primitive)
        .Field("framework", "scratch")
        .Field("dataset", dataset)
        .Field("delta", delta)
        .Field("ms", c.scratch_ms);
    if (delta <= kSmallDelta) gated->push_back(c.speedup());
  }
}

[[noreturn]] void DivergedExit(const char* primitive) {
  std::fprintf(stderr,
               "dynamic_update: %s repair diverged from the from-scratch "
               "run\n",
               primitive);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --min-speedup before the shared parser (which rejects unknown
  // flags so typos can't silently run the full-size bench).
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup" && i + 1 < argc) {
      g_min_speedup = std::atof(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  ParseArgs(static_cast<int>(rest.size()), rest.data());

  const int d = EnvScaleDelta();
  // Small-delta repairs are sub-ms: min-of-N needs real N, and a floor
  // of 5 reps keeps the gated speedups out of min-of-1 noise.
  const int reps = std::max(Reps(), 5);
  auto& pool = par::ThreadPool::Global();

  graph::RmatParams p;  // soc-orkut role, as the serving-shaped benches
  p.scale = 16 + d;
  p.edge_factor = 16;
  p.seed = 101;
  const Dataset ds = MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool));

  JsonWriter writer("dynamic_update");
  Table table({"dataset", "primitive", "delta", "incr-ms", "scratch-ms",
               "speedup"});
  table.PrintHeader();

  std::vector<double> gated;
  {
    BfsOptions opts;
    opts.compute_preds = false;
    core::Workspace ws;
    RunControl ctl;
    ctl.workspace = &ws;
    const auto sweep = Sweep(
        ds, reps, 1,
        [&](std::shared_ptr<const dynamic::Snapshot> snap) {
          return dynamic::IncrementalBfs(std::move(snap), ds.source);
        },
        [&](const graph::Csr& g) { Bfs(g, ds.source, opts, ctl); },
        [&](const graph::Csr& g, const dynamic::IncrementalBfs& inc) {
          if (Bfs(g, ds.source, opts, ctl).depth != inc.depth()) {
            DivergedExit("bfs");
          }
        });
    EmitRows(writer, table, "dyn_bfs", ds, &gated, sweep);
  }
  {
    SsspOptions opts;
    opts.compute_preds = false;
    core::Workspace ws;
    RunControl ctl;
    ctl.workspace = &ws;
    const auto sweep = Sweep(
        ds, reps, 2,
        [&](std::shared_ptr<const dynamic::Snapshot> snap) {
          return dynamic::IncrementalSssp(std::move(snap), ds.source);
        },
        [&](const graph::Csr& g) { Sssp(g, ds.source, opts, ctl); },
        [&](const graph::Csr& g, const dynamic::IncrementalSssp& inc) {
          if (Sssp(g, ds.source, opts, ctl).dist != inc.dist()) {
            DivergedExit("sssp");
          }
        });
    EmitRows(writer, table, "dyn_sssp", ds, &gated, sweep);
  }
  {
    core::Workspace ws;
    RunControl ctl;
    ctl.workspace = &ws;
    const auto sweep = Sweep(
        ds, reps, 3,
        [&](std::shared_ptr<const dynamic::Snapshot> snap) {
          return dynamic::IncrementalCc(std::move(snap));
        },
        [&](const graph::Csr& g) { Cc(g, {}, ctl); },
        [&](const graph::Csr& g, const dynamic::IncrementalCc& inc) {
          if (Cc(g, {}, ctl).component != inc.component()) {
            DivergedExit("cc");
          }
        });
    EmitRows(writer, table, "dyn_cc", ds, &gated, sweep);
  }

  const double geomean = Geomean(gated);
  std::printf("\ndynamic geomean speedup (incremental vs from-scratch, "
              "delta <= %zu rows): %.2fx\n",
              kSmallDelta, geomean);
  writer.BeginRecord()
      .Field("primitive", "dyn_geomean")
      .Field("framework", "summary")
      .Field("dataset", "small-delta")
      .Field("speedup", geomean);
  writer.WriteIfRequested();

  if (g_min_speedup > 0 && geomean < g_min_speedup) {
    std::fprintf(stderr,
                 "dynamic_update: geomean speedup %.2fx below the "
                 "required %.2fx\n",
                 geomean, g_min_speedup);
    return 1;
  }
  return 0;
}
