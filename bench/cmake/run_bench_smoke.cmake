# ctest smoke driver for a bench binary: runs `<bench> --quick --json
# <path>` and then validates the emitted document with CMake's built-in
# JSON parser. Fails the test on a non-zero exit, a missing document, or
# invalid JSON — so the perf harnesses can't silently rot.
#
# Inputs: -DBENCH_BINARY=<path> -DOUTPUT_JSON=<path>

execute_process(COMMAND ${BENCH_BINARY} --quick --json ${OUTPUT_JSON}
                RESULT_VARIABLE exit_code)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "${BENCH_BINARY} --quick exited with ${exit_code}")
endif()

if(NOT EXISTS ${OUTPUT_JSON})
  message(FATAL_ERROR "${BENCH_BINARY} wrote no JSON to ${OUTPUT_JSON}")
endif()

file(READ ${OUTPUT_JSON} doc)
string(JSON root_type ERROR_VARIABLE json_error TYPE ${doc})
if(json_error)
  message(FATAL_ERROR "invalid JSON from ${BENCH_BINARY}: ${json_error}")
endif()
if(NOT root_type STREQUAL "OBJECT")
  message(FATAL_ERROR "expected a JSON object, got ${root_type}")
endif()
