// Table 4: average warp execution efficiency — the paper's load-balance
// quality metric — per framework role on BFS, SSSP and PR.
//
// Paper shape: Gunrock 97%+ on BFS, ~83% on SSSP, 99%+ on PR across all
// datasets; CuSha (GAS role) 50-91% with its worst numbers on the most
// skewed graph (kron); MapGraph in between.
//
// We report the modeled SIMT lane efficiency each framework's schedule
// produces on the *actual* frontiers it runs (see core/simt_model.hpp):
// gunrock uses its hybrid advance strategies, the GAS role maps one
// vertex per lane over the whole graph, the Pregel role maps one frontier
// vertex per lane.
#include "bench_runner.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  JsonWriter json("table4_warp_efficiency");
  std::printf("=== Table 4: modeled warp (SIMT lane) execution efficiency ===\n\n");
  const auto datasets = LoadDatasets();
  auto& pool = par::ThreadPool::Global();

  for (const std::string prim : {"BFS", "SSSP", "PR"}) {
    std::printf("--- %s ---\n", prim.c_str());
    std::vector<std::string> headers = {"framework"};
    for (const auto& d : datasets) headers.push_back(d.name);
    Table t(headers);
    t.PrintHeader();

    std::vector<double> gunrock_eff, gas_eff, pregel_eff;
    for (const auto& d : datasets) {
      const auto& g = d.graph;
      if (prim == "BFS") {
        BfsOptions opts;
        opts.direction = core::Direction::kPush;
        gunrock_eff.push_back(Bfs(g, d.source, opts).stats.lane_efficiency);
        gas_eff.push_back(
            gas::Bfs(g, d.source, pool).stats.lane_efficiency);
        pregel_eff.push_back(
            pregel::Bfs(g, d.source, pool).stats.lane_efficiency);
      } else if (prim == "SSSP") {
        SsspOptions opts;
        opts.model_lane_efficiency = true;
        gunrock_eff.push_back(
            Sssp(g, d.source, opts).stats.lane_efficiency);
        gas_eff.push_back(
            gas::Sssp(g, d.source, pool).stats.lane_efficiency);
        pregel_eff.push_back(
            pregel::Sssp(g, d.source, pool).stats.lane_efficiency);
      } else {
        PagerankOptions opts;
        opts.tolerance = 0.0;
        opts.max_iterations = 5;
        opts.pull = true;  // match Table 3's configuration
        gunrock_eff.push_back(Pagerank(g, opts).stats.lane_efficiency);
        gas_eff.push_back(
            gas::Pagerank(g, pool, 0.85, 0.0, 5).stats.lane_efficiency);
        pregel_eff.push_back(
            pregel::Pagerank(g, pool, 0.85, 0.0, 5)
                .stats.lane_efficiency);
      }
    }
    const auto print_row = [&](const char* name,
                               const std::vector<double>& effs) {
      t.Cell(name);
      for (std::size_t i = 0; i < effs.size(); ++i) {
        t.Cell(effs[i] * 100.0, "%.2f%%");
        json.BeginRecord()
            .Field("primitive", prim)
            .Field("framework", name)
            .Field("dataset", datasets[i].name)
            .Field("lane_efficiency", effs[i]);
      }
      t.EndRow();
    };
    print_row("gunrock", gunrock_eff);
    print_row("gas", gas_eff);
    print_row("pregel", pregel_eff);
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): gunrock highest everywhere; the GAS role\n"
      "collapses on the skewed graphs (indochina/kron) and is respectable\n"
      "on the meshes; per-primitive, PR > BFS > SSSP for gunrock.\n");
  json.WriteIfRequested();
  return 0;
}
