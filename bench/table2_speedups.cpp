// Table 2: geometric-mean runtime speedups of Gunrock over the
// CPU-framework roles, per primitive across the six datasets.
//
// Paper row shape (speedup of Gunrock over):
//            Galois   BGL    PowerGraph  Medusa
//   BFS       2.8      —        —         6.9
//   SSSP      0.7     52.0     6.2       11.9
//   BC        1.5      —        —         —
//   PageRank  1.9    337.6     9.7        9.0
//   CC        1.9    171.3   143.8        —
//
// Our roles: serial ↔ BGL (big speedups expected), gas ↔ PowerGraph
// (clear speedups), pregel ↔ Medusa (clear speedups). The expected *shape*:
// every geomean > 1, ordered serial > gas > pregel for traversal
// primitives, with CC's serial speedup smaller than the paper's because a
// good union-find is a much stronger baseline than BGL's.
#include "bench_runner.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  std::printf("=== Table 2: geomean speedup of gunrock over framework roles ===\n");
  std::printf("(serial=BGL role, gas=PowerGraph role, pregel=Medusa role)\n\n");
  const auto datasets = LoadDatasets();
  const auto results = RunMatrix(datasets);
  JsonWriter json("table2_speedups");

  Table t({"primitive", "vs-serial", "vs-gas", "vs-pregel"});
  t.PrintHeader();
  for (const auto& prim : Primitives()) {
    t.Cell(prim);
    for (const std::string fw : {"serial", "gas", "pregel"}) {
      std::vector<double> ratios;
      for (const auto& d : datasets) {
        const auto base = results.find(Key(prim, fw, d.name));
        const auto ours = results.find(Key(prim, "gunrock", d.name));
        if (base == results.end() || ours == results.end()) continue;
        if (ours->second.ms > 0) {
          ratios.push_back(base->second.ms / ours->second.ms);
        }
      }
      if (ratios.empty()) {
        t.Cell("—");
      } else {
        t.Cell(Geomean(ratios), "%.2fx");
        json.BeginRecord()
            .Field("primitive", prim)
            .Field("baseline", fw)
            .Field("geomean_speedup", Geomean(ratios));
      }
    }
    t.EndRow();
  }
  json.WriteIfRequested();
  std::printf(
      "\nexpected shape (paper): all >1; traversal primitives gain most;\n"
      "PR/CC gain least vs the compute-bound baselines.\n");
  return 0;
}
