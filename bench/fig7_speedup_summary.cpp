// Figure 7: execution-time speedup of Gunrock vs each framework role on
// each input, one dot per (primitive, framework, dataset).
//
// Paper rendering is a dot plot; ours prints the full speedup matrix with
// the same win/lose marker semantics (black dot = Gunrock faster, white
// dot = slower). The shape to check: nearly all cells > 1 against
// serial/gas/pregel; the hardwired column hovers around 1 except CC.
#include "bench_runner.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  std::printf("=== Figure 7: Gunrock speedup per framework x dataset ===\n");
  std::printf("(* = gunrock faster, o = gunrock slower; value = speedup)\n\n");
  const auto datasets = LoadDatasets();
  const auto results = RunMatrix(datasets);
  JsonWriter json("fig7_speedup_summary");
  AddMatrixRecords(json, datasets, results);
  json.WriteIfRequested();

  for (const auto& prim : Primitives()) {
    std::printf("--- %s ---\n", prim.c_str());
    std::vector<std::string> headers = {"dataset"};
    for (const auto& fw : Frameworks()) {
      if (fw != "gunrock") headers.push_back("vs-" + fw);
    }
    Table t(headers);
    t.PrintHeader();
    for (const auto& d : datasets) {
      t.Cell(d.name);
      for (const auto& fw : Frameworks()) {
        if (fw == "gunrock") continue;
        const auto base = results.find(Key(prim, fw, d.name));
        const auto ours = results.find(Key(prim, "gunrock", d.name));
        if (base == results.end() || ours == results.end() ||
            ours->second.ms <= 0) {
          t.Cell("—");
          continue;
        }
        const double speedup = base->second.ms / ours->second.ms;
        t.Cell(Fmt(speedup, speedup >= 1.0 ? "* %.2f" : "o %.2f"));
      }
      t.EndRow();
    }
    std::printf("\n");
  }
  return 0;
}
