// Figure 8: the three optimization ablations on BFS, over the four
// datasets the paper uses (hollywood, kron, rgg, roadnet analogs).
//
//   left:   fine-grained (TWC) vs coarse-grained (equal-work) workload
//           mapping — paper: equal-work wins on the scale-free pair,
//           TWC wins on the meshes;
//   middle: idempotent vs non-idempotent (atomic) advance — paper:
//           idempotent wins where concurrent discovery is common
//           (scale-free), near-par on meshes;
//   right:  forward-only vs direction-optimizing traversal — paper:
//           direction-optimizing wins big on scale-free graphs
//           (1.5x+), loses slightly on meshes.
#include "bench_runner.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  JsonWriter json("fig8_optimizations");
  std::printf("=== Figure 8: BFS optimization ablations (runtime ms) ===\n\n");
  auto all = LoadDatasets();
  std::vector<Dataset> datasets;
  for (auto& d : all) {
    if (d.name == "hollywood-rmat" || d.name == "kron-g500" ||
        d.name == "rgg" || d.name == "roadnet") {
      datasets.push_back(std::move(d));
    }
  }
  const int reps = Reps();

  const auto time_bfs = [&](const Dataset& d, BfsOptions opts) {
    opts.compute_preds = false;
    return TimeMs([&] { Bfs(d.graph, d.source, opts); }, reps);
  };

  std::printf("--- left: workload mapping (paper: Fine.Grained vs Coarse.Grained) ---\n");
  {
    Table t({"dataset", "twc(fine)", "equal-work", "winner"});
    t.PrintHeader();
    for (const auto& d : datasets) {
      BfsOptions twc;
      twc.load_balance = core::LoadBalance::kTwc;
      twc.direction = core::Direction::kPush;
      BfsOptions lb;
      lb.load_balance = core::LoadBalance::kEqualWork;
      lb.direction = core::Direction::kPush;
      const double t1 = time_bfs(d, twc);
      const double t2 = time_bfs(d, lb);
      t.Cell(d.name);
      t.Cell(t1);
      t.Cell(t2);
      t.Cell(t1 < t2 ? "twc" : "equal-work");
      t.EndRow();
      json.BeginRecord()
          .Field("ablation", "workload_mapping")
          .Field("dataset", d.name)
          .Field("twc_ms", t1)
          .Field("equal_work_ms", t2);
    }
  }

  std::printf("\n--- middle: idempotence (paper: Idem vs Non.idem) ---\n");
  {
    Table t({"dataset", "idempotent", "atomic", "winner"});
    t.PrintHeader();
    for (const auto& d : datasets) {
      BfsOptions idem;
      idem.idempotent = true;
      idem.direction = core::Direction::kPush;
      BfsOptions atomic;
      atomic.idempotent = false;
      atomic.direction = core::Direction::kPush;
      const double t1 = time_bfs(d, idem);
      const double t2 = time_bfs(d, atomic);
      t.Cell(d.name);
      t.Cell(t1);
      t.Cell(t2);
      t.Cell(t1 < t2 ? "idempotent" : "atomic");
      t.EndRow();
      json.BeginRecord()
          .Field("ablation", "idempotence")
          .Field("dataset", d.name)
          .Field("idempotent_ms", t1)
          .Field("atomic_ms", t2);
    }
  }

  std::printf("\n--- right: traversal direction (paper: Forward vs Direction.Optimal) ---\n");
  {
    Table t({"dataset", "forward", "dir-optimal", "speedup"});
    t.PrintHeader();
    for (const auto& d : datasets) {
      BfsOptions fwd;
      fwd.direction = core::Direction::kPush;
      BfsOptions dopt;
      dopt.direction = core::Direction::kOptimizing;
      const double t1 = time_bfs(d, fwd);
      const double t2 = time_bfs(d, dopt);
      t.Cell(d.name);
      t.Cell(t1);
      t.Cell(t2);
      t.Cell(t1 / t2, "%.2fx");
      t.EndRow();
      json.BeginRecord()
          .Field("ablation", "direction")
          .Field("dataset", d.name)
          .Field("forward_ms", t1)
          .Field("direction_optimal_ms", t2);
    }
    std::printf(
        "\npaper: DO speedup 1.52x on scale-free, ~1.28x on meshes "
        "(both measured against forward)\n");
  }
  json.WriteIfRequested();
  return 0;
}
