// Merge-path SpMV backend vs the frontier operators on the dense-frontier
// ranking primitives — the contrast the semiring backend exists for,
// measured end to end per topology class.
//
// Rows (envelope JSON, schema_version 1):
//   primitive "pagerank"  fixed-budget pull PageRank: framework
//                         "frontier" (NeighborReduce + fused scale pass)
//                         vs framework "spmv" (pre-scaled merge-path
//                         sweep). Gated rows: the four scale-free
//                         datasets, where every iteration is a full
//                         dense sweep and the frontier machinery is pure
//                         overhead.
//   primitive "hits"      the same contrast on HITS' scatter/gather
//                         ping-pong — informational, plus the two mesh
//                         datasets of both primitives (the win shrinks
//                         when rows are uniform and short; see
//                         DESIGN.md §9 for where and why).
//
// Every measurement is min-of-N (GUNROCK_BENCH_REPS floor 5): the
// contrast is algorithmic, so each side's best-observed time is the
// honest comparison. Both sides reuse warm per-side workspaces, so
// neither wins on allocation effects.
//
//   --quick / --json PATH   as every bench binary (see bench/common.hpp)
//   --min-speedup X         exit 1 unless geomean(frontier/spmv) over
//                           the gated pagerank scale-free rows is >= X —
//                           the CI acceptance check for the backend
//   GUNROCK_BENCH_SCALE / GUNROCK_BENCH_REPS  as usual
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace bench;

double g_min_speedup = 0.0;

/// Times fn() `reps` times and keeps the minimum (same rationale as
/// msbfs_batch: an algorithmic contrast wants each side's best).
template <typename F>
double TimeMinMs(F&& fn, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double ms = t.ElapsedMs();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

struct Contrast {
  double spmv_ms = 0.0;
  double frontier_ms = 0.0;
  double speedup() const {
    return spmv_ms > 0 ? frontier_ms / spmv_ms : 0.0;
  }
};

/// Untimed warm-up doubling as a correctness cross-check: the two
/// backends must agree to rounding, or the faster time is meaningless.
void CheckScores(const std::vector<double>& a, const std::vector<double>& b,
                 const char* what) {
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (std::abs(a[v] - b[v]) > 1e-9 * (1.0 + std::abs(a[v]))) {
      std::fprintf(stderr, "spmv_backend: %s backends diverged at vertex "
                           "%zu (%.17g vs %.17g)\n",
                   what, v, a[v], b[v]);
      std::exit(1);
    }
  }
}

Contrast MeasurePagerank(const Dataset& d, int reps) {
  PagerankOptions opts;
  opts.pull = true;
  opts.tolerance = 0.0;  // fixed budget: both sides run every iteration
  opts.max_iterations = 10;

  core::Workspace spmv_ws, frontier_ws;
  RunControl spmv_ctl, frontier_ctl;
  spmv_ctl.workspace = &spmv_ws;
  frontier_ctl.workspace = &frontier_ws;

  opts.backend = core::SpmvBackend::kSpmv;
  const auto rs = Pagerank(d.graph, opts, spmv_ctl);
  PagerankOptions fopts = opts;
  fopts.backend = core::SpmvBackend::kFrontier;
  const auto rf = Pagerank(d.graph, fopts, frontier_ctl);
  CheckScores(rf.rank, rs.rank, "pagerank");

  Contrast c;
  c.spmv_ms = TimeMinMs([&] { Pagerank(d.graph, opts, spmv_ctl); }, reps);
  c.frontier_ms =
      TimeMinMs([&] { Pagerank(d.graph, fopts, frontier_ctl); }, reps);
  return c;
}

Contrast MeasureHits(const Dataset& d, int reps) {
  HitsOptions opts;
  opts.tolerance = 0.0;
  opts.max_iterations = 10;

  core::Workspace spmv_ws, frontier_ws;
  RunControl spmv_ctl, frontier_ctl;
  spmv_ctl.workspace = &spmv_ws;
  frontier_ctl.workspace = &frontier_ws;

  // Symmetrized datasets: the graph is its own reverse.
  opts.backend = core::SpmvBackend::kSpmv;
  const auto rs = Hits(d.graph, d.graph, opts, spmv_ctl);
  HitsOptions fopts = opts;
  fopts.backend = core::SpmvBackend::kFrontier;
  const auto rf = Hits(d.graph, d.graph, fopts, frontier_ctl);
  CheckScores(rf.authority, rs.authority, "hits");

  Contrast c;
  c.spmv_ms =
      TimeMinMs([&] { Hits(d.graph, d.graph, opts, spmv_ctl); }, reps);
  c.frontier_ms =
      TimeMinMs([&] { Hits(d.graph, d.graph, fopts, frontier_ctl); }, reps);
  return c;
}

void EmitRows(JsonWriter& writer, Table& table, const std::string& primitive,
              const Dataset& d, const Contrast& c) {
  table.Cell(d.name);
  table.Cell(d.type);
  table.Cell(primitive);
  table.Cell(c.spmv_ms);
  table.Cell(c.frontier_ms);
  table.Cell(c.speedup(), "%.2fx");
  table.EndRow();

  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "spmv")
      .Field("dataset", d.name)
      .Field("ms", c.spmv_ms)
      .Field("speedup", c.speedup());
  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "frontier")
      .Field("dataset", d.name)
      .Field("ms", c.frontier_ms);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --min-speedup before the shared parser (which rejects unknown
  // flags so typos can't silently run the full-size bench).
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup" && i + 1 < argc) {
      g_min_speedup = std::atof(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  ParseArgs(static_cast<int>(rest.size()), rest.data());

  // min-of-N needs real N: quick rows are millisecond-scale, so a floor
  // of 5 reps keeps the gated speedups out of min-of-1 noise.
  const int reps = std::max(Reps(), 5);
  const auto datasets = LoadDatasets();

  JsonWriter writer("spmv_backend");
  Table table({"dataset", "type", "primitive", "spmv-ms", "frontier-ms",
               "speedup"});
  table.PrintHeader();

  std::vector<double> gated_speedups;
  for (const auto& d : datasets) {
    const bool scale_free = d.type == "rs" || d.type == "gs";
    const Contrast pr = MeasurePagerank(d, reps);
    EmitRows(writer, table, "pagerank", d, pr);
    if (scale_free) gated_speedups.push_back(pr.speedup());

    const Contrast hits = MeasureHits(d, reps);
    EmitRows(writer, table, "hits", d, hits);
  }

  const double geomean = Geomean(gated_speedups);
  std::printf("\npagerank spmv-vs-frontier geomean speedup "
              "(scale-free rows): %.2fx\n",
              geomean);
  writer.BeginRecord()
      .Field("primitive", "pagerank_spmv_geomean")
      .Field("framework", "summary")
      .Field("dataset", "scale-free")
      .Field("speedup", geomean);
  writer.WriteIfRequested();

  if (g_min_speedup > 0 && geomean < g_min_speedup) {
    std::fprintf(stderr,
                 "spmv_backend: geomean speedup %.2fx below the required "
                 "%.2fx\n",
                 geomean, g_min_speedup);
    return 1;
  }
  return 0;
}
