// Many-to-many SSSP distance tables vs N sequential single-source runs —
// the amortization MatrixQuery exists for, measured end to end through
// the engine's wave loop (RunMatrix), plus the two contrasts the design
// needs answered: frontier vs semiring backend per topology, and one
// 64-lane wave vs the same 64 sources split across narrower waves (the
// multi-word-mask question, DESIGN.md §11).
//
// Rows (envelope JSON, schema_version 1):
//   primitive "matrix"        64-source full-table RunMatrix vs 64
//                             sequential Sssp runs on the scale-free
//                             serving shapes (gated rows)
//   primitive "matrix_mesh"   the same contrast on a long-diameter mesh —
//                             informational: mesh wavefronts
//                             desynchronize and the lane win shrinks
//   primitive "matrix_frontier" / "matrix_spmv"
//                             per-topology backend contrast on the raw
//                             SsspBatch (informational; picks the kAuto
//                             default)
//   primitive "matrix_wavesplit"
//                             the 64 sources as 1x64 / 2x32 / 4x16
//                             waves (informational; settles whether a
//                             multi-word mask would pay)
//
// Every measurement is min-of-N (GUNROCK_BENCH_REPS): the contrast is
// algorithmic, so each side's best-observed time is the honest one.
// Sequential rows reuse one warm workspace, so the batched side never
// wins on allocation effects.
//
//   --quick / --json PATH   as every bench binary (see bench/common.hpp)
//   --min-speedup X         exit 1 unless geomean(sequential/batched)
//                           over the gated matrix rows is >= X — the CI
//                           acceptance check for the batched win
//   GUNROCK_BENCH_SCALE / GUNROCK_BENCH_REPS  as usual
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "engine/query.hpp"

namespace {

using namespace bench;

double g_min_speedup = 0.0;

template <typename F>
double TimeMinMs(F&& fn, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double ms = t.ElapsedMs();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

struct Contrast {
  double batched_ms = 0.0;
  double sequential_ms = 0.0;
  double speedup() const {
    return batched_ms > 0 ? sequential_ms / batched_ms : 0.0;
  }
};

/// Full-pipeline contrast: RunMatrix (one 64-lane wave, full target set)
/// vs 64 scalar Sssp runs off a warm workspace.
Contrast MeasureMatrix(const Dataset& d, std::span<const vid_t> sources,
                      int reps) {
  engine::MatrixQuery q;
  q.sources.assign(sources.begin(), sources.end());
  q.wave = static_cast<std::uint32_t>(kMaxBatchLanes);

  SsspOptions sopts;
  core::Workspace batch_ws, seq_ws;
  RunControl batch_ctl, seq_ctl;
  batch_ctl.workspace = &batch_ws;
  seq_ctl.workspace = &seq_ws;
  batch_ctl.scale_free_hint = 1;  // resolved once; not part of the contrast

  // Untimed warm-up (grows both arenas) doubling as a correctness check:
  // lane 0's table row must be bitwise the scalar distance vector.
  const auto warm = engine::RunMatrix(d.graph, q, nullptr, nullptr,
                                      batch_ctl);
  const auto ref = Sssp(d.graph, sources[0], sopts, seq_ctl);
  if (std::memcmp(warm.table.data(), ref.dist.data(),
                  ref.dist.size() * sizeof(weight_t)) != 0) {
    std::fprintf(stderr, "matrix_query: lane 0 diverged from scalar SSSP\n");
    std::exit(1);
  }
  for (std::size_t i = 1; i < sources.size(); ++i) {
    Sssp(d.graph, sources[i], sopts, seq_ctl);
  }

  Contrast c;
  c.batched_ms = TimeMinMs(
      [&] { engine::RunMatrix(d.graph, q, nullptr, nullptr, batch_ctl); },
      reps);
  c.sequential_ms = TimeMinMs(
      [&] {
        for (const vid_t s : sources) Sssp(d.graph, s, sopts, seq_ctl);
      },
      reps);
  return c;
}

/// Raw-primitive time of one backend over one 64-source wave.
double MeasureBackend(const Dataset& d, std::span<const vid_t> sources,
                      MatrixBackend backend, int reps) {
  SsspBatchOptions opts;
  opts.backend = backend;
  if (backend == MatrixBackend::kSpmv) {
    opts.reverse = &d.graph;  // bench graphs are symmetrized
  }
  core::Workspace ws;
  RunControl ctl;
  ctl.workspace = &ws;
  SsspBatch(d.graph, sources, opts, ctl);  // warm-up
  return TimeMinMs([&] { SsspBatch(d.graph, sources, opts, ctl); }, reps);
}

/// The same 64 sources through waves of `wave` lanes each.
double MeasureWaveSplit(const Dataset& d, std::span<const vid_t> sources,
                        std::uint32_t wave, int reps) {
  engine::MatrixQuery q;
  q.sources.assign(sources.begin(), sources.end());
  q.wave = wave;
  core::Workspace ws;
  RunControl ctl;
  ctl.workspace = &ws;
  ctl.scale_free_hint = 1;
  engine::RunMatrix(d.graph, q, nullptr, nullptr, ctl);  // warm-up
  return TimeMinMs(
      [&] { engine::RunMatrix(d.graph, q, nullptr, nullptr, ctl); }, reps);
}

void EmitContrast(JsonWriter& writer, Table& table,
                  const std::string& primitive, const Dataset& d,
                  std::size_t lanes, const Contrast& c) {
  table.Cell(d.name);
  table.Cell(primitive);
  table.Cell(static_cast<double>(lanes), "%.0f");
  table.Cell(c.batched_ms);
  table.Cell(c.sequential_ms);
  table.Cell(c.speedup(), "%.2fx");
  table.EndRow();

  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "gunrock")
      .Field("dataset", d.name)
      .Field("lanes", lanes)
      .Field("ms", c.batched_ms)
      .Field("speedup", c.speedup());
  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "sequential")
      .Field("dataset", d.name)
      .Field("lanes", lanes)
      .Field("ms", c.sequential_ms);
}

void EmitTime(JsonWriter& writer, Table& table, const std::string& primitive,
              const std::string& dataset, std::size_t lanes, double ms) {
  table.Cell(dataset);
  table.Cell(primitive);
  table.Cell(static_cast<double>(lanes), "%.0f");
  table.Cell(ms);
  table.Cell(0.0);
  table.Cell("-");
  table.EndRow();

  writer.BeginRecord()
      .Field("primitive", primitive)
      .Field("framework", "gunrock")
      .Field("dataset", dataset)
      .Field("lanes", lanes)
      .Field("ms", ms);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --min-speedup before the shared parser (which rejects unknown
  // flags so typos can't silently run the full-size bench).
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup" && i + 1 < argc) {
      g_min_speedup = std::atof(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  ParseArgs(static_cast<int>(rest.size()), rest.data());

  const int d = EnvScaleDelta();
  const int reps = std::max(Reps(), 5);
  auto& pool = par::ThreadPool::Global();

  std::vector<Dataset> social;
  {
    graph::RmatParams p;  // soc-orkut role
    p.scale = 15 + d;
    p.edge_factor = 16;
    p.seed = 111;
    social.push_back(MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool)));
  }
  {
    graph::RmatParams p;  // kron-g500 role: Graph500 parameters
    p.scale = 15 + d;
    p.edge_factor = 16;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.seed = 114;
    social.push_back(MakeDataset("kron-g500", "gs", GenerateRmat(p, pool)));
  }
  Dataset mesh;
  {
    graph::RoadParams p;  // long-diameter contrast case
    const int shift = d / 2;
    p.width = 192 >> (shift < 0 ? -shift : 0) << (shift > 0 ? shift : 0);
    p.height = p.width;
    p.seed = 116;
    mesh = MakeDataset("roadnet", "rm", GenerateRoad(p, pool));
  }

  JsonWriter writer("matrix_query");
  Table table({"dataset", "primitive", "lanes", "batched-ms",
               "sequential-ms", "speedup"});
  table.PrintHeader();

  std::vector<double> gated_speedups;
  for (const auto& ds : social) {
    const auto sources = PickSources(ds.graph, kMaxBatchLanes);
    const Contrast c = MeasureMatrix(ds, sources, reps);
    EmitContrast(writer, table, "matrix", ds, sources.size(), c);
    gated_speedups.push_back(c.speedup());
  }
  {
    const auto sources = PickSources(mesh.graph, kMaxBatchLanes);
    const Contrast c = MeasureMatrix(mesh, sources, reps);
    EmitContrast(writer, table, "matrix_mesh", mesh, sources.size(), c);
  }

  // Backend contrast: delta-stepping lanes vs iterated MinPlus SpMM, on
  // one scale-free and one mesh topology. Informational, but this is the
  // measurement the MatrixBackend::kAuto default is derived from.
  for (const Dataset* ds : {&social[0], &mesh}) {
    const auto sources = PickSources(ds->graph, kMaxBatchLanes);
    const double frontier_ms =
        MeasureBackend(*ds, sources, MatrixBackend::kFrontier, reps);
    const double spmv_ms =
        MeasureBackend(*ds, sources, MatrixBackend::kSpmv, reps);
    EmitTime(writer, table, "matrix_frontier", ds->name, sources.size(),
             frontier_ms);
    EmitTime(writer, table, "matrix_spmv", ds->name, sources.size(),
             spmv_ms);
  }

  // Wave-split contrast: would >64 lanes (a multi-word mask) pay, or do
  // narrower waves already match one wide one? If 2x32 ~= 1x64 there is
  // no headroom for 128-lane masks; if 1x64 wins clearly, wider masks
  // would win more.
  {
    const Dataset& ds = social[0];
    const auto sources = PickSources(ds.graph, kMaxBatchLanes);
    for (const std::uint32_t wave : {64u, 32u, 16u}) {
      const double ms = MeasureWaveSplit(ds, sources, wave, reps);
      EmitTime(writer, table, "matrix_wavesplit",
               ds.name + "/" + std::to_string(kMaxBatchLanes / wave) + "x" +
                   std::to_string(wave),
               wave, ms);
    }
  }

  const double geomean = Geomean(gated_speedups);
  std::printf("\nmatrix geomean speedup (batched vs %zu sequential, "
              "scale-free rows): %.2fx\n",
              static_cast<std::size_t>(kMaxBatchLanes), geomean);
  writer.BeginRecord()
      .Field("primitive", "matrix_geomean")
      .Field("framework", "summary")
      .Field("dataset", "scale-free")
      .Field("speedup", geomean);
  writer.WriteIfRequested();

  if (g_min_speedup > 0 && geomean < g_min_speedup) {
    std::fprintf(stderr,
                 "matrix_query: geomean speedup %.2fx below the required "
                 "%.2fx\n",
                 geomean, g_min_speedup);
    return 1;
  }
  return 0;
}
