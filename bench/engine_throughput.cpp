// Engine serving throughput: queries/second of a QueryEngine at varying
// in-flight concurrency, against the same workload issued as sequential
// direct calls ("direct" framework rows — the no-engine baseline the
// gunrock rows are normalized by in CI).
//
// Workload: a fixed list of BFS and SSSP sources over one scale-free and
// one mesh dataset, submitted with SubmitAll and drained, plus a "mixed"
// workload cycling eight primitive families (bfs/sssp/pagerank/cc/
// triangles/lp/mst/ppr) across the source list — the serving shape the
// enlarged engine exists for. Each configuration gets one untimed
// warm-up pass (grows the workspace leases) before the timed reps, so
// the numbers reflect steady-state serving: zero workspace allocation,
// pass-granular interleaving on the shared pool.
//
//   --quick / --json PATH  as every bench binary (see bench/common.hpp)
//   GUNROCK_BENCH_SCALE    shifts the generator scales
//   GUNROCK_BENCH_REPS     timed repetitions (default 3)
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace bench;

struct Workload {
  std::string primitive;  // "bfs" | "sssp" | "mixed" | "bfs-co" | "ppr-co"
  /// Query i uses prototypes[i % size] stamped with sources[i].
  std::vector<engine::QueryRequest> prototypes;
  /// Submit through SubmitAll with wave coalescing (single-prototype
  /// workloads only): compatible queued queries merge into multi-source
  /// batched runs — the serving-layer view of the msbfs_batch contrast.
  bool coalesce = false;
};

/// Sequential direct calls: the no-engine baseline. engine::RunRequest
/// is the same dispatch the engine's runners use, minus the engine.
double TimeDirectMs(const Dataset& d, const Workload& w,
                    std::span<const vid_t> sources, int reps) {
  return TimeMs(
      [&] {
        for (std::size_t i = 0; i < sources.size(); ++i) {
          engine::RunRequest(
              d.graph, engine::WithSource(
                           w.prototypes[i % w.prototypes.size()],
                           sources[i]));
        }
      },
      reps);
}

/// Submit + drain through an engine with `inflight` concurrency.
double TimeEngineMs(engine::QueryEngine& eng, const Workload& w,
                    std::span<const vid_t> sources, int reps) {
  return TimeMs(
      [&] {
        std::vector<engine::QueryHandle> handles;
        if (w.coalesce) {
          handles = eng.SubmitAll("g", sources, w.prototypes.front());
        } else {
          handles.reserve(sources.size());
          for (std::size_t i = 0; i < sources.size(); ++i) {
            handles.push_back(eng.Submit(
                "g",
                engine::WithSource(w.prototypes[i % w.prototypes.size()],
                                   sources[i])));
          }
        }
        for (auto& h : handles) {
          const auto& resp = h.Wait();
          if (resp.status != engine::QueryStatus::kDone) {
            std::fprintf(stderr, "engine query failed: %s\n",
                         resp.error.c_str());
            std::exit(1);
          }
        }
      },
      reps);
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  const int d = EnvScaleDelta();
  const int reps = Reps();
  const std::size_t num_queries = Args().quick ? 8 : 32;
  const unsigned concurrency[] = {1, 2, 4, 8};
  auto& pool = par::ThreadPool::Global();

  std::vector<Dataset> datasets;
  {
    graph::RmatParams p;  // soc-orkut role: the serving-heavy shape
    p.scale = 15 + d;
    p.edge_factor = 16;
    p.seed = 101;
    datasets.push_back(MakeDataset("soc-rmat", "rs", GenerateRmat(p, pool)));
  }
  {
    graph::RoadParams p;  // roadnet role: long-diameter mesh queries
    const int shift = d / 2;
    p.width = 256 >> (shift < 0 ? -shift : 0) << (shift > 0 ? shift : 0);
    p.height = p.width;
    p.seed = 106;
    datasets.push_back(MakeDataset("roadnet", "rm", GenerateRoad(p, pool)));
  }

  std::vector<Workload> workloads;
  {
    engine::BfsQuery bfs;
    bfs.opts.direction = core::Direction::kOptimizing;
    workloads.push_back({"bfs", {bfs}});
    engine::SsspQuery sssp;
    workloads.push_back({"sssp", {sssp}});

    // Mixed serving shape: eight primitive families round-robin across
    // the source list — the breadth the enlarged servable set exists
    // for. Iteration caps keep the whole-graph primitives comparable to
    // one traversal query.
    engine::PagerankQuery pr;
    pr.opts.pull = true;
    pr.opts.max_iterations = 10;
    engine::LabelPropagationQuery lp;
    lp.opts.max_iterations = 10;
    engine::PprQuery ppr;
    ppr.opts.max_iterations = 10;
    workloads.push_back({"mixed",
                         {bfs, sssp, pr, engine::CcQuery{},
                          engine::TrianglesQuery{}, lp, engine::MstQuery{},
                          ppr}});

    // Coalesced rows: the same fan-out shapes served through SubmitAll,
    // so compatible queued queries merge into multi-source waves. BFS
    // drops predecessors (the coalescible depth-only shape).
    engine::BfsQuery bfs_co = bfs;
    bfs_co.opts.compute_preds = false;
    workloads.push_back({"bfs-co", {bfs_co}, /*coalesce=*/true});
    workloads.push_back({"ppr-co", {ppr}, /*coalesce=*/true});
  }

  JsonWriter writer("engine_throughput");
  Table table({"dataset", "primitive", "inflight", "ms", "q/s", "vs-direct"});
  table.PrintHeader();

  for (const auto& dataset : datasets) {
    const auto sources = PickSources(dataset.graph, num_queries);
    for (const auto& w : workloads) {
      // Direct baseline first (it shares the process-global pool that the
      // engines below switch into shared-submitter mode).
      TimeDirectMs(dataset, w, sources, 1);  // warm graph caches
      const double direct_ms = TimeDirectMs(dataset, w, sources, reps);
      const double direct_qps =
          direct_ms > 0
              ? 1000.0 * static_cast<double>(num_queries) / direct_ms
              : 0.0;

      for (const unsigned c : concurrency) {
        engine::QueryEngineOptions eopts;
        eopts.max_in_flight = c;
        engine::QueryEngine eng(eopts);
        // Non-owning alias: the dataset outlives the engine; don't copy
        // the graph per configuration.
        eng.RegisterGraph("g", std::shared_ptr<const graph::Csr>(
                                   std::shared_ptr<const graph::Csr>(),
                                   &dataset.graph));
        TimeEngineMs(eng, w, sources, 1);  // warm the workspace leases
        const double ms = TimeEngineMs(eng, w, sources, reps);
        const double qps =
            ms > 0 ? 1000.0 * static_cast<double>(num_queries) / ms : 0.0;
        const std::string label = dataset.name + "@c" + std::to_string(c);

        table.Cell(label);
        table.Cell(w.primitive);
        table.Cell(static_cast<double>(c), "%.0f");
        table.Cell(ms);
        table.Cell(qps, "%.1f");
        table.Cell(direct_ms > 0 ? direct_ms / ms : 0.0, "%.2fx");
        table.EndRow();

        writer.BeginRecord()
            .Field("primitive", w.primitive)
            .Field("framework", "gunrock")
            .Field("dataset", label)
            .Field("concurrency", c)
            .Field("queries", num_queries)
            .Field("ms", ms)
            .Field("qps", qps);
        // Matching direct row per concurrency label so the CI gate can
        // normalize each gunrock row by the same-machine baseline.
        writer.BeginRecord()
            .Field("primitive", w.primitive)
            .Field("framework", "direct")
            .Field("dataset", label)
            .Field("concurrency", c)
            .Field("queries", num_queries)
            .Field("ms", direct_ms)
            .Field("qps", direct_qps);
      }
    }
  }

  writer.WriteIfRequested();
  return 0;
}
