// Table 3: runtime (ms) and edge throughput (MTEPS) for all five
// primitives across the six datasets and five framework roles.
//
// The paper's claims to check in this output:
//  * Gunrock beats the GAS role (MapGraph/CuSha) and the Pregel role
//    (Medusa) on every traversal primitive;
//  * Gunrock is comparable to hardwired on BFS / SSSP / BC
//    (within a small factor either way);
//  * Gunrock CC is several times slower than the hardwired
//    union-find-style CC (paper: 5x geomean);
//  * scale-free datasets (soc/hollywood/indochina/kron) show larger
//    Gunrock advantages than the meshes (rgg/roadnet).
#include "bench_runner.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  std::printf("=== Table 3: runtime (ms) / throughput (MTEPS) ===\n\n");
  const auto datasets = LoadDatasets();
  const auto results = RunMatrix(datasets);
  JsonWriter json("table3_performance");
  AddMatrixRecords(json, datasets, results);
  json.WriteIfRequested();

  for (const auto& prim : Primitives()) {
    std::printf("--- %s: runtime ms [lower is better] ---\n", prim.c_str());
    std::vector<std::string> headers = {"dataset"};
    for (const auto& fw : Frameworks()) headers.push_back(fw);
    Table t(headers);
    t.PrintHeader();
    for (const auto& d : datasets) {
      t.Cell(d.name);
      for (const auto& fw : Frameworks()) {
        const auto it = results.find(Key(prim, fw, d.name));
        if (it == results.end()) {
          t.Cell("—");
        } else {
          t.Cell(it->second.ms, "%.2f");
        }
      }
      t.EndRow();
    }
    if (prim == "BFS" || prim == "SSSP" || prim == "BC") {
      std::printf("\n--- %s: edge throughput MTEPS [higher is better] ---\n",
                  prim.c_str());
      Table t2(headers);
      t2.PrintHeader();
      for (const auto& d : datasets) {
        t2.Cell(d.name);
        for (const auto& fw : Frameworks()) {
          const auto it = results.find(Key(prim, fw, d.name));
          if (it == results.end() || it->second.mteps <= 0) {
            t2.Cell("—");
          } else {
            t2.Cell(it->second.mteps, "%.1f");
          }
        }
        t2.EndRow();
      }
    }
    std::printf("\n");
  }

  // The headline CC claim: hardwired vs gunrock geomean.
  std::vector<double> cc_ratio;
  for (const auto& d : datasets) {
    const auto hw = results.find(Key("CC", "hardwired", d.name));
    const auto gr = results.find(Key("CC", "gunrock", d.name));
    if (hw != results.end() && gr != results.end() && hw->second.ms > 0) {
      cc_ratio.push_back(gr->second.ms / hw->second.ms);
    }
  }
  std::printf("CC slowdown vs hardwired (geomean): %.2fx  (paper: ~5x)\n",
              Geomean(cc_ratio));
  return 0;
}
