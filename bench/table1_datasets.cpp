// Table 1: Dataset Description Table.
//
// Paper columns: Dataset, Vertices, Edges, Max Degree, Diameter, Type.
// Reproduced over the generated topology-class analogs; the check to make
// against the paper is the *class structure*: four scale-free graphs with
// small diameter and extreme max degree, two mesh-like graphs with large
// diameter and tiny bounded degree.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  ParseArgs(argc, argv);
  std::printf("=== Table 1: dataset description (generated analogs) ===\n");
  std::printf("paper shape: 4 scale-free (diameter < 30, max degree >> mean),\n");
  std::printf("             2 mesh-like (diameter in the hundreds+, degree <= ~16)\n\n");

  auto datasets = LoadDatasets();
  JsonWriter json("table1_datasets");
  Table t({"dataset", "vertices", "edges", "max-deg", "mean-deg",
           "diameter", "gini", "type", "scale-free"});
  t.PrintHeader();
  auto& pool = par::ThreadPool::Global();
  for (auto& d : datasets) {
    const auto stats = graph::ComputeDegreeStats(d.graph, pool);
    const auto diameter = graph::PseudoDiameter(d.graph, d.source);
    const bool scale_free = graph::IsScaleFreeLike(stats);
    t.Cell(d.name);
    t.Cell(Fmt(static_cast<double>(d.graph.num_vertices()), "%.0f"));
    t.Cell(Fmt(static_cast<double>(d.graph.num_edges()), "%.0f"));
    t.Cell(Fmt(static_cast<double>(stats.max_degree), "%.0f"));
    t.Cell(stats.mean_degree);
    t.Cell(Fmt(static_cast<double>(diameter), "%.0f"));
    t.Cell(stats.gini);
    t.Cell(d.type);
    t.Cell(scale_free ? "yes" : "no");
    t.EndRow();
    json.BeginRecord()
        .Field("dataset", d.name)
        .Field("type", d.type)
        .Field("vertices", static_cast<long long>(d.graph.num_vertices()))
        .Field("edges", static_cast<long long>(d.graph.num_edges()))
        .Field("max_degree", static_cast<long long>(stats.max_degree))
        .Field("mean_degree", stats.mean_degree)
        .Field("diameter", static_cast<long long>(diameter))
        .Field("gini", stats.gini)
        .Field("scale_free", scale_free ? "yes" : "no");
  }
  std::printf(
      "\ntypes: r=real-world-analog, g=generated, s=scale-free, m=mesh-like\n");
  json.WriteIfRequested();
  return 0;
}
