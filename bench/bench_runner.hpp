// The measurement core shared by Tables 2/3 and Figure 7: runs every
// (framework, primitive, dataset) combination once and records runtime
// plus edge throughput.
//
// Framework roles (DESIGN.md section 2):
//   gunrock   — this library's frontier-centric primitives
//   serial    — textbook single-thread implementations (BGL role)
//   gas       — mini gather-apply-scatter engine (PowerGraph/MapGraph/
//               CuSha role)
//   pregel    — mini message-passing engine (Medusa role)
//   hardwired — fused per-primitive specialists (b40c / delta-stepping /
//               gpu_BC / conn role)
//
// PageRank timings are normalized to one iteration (paper Table 3 note);
// all PR runs execute a fixed 10 iterations.
#pragma once

#include <functional>
#include <map>

#include "common.hpp"

namespace bench {

inline constexpr int kPrIterations = 10;

struct Measurement {
  double ms = 0.0;      // runtime (PR: per iteration)
  double mteps = 0.0;   // 0 when throughput is not meaningful
};

using ResultKey = std::string;  // "<primitive>/<framework>/<dataset>"

inline ResultKey Key(const std::string& prim, const std::string& fw,
                     const std::string& ds) {
  return prim + "/" + fw + "/" + ds;
}

inline const std::vector<std::string>& Primitives() {
  static const std::vector<std::string> p = {"BFS", "SSSP", "BC", "PR",
                                             "CC"};
  return p;
}

inline const std::vector<std::string>& Frameworks() {
  static const std::vector<std::string> f = {"serial", "gas", "pregel",
                                             "hardwired", "gunrock"};
  return f;
}

/// Runs the full measurement matrix. Skips nothing: every framework
/// implements every primitive it supports; combinations without an
/// implementation (gas/pregel BC, pregel CC) are absent from the map.
inline std::map<ResultKey, Measurement> RunMatrix(
    const std::vector<Dataset>& datasets) {
  std::map<ResultKey, Measurement> results;
  auto& pool = par::ThreadPool::Global();
  const int reps = Reps();

  for (const auto& d : datasets) {
    const auto& g = d.graph;
    const vid_t src = d.source;
    const double m = static_cast<double>(g.num_edges());

    // --- BFS ---
    {
      eid_t edges = 0;
      const double ms = TimeMs(
          [&] {
            const auto r = serial::Bfs(g, src);
            edges = static_cast<eid_t>(r.depth.size());
          },
          1);
      results[Key("BFS", "serial", d.name)] = {ms, m / (ms * 1000.0)};
    }
    {
      gas::GasBfsResult r;
      const double ms =
          TimeMs([&] { r = gas::Bfs(g, src, pool); }, reps);
      results[Key("BFS", "gas", d.name)] = {
          ms, static_cast<double>(r.stats.edges_processed) / (ms * 1000.0)};
    }
    {
      pregel::PregelBfsResult r;
      const double ms =
          TimeMs([&] { r = pregel::Bfs(g, src, pool); }, reps);
      results[Key("BFS", "pregel", d.name)] = {
          ms, static_cast<double>(r.stats.messages_sent) / (ms * 1000.0)};
    }
    {
      hardwired::TimedDepths r;
      const double ms =
          TimeMs([&] { r = hardwired::Bfs(g, src, pool); }, reps);
      results[Key("BFS", "hardwired", d.name)] = {
          ms, static_cast<double>(r.edges_visited) / (ms * 1000.0)};
    }
    {
      BfsOptions opts;
      opts.direction = core::Direction::kOptimizing;
      BfsResult r;
      const double ms = TimeMs([&] { r = Bfs(g, src, opts); }, reps);
      results[Key("BFS", "gunrock", d.name)] = {
          ms, static_cast<double>(r.stats.edges_visited) / (ms * 1000.0)};
    }

    // --- SSSP ---
    {
      const double ms = TimeMs([&] { serial::Dijkstra(g, src); }, 1);
      results[Key("SSSP", "serial", d.name)] = {ms, m / (ms * 1000.0)};
    }
    {
      gas::GasSsspResult r;
      const double ms =
          TimeMs([&] { r = gas::Sssp(g, src, pool); }, reps);
      results[Key("SSSP", "gas", d.name)] = {
          ms, static_cast<double>(r.stats.edges_processed) / (ms * 1000.0)};
    }
    {
      pregel::PregelSsspResult r;
      const double ms =
          TimeMs([&] { r = pregel::Sssp(g, src, pool); }, reps);
      results[Key("SSSP", "pregel", d.name)] = {
          ms, static_cast<double>(r.stats.messages_sent) / (ms * 1000.0)};
    }
    {
      hardwired::TimedDists r;
      const double ms =
          TimeMs([&] { r = hardwired::Sssp(g, src, pool); }, reps);
      results[Key("SSSP", "hardwired", d.name)] = {
          ms, static_cast<double>(r.edges_visited) / (ms * 1000.0)};
    }
    {
      SsspResult r;
      SsspOptions opts;
      opts.compute_preds = false;
      const double ms = TimeMs([&] { r = Sssp(g, src, opts); }, reps);
      results[Key("SSSP", "gunrock", d.name)] = {
          ms, static_cast<double>(r.stats.edges_visited) / (ms * 1000.0)};
    }

    // --- BC (single source, like the GPU comparators) ---
    {
      const double ms = TimeMs(
          [&] {
            std::vector<double> bc(g.num_vertices(), 0.0);
            serial::BrandesAccumulate(g, src, &bc);
          },
          1);
      results[Key("BC", "serial", d.name)] = {ms,
                                              2 * m / (ms * 1000.0)};
    }
    {
      hardwired::TimedBc r;
      const double ms =
          TimeMs([&] { r = hardwired::Bc(g, src, pool); }, reps);
      results[Key("BC", "hardwired", d.name)] = {
          ms, static_cast<double>(r.edges_visited) / (ms * 1000.0)};
    }
    {
      BcResult r;
      const double ms = TimeMs([&] { r = Bc(g, src); }, reps);
      results[Key("BC", "gunrock", d.name)] = {
          ms, static_cast<double>(r.stats.edges_visited) / (ms * 1000.0)};
    }

    // --- PageRank (per-iteration normalization) ---
    {
      const double ms = TimeMs(
          [&] { serial::Pagerank(g, 0.85, 0.0, kPrIterations); }, 1);
      results[Key("PR", "serial", d.name)] = {ms / kPrIterations, 0.0};
    }
    {
      const double ms = TimeMs(
          [&] { gas::Pagerank(g, pool, 0.85, 0.0, kPrIterations); },
          reps);
      results[Key("PR", "gas", d.name)] = {ms / kPrIterations, 0.0};
    }
    {
      const double ms = TimeMs(
          [&] { pregel::Pagerank(g, pool, 0.85, 0.0, kPrIterations); },
          reps);
      results[Key("PR", "pregel", d.name)] = {ms / kPrIterations, 0.0};
    }
    {
      PagerankOptions opts;
      opts.tolerance = 0.0;
      opts.max_iterations = kPrIterations;
      opts.pull = true;  // gather-reduce mode (datasets are symmetric)
      const double ms = TimeMs([&] { Pagerank(g, opts); }, reps);
      results[Key("PR", "gunrock", d.name)] = {ms / kPrIterations, 0.0};
    }

    // --- CC ---
    {
      const double ms =
          TimeMs([&] { serial::ConnectedComponents(g); }, 1);
      results[Key("CC", "serial", d.name)] = {ms, 0.0};
    }
    {
      const double ms = TimeMs([&] { gas::Cc(g, pool); }, reps);
      results[Key("CC", "gas", d.name)] = {ms, 0.0};
    }
    {
      const double ms = TimeMs([&] { hardwired::Cc(g, pool); }, reps);
      results[Key("CC", "hardwired", d.name)] = {ms, 0.0};
    }
    {
      const double ms = TimeMs([&] { Cc(g); }, reps);
      results[Key("CC", "gunrock", d.name)] = {ms, 0.0};
    }
  }
  return results;
}

/// Dumps every (primitive, framework, dataset) measurement into `json`
/// as flat records — the canonical shape for BENCH_*.json tracking.
inline void AddMatrixRecords(JsonWriter& json,
                             const std::vector<Dataset>& datasets,
                             const std::map<ResultKey, Measurement>& results) {
  for (const auto& prim : Primitives()) {
    for (const auto& fw : Frameworks()) {
      for (const auto& d : datasets) {
        const auto it = results.find(Key(prim, fw, d.name));
        if (it == results.end()) continue;
        json.BeginRecord()
            .Field("primitive", prim)
            .Field("framework", fw)
            .Field("dataset", d.name)
            .Field("ms", it->second.ms)
            .Field("mteps", it->second.mteps);
      }
    }
  }
}

}  // namespace bench
