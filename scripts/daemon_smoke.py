#!/usr/bin/env python3
"""End-to-end smoke test for gunrockd, exercised from a real client.

Starts the daemon on an ephemeral port (discovered via --port-file),
checks the --pid-file handshake, runs one BFS query, a dynamic-graph
mutation round trip (add_edges + commit) and one "/stats" scrape over a
TCP socket, then sends SIGTERM and asserts a clean graceful-drain exit
(code 0) that removes the pid file. This is the cross-process twin of
tests/test_daemon.cpp: that suite drives the Daemon class in-process;
this script proves the shipped binary — flag parsing, signal handling,
process lifecycle — works from the outside.

Usage: scripts/daemon_smoke.py path/to/gunrockd
"""

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def fail(why: str) -> None:
    print(f"daemon_smoke: FAIL: {why}", file=sys.stderr)
    sys.exit(1)


def wait_for_port_file(path: Path, deadline_s: float = 30.0) -> int:
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        try:
            text = path.read_text().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"port file {path} never appeared")


def read_line(sock_file) -> str:
    line = sock_file.readline()
    if not line:
        fail("connection closed unexpectedly")
    return line.rstrip("\n")


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} path/to/gunrockd")
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="gunrockd_smoke.") as tmp:
        port_file = Path(tmp) / "port"
        pid_file = Path(tmp) / "pid"
        daemon = subprocess.Popen(
            [
                binary,
                "--port", "0",
                "--port-file", str(port_file),
                "--pid-file", str(pid_file),
                "--graph", "smoke=rmat:scale=8,edge_factor=8,seed=1,"
                           "dynamic=on",
                "--inflight", "2",
            ],
        )
        try:
            port = wait_for_port_file(port_file)

            # The daemon writes the pid file before the port file, so it
            # must already hold the daemon's pid.
            pid_text = pid_file.read_text().strip()
            if pid_text != str(daemon.pid):
                fail(f"pid file holds '{pid_text}', want '{daemon.pid}'")

            with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
                f = s.makefile("rw", encoding="utf-8", newline="\n")

                # One query, round-tripped.
                request = {"op": "query", "kind": "bfs", "source": 0,
                           "values": False, "tag": "smoke"}
                f.write(json.dumps(request) + "\n")
                f.flush()
                response = json.loads(read_line(f))
                if response.get("op") != "result":
                    fail(f"expected a result response, got: {response}")
                if response.get("status") != "done":
                    fail(f"query did not complete: {response}")
                if response.get("tag") != "smoke":
                    fail(f"tag not echoed: {response}")

                # One many-to-many distance table with an extracted path.
                request = {"op": "query", "kind": "matrix",
                           "sources": [0, 1], "targets": [0, 2],
                           "paths": [[0, 2]], "tag": "mat"}
                f.write(json.dumps(request) + "\n")
                f.flush()
                response = json.loads(read_line(f))
                if response.get("status") != "done":
                    fail(f"matrix query did not complete: {response}")
                result = response.get("result", {})
                table = result.get("table")
                if result.get("num_sources") != 2 or \
                        result.get("num_targets") != 2 or \
                        not isinstance(table, list) or len(table) != 2:
                    fail(f"matrix table has the wrong shape: {response}")
                if table[0][0] != 0:
                    fail(f"matrix d(0,0) should be 0: {response}")
                paths = result.get("paths")
                if not paths or (table[0][1] is not None and not paths[0]):
                    fail(f"matrix path extraction came back empty: "
                         f"{response}")

                # One mutation round trip on the dynamic graph.
                request = {"op": "add_edges", "edges": [[0, 1], [1, 0]],
                           "tag": "mut"}
                f.write(json.dumps(request) + "\n")
                f.flush()
                response = json.loads(read_line(f))
                if response.get("op") != "mutated":
                    fail(f"expected a mutated response, got: {response}")
                f.write(json.dumps({"op": "commit", "tag": "cmt"}) + "\n")
                f.flush()
                response = json.loads(read_line(f))
                if response.get("op") != "committed":
                    fail(f"expected a committed response, got: {response}")
                if response.get("epoch", 0) < 1:
                    fail(f"commit did not report an epoch: {response}")

                # One stats scrape; the page ends with its "# end" marker.
                f.write("/stats\n")
                f.flush()
                page = []
                while (line := read_line(f)) != "# end":
                    page.append(line)
                page_text = "\n".join(page)
                for needle in ("gunrockd_uptime_ms", "engine_submitted",
                               "dynamic_epoch"):
                    if needle not in page_text:
                        fail(f"stats page missing {needle}:\n{page_text}")

            # Graceful drain: SIGTERM must exit 0 within the drain budget
            # and the clean exit must remove the pid file.
            daemon.send_signal(signal.SIGTERM)
            code = daemon.wait(timeout=30)
            if code != 0:
                fail(f"gunrockd exited {code} on SIGTERM (want 0)")
            if pid_file.exists():
                fail("pid file survived a clean SIGTERM exit")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print("daemon_smoke: OK (pid file + query + matrix + mutate + stats + "
          "graceful SIGTERM exit)")


if __name__ == "__main__":
    main()
