#!/usr/bin/env python3
"""End-to-end smoke test for gunrockd, exercised from a real client.

Starts the daemon on an ephemeral port (discovered via --port-file),
checks the --pid-file handshake, runs one BFS query, a dynamic-graph
mutation round trip (add_edges + commit) and one "/stats" scrape over a
TCP socket, scrapes the health/admin port (/livez, /readyz, GET /stats,
/reopen-logs against a --log-file), exercises one retry-after-shed round
trip against --max-connections, then sends SIGTERM and asserts a clean
graceful-drain exit (code 0) that removes the pid file. Two extra
process lifecycles pin the stale-pid-file contract: a pid file recording
a dead pid is replaced (with an event=stale_pid log line), a pid file
recording a live pid refuses startup. This is the cross-process twin of
tests/test_daemon.cpp and tests/test_chaos.cpp: those suites drive the
Daemon class in-process; this script proves the shipped binary — flag
parsing, signal handling, process lifecycle — works from the outside.

Usage: scripts/daemon_smoke.py path/to/gunrockd
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def fail(why: str) -> None:
    print(f"daemon_smoke: FAIL: {why}", file=sys.stderr)
    sys.exit(1)


def wait_for_port_file(path: Path, deadline_s: float = 30.0) -> int:
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        try:
            text = path.read_text().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"port file {path} never appeared")


def read_line(sock_file) -> str:
    line = sock_file.readline()
    if not line:
        fail("connection closed unexpectedly")
    return line.rstrip("\n")


def admin_request(port: int, line: str) -> str:
    """One request/one response on the health/admin port (its connections
    are one-shot); returns everything the daemon sent back."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
        s.sendall((line + "\n").encode())
        chunks = []
        while chunk := s.recv(4096):
            chunks.append(chunk)
    return b"".join(chunks).decode()


def serve_phase(binary: str, tmp: str) -> None:
    """The main lifecycle: queries, stats, admin scrapes, shed + retry,
    graceful SIGTERM."""
    port_file = Path(tmp) / "port"
    pid_file = Path(tmp) / "pid"
    admin_port_file = Path(tmp) / "admin_port"
    log_file = Path(tmp) / "events.log"
    daemon = subprocess.Popen(
        [
            binary,
            "--port", "0",
            "--port-file", str(port_file),
            "--pid-file", str(pid_file),
            "--admin-port", "0",
            "--admin-port-file", str(admin_port_file),
            "--log-file", str(log_file),
            "--max-connections", "1",
            "--graph", "smoke=rmat:scale=8,edge_factor=8,seed=1,"
                       "dynamic=on",
            "--inflight", "2",
        ],
    )
    try:
        port = wait_for_port_file(port_file)
        admin_port = wait_for_port_file(admin_port_file)

        # The daemon writes the pid file before the port file, so it
        # must already hold the daemon's pid.
        pid_text = pid_file.read_text().strip()
        if pid_text != str(daemon.pid):
            fail(f"pid file holds '{pid_text}', want '{daemon.pid}'")

        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            f = s.makefile("rw", encoding="utf-8", newline="\n")

            # One query, round-tripped.
            request = {"op": "query", "kind": "bfs", "source": 0,
                       "values": False, "tag": "smoke"}
            f.write(json.dumps(request) + "\n")
            f.flush()
            response = json.loads(read_line(f))
            if response.get("op") != "result":
                fail(f"expected a result response, got: {response}")
            if response.get("status") != "done":
                fail(f"query did not complete: {response}")
            if response.get("tag") != "smoke":
                fail(f"tag not echoed: {response}")

            # One many-to-many distance table with an extracted path.
            request = {"op": "query", "kind": "matrix",
                       "sources": [0, 1], "targets": [0, 2],
                       "paths": [[0, 2]], "tag": "mat"}
            f.write(json.dumps(request) + "\n")
            f.flush()
            response = json.loads(read_line(f))
            if response.get("status") != "done":
                fail(f"matrix query did not complete: {response}")
            result = response.get("result", {})
            table = result.get("table")
            if result.get("num_sources") != 2 or \
                    result.get("num_targets") != 2 or \
                    not isinstance(table, list) or len(table) != 2:
                fail(f"matrix table has the wrong shape: {response}")
            if table[0][0] != 0:
                fail(f"matrix d(0,0) should be 0: {response}")
            paths = result.get("paths")
            if not paths or (table[0][1] is not None and not paths[0]):
                fail(f"matrix path extraction came back empty: "
                     f"{response}")

            # One mutation round trip on the dynamic graph.
            request = {"op": "add_edges", "edges": [[0, 1], [1, 0]],
                       "tag": "mut"}
            f.write(json.dumps(request) + "\n")
            f.flush()
            response = json.loads(read_line(f))
            if response.get("op") != "mutated":
                fail(f"expected a mutated response, got: {response}")
            f.write(json.dumps({"op": "commit", "tag": "cmt"}) + "\n")
            f.flush()
            response = json.loads(read_line(f))
            if response.get("op") != "committed":
                fail(f"expected a committed response, got: {response}")
            if response.get("epoch", 0) < 1:
                fail(f"commit did not report an epoch: {response}")

            # One stats scrape; the page ends with its "# end" marker.
            f.write("/stats\n")
            f.flush()
            page = []
            while (line := read_line(f)) != "# end":
                page.append(line)
            page_text = "\n".join(page)
            for needle in ("gunrockd_uptime_ms", "engine_submitted",
                           "dynamic_epoch"):
                if needle not in page_text:
                    fail(f"stats page missing {needle}:\n{page_text}")

            # Health/admin port: liveness, readiness, stats — in both the
            # line protocol and the curl-able GET form.
            if admin_request(admin_port, "/livez").strip() != "ok":
                fail("/livez did not answer ok")
            if admin_request(admin_port, "/readyz").strip() != "ready":
                fail("/readyz did not answer ready while serving")
            admin_stats = admin_request(admin_port, "GET /stats HTTP/1.0")
            if "200" not in admin_stats.splitlines()[0]:
                fail(f"GET /stats was not a 200: {admin_stats[:200]}")
            if "gunrockd_uptime_ms" not in admin_stats:
                fail("admin GET /stats is missing the stats page")

            # External-logrotate handshake: move the log aside, ask the
            # daemon to reopen, and check new events land in a fresh file.
            if "event=listening" not in log_file.read_text():
                fail("--log-file did not capture the listening event")
            rotated = log_file.with_suffix(".old")
            log_file.rename(rotated)
            if admin_request(admin_port, "/reopen-logs").strip() != "ok":
                fail("/reopen-logs did not answer ok")
            end = time.monotonic() + 10.0
            while time.monotonic() < end:
                if log_file.exists() and \
                        "event=reopen_logs" in log_file.read_text():
                    break
                time.sleep(0.05)
            else:
                fail("reopened log file never got the reopen_logs event")

            # Overload shedding: with --max-connections 1 and this
            # connection holding the only slot, a second connect is
            # answered with the canonical retryable error, then closed.
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=30) as shed_sock:
                shed_f = shed_sock.makefile("r", encoding="utf-8",
                                            newline="\n")
                refusal = json.loads(read_line(shed_f))
                if refusal.get("op") != "error" or \
                        refusal.get("retryable") is not True:
                    fail(f"over-capacity connect was not a retryable "
                         f"error: {refusal}")
                if shed_f.readline():
                    fail("shed connection was not closed after the error")
                shed_f.close()

            # makefile() pins the underlying fd: close it explicitly so
            # the with-block exit really sends FIN and frees the slot.
            f.close()

        # Retry-after-shed: the held connection is gone, so a bounded
        # retry with backoff must land inside the freed slot.
        backoff_s, admitted = 0.025, False
        for _ in range(8):
            time.sleep(backoff_s)
            backoff_s *= 2
            try:
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=30) as retry_sock:
                    rf = retry_sock.makefile("rw", encoding="utf-8",
                                             newline="\n")
                    rf.write(json.dumps({"op": "ping", "tag": "rt"}) + "\n")
                    rf.flush()
                    response = json.loads(rf.readline() or "{}")
                    rf.close()
                    if response.get("op") == "pong":
                        admitted = True
                        break
            except OSError:
                continue
        if not admitted:
            fail("retry after shed never succeeded once capacity freed")

        # Graceful drain: SIGTERM must exit 0 within the drain budget
        # and the clean exit must remove the pid file.
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=30)
        if code != 0:
            fail(f"gunrockd exited {code} on SIGTERM (want 0)")
        if pid_file.exists():
            fail("pid file survived a clean SIGTERM exit")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def stale_pid_phase(binary: str, tmp: str) -> None:
    """A pid file recording a dead pid must be replaced (with a logged
    event=stale_pid); one recording a live pid must refuse startup."""
    port_file = Path(tmp) / "stale_port"
    pid_file = Path(tmp) / "stale_pid"
    log_file = Path(tmp) / "stale_events.log"

    # A real, definitely-exited pid.
    ghost = subprocess.Popen([sys.executable, "-c", ""])
    ghost.wait()
    pid_file.write_text(f"{ghost.pid}\n")

    daemon = subprocess.Popen(
        [
            binary,
            "--port", "0",
            "--port-file", str(port_file),
            "--pid-file", str(pid_file),
            "--log-file", str(log_file),
            "--graph", "smoke=rmat:scale=6,edge_factor=8,seed=1",
        ],
    )
    try:
        wait_for_port_file(port_file)
        if pid_file.read_text().strip() != str(daemon.pid):
            fail("stale pid file was not replaced with the live pid")
        if "event=stale_pid" not in log_file.read_text():
            fail("stale-pid takeover was not logged as event=stale_pid")
        daemon.send_signal(signal.SIGTERM)
        if daemon.wait(timeout=30) != 0:
            fail("daemon with replaced stale pid file did not exit 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    # A live pid (our own) must refuse startup, leaving the file alone.
    pid_file.write_text(f"{os.getpid()}\n")
    refused = subprocess.run(
        [
            binary,
            "--port", "0",
            "--pid-file", str(pid_file),
            "--graph", "smoke=rmat:scale=6,edge_factor=8,seed=1",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    if refused.returncode == 0:
        fail("daemon started over a pid file recording a live process")
    if "pid" not in refused.stderr:
        fail(f"live-pid refusal did not mention the pid file: "
             f"{refused.stderr}")
    if pid_file.read_text().strip() != str(os.getpid()):
        fail("refused startup clobbered the live pid file")


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} path/to/gunrockd")
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="gunrockd_smoke.") as tmp:
        serve_phase(binary, tmp)
        stale_pid_phase(binary, tmp)

    print("daemon_smoke: OK (pid file + query + matrix + mutate + stats + "
          "admin port + log reopen + shed/retry + stale-pid handling + "
          "graceful SIGTERM exit)")


if __name__ == "__main__":
    main()
