#!/usr/bin/env python3
"""Compare two BENCH_*.json documents and fail on a geomean slowdown.

The perf-regression gate from ROADMAP: a PR's bench JSON is compared
against the committed baseline and the build fails when the selected rows
regress by more than the threshold (default 1.2x geomean).

Two input formats are auto-detected:

* repo envelope (schema_version 1): ``{"bench", "quick", "results": [...]}``
  as emitted by the table benches with ``--json``. Rows are matched on
  (primitive, framework, dataset) and compared on the ``ms`` field.
* google-benchmark native JSON (``{"context", "benchmarks"}``) as emitted
  by micro_operators. Rows are matched on ``name`` and compared on
  ``real_time``.

Because committed baselines are produced on one machine class and CI runs
on another, absolute times are not comparable across machines. Both
formats therefore support serial normalization:

* envelope: ``--normalize-by serial`` divides every selected row by the
  matching serial-framework row *from the same file* before comparing,
  which cancels the machine speed and gates only on gunrock-relative
  regressions. This is the mode the CI gate uses.
* google-benchmark: ``--normalize-by REGEX`` names one or more *anchor*
  benchmarks (e.g. ``BM_SerialAnchor``, a fixed serial ALU workload that
  micro_operators registers exactly for this purpose). Every gated row is
  divided by the geomean of the anchor rows' real_time from its own file,
  making the comparison machine-speed-invariant and letting the
  small-frontier gate run at a 1.2x threshold instead of the loose 1.5x
  an absolute-time comparison needs to absorb the machine-class gap.
  Anchor rows must be present in both files (include them in any
  --benchmark_filter used to produce the JSON).

Examples:
  compare_bench.py baseline.json current.json \
      --framework gunrock --normalize-by serial --threshold 1.2
  compare_bench.py micro_base.json micro_now.json \
      --filter '(AdvanceIter|FilterIter)' \
      --normalize-by 'BM_SerialAnchor' --threshold 1.2
"""

import argparse
import json
import math
import re
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def is_google_benchmark(doc):
    return "benchmarks" in doc and "context" in doc


def envelope_rows(doc, framework, primitive, min_ms):
    rows = {}
    for r in doc.get("results", []):
        if "ms" not in r or "framework" not in r:
            continue
        if framework and r["framework"] != framework:
            continue
        if primitive and r["primitive"] != primitive:
            continue
        if float(r["ms"]) < min_ms:
            continue  # below the scheduler-noise floor; not gateable
        key = (r.get("primitive", ""), r["framework"], r.get("dataset", ""))
        rows[key] = float(r["ms"])
    return rows


def envelope_normalizers(doc, normalize_by):
    norm = {}
    for r in doc.get("results", []):
        if r.get("framework") == normalize_by and "ms" in r:
            norm[(r.get("primitive", ""), r.get("dataset", ""))] = float(
                r["ms"])
    return norm


def gbench_rows(doc, name_filter):
    """name -> real_time, min across --benchmark_repetitions rows.

    Repetition runs share one name; keeping the best-observed time is the
    standard noise shield for micro-scale rows (scheduler jitter only ever
    adds time).
    """
    rows = {}
    pattern = re.compile(name_filter) if name_filter else None
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if pattern and not pattern.search(name):
            continue
        t = float(b["real_time"])
        rows[name] = min(rows.get(name, t), t)
    return rows


def gbench_anchor(doc, anchor_re):
    """Geomean of the serial-anchor rows' (min-of-repetition) real_time.

    Extraction goes through gbench_rows so anchor and gated rows always
    share the same row rules (aggregate skip, min across repetitions).
    """
    vals = [t for t in gbench_rows(doc, anchor_re).values() if t > 0]
    if not vals:
        sys.exit("error: no anchor rows matching %r (did the JSON's "
                 "--benchmark_filter include the anchor?)" % anchor_re)
    return math.exp(sum(math.log(t) for t in vals) / len(vals))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.2,
                    help="fail when geomean(current/baseline) exceeds this")
    ap.add_argument("--framework", default="gunrock",
                    help="envelope format: framework rows to gate on")
    ap.add_argument("--primitive", default=None,
                    help="envelope format: restrict to one primitive")
    ap.add_argument("--normalize-by", default=None,
                    metavar="FRAMEWORK_OR_REGEX",
                    help="machine-speed-invariant comparison. Envelope "
                         "format: divide each row by the matching row of "
                         "this framework from the same file. "
                         "google-benchmark format: divide each row by the "
                         "geomean real_time of the benchmarks matching "
                         "this regex (the serial anchor) from its own "
                         "file; anchor rows are excluded from gating")
    ap.add_argument("--filter", default=None,
                    help="google-benchmark format: regex on benchmark name")
    ap.add_argument("--min-ms", type=float, default=0.05,
                    help="envelope format: drop rows whose raw time is "
                         "below this in either file (timer-noise floor)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    if is_google_benchmark(base_doc) != is_google_benchmark(cur_doc):
        sys.exit("error: baseline and current use different JSON formats")

    if is_google_benchmark(base_doc):
        base = gbench_rows(base_doc, args.filter)
        cur = gbench_rows(cur_doc, args.filter)
        if args.normalize_by:
            anchor_re = re.compile(args.normalize_by)
            base_anchor = gbench_anchor(base_doc, args.normalize_by)
            cur_anchor = gbench_anchor(cur_doc, args.normalize_by)
            base = {k: v / base_anchor for k, v in base.items()
                    if not anchor_re.search(k)}
            cur = {k: v / cur_anchor for k, v in cur.items()
                   if not anchor_re.search(k)}
    else:
        base = envelope_rows(base_doc, args.framework, args.primitive,
                             args.min_ms)
        cur = envelope_rows(cur_doc, args.framework, args.primitive,
                            args.min_ms)
        if args.normalize_by:
            bn = envelope_normalizers(base_doc, args.normalize_by)
            cn = envelope_normalizers(cur_doc, args.normalize_by)
            base = {k: v / bn[(k[0], k[2])] for k, v in base.items()
                    if (k[0], k[2]) in bn and bn[(k[0], k[2])] > 0}
            cur = {k: v / cn[(k[0], k[2])] for k, v in cur.items()
                   if (k[0], k[2]) in cn and cn[(k[0], k[2])] > 0}

    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("error: no comparable rows between baseline and current")

    ratios = []
    width = max(len(str(k)) for k in shared)
    print(f"{'row':{width}s} {'baseline':>12s} {'current':>12s} "
          f"{'ratio':>7s}")
    for k in shared:
        if base[k] <= 0 or cur[k] <= 0:
            continue
        r = cur[k] / base[k]
        ratios.append(r)
        print(f"{str(k):{width}s} {base[k]:12.4f} {cur[k]:12.4f} {r:7.3f}")
    if not ratios:
        sys.exit("error: no rows with positive timings")

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"\ngeomean current/baseline: {geomean:.3f} over {len(ratios)} "
          f"rows (threshold {args.threshold:.2f})")
    if geomean > args.threshold:
        print("PERF GATE FAILED: geomean slowdown exceeds threshold",
              file=sys.stderr)
        sys.exit(1)
    print("perf gate passed")


if __name__ == "__main__":
    main()
