// Seeded chaos suite for gunrockd (DESIGN §12): drives the daemon's
// production I/O path through the deterministic FaultInjector — short
// reads/writes, synthetic EINTR, stalls, mid-message disconnects and
// accept failures — over real loopback sockets, and asserts the
// robustness contract: the daemon never deadlocks, never corrupts a
// response stream (every surviving line parses and matches a tag the
// client actually sent), evicts slow clients within the configured
// deadline, sheds overload with retryable errors, and always completes
// drain. Every schedule is a pure function of its seed, so a failure
// replays exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "gunrock.hpp"
#include "serve/config.hpp"
#include "serve/daemon.hpp"
#include "serve/fault.hpp"
#include "serve/json.hpp"
#include "serve/listener.hpp"
#include "serve/protocol.hpp"

namespace gunrock {
namespace {

using serve::Daemon;
using serve::DaemonConfig;
using serve::FaultInjector;
using serve::Json;
using serve::ScopedFaultInjector;

graph::Csr MakeGraph(int scale = 8, int edge_factor = 8) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = 9000 + test::TestSeed();
  auto coo = GenerateRmat(p, par::ThreadPool::Global());
  graph::AttachRandomWeights(coo, 1, 64, /*seed=*/test::TestSeed());
  graph::BuildOptions opts;
  opts.symmetrize = true;
  return graph::BuildCsr(coo, opts);
}

std::unique_ptr<Daemon> MakeDaemon(graph::Csr g, DaemonConfig config = {}) {
  auto daemon = std::make_unique<Daemon>(std::move(config));
  daemon->AddGraph("g", std::move(g));
  std::string error;
  EXPECT_TRUE(daemon->Start(&error)) << error;
  return daemon;
}

/// Chaos-side client: bounded reads so a daemon deadlock fails the test
/// instead of hanging it, and EOF is an expected outcome (injected
/// disconnects), never an assertion failure.
class Client {
 public:
  explicit Client(int port) {
    std::string error;
    socket_ = serve::ConnectTcp("127.0.0.1", port, &error);
    EXPECT_TRUE(socket_.valid()) << error;
  }

  bool Send(const Json& request) { return SendRaw(request.Dump()); }
  bool SendRaw(const std::string& line) {
    return socket_.WriteAll(line + "\n");
  }

  /// Next response line within `deadline_ms`; nullopt on EOF or timeout.
  /// Every line that does arrive must parse — a corrupt stream is a
  /// test failure no matter which faults were injected.
  std::optional<Json> Read(double deadline_ms = 30000.0) {
    serve::Socket::ReadOptions opts;
    opts.line_deadline_ms = deadline_ms;
    opts.idle_timeout_ms = deadline_ms;
    serve::Socket::ReadResult r = socket_.ReadLineBounded(opts);
    if (r.status != serve::Socket::ReadStatus::kLine) return std::nullopt;
    std::string error;
    std::optional<Json> parsed = Json::Parse(r.line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << " in: " << r.line;
    return parsed;
  }

  serve::Socket& socket() { return socket_; }

 private:
  serve::Socket socket_;
};

std::string Tag(const Json& response) {
  const Json* tag = response.Find("tag");
  return tag && tag->is_string() ? tag->as_string() : std::string();
}

std::string Op(const Json& response) {
  const Json* op = response.Find("op");
  return op && op->is_string() ? op->as_string() : std::string();
}

bool Retryable(const Json& response) {
  const Json* v = response.Find("retryable");
  return v && v->is_bool() && v->as_bool();
}

Json Query(const char* kind, const std::string& tag, Json::Object extra = {}) {
  Json::Object o;
  o["op"] = Json("query");
  o["kind"] = Json(kind);
  o["tag"] = Json(tag);
  for (auto& [k, v] : extra) o[k] = std::move(v);
  return Json(std::move(o));
}

/// A pagerank pinned to `iters` full sweeps (tolerance 0 disables early
/// convergence) — the knob for queries slow enough to build queue
/// pressure without bench-scale graphs.
Json SlowQuery(const std::string& tag, int iters) {
  Json::Object opts;
  opts["tolerance"] = Json(0.0);
  opts["max_iterations"] = Json(iters);
  Json::Object extra;
  extra["opts"] = Json(std::move(opts));
  return Query("pagerank", tag, std::move(extra));
}

std::string MakeTag(const char* prefix, int a) {
  std::string s(prefix);
  s += std::to_string(a);
  return s;
}

std::string MakeTag(const char* prefix, int a, const char* sep, int b) {
  std::string s = MakeTag(prefix, a);
  s += sep;
  s += std::to_string(b);
  return s;
}

Json Ping(const std::string& tag) {
  Json::Object o;
  o["op"] = Json("ping");
  o["tag"] = Json(tag);
  return Json(std::move(o));
}

/// Polls `pred` every few ms until true or `ms` elapsed.
bool WaitFor(double ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- the EINTR regression (satellite fix) -----------------------------------

// Historically an EINTR'd recv was treated as EOF, silently dropping the
// connection. The injector replays exactly that schedule: a burst of
// synthetic EINTRs on the daemon's read path must be invisible to the
// client.
TEST(ChaosTest, EintrFromRecvIsRetriedNotEof) {
  FaultInjector::Config faults;
  faults.seed = 42;
  faults.eintr_pm = 1000;  // every daemon-side read EINTRs...
  faults.budget = 8;       // ...exactly 8 times, then clean
  ScopedFaultInjector injector(faults);

  auto daemon = MakeDaemon(MakeGraph());
  Client client(daemon->port());
  ASSERT_TRUE(client.Send(Ping("t1")));
  std::optional<Json> pong = client.Read();
  ASSERT_TRUE(pong.has_value()) << "EINTR was misread as EOF";
  EXPECT_EQ(Op(*pong), "pong");
  EXPECT_EQ(Tag(*pong), "t1");
  EXPECT_GE(injector.injector().injected(), 1u);

  // And a real query still round-trips after the schedule went inert.
  Json::Object extra;
  extra["source"] = Json(0);
  ASSERT_TRUE(client.Send(Query("bfs", "t2", std::move(extra))));
  std::optional<Json> result = client.Read();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(Op(*result), "result");
  EXPECT_EQ(Tag(*result), "t2");
}

// --- determinism of the seam ------------------------------------------------

// The decision sequence is a pure function of the seed: two injectors
// with the same config produce identical fault schedules, and a finite
// budget fires exactly min(budget, hits) faults before going inert.
TEST(ChaosTest, InjectedFaultScheduleIsSeedDeterministic) {
  FaultInjector::Config faults;
  faults.seed = test::TestSeed() + 7;
  faults.short_read_pm = 300;
  faults.eintr_pm = 150;
  faults.stall_pm = 100;
  faults.disconnect_pm = 50;

  const auto schedule = [&](std::uint64_t seed) {
    FaultInjector::Config c = faults;
    c.seed = seed;
    FaultInjector injector(c);
    std::string out;
    for (int i = 0; i < 256; ++i) {
      const FaultInjector::IoFault f = injector.OnRead(true);
      out += f.eintr ? 'e' : '.';
      out += f.disconnect ? 'd' : '.';
      out += f.stall_ms > 0 ? 's' : '.';
      out += f.cap != std::numeric_limits<std::size_t>::max() ? 'c' : '.';
    }
    return out;
  };
  EXPECT_EQ(schedule(faults.seed), schedule(faults.seed));
  EXPECT_NE(schedule(faults.seed), schedule(faults.seed + 1));

  // accepted_only scoping: client-side (non-accepted) sockets never
  // suffer faults.
  FaultInjector scoped(faults);
  for (int i = 0; i < 64; ++i) {
    const FaultInjector::IoFault f = scoped.OnRead(false);
    EXPECT_FALSE(f.eintr || f.disconnect || f.stall_ms > 0 ||
                 f.cap != std::numeric_limits<std::size_t>::max());
  }
  EXPECT_EQ(scoped.injected(), 0u);

  FaultInjector::Config budgeted = faults;
  budgeted.eintr_pm = 1000;
  budgeted.budget = 3;
  FaultInjector capped(budgeted);
  for (int i = 0; i < 100; ++i) capped.OnRead(true);
  EXPECT_EQ(capped.injected(), 3u);
}

// --- short/jittered I/O preserves every byte --------------------------------

// 8 concurrent connections, each running tagged queries under heavy
// short-read/short-write/stall pressure: every response must arrive,
// parse, and carry a tag its own client sent. Short I/O reorders
// syscalls, never bytes.
TEST(ChaosTest, ShortAndJitteredIoPreservesEveryResponse) {
  FaultInjector::Config faults;
  faults.seed = 1000 + test::TestSeed();
  faults.short_read_pm = 350;
  faults.short_write_pm = 350;
  faults.short_cap = 3;
  faults.stall_pm = 80;
  faults.stall_ms = 1;
  ScopedFaultInjector injector(faults);

  DaemonConfig config;
  config.inflight = 4;
  auto daemon = MakeDaemon(MakeGraph(), config);

  constexpr int kClients = 8;
  constexpr int kQueries = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(daemon->port());
      std::set<std::string> expected;
      for (int q = 0; q < kQueries; ++q) {
        const std::string tag = MakeTag("c", c, "-q", q);
        Json::Object extra;
        extra["source"] = Json(q);
        if (!client.Send(Query("bfs", tag, std::move(extra)))) {
          ++failures;
          return;
        }
        expected.insert(tag);
      }
      std::set<std::string> received;
      for (int q = 0; q < kQueries; ++q) {
        std::optional<Json> response = client.Read();
        if (!response) {
          ++failures;
          return;
        }
        if (Op(*response) != "result" ||
            expected.count(Tag(*response)) == 0 ||
            received.count(Tag(*response)) != 0) {
          ++failures;
          return;
        }
        received.insert(Tag(*response));
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0)
      << "a response was lost, duplicated or mistagged under short I/O";
  EXPECT_GE(injector.injector().injected(), 1u);
}

// --- mid-message disconnects ------------------------------------------------

// An injected mid-exchange disconnect kills exactly the unlucky
// connection: its client sees clean EOF (never a corrupt line), and a
// later connection is served normally once the budget is spent.
TEST(ChaosTest, MidMessageDisconnectsLeaveOthersUnharmed) {
  FaultInjector::Config faults;
  faults.seed = 7;
  faults.disconnect_pm = 1000;
  faults.budget = 1;  // exactly one victim
  ScopedFaultInjector injector(faults);

  auto daemon = MakeDaemon(MakeGraph());

  Client victim(daemon->port());
  ASSERT_TRUE(victim.Send(Ping("v")));
  // The daemon-side recv for this ping is the schedule's one disconnect:
  // the victim sees EOF (or, at worst, a complete well-formed line —
  // Read() asserts parseability either way).
  (void)victim.Read(5000.0);
  ASSERT_TRUE(WaitFor(5000.0, [&] {
    return injector.injector().injected() >= 1;
  }));

  Client survivor(daemon->port());
  ASSERT_TRUE(survivor.Send(Ping("s")));
  std::optional<Json> pong = survivor.Read();
  ASSERT_TRUE(pong.has_value()) << "disconnect bled onto a healthy conn";
  EXPECT_EQ(Op(*pong), "pong");
  EXPECT_EQ(Tag(*pong), "s");
}

// --- slow-loris eviction ----------------------------------------------------

// A client that starts a request line and stalls is evicted once the
// line deadline lapses — with a structured event and counter — while an
// idle keep-alive client (no partial line) is never charged.
TEST(ChaosTest, SlowLorisPartialLineIsEvictedWithinDeadline) {
  DaemonConfig config;
  config.read_deadline_ms = 200.0;
  auto daemon = MakeDaemon(MakeGraph(), config);

  Client idle(daemon->port());  // connected, quiet, no partial line

  Client loris(daemon->port());
  ASSERT_TRUE(loris.socket().WriteAll("{\"op\":"));  // no newline, ever
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<Json> response = loris.Read(10000.0);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(response.has_value());  // evicted: EOF, no response
  EXPECT_LT(waited_ms, 8000.0) << "eviction missed the deadline by miles";
  ASSERT_TRUE(WaitFor(5000.0, [&] { return daemon->evictions() >= 1; }));

  // The idle client was not charged and still works.
  ASSERT_TRUE(idle.Send(Ping("still-here")));
  std::optional<Json> pong = idle.Read();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(Op(*pong), "pong");
  const std::string stats = daemon->StatsText();
  EXPECT_NE(stats.find("gunrockd_evictions"), std::string::npos);
}

// --- stalled-writer eviction ------------------------------------------------

// A peer that submits queries and never reads the responses cannot park
// the writer thread: once the kernel buffers fill, the poll-guarded
// write times out and the connection is evicted.
TEST(ChaosTest, StalledWriterIsEvictedWithinDeadline) {
  DaemonConfig config;
  config.write_deadline_ms = 200.0;
  config.sndbuf = 8192;  // small daemon-side buffer: stall fast
  config.inflight = 2;
  auto daemon = MakeDaemon(MakeGraph(12, 8), config);

  Client stalled(daemon->port());
  // Dozens of full-value pagerank responses (~tens of KB each) with no
  // reader on the other end overwhelm any default socket buffering.
  for (int q = 0; q < 50; ++q) {
    if (!stalled.Send(SlowQuery(MakeTag("q", q), 5))) break;
  }
  ASSERT_TRUE(WaitFor(30000.0, [&] { return daemon->evictions() >= 1; }))
      << "stalled reader never evicted";

  Client healthy(daemon->port());
  ASSERT_TRUE(healthy.Send(Ping("h")));
  std::optional<Json> pong = healthy.Read();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(Op(*pong), "pong");
}

// --- connection-count shedding + retry-after-shed ---------------------------

// Over max_connections the daemon answers the canonical retryable error
// and closes; once capacity frees, a backoff retry succeeds — the full
// shed/retry contract on one socket pair.
TEST(ChaosTest, OverCapacityConnectionsAreShedWithRetryableErrors) {
  DaemonConfig config;
  config.max_connections = 1;
  auto daemon = MakeDaemon(MakeGraph(), config);

  auto holder = std::make_unique<Client>(daemon->port());
  ASSERT_TRUE(holder->Send(Ping("hold")));
  ASSERT_TRUE(holder->Read().has_value());  // holder is established

  Client shed(daemon->port());
  std::optional<Json> refusal = shed.Read(5000.0);
  ASSERT_TRUE(refusal.has_value()) << "shed silently instead of answering";
  EXPECT_EQ(Op(*refusal), "error");
  EXPECT_TRUE(Retryable(*refusal)) << refusal->Dump();
  EXPECT_FALSE(shed.Read(2000.0).has_value());  // then a clean close
  EXPECT_GE(daemon->sheds(), 1u);

  holder.reset();  // free the slot
  // Bounded retry with backoff: reconnect until admitted.
  bool admitted = false;
  double backoff_ms = 25.0;
  for (int attempt = 0; attempt < 8 && !admitted; ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms *= 2;
    Client retry(daemon->port());
    if (!retry.Send(Ping("retry"))) continue;
    std::optional<Json> response = retry.Read(5000.0);
    admitted = response && Op(*response) == "pong";
  }
  EXPECT_TRUE(admitted) << "retry never succeeded after capacity freed";
}

// --- queue-depth shedding + retry -------------------------------------------

// With the admission queue past shed_queue_depth, new queries get a
// retryable error instead of blocking the reader; after the queue
// drains, the same query succeeds on retry.
TEST(ChaosTest, QueueDepthShedsRetryableAndRetrySucceeds) {
  DaemonConfig config;
  config.inflight = 1;
  config.shed_queue_depth = 1;
  auto daemon = MakeDaemon(MakeGraph(11, 8), config);

  Client flooder(daemon->port());
  bool shed_seen = false;
  for (int round = 0; round < 5 && !shed_seen; ++round) {
    // Tens of ms each (seconds sanitized): a wide window in which the
    // queue is nonempty, without outrunning the retry budget under ASan.
    for (int q = 0; q < 16; ++q) {
      ASSERT_TRUE(flooder.Send(SlowQuery(MakeTag("r", round, "-", q),
                                         2000)));
    }
    if (!WaitFor(10000.0, [&] {
          return daemon->engine().stats().queued >= 1;
        })) {
      continue;
    }
    Client probe(daemon->port());
    ASSERT_TRUE(probe.Send(Ping("warm")));
    ASSERT_TRUE(probe.Read().has_value());
    ASSERT_TRUE(probe.Send(SlowQuery("probe", 1)));
    std::optional<Json> response = probe.Read(30000.0);
    ASSERT_TRUE(response.has_value());
    if (Op(*response) == "error") {
      EXPECT_TRUE(Retryable(*response)) << response->Dump();
      shed_seen = true;
      // Retry with backoff until the queue drains and the query runs.
      bool recovered = false;
      double backoff_ms = 50.0;
      for (int attempt = 0; attempt < 10 && !recovered; ++attempt) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms *= 2;
        ASSERT_TRUE(probe.Send(SlowQuery("probe-retry", 1)));
        std::optional<Json> retry = probe.Read(60000.0);
        ASSERT_TRUE(retry.has_value());
        recovered = Op(*retry) == "result";
      }
      EXPECT_TRUE(recovered) << "retry never succeeded after drain";
    }
  }
  EXPECT_TRUE(shed_seen) << "queue never reached shed depth";
  EXPECT_GE(daemon->sheds(), 1u);
}

// --- bounded per-connection write queue -------------------------------------

// A connection that submits far faster than its responses can deliver
// hits the bounded write backlog: excess queries are shed with retryable
// errors, and every line on the wire is still tag-correct.
TEST(ChaosTest, WriteQueueCapShedsExcessQueriesRetryably) {
  DaemonConfig config;
  config.inflight = 1;
  config.write_queue_max = 2;
  auto daemon = MakeDaemon(MakeGraph(11, 8), config);

  Client client(daemon->port());
  constexpr int kBurst = 8;
  std::set<std::string> tags;
  for (int q = 0; q < kBurst; ++q) {
    const std::string tag = MakeTag("b", q);
    ASSERT_TRUE(client.Send(SlowQuery(tag, 2000)));
    tags.insert(tag);
  }
  int results = 0;
  int retryable_errors = 0;
  for (int q = 0; q < kBurst; ++q) {
    std::optional<Json> response = client.Read(60000.0);
    ASSERT_TRUE(response.has_value()) << "response " << q << " lost";
    ASSERT_EQ(tags.count(Tag(*response)), 1u) << response->Dump();
    if (Op(*response) == "result") {
      ++results;
    } else if (Op(*response) == "error" && Retryable(*response)) {
      ++retryable_errors;
    }
  }
  EXPECT_EQ(results + retryable_errors, kBurst);
  EXPECT_GE(results, 2) << "even the in-cap queries were shed";
  EXPECT_GE(retryable_errors, 1) << "the cap never engaged";
  EXPECT_GE(daemon->sheds(), 1u);
}

// --- accept-path resilience -------------------------------------------------

// Injected transient accept failures are retried inside the listener:
// the accept loop survives, the pending connection is eventually served,
// and the retries are counted.
TEST(ChaosTest, AcceptFailuresDoNotKillTheAcceptLoop) {
  FaultInjector::Config faults;
  faults.seed = 11;
  faults.accept_fail_pm = 1000;
  faults.budget = 5;
  ScopedFaultInjector injector(faults);

  auto daemon = MakeDaemon(MakeGraph());
  Client client(daemon->port());
  ASSERT_TRUE(client.Send(Ping("p")));
  std::optional<Json> pong = client.Read();
  ASSERT_TRUE(pong.has_value()) << "accept loop died on injected failure";
  EXPECT_EQ(Op(*pong), "pong");
  EXPECT_EQ(injector.injector().injected(), 5u);
  const std::string stats = daemon->StatsText();
  EXPECT_NE(stats.find("gunrockd_accept_retries 5"), std::string::npos)
      << stats;
}

// --- readiness flips during drain while liveness stays up -------------------

// With an in-flight query holding the drain open, the admin port keeps
// answering: /livez stays "ok", /readyz flips to "draining", and the
// held connection still receives its response before the daemon exits.
TEST(ChaosTest, DrainFlipsReadinessWhileLivenessStaysUp) {
  DaemonConfig config;
  config.admin_port = 0;
  config.inflight = 1;
  config.drain_deadline_ms = 30000.0;
  auto daemon = MakeDaemon(MakeGraph(11, 8), config);
  ASSERT_GT(daemon->admin_port(), 0);

  const auto admin = [&](const std::string& path) -> std::string {
    std::string error;
    serve::Socket probe =
        serve::ConnectTcp("127.0.0.1", daemon->admin_port(), &error);
    if (!probe.valid()) return "";
    if (!probe.WriteAll(path + "\n")) return "";
    serve::Socket::ReadOptions opts;
    opts.line_deadline_ms = 5000.0;
    opts.idle_timeout_ms = 5000.0;
    serve::Socket::ReadResult r = probe.ReadLineBounded(opts);
    return r.status == serve::Socket::ReadStatus::kLine ? r.line : "";
  };

  EXPECT_EQ(admin("/livez"), "ok");
  EXPECT_EQ(admin("/readyz"), "ready");

  Client held(daemon->port());
  // Long enough that the drain window is comfortably observable, short
  // enough to stay inside the drain deadline even sanitized.
  ASSERT_TRUE(held.Send(SlowQuery("held", 5000)));
  ASSERT_TRUE(WaitFor(10000.0, [&] {
    const auto s = daemon->engine().stats();
    return s.running >= 1 || s.queued >= 1;
  }));

  std::thread stopper([&] { daemon->Stop(); });
  // While the held query drains: readiness false, liveness true.
  EXPECT_TRUE(WaitFor(10000.0, [&] {
    return admin("/readyz") == "draining";
  }));
  EXPECT_EQ(admin("/livez"), "ok");

  // The in-flight query completes through the drain, tag intact. (Join
  // the stopper before any assertion can bail out of the test body.)
  std::optional<Json> response = held.Read(60000.0);
  stopper.join();
  ASSERT_TRUE(response.has_value()) << "drain dropped an in-flight query";
  EXPECT_EQ(Tag(*response), "held");
}

// --- the storm --------------------------------------------------------------

// Everything at once: 10 concurrent clients under short I/O, EINTR,
// stalls and occasional disconnects, then a drain in the middle of the
// chaos. Surviving responses stay tag-correct, the daemon stays
// reachable, and Stop() completes without deadlock.
TEST(ChaosTest, ChaosStormThenDrainCompletesCleanly) {
  FaultInjector::Config faults;
  faults.seed = 5000 + test::TestSeed();
  faults.short_read_pm = 250;
  faults.short_write_pm = 250;
  faults.short_cap = 5;
  faults.eintr_pm = 120;
  faults.stall_pm = 80;
  faults.stall_ms = 1;
  faults.disconnect_pm = 25;
  ScopedFaultInjector injector(faults);

  DaemonConfig config;
  config.inflight = 4;
  config.read_deadline_ms = 5000.0;
  config.write_deadline_ms = 5000.0;
  config.drain_deadline_ms = 30000.0;
  auto daemon = MakeDaemon(MakeGraph(), config);

  constexpr int kClients = 10;
  constexpr int kQueries = 8;
  std::atomic<int> corrupt{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(daemon->port());
      std::set<std::string> expected;
      for (int q = 0; q < kQueries; ++q) {
        const std::string tag = MakeTag("s", c, "-", q);
        Json::Object extra;
        extra["source"] = Json((c * kQueries + q) % 64);
        if (!client.Send(Query("bfs", tag, std::move(extra)))) break;
        expected.insert(tag);
      }
      for (std::size_t q = 0; q < expected.size(); ++q) {
        std::optional<Json> response = client.Read(20000.0);
        if (!response) break;  // disconnected mid-storm: acceptable
        const std::string tag = Tag(*response);
        if (Op(*response) == "result" && expected.count(tag) == 1) {
          expected.erase(tag);
          ++completed;
        } else {
          ++corrupt;  // mistagged, duplicated or foreign line
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(corrupt.load(), 0) << "a surviving response was corrupt";
  EXPECT_GE(completed.load(), 1) << "the storm killed every exchange";

  // The daemon is still reachable after the storm (retry through any
  // injected disconnect on the probe itself)...
  bool reachable = false;
  for (int attempt = 0; attempt < 10 && !reachable; ++attempt) {
    Client probe(daemon->port());
    if (!probe.Send(Ping("alive"))) continue;
    std::optional<Json> pong = probe.Read(5000.0);
    reachable = pong && Op(*pong) == "pong";
  }
  EXPECT_TRUE(reachable);

  // ...and drain completes under continued fault pressure (the injector
  // stays installed through Stop()).
  daemon->Stop();
  daemon.reset();
}

}  // namespace
}  // namespace gunrock
